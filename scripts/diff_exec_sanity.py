"""Manual differential sanity check: both exec modes, results + stats.

Usage: PYTHONPATH=src python scripts/diff_exec_sanity.py [n] [dims] [seed]
"""

import sys

import numpy as np

from repro.core import Box
from repro.eval.harness import PIMZdTreeAdapter, calibrate_box_side, make_boxes


def run(mode, n, dims, seed):
    rng = np.random.default_rng(seed)
    pts = rng.random((n, dims))
    ad = PIMZdTreeAdapter(pts, n_modules=16, seed=3, exec_mode=mode)
    tree = ad.tree
    out = {}
    qrng = np.random.default_rng(seed + 1)
    q = pts[qrng.integers(0, n, size=64)] + qrng.normal(scale=1e-4, size=(64, dims))
    out["knn"] = tree.knn(q, 5)
    side = calibrate_box_side(pts, 10, seed=2)
    boxes = make_boxes(pts, side, 32, seed=4)
    out["bc"] = tree.box_count(boxes)
    out["bf"] = tree.box_fetch(boxes)
    fresh = qrng.random((200, dims))
    tree.insert(fresh)
    out["bc2"] = tree.box_count(boxes)
    dele = np.vstack([pts[qrng.integers(0, n, size=100)], fresh[:50]])
    out["ndel"] = tree.delete(dele)
    out["knn2"] = tree.knn(q, 10)
    out["bf2"] = tree.box_fetch(boxes)
    tree.check_invariants()
    return out, ad.system.stats


def compare(a, b, label):
    ok = True
    if isinstance(a, np.ndarray):
        if not (a.shape == b.shape and np.array_equal(a, b)):
            print(f"MISMATCH {label}: arrays differ")
            ok = False
    elif isinstance(a, (list, tuple)):
        if len(a) != len(b):
            print(f"MISMATCH {label}: len {len(a)} vs {len(b)}")
            return False
        for i, (x, y) in enumerate(zip(a, b)):
            ok &= compare(x, y, f"{label}[{i}]")
    elif a != b:
        print(f"MISMATCH {label}: {a} vs {b}")
        ok = False
    return ok


def main():
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 5000
    dims = int(sys.argv[2]) if len(sys.argv) > 2 else 3
    seed = int(sys.argv[3]) if len(sys.argv) > 3 else 0
    ref_out, ref_stats = run("reference", n, dims, seed)
    vec_out, vec_stats = run("vectorized", n, dims, seed)
    ok = True
    for key in ref_out:
        ok &= compare(ref_out[key], vec_out[key], key)
    if ref_stats != vec_stats:
        ok = False
        if ref_stats.total != vec_stats.total:
            print(f"STATS total: ref={ref_stats.total}\n             vec={vec_stats.total}")
        for lab in sorted(set(ref_stats.phases) | set(vec_stats.phases)):
            a = ref_stats.phases.get(lab)
            b = vec_stats.phases.get(lab)
            if a != b:
                print(f"STATS phase {lab}:\n  ref={a}\n  vec={b}")
    print("OK" if ok else "FAILED")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
