"""Stdlib-only line-coverage gate for ``src/repro/core``.

CI enforces coverage with pytest-cov; this script is the offline
equivalent for environments (like the development container) where
coverage/pytest-cov are not installed.  It runs the tier-1 suite under a
``sys.settrace`` collector restricted to ``src/repro/core``, derives the
executable-line denominator from compiled code objects (``co_lines``,
the same source coverage.py uses), and fails if total line coverage for
the package drops below the floor.

Usage:
    python scripts/coverage_gate.py [--fail-under PCT] [pytest args...]

Notes:
  * Tracing is slow (pure-python per-line callbacks in the scalar
    reference paths) — expect a several-fold slowdown over a plain run.
  * The measured number tracks coverage.py closely but not exactly
    (e.g. it counts ``else``/decorator lines slightly differently), so
    keep a small margin between the measured value and the CI floor.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
CORE = REPO / "src" / "repro" / "core"


def executable_lines(path: Path) -> set[int]:
    """All line numbers the compiler emits code for in ``path``."""
    code = compile(path.read_text(), str(path), "exec")
    lines: set[int] = set()
    stack = [code]
    while stack:
        co = stack.pop()
        lines.update(ln for _, _, ln in co.co_lines() if ln is not None)
        stack.extend(c for c in co.co_consts if hasattr(c, "co_lines"))
    # The module's synthetic epilogue line (return None) isn't source.
    return lines


class CoreTracer:
    """Global tracer installing a per-line local tracer only in core files."""

    def __init__(self, prefix: str) -> None:
        self.prefix = prefix
        self.hits: dict[str, set[int]] = {}

    def global_trace(self, frame, event, arg):
        fn = frame.f_code.co_filename
        if not fn.startswith(self.prefix):
            return None
        hits = self.hits.setdefault(fn, set())
        hits.add(frame.f_lineno)

        def local_trace(frame, event, arg):
            if event == "line":
                hits.add(frame.f_lineno)
            return local_trace

        return local_trace


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--fail-under", type=float, default=None,
                    help="minimum total line coverage percent for repro.core")
    args, pytest_args = ap.parse_known_args()

    sys.path.insert(0, str(REPO / "src"))
    os.chdir(REPO)
    import pytest

    tracer = CoreTracer(str(CORE) + os.sep)
    threading_settrace = None
    try:
        import threading

        threading.settrace(tracer.global_trace)
        threading_settrace = threading
    except ImportError:
        pass
    sys.settrace(tracer.global_trace)
    try:
        rc = pytest.main(["-q", *pytest_args] or ["-q"])
    finally:
        sys.settrace(None)
        if threading_settrace is not None:
            threading_settrace.settrace(None)
    if rc != 0:
        print(f"coverage_gate: pytest failed (exit {rc}); not scoring")
        return int(rc)

    total_exec = total_hit = 0
    rows = []
    for path in sorted(CORE.glob("*.py")):
        exe = executable_lines(path)
        hit = tracer.hits.get(str(path), set()) & exe
        total_exec += len(exe)
        total_hit += len(hit)
        pct = 100.0 * len(hit) / len(exe) if exe else 100.0
        rows.append((path.name, len(exe), len(hit), pct))

    width = max(len(r[0]) for r in rows)
    print(f"\n{'file':<{width}}  {'lines':>6}  {'hit':>6}  {'cover':>7}")
    for name, n_exe, n_hit, pct in rows:
        print(f"{name:<{width}}  {n_exe:>6}  {n_hit:>6}  {pct:>6.1f}%")
    total_pct = 100.0 * total_hit / max(1, total_exec)
    print(f"{'TOTAL':<{width}}  {total_exec:>6}  {total_hit:>6}  "
          f"{total_pct:>6.1f}%")

    if args.fail_under is not None and total_pct < args.fail_under:
        print(f"coverage_gate: FAIL — {total_pct:.1f}% < "
              f"--fail-under {args.fail_under:.1f}%")
        return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
