"""The tunable-knob space: typed, bounded dimensions over serving policy.

The system's serving behaviour is governed by a dozen interacting knobs
spread across four subsystems — batch forming (``repro.serve.batcher``),
online rebalancing (``repro.balance``), replication (``repro.replicate``),
membership-filter routing (``repro.route``) — plus the index's own
push-pull trigger and the durable tier's checkpoint budget.  Before this
module each consumer ingested its knobs ad hoc (CLI flags with their own
defaults, constructor keywords, per-benchmark constants), which made two
things impossible: expressing "one configuration" as a value that can be
searched over, and detecting when two sources disagree about the same
knob.

:class:`ConfigSpace` reifies every knob as a :class:`Knob` — a typed,
bounded dimension with a default matching the shipped behaviour — and a
*configuration* is a plain ``{knob name: value}`` dict covering every
dimension.  The space provides:

* :meth:`ConfigSpace.default_config` — the shipped defaults (a default
  config must reproduce pre-tuner behaviour byte-for-byte);
* :meth:`ConfigSpace.validate` — type/bound checking with loud errors;
* :meth:`ConfigSpace.neighbors` — the single-knob refinements that form
  the edges of the offline strategy tree (``repro.tune.search``);
* :meth:`ConfigSpace.from_args` — the one ingestion path for CLI flags
  and tuned profiles, raising :class:`KnobConflict` when two sources
  disagree (the historical bug: ``serve --rebalance-ratio`` without
  ``--rebalance`` was silently ignored, while ``sweep`` dropped the flag
  with a different message).

Everything here is host-side control-plane data: no charges, no
randomness, and every method is a pure function of its inputs, so the
search harness built on top stays deterministic under a seed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

__all__ = [
    "Knob",
    "KnobConflict",
    "ConfigSpace",
    "Resolution",
    "default_space",
]


class KnobConflict(ValueError):
    """Two configuration sources disagree about one knob's value."""


@dataclass(frozen=True)
class Knob:
    """One tunable dimension: name, type, bounds, shipped default.

    ``kind`` is ``"float"``, ``"int"``, ``"bool"`` or ``"choice"``.
    Numeric knobs carry ``lo``/``hi`` bounds and a multiplicative
    refinement ``step`` (the strategy tree refines by multiplying or
    dividing, then clamping); choice knobs enumerate ``choices``.
    """

    name: str
    kind: str
    default: object
    lo: float | None = None
    hi: float | None = None
    choices: tuple = ()
    step: float = 2.0
    doc: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("float", "int", "bool", "choice"):
            raise ValueError(f"knob {self.name}: unknown kind {self.kind!r}")
        if self.kind in ("float", "int"):
            if self.lo is None or self.hi is None or not self.lo <= self.hi:
                raise ValueError(f"knob {self.name}: need lo <= hi bounds")
            if self.step <= 1.0:
                raise ValueError(f"knob {self.name}: step must be > 1")
        if self.kind == "choice" and (len(self.choices) < 2
                                      or self.default not in self.choices):
            raise ValueError(f"knob {self.name}: bad choices {self.choices!r}")

    # ------------------------------------------------------------------
    def coerce(self, value):
        """Parse/clamp-check ``value`` into this knob's type (no clamping
        — out-of-bounds raises, so a typo'd profile fails loudly)."""
        if self.kind == "bool":
            if isinstance(value, bool):
                return value
            raise ValueError(f"knob {self.name}: expected bool, got {value!r}")
        if self.kind == "choice":
            if value not in self.choices:
                raise ValueError(
                    f"knob {self.name}: {value!r} not in {self.choices}")
            return value
        v = float(value)
        if self.kind == "int":
            if v != int(v):
                raise ValueError(f"knob {self.name}: expected int, got {value!r}")
            v = int(v)
        if not self.lo <= v <= self.hi:
            raise ValueError(
                f"knob {self.name}: {v!r} outside [{self.lo}, {self.hi}]")
        return v

    def clamp(self, value):
        """Clamp a numeric value into bounds (refinement helper)."""
        if self.kind == "int":
            return int(min(self.hi, max(self.lo, round(value))))
        return float(min(self.hi, max(self.lo, value)))

    def refinements(self, value) -> list:
        """Candidate single-knob moves away from ``value``, in a fixed
        order (down first, then up; False before True; choices in
        declaration order).  No-ops are dropped."""
        if self.kind == "bool":
            return [not value]
        if self.kind == "choice":
            return [c for c in self.choices if c != value]
        out = []
        for cand in (self.clamp(value / self.step),
                     self.clamp(value * self.step)):
            if cand != value and cand not in out:
                out.append(cand)
        return out


# The shipped defaults mirror the pre-tuner behaviour of each consumer:
# AdaptiveBatchPolicy(overhead_target=0.1), BalanceConfig(), the CLI's
# --fixed-batch 64 / --write-policy write-all, PIMZdTreeConfig's
# pull_imbalance_factor=3.0, RouteFilterSet's DEFAULT_FPR and
# DurableStore's budget_fraction=0.05.  A default config therefore
# reproduces existing runs byte-for-byte.
_DEFAULT_KNOBS = (
    Knob("batch.policy", "choice", "adaptive",
         choices=("adaptive", "fixed"), doc="batch-size policy"),
    Knob("batch.overhead_target", "float", 0.1, lo=0.02, hi=0.4, step=2.0,
         doc="adaptive policy: fixed-overhead share of batch service time"),
    Knob("batch.fixed", "int", 64, lo=1, hi=4096, step=4.0,
         doc="fixed policy: constant batch cap"),
    Knob("rebalance.enabled", "bool", False,
         doc="step the online rebalancer between batches"),
    Knob("rebalance.ratio", "float", 1.5, lo=1.1, hi=4.0, step=1.3,
         doc="max/mean EWMA heat ratio that trips migration"),
    Knob("rebalance.gini", "float", 0.35, lo=0.1, hi=0.8, step=1.5,
         doc="EWMA heat Gini that trips migration"),
    Knob("rebalance.budget_words", "float", 65536.0, lo=4096.0,
         hi=1048576.0, step=4.0, doc="word budget per migration invocation"),
    Knob("rebalance.budget_fraction", "float", 0.05, lo=0.01, hi=0.3,
         step=2.0, doc="rebalance time budget as a fraction of service time"),
    Knob("pushpull.pull_factor", "float", 3.0, lo=1.0, hi=16.0, step=2.0,
         doc="push-pull trigger: load-imbalance factor that flips a round "
             "from push to pull"),
    Knob("replicate.k", "int", 1, lo=1, hi=4, step=2.0,
         doc="chunk copies incl. the primary (1 = no replication)"),
    Knob("replicate.write_policy", "choice", "write-all",
         choices=("write-all", "primary-async"), doc="replica write policy"),
    Knob("route.enabled", "bool", False,
         doc="host-resident membership filters pruning provably-empty sends"),
    Knob("route.fpr", "float", 0.01, lo=0.001, hi=0.2, step=4.0,
         doc="Bloom false-positive-rate target"),
    Knob("checkpoint.budget_fraction", "float", 0.05, lo=0.01, hi=0.3,
         step=2.0, doc="checkpoint time budget as a fraction of service time"),
)


# CLI flag -> knob wiring shared by serve/faults/sweep.  ``flag`` is the
# argparse dest; ``explicit`` decides whether the user actually passed it
# (None-default flags: not-None; store_true flags: True).
_ARG_KNOBS = (
    ("policy", "batch.policy"),
    ("overhead_target", "batch.overhead_target"),
    ("fixed_batch", "batch.fixed"),
    ("rebalance", "rebalance.enabled"),
    ("rebalance_ratio", "rebalance.ratio"),
    ("rebalance_gini", "rebalance.gini"),
    ("rebalance_budget_words", "rebalance.budget_words"),
    ("rebalance_budget", "rebalance.budget_fraction"),
    ("pull_factor", "pushpull.pull_factor"),
    ("replicate", "replicate.k"),
    ("write_policy", "replicate.write_policy"),
    ("route_filter", "route.enabled"),
    ("route_fpr", "route.fpr"),
    ("checkpoint_budget", "checkpoint.budget_fraction"),
)

# Knobs that only *refine* an enabled mechanism: passing one explicitly
# while its gate is off is a conflict, not a silent no-op.
_REQUIRES = {
    "batch.overhead_target": ("batch.policy", "adaptive"),
    "batch.fixed": ("batch.policy", "fixed"),
    "rebalance.ratio": ("rebalance.enabled", True),
    "rebalance.gini": ("rebalance.enabled", True),
    "rebalance.budget_words": ("rebalance.enabled", True),
    "rebalance.budget_fraction": ("rebalance.enabled", True),
    "route.fpr": ("route.enabled", True),
}


@dataclass
class Resolution:
    """A resolved configuration plus where each knob's value came from."""

    config: dict
    sources: dict = field(default_factory=dict)  # knob -> default|profile|flag

    def non_default(self) -> dict:
        return {k: v for k, v in self.config.items()
                if self.sources.get(k, "default") != "default"}


class ConfigSpace:
    """The ordered set of tunable knobs (see module docstring)."""

    def __init__(self, knobs: tuple[Knob, ...] = _DEFAULT_KNOBS) -> None:
        self.knobs: tuple[Knob, ...] = tuple(knobs)
        self.by_name: dict[str, Knob] = {k.name: k for k in self.knobs}
        if len(self.by_name) != len(self.knobs):
            raise ValueError("duplicate knob names")

    # ------------------------------------------------------------------
    def default_config(self) -> dict:
        return {k.name: k.default for k in self.knobs}

    def validate(self, config: dict) -> dict:
        """Coerce + bound-check every entry; returns a full config dict
        (missing knobs fall back to their defaults; unknown names raise)."""
        unknown = sorted(set(config) - set(self.by_name))
        if unknown:
            raise ValueError(f"unknown knob(s): {', '.join(unknown)}")
        out = {}
        for k in self.knobs:
            out[k.name] = (k.coerce(config[k.name]) if k.name in config
                           else k.default)
        return out

    def canonical_key(self, config: dict) -> str:
        """Canonical identity of a configuration (sorted-key JSON)."""
        return json.dumps(self.validate(config), sort_keys=True,
                          separators=(",", ":"))

    # ------------------------------------------------------------------
    def neighbors(self, config: dict, names: tuple[str, ...] | None = None
                  ) -> list[tuple[str, object, dict]]:
        """Single-knob refinements of ``config`` in deterministic order.

        Returns ``(knob name, new value, new config)`` triples, iterating
        knobs in declaration order (restricted to ``names`` when given)
        and each knob's refinements in their fixed order.  Refinements of
        a gated knob whose gate is off are skipped — they cannot change
        behaviour, and evaluating them would bloat the Pareto front with
        objective-identical nodes.
        """
        out = []
        for knob in self.knobs:
            if names is not None and knob.name not in names:
                continue
            gate = _REQUIRES.get(knob.name)
            if gate is not None and config[gate[0]] != gate[1]:
                continue
            if (knob.name == "replicate.write_policy"
                    and config["replicate.k"] < 2):
                continue  # write policy is inert without replicas
            for value in knob.refinements(config[knob.name]):
                child = dict(config)
                child[knob.name] = value
                out.append((knob.name, value, child))
        return out

    # ------------------------------------------------------------------
    def from_args(self, args, profile: dict | None = None) -> Resolution:
        """The single knob-ingestion path for CLI subcommands.

        Precedence is *not* silent: defaults < profile < explicit flags,
        but an explicit flag that contradicts the profile raises
        :class:`KnobConflict` (equal values are fine — restating a
        profile value is harmless), and an explicitly-passed refinement
        knob whose gate mechanism is off raises too (the historical
        silently-ignored ``--rebalance-ratio`` bug).

        ``args`` is an ``argparse.Namespace`` whose knob-backed flags
        default to ``None`` (store_true gates default ``False``);
        ``profile`` is the ``"config"`` block of a tuned-profile JSON.
        """
        config = self.default_config()
        sources = {name: "default" for name in config}

        if profile:
            for name, value in sorted(profile.items()):
                knob = self.by_name.get(name)
                if knob is None:
                    raise ValueError(f"profile sets unknown knob {name!r}")
                config[name] = knob.coerce(value)
                sources[name] = "profile"

        explicit: dict[str, object] = {}
        for flag, name in _ARG_KNOBS:
            if not hasattr(args, flag):
                continue
            value = getattr(args, flag)
            knob = self.by_name[name]
            if knob.kind == "bool":
                if not value:  # store_true gate left at its default
                    continue
            elif value is None:
                continue
            explicit[name] = knob.coerce(value)

        for name, value in explicit.items():
            if sources[name] == "profile" and config[name] != value:
                raise KnobConflict(
                    f"knob {name}: profile says {config[name]!r} but the "
                    f"command line says {value!r} — drop one source")
            config[name] = value
            sources[name] = "flag"

        for name, (gate, want) in _REQUIRES.items():
            if sources[name] == "flag" and config[gate] != want:
                raise KnobConflict(
                    f"knob {name} was passed explicitly but requires "
                    f"{gate}={want!r} (current: {config[gate]!r})")
        if (sources["replicate.write_policy"] == "flag"
                and config["replicate.k"] < 2):
            raise KnobConflict(
                "knob replicate.write_policy was passed explicitly but "
                "requires replicate.k >= 2 (pass --replicate K)")
        return Resolution(config=config, sources=sources)


def default_space() -> ConfigSpace:
    """The shipped :class:`ConfigSpace` (a fresh instance each call)."""
    return ConfigSpace()
