"""Offline strategy-tree policy search over the serving config space.

The search is a seeded, deterministic best-first expansion of a tree of
configurations (the delphyne-style strategy-tree idiom named in the
ROADMAP): the root is the shipped default config, every edge is a
single-knob refinement (:meth:`ConfigSpace.neighbors`), and each node is
scored by one *cheap short-horizon simulation* — a small open-loop serve
run of the target workload class through the measured adapter, exactly
the machinery ``repro serve`` uses, just scaled down.

Candidates of one generation are independent, so they evaluate in
parallel over a multiprocessing pool (the same fork-with-spawn-fallback
sharding ``run_sweep`` uses; ``procs <= 1`` runs inline).  Because the
expansion order is fixed by knob declaration order and ``pool.map``
preserves input order, the visit order — and therefore the emitted
profile — is byte-identical across repeat runs with the same seed,
whatever the worker scheduling.

Branches are pruned on a **(goodput, p99, comm_words) Pareto front**:
after each generation, a child that is dominated by any evaluated node
(another config with goodput ≥, p99 ≤ and comm ≤, strictly better in at
least one) is dead — its refinements are never generated.  The surviving
front is beam-capped to bound the tree's width.  The winner is the
lexicographic best of the front (max goodput, then min p99, then min
comm, then canonical key as the final deterministic tiebreak), and
:func:`profile_doc` packages it as a **tuned profile** — a JSON document
``repro serve --profile`` / ``sweep --profile`` load through
:meth:`ConfigSpace.from_args`.

Three workload classes ship with the search (:data:`WORKLOADS`):
``uniform`` (Poisson arrivals on uniform data), ``varden`` (the
clustered Varden distribution whose natural skew hot-spots modules) and
``diurnal`` (diurnal arrival replay with gold/silver/bronze tenants).
"""

from __future__ import annotations

import json
import time
import traceback
from dataclasses import dataclass, field

from .space import ConfigSpace, default_space

__all__ = [
    "WORKLOADS",
    "DEFAULT_SEARCH_KNOBS",
    "TuneNode",
    "TuneResult",
    "dominates",
    "pareto_front",
    "evaluate_config",
    "search",
    "profile_doc",
    "profile_json",
    "load_profile",
]

PROFILE_FORMAT = "repro.tune/profile-1"

# One entry per workload class the tuner emits a profile for.
WORKLOADS: dict[str, dict] = {
    "uniform": {
        "dataset": "uniform",
        "arrival": "poisson",
        "mix": {"knn": 0.7, "bc": 0.15, "bf": 0.1, "insert": 0.05},
        "tenants": None,
        "index": "pim",
    },
    "varden": {
        "dataset": "varden",
        "arrival": "poisson",
        "mix": {"knn": 0.6, "bc": 0.25, "bf": 0.1, "insert": 0.05},
        "tenants": None,
        "index": "pim",
    },
    "diurnal": {
        "dataset": "uniform",
        "arrival": "diurnal",
        "mix": {"knn": 0.7, "bc": 0.1, "bf": 0.1, "insert": 0.1},
        "tenants": {"gold": 4.0, "silver": 2.0, "bronze": 1.0},
        "index": "pim",
    },
}

# The default refinable subset: every knob a short-horizon serve run can
# actually observe.  checkpoint.budget_fraction needs a durable store
# attached (the evaluator serves memory-only), so refining it would only
# mint objective-identical siblings.
DEFAULT_SEARCH_KNOBS = (
    "batch.policy",
    "batch.overhead_target",
    "batch.fixed",
    "rebalance.enabled",
    "rebalance.ratio",
    "rebalance.budget_fraction",
    "pushpull.pull_factor",
    "replicate.k",
    "route.enabled",
    "route.fpr",
)

_OBJECTIVES = ("goodput", "p99_s", "comm_words")


@dataclass
class TuneNode:
    """One candidate configuration in the strategy tree."""

    key: str                 # canonical config key (node identity)
    config: dict
    generation: int
    parent: str | None = None
    knob: str | None = None  # the single knob refined from the parent
    value: object = None
    objectives: dict | None = None
    pruned: bool = False
    error: str | None = None

    def to_dict(self) -> dict:
        return {
            "generation": self.generation,
            "parent": self.parent,
            "knob": self.knob,
            "value": self.value,
            "objectives": self.objectives,
            "pruned": self.pruned,
            "error": self.error,
        }


@dataclass
class TuneResult:
    """A finished search: every node, the front, the winner."""

    workload: str
    seed: int
    params: dict
    nodes: dict[str, TuneNode]
    visit_order: list[str]
    front: list[str]
    best: str
    root: str
    wall_s: float = 0.0
    space: ConfigSpace = field(default_factory=default_space, repr=False)

    @property
    def best_node(self) -> TuneNode:
        return self.nodes[self.best]

    @property
    def baseline(self) -> TuneNode:
        return self.nodes[self.root]

    def table(self) -> str:
        base, best = self.baseline.objectives, self.best_node.objectives
        lines = [
            f"workload {self.workload}: {len(self.visit_order)} configs "
            f"evaluated, {len(self.front)} on the Pareto front "
            f"({self.wall_s:.1f}s wall)",
            f"{'':16s} {'goodput':>12} {'p99':>12} {'comm words':>14}",
            f"{'default':16s} {base['goodput']:>12.1f} "
            f"{base['p99_s'] * 1e3:>10.3f}ms {base['comm_words']:>14,.0f}",
            f"{'tuned':16s} {best['goodput']:>12.1f} "
            f"{best['p99_s'] * 1e3:>10.3f}ms {best['comm_words']:>14,.0f}",
        ]
        tuned = {k: v for k, v in self.best_node.config.items()
                 if v != self.space.default_config()[k]}
        lines.append("tuned knobs: " + (", ".join(
            f"{k}={v}" for k, v in sorted(tuned.items())) or "(defaults)"))
        return "\n".join(lines)


# ======================================================================
# candidate evaluation (module-level so it pickles under spawn)
# ======================================================================
def evaluate_config(spec: dict) -> dict:
    """Score one configuration with a short-horizon serve run.

    ``spec`` keys: ``workload``, ``config``, ``seed``, ``n``,
    ``n_modules``, ``requests``, ``rate``, ``k``, ``deadline_s``,
    ``queue_depth``.  Returns the objective dict — everything in and out
    is picklable, mirroring :func:`repro.serve.sweep.run_shard`.
    """
    import math

    from ..eval.experiments import _dataset
    from ..eval.harness import make_adapter
    from ..serve import AdmissionQueue, ServeLoop, make_requests
    from ..workloads import (bursty_arrivals, diurnal_arrivals,
                             poisson_arrivals)
    from .apply import apply_serving_config, make_index_config

    wl = WORKLOADS[spec["workload"]]
    config = spec["config"]
    seed = int(spec["seed"])
    n = int(spec["n"])
    n_modules = int(spec["n_modules"])

    data = _dataset(wl["dataset"], n, seed)
    arrival_fn = {"poisson": poisson_arrivals, "bursty": bursty_arrivals,
                  "diurnal": diurnal_arrivals}[wl["arrival"]]
    arrivals = arrival_fn(float(spec["rate"]), int(spec["requests"]),
                          seed=seed + 1)
    requests = make_requests(
        data, arrivals, mix=wl["mix"], k=int(spec.get("k", 10)),
        deadline_s=float(spec.get("deadline_s", math.inf)), seed=seed + 2,
        tenants=wl["tenants"])
    idx_cfg = make_index_config(config, kind=wl["index"], n_points=len(data),
                                n_modules=n_modules)
    adapter = make_adapter(wl["index"], data, n_modules=n_modules, seed=seed,
                           config=idx_cfg)
    parts = apply_serving_config(adapter, config, filter_seed=seed)
    loop = ServeLoop(
        adapter,
        AdmissionQueue(int(spec.get("queue_depth", 1024)),
                       tenants=wl["tenants"]),
        parts["policy"], rebalancer=parts["rebalancer"])
    stats = loop.run(requests).stats
    total = adapter.system.stats.total
    return {
        "goodput": float(stats.goodput),
        "p99_s": float(stats.latency["p99"]),
        "comm_words": float(total.comm_words),
        "throughput": float(stats.throughput),
        "p50_s": float(stats.latency["p50"]),
        "n_done": int(stats.n_done),
        "makespan_s": float(stats.makespan_s),
    }


def _evaluate_trapped(spec: dict) -> dict:
    """Worker wrapper reifying failures as data (the sweep pattern)."""
    try:
        return evaluate_config(spec)
    except Exception as exc:  # noqa: BLE001 - surfaced on the node
        return {"eval_error": f"{type(exc).__name__}: {exc}",
                "worker_traceback": traceback.format_exc()}


def _evaluate_batch(specs: list[dict], procs: int) -> list[dict]:
    """Evaluate candidate specs, pooled when ``procs > 1`` (order kept)."""
    if not specs:
        return []
    if procs <= 1 or len(specs) == 1:
        return [_evaluate_trapped(s) for s in specs]
    import multiprocessing as mp

    try:
        ctx = mp.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        ctx = mp.get_context("spawn")
    with ctx.Pool(processes=min(procs, len(specs))) as pool:
        return pool.map(_evaluate_trapped, specs)


# ======================================================================
# Pareto machinery
# ======================================================================
def dominates(a: dict, b: dict) -> bool:
    """Does objective vector ``a`` dominate ``b``?  Goodput is maximised,
    p99 and comm words are minimised; strict in at least one."""
    ge = (a["goodput"] >= b["goodput"] and a["p99_s"] <= b["p99_s"]
          and a["comm_words"] <= b["comm_words"])
    gt = (a["goodput"] > b["goodput"] or a["p99_s"] < b["p99_s"]
          or a["comm_words"] < b["comm_words"])
    return ge and gt


def pareto_front(nodes: list[TuneNode]) -> list[TuneNode]:
    """The non-dominated subset of ``nodes`` (evaluated ones only)."""
    scored = [n for n in nodes if n.objectives is not None]
    return [n for n in scored
            if not any(dominates(m.objectives, n.objectives)
                       for m in scored if m is not n)]


def _rank_key(node: TuneNode) -> tuple:
    o = node.objectives
    return (-o["goodput"], o["p99_s"], o["comm_words"], node.key)


# ======================================================================
# the search
# ======================================================================
def search(workload: str, *, seed: int = 7, n: int = 4000,
           n_modules: int = 8, requests: int = 240, rate: float | None = None,
           load: float = 1.0, k: int = 10, deadline_ms: float | None = None,
           generations: int = 2, beam: int = 4, procs: int = 1,
           knobs: tuple[str, ...] | None = None,
           space: ConfigSpace | None = None,
           queue_depth: int = 1024) -> TuneResult:
    """Run the strategy-tree search for one workload class.

    ``rate=None`` calibrates the offered rate once against the
    default-config adapter (``load`` × measured capacity) — calibration
    is deterministic, so the whole search is a pure function of its
    arguments.  ``procs`` only changes wall-clock, never the result.
    """
    import math

    if workload not in WORKLOADS:
        raise ValueError(f"unknown workload {workload!r} "
                         f"(have {sorted(WORKLOADS)})")
    if generations < 0 or beam < 1:
        raise ValueError("need generations >= 0 and beam >= 1")
    space = space if space is not None else default_space()
    knobs = tuple(knobs) if knobs is not None else DEFAULT_SEARCH_KNOBS
    unknown = sorted(set(knobs) - set(space.by_name))
    if unknown:
        raise ValueError(f"unknown search knob(s): {', '.join(unknown)}")

    t0 = time.perf_counter()
    wl = WORKLOADS[workload]
    if rate is None:
        from ..eval.experiments import _dataset
        from ..eval.harness import make_adapter
        from ..serve import calibrate_capacity

        data = _dataset(wl["dataset"], n, seed)
        probe = make_adapter(wl["index"], data, n_modules=n_modules,
                             seed=seed)
        rate = load * calibrate_capacity(probe, data, k=k, seed=seed)

    deadline_s = deadline_ms * 1e-3 if deadline_ms is not None else math.inf
    base_spec = {
        "workload": workload, "seed": int(seed), "n": int(n),
        "n_modules": int(n_modules), "requests": int(requests),
        "rate": float(rate), "k": int(k), "deadline_s": float(deadline_s),
        "queue_depth": int(queue_depth),
    }

    def _spec(config: dict) -> dict:
        return {**base_spec, "config": config}

    def _settle(batch: list[TuneNode], results: list[dict]) -> None:
        for node, res in zip(batch, results):
            if "eval_error" in res:
                node.error = res["eval_error"]
                node.pruned = True
            else:
                node.objectives = res
            visit_order.append(node.key)

    root_config = space.default_config()
    root_key = space.canonical_key(root_config)
    root = TuneNode(key=root_key, config=root_config, generation=0)
    nodes: dict[str, TuneNode] = {root_key: root}
    visit_order: list[str] = []
    _settle([root], _evaluate_batch([_spec(root_config)], procs))
    if root.objectives is None:
        raise RuntimeError(f"baseline evaluation failed: {root.error}")

    frontier = [root]
    for gen in range(1, generations + 1):
        children: list[TuneNode] = []
        for parent in frontier:
            for name, value, cfg in space.neighbors(parent.config, knobs):
                key = space.canonical_key(cfg)
                if key in nodes:
                    continue
                child = TuneNode(key=key, config=cfg, generation=gen,
                                 parent=parent.key, knob=name, value=value)
                nodes[key] = child
                children.append(child)
        if not children:
            break
        _settle(children, _evaluate_batch([_spec(c.config) for c in children],
                                          procs))
        front = pareto_front(list(nodes.values()))
        front_keys = {f.key for f in front}
        for node in nodes.values():
            if node.objectives is not None:
                node.pruned = node.key not in front_keys
        survivors = [c for c in children if c.key in front_keys]
        survivors.sort(key=_rank_key)
        frontier = survivors[:beam]
        if not frontier:
            break

    front = sorted(pareto_front(list(nodes.values())), key=_rank_key)
    best = min((nd for nd in nodes.values() if nd.objectives is not None),
               key=_rank_key)
    return TuneResult(
        workload=workload, seed=int(seed), params=base_spec, nodes=nodes,
        visit_order=visit_order, front=[f.key for f in front], best=best.key,
        root=root_key, wall_s=time.perf_counter() - t0, space=space,
    )


# ======================================================================
# tuned profiles
# ======================================================================
def profile_doc(result: TuneResult) -> dict:
    """The tuned-profile document for one search result.

    Deterministic by construction: no timestamps, no wall-clock, and the
    visit order is included so the determinism property (same seed ⇒
    identical node-visit order) is checkable from the artifact alone.
    """
    space = result.space
    defaults = space.default_config()
    best = result.best_node
    base = result.baseline
    improvement = {
        "goodput": (best.objectives["goodput"] / base.objectives["goodput"]
                    if base.objectives["goodput"] > 0 else None),
        "p99": (base.objectives["p99_s"] / best.objectives["p99_s"]
                if best.objectives["p99_s"] > 0 else None),
        "comm_words": (base.objectives["comm_words"]
                       / best.objectives["comm_words"]
                       if best.objectives["comm_words"] > 0 else None),
    }
    return {
        "format": PROFILE_FORMAT,
        "workload": result.workload,
        "seed": result.seed,
        "params": dict(result.params),
        "config": dict(best.config),
        "tuned": {k: v for k, v in sorted(best.config.items())
                  if v != defaults[k]},
        "objectives": dict(best.objectives),
        "baseline": dict(base.objectives),
        "improvement": improvement,
        "evaluated": len(result.visit_order),
        "pareto_front": list(result.front),
        "visit_order": list(result.visit_order),
    }


def profile_json(result: TuneResult) -> str:
    """Canonical profile JSON: byte-identical for identical searches.
    Non-finite floats (an unset deadline) serialise as ``null``."""
    from ..obs.export import sanitize_json

    return json.dumps(sanitize_json(profile_doc(result)), indent=2,
                      sort_keys=True, allow_nan=False) + "\n"


def load_profile(doc: dict, space: ConfigSpace | None = None) -> dict:
    """Validate a loaded profile document; returns its config dict."""
    space = space if space is not None else default_space()
    if doc.get("format") != PROFILE_FORMAT:
        raise ValueError(
            f"not a tuned profile (format {doc.get('format')!r}, "
            f"want {PROFILE_FORMAT!r})")
    return space.validate(doc["config"])
