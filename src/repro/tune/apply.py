"""Turn one configuration dict into live serving objects.

Every consumer of the knob space — ``repro serve``/``faults``/``sweep``,
the offline search harness's evaluator and the tuning benchmarks — builds
its batch policy, rebalancer, replica set and route filters through these
helpers, so a configuration means exactly one thing everywhere.  A
default config produces objects byte-identical to the pre-tuner code
paths (``AdaptiveBatchPolicy()``, no rebalancer, no replicas, no
filters), which is what keeps the serve goldens green.
"""

from __future__ import annotations

__all__ = [
    "make_policy",
    "make_index_config",
    "make_rebalancer",
    "attach_replication",
    "attach_route_filters",
    "apply_serving_config",
]

_PULL_FACTOR_DEFAULT = 3.0  # PIMZdTreeConfig.pull_imbalance_factor


def _pim_tree(adapter):
    """The adapter's PIM tree, or ``None`` for baseline adapters.

    The zd/pkd baselines also expose a ``tree`` attribute, so the guard
    checks for the PIM system handle the tree-level mechanisms need
    (historically ``--rebalance --index zd`` crashed with an
    AttributeError instead of a usage error).
    """
    tree = getattr(adapter, "tree", None)
    return tree if tree is not None and hasattr(tree, "system") else None


def make_policy(config: dict):
    """Batch policy per ``batch.*`` (the pre-tuner constructors verbatim)."""
    from ..serve import AdaptiveBatchPolicy, FixedBatchPolicy

    if config["batch.policy"] == "fixed":
        return FixedBatchPolicy(int(config["batch.fixed"]))
    return AdaptiveBatchPolicy(
        overhead_target=float(config["batch.overhead_target"]))


def make_index_config(config: dict, *, kind: str, n_points: int,
                      n_modules: int, sim_mode: str | None = None):
    """Index config carrying the push-pull trigger, or ``None``.

    Returns ``None`` when every index-level knob sits at its default so
    the adapter takes its historical construction path (byte-identical
    goldens); otherwise builds the variant config with
    ``pull_imbalance_factor`` overridden.
    """
    pf = float(config["pushpull.pull_factor"])
    if pf == _PULL_FACTOR_DEFAULT:
        return None
    from ..core import skew_resistant, throughput_optimized

    if kind == "pim-skew":
        cfg = skew_resistant(n_modules, pull_imbalance_factor=pf)
    else:
        cfg = throughput_optimized(n_points, n_modules,
                                   pull_imbalance_factor=pf)
    if sim_mode is not None:
        cfg = cfg.with_overrides(sim_mode=sim_mode)
    return cfg


def make_rebalancer(adapter, config: dict):
    """Online rebalancer per ``rebalance.*`` (``None`` when disabled)."""
    if not config["rebalance.enabled"]:
        return None
    tree = _pim_tree(adapter)
    if tree is None:
        raise ValueError("rebalancing requires a pim index adapter")
    from ..balance import BalanceConfig, OnlineRebalancer

    cfg = BalanceConfig(
        ratio_threshold=float(config["rebalance.ratio"]),
        gini_threshold=float(config["rebalance.gini"]),
        budget_words=float(config["rebalance.budget_words"]),
        budget_fraction=float(config["rebalance.budget_fraction"]),
    )
    return OnlineRebalancer(tree, cfg)


def attach_replication(adapter, config: dict, *,
                       staleness_s: float = 1e-3):
    """Install K-way replicas per ``replicate.*``; returns the install
    summary, or ``None`` when ``replicate.k < 2`` (no replication)."""
    k = int(config["replicate.k"])
    if k < 2:
        return None
    tree = _pim_tree(adapter)
    if tree is None:
        raise ValueError("replication requires a pim index adapter")
    from ..replicate import ReplicaSet, ReplicationConfig

    cfg = ReplicationConfig(k=k,
                            write_policy=config["replicate.write_policy"],
                            staleness_bound_s=float(staleness_s))
    return ReplicaSet(tree, cfg).replicate_all()


def attach_route_filters(adapter, config: dict, *, seed: int = 0):
    """Install membership-filter routing per ``route.*``; returns the
    filter summary, or ``None`` when disabled."""
    if not config["route.enabled"]:
        return None
    tree = _pim_tree(adapter)
    if tree is None:
        raise ValueError("route filters require a pim index adapter")
    from ..route import RouteFilterSet

    rf = RouteFilterSet(tree, fpr=float(config["route.fpr"]), seed=seed)
    return rf.summary()


def apply_serving_config(adapter, config: dict, *,
                         staleness_s: float = 1e-3,
                         filter_seed: int = 0) -> dict:
    """Attach every tree-level mechanism the config enables.

    Order matters and mirrors the CLI: replication first (filters index
    replica copies too), then route filters, then the rebalancer.
    Returns ``{"policy", "rebalancer", "replication", "filters"}`` —
    the first two are live objects, the last two install summaries (or
    ``None``).
    """
    replication = attach_replication(adapter, config,
                                     staleness_s=staleness_s)
    filters = attach_route_filters(adapter, config, seed=filter_seed)
    rebalancer = make_rebalancer(adapter, config)
    return {
        "policy": make_policy(config),
        "rebalancer": rebalancer,
        "replication": replication,
        "filters": filters,
    }
