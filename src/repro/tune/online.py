"""Online self-tuning: phase-boundary adaptation of whitelisted knobs.

:class:`OnlineController` is the online variant of the tuner.  The serve
loop hands it control **between batches only** — the simulator's rounds
are globally synchronised, so "between batches" is exactly "never
mid-round" — and once per *phase* (a fixed window of ``window`` dispatched
batches) it reads the run's own observability state (queue fill, the
rebalancer's hotness-EWMA imbalance, the route filters' measured
false-positive share — all of it derived from the same counters the
``repro.obs`` timeline exports) and nudges at most one value per
whitelisted knob.

The whitelist is closed: only ``batch.overhead_target``,
``rebalance.budget_fraction`` and ``route.fpr`` are adaptable — the knobs
whose live mutation is semantics-free (batch sizing and budget gating
change *when* work happens, never its answers; an FPR change rebuilds the
filters bit-deterministically from residency).  Structural knobs (replica
count, rebalance thresholds, push-pull trigger) stay offline-only.

Reproducibility rules:

* **Hysteresis** — each signal has a dead band (``*_hi`` / ``*_lo``);
  inside it the knob holds.  A changed knob then *cools down* for
  ``cooldown`` phases before it may move again, so the controller cannot
  oscillate against its own effect.
* **Determinism** — every signal is a pure function of virtual-clock
  state; no wall clock, no randomness.  Two identical runs adapt
  identically.
* **Inertness** — an empty whitelist makes :attr:`active` false and the
  loop never calls in; with a whitelist but no tripped signal the adapt
  call performs no charged work, so the measured step is zero simulated
  seconds and the clock does not move.

Every decision is recorded in :attr:`history` and summarised by
:meth:`audit`, which the loop attaches to ``LatencyStats.config`` so an
adapted run is auditable after the fact.
"""

from __future__ import annotations

import dataclasses

from .space import ConfigSpace, default_space

__all__ = ["WHITELIST_DEFAULT", "ADAPTABLE_KNOBS", "OnlineController"]

# The closed set of knobs the online controller may touch, and the
# shipped whitelist (all of them).
ADAPTABLE_KNOBS = (
    "batch.overhead_target",
    "rebalance.budget_fraction",
    "route.fpr",
)
WHITELIST_DEFAULT = ADAPTABLE_KNOBS


class OnlineController:
    """Phase-boundary knob adaptation with hysteresis (see module doc).

    Parameters
    ----------
    whitelist:
        Subset of :data:`ADAPTABLE_KNOBS` the controller may move.  An
        empty whitelist is a valid, fully inert controller.
    window:
        Batches per phase; adaptation runs only at phase boundaries.
    cooldown:
        Phases a just-moved knob must hold before moving again.
    queue_hi / queue_lo:
        Queue-fill dead band for ``batch.overhead_target`` (fill above
        ``hi`` → lower the target → bigger batches; below ``lo`` → raise
        it back toward latency).
    imbalance_hi / imbalance_lo:
        Max/mean EWMA-heat dead band for ``rebalance.budget_fraction``.
    fp_hi / fp_lo:
        Observed-vs-target false-positive ratio dead band for
        ``route.fpr`` (observed share > ``fp_hi``× target → tighten).
    min_probes:
        Minimum new filter probes in a phase before the FP share is
        considered meaningful.
    """

    def __init__(self, *, whitelist: tuple[str, ...] = WHITELIST_DEFAULT,
                 window: int = 32, cooldown: int = 2,
                 queue_hi: float = 0.5, queue_lo: float = 0.05,
                 imbalance_hi: float = 2.0, imbalance_lo: float = 1.2,
                 fp_hi: float = 2.0, fp_lo: float = 0.25,
                 min_probes: int = 64,
                 space: ConfigSpace | None = None) -> None:
        unknown = sorted(set(whitelist) - set(ADAPTABLE_KNOBS))
        if unknown:
            raise ValueError(
                f"non-adaptable knob(s) in whitelist: {', '.join(unknown)} "
                f"(adaptable: {', '.join(ADAPTABLE_KNOBS)})")
        if window < 1:
            raise ValueError("window must be >= 1 batch")
        if cooldown < 0:
            raise ValueError("cooldown must be >= 0 phases")
        if not queue_lo < queue_hi or not imbalance_lo < imbalance_hi:
            raise ValueError("dead bands need lo < hi")
        self.space = space if space is not None else default_space()
        self.whitelist = tuple(whitelist)
        self.window = int(window)
        self.cooldown = int(cooldown)
        self.queue_hi = float(queue_hi)
        self.queue_lo = float(queue_lo)
        self.imbalance_hi = float(imbalance_hi)
        self.imbalance_lo = float(imbalance_lo)
        self.fp_hi = float(fp_hi)
        self.fp_lo = float(fp_lo)
        self.min_probes = int(min_probes)
        self.history: list[dict] = []
        self.phases = 0
        self._next_at = self.window
        self._cooling: dict[str, int] = {}   # knob -> phase it last moved
        self._probe_base = (0, 0)            # (probes, fp) at last FP read

    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        """False iff the whitelist is empty (the loop then never calls)."""
        return bool(self.whitelist)

    def due(self, n_batches: int) -> bool:
        """Is a phase boundary due after ``n_batches`` dispatches?"""
        return self.active and n_batches >= self._next_at

    def _may_move(self, knob: str) -> bool:
        last = self._cooling.get(knob)
        return last is None or self.phases - last > self.cooldown

    def _record(self, knob: str, old, new, signal: float, why: str) -> None:
        self._cooling[knob] = self.phases
        self.history.append({
            "phase": self.phases, "knob": knob, "old": old, "new": new,
            "signal": round(float(signal), 6), "why": why,
        })

    # ------------------------------------------------------------------
    def adapt(self, loop) -> int:
        """One phase boundary: read signals, move tripped knobs.

        Called by the serve loop inside ``adapter.measure`` — any charged
        work (the FPR rebuild) lands on the virtual clock like rebalance
        and checkpoint steps do.  Returns the number of knobs moved.
        """
        self.phases += 1
        self._next_at += self.window
        moved = 0
        if "batch.overhead_target" in self.whitelist:
            moved += self._adapt_batch_target(loop)
        if "rebalance.budget_fraction" in self.whitelist:
            moved += self._adapt_rebalance_budget(loop)
        if "route.fpr" in self.whitelist:
            moved += self._adapt_route_fpr(loop)
        return moved

    # -- batch.overhead_target -----------------------------------------
    def _adapt_batch_target(self, loop) -> int:
        policy = loop.policy
        if not hasattr(policy, "overhead_target"):
            return 0  # fixed policy: nothing to adapt
        knob = self.space.by_name["batch.overhead_target"]
        if not self._may_move(knob.name):
            return 0
        fill = len(loop.queue) / loop.queue.depth
        cur = float(policy.overhead_target)
        if fill >= self.queue_hi:
            # Backlog: spend less of each batch on fixed overhead —
            # lower target f means larger B* and higher goodput.
            new = knob.clamp(cur / knob.step)
            why = "queue-fill high"
        elif fill <= self.queue_lo:
            # Idle: drift back toward the latency-lean default.
            new = min(knob.clamp(cur * knob.step), float(knob.default))
            why = "queue-fill low"
        else:
            return 0
        if new == cur:
            return 0
        policy.overhead_target = new
        self._record(knob.name, cur, new, fill, why)
        return 1

    # -- rebalance.budget_fraction -------------------------------------
    def _adapt_rebalance_budget(self, loop) -> int:
        reb = loop.rebalancer
        if reb is None:
            return 0
        knob = self.space.by_name["rebalance.budget_fraction"]
        if not self._may_move(knob.name):
            return 0
        ratio = float(reb.tracker.imbalance()["max_mean_ratio"])
        cur = float(reb.config.budget_fraction)
        if ratio >= self.imbalance_hi:
            new = knob.clamp(cur * knob.step)
            why = "imbalance high"
        elif ratio <= self.imbalance_lo:
            new = knob.clamp(cur / knob.step)
            why = "imbalance low"
        else:
            return 0
        if new == cur:
            return 0
        cfg = dataclasses.replace(reb.config, budget_fraction=new)
        reb.config = cfg
        # The planner shares the config object; keep it the same value
        # (budget_fraction is loop-side, but aliasing surprises nobody).
        if hasattr(reb, "planner") and hasattr(reb.planner, "config"):
            reb.planner.config = cfg
        self._record(knob.name, cur, new, ratio, why)
        return 1

    # -- route.fpr ------------------------------------------------------
    def _adapt_route_fpr(self, loop) -> int:
        rf = loop._route_filters()
        if rf is None:
            return 0
        knob = self.space.by_name["route.fpr"]
        probes, fp = int(rf.probes), int(rf.fp_probes)
        d_probes = probes - self._probe_base[0]
        d_fp = fp - self._probe_base[1]
        if d_probes < self.min_probes:
            return 0  # not enough evidence this phase; keep accumulating
        self._probe_base = (probes, fp)
        if not self._may_move(knob.name):
            return 0
        share = d_fp / d_probes
        cur = float(rf.fpr)
        if share >= self.fp_hi * cur:
            new = knob.clamp(cur / knob.step)
            why = "fp-share high"
        elif share <= self.fp_lo * cur:
            new = knob.clamp(cur * knob.step)
            why = "fp-share low"
        else:
            return 0
        if new == cur:
            return 0
        rf.fpr = new
        rf.rebuild()  # charged under phase("route"); we run inside measure
        self._record(knob.name, cur, new, share, why)
        return 1

    # ------------------------------------------------------------------
    def audit(self) -> dict:
        """The controller block of ``LatencyStats.config``."""
        return {
            "whitelist": list(self.whitelist),
            "window": self.window,
            "cooldown": self.cooldown,
            "phases": self.phases,
            "changes": len(self.history),
            "history": list(self.history),
        }
