"""repro.tune — self-tuning policy search over the serving config space.

Three layers (see DESIGN.md "Self-tuning"):

* :mod:`repro.tune.space` — :class:`ConfigSpace`, the typed, bounded
  knob dimensions and the single CLI/profile ingestion path
  (:meth:`ConfigSpace.from_args`, raising :class:`KnobConflict`);
* :mod:`repro.tune.search` — the offline strategy-tree search
  (:func:`search`) emitting seed-deterministic tuned profiles
  (:func:`profile_json`);
* :mod:`repro.tune.online` — :class:`OnlineController`, phase-boundary
  adaptation of a whitelisted knob subset with hysteresis.

:mod:`repro.tune.apply` turns a configuration dict into the live serving
objects every consumer shares.
"""

from .apply import (apply_serving_config, attach_replication,
                    attach_route_filters, make_index_config, make_policy,
                    make_rebalancer)
from .online import ADAPTABLE_KNOBS, WHITELIST_DEFAULT, OnlineController
from .search import (DEFAULT_SEARCH_KNOBS, WORKLOADS, TuneNode, TuneResult,
                     dominates, evaluate_config, load_profile, pareto_front,
                     profile_doc, profile_json, search)
from .space import ConfigSpace, Knob, KnobConflict, Resolution, default_space

__all__ = [
    "Knob",
    "KnobConflict",
    "ConfigSpace",
    "Resolution",
    "default_space",
    "make_policy",
    "make_index_config",
    "make_rebalancer",
    "attach_replication",
    "attach_route_filters",
    "apply_serving_config",
    "WORKLOADS",
    "DEFAULT_SEARCH_KNOBS",
    "TuneNode",
    "TuneResult",
    "dominates",
    "pareto_front",
    "evaluate_config",
    "search",
    "profile_doc",
    "profile_json",
    "load_profile",
    "ADAPTABLE_KNOBS",
    "WHITELIST_DEFAULT",
    "OnlineController",
]
