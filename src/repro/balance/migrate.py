"""Charged migration executor: move chunk mastership as real BSP rounds.

The UPMEM benchmarking study's central lesson is that inter-module data
movement dominates, so migration cannot be free: every relocated chunk is
billed through the ordinary charging interface — PIM cycles to pack the
shard on the source and unpack on the destination, a ``recv`` draining
the master copy to the host switch and a ``send`` installing it (plus its
L1 replica fan-out, same approximation as failover's rebuild), one BSP
round for the whole plan, and host CPU ops for the re-placement
bookkeeping.  All of it lands under the ``"rebalance"`` phase, so the
Fig. 6-style breakdown shows the rebalance tax and
:meth:`repro.obs.Timeline.reconcile` stays bit-exact.

Routing: each move re-masters the meta-node (``meta.module``) *and*
records a persistent placement override, so re-chunking the region later
keeps the chunk on its migrated module instead of snapping back to the
salted hash.  Overrides compose with failover — a dead target falls
through to the deterministic rehash (see ``PIMSystem.place``).

Fault injection is suppressed for the duration (migration runs over the
same reliable control channel as recovery), which guarantees a plan
always completes.
"""

from __future__ import annotations

from ..core.node import Layer
from .planner import MigrationPlan

__all__ = ["execute_plan"]

# Host-side re-placement + override bookkeeping per moved chunk (matches
# the failover re-placement constant, the same control-plane work).
_MIGRATE_CPU_OPS = 24
# PIM-core cycles per word to pack the shard on the source / unpack and
# re-link it on the destination (streaming copy on a weak core).
_PACK_CYCLES_PER_WORD = 1


def execute_plan(tree, plan: MigrationPlan) -> dict:
    """Execute ``plan`` against ``tree``; returns a summary dict.

    Empty plans are free: no phase is entered, no round is opened, no
    counter moves — the inert-config guarantee.
    """
    if not plan.moves:
        return {"moves": 0, "words_moved": 0.0, "mandatory_moves": 0,
                "clones": 0}
    sys = tree.system
    words_moved = 0.0
    clones = 0
    with sys.phase("rebalance"), sys.faults_suppressed():
        sys.charge_cpu(len(plan.moves) * _MIGRATE_CPU_OPS)
        with sys.round():
            for mv in plan.moves:
                meta = mv.meta
                words = meta.size_words(tree.config)
                if mv.kind == "clone":
                    # Install a *secondary copy* on dst: same pack/drain/
                    # unpack shape as a migration, but mastership (and the
                    # master copy, and its L1 fan-out) stays on src — only
                    # the chunk's read heat splits (repro.replicate).
                    sys.charge_pim(mv.src, words * _PACK_CYCLES_PER_WORD)
                    sys.recv(mv.src, words)
                    sys.charge_pim(mv.dst, words * _PACK_CYCLES_PER_WORD)
                    sys.send(mv.dst, words)
                    tree.replicas.register(meta.root.nid, mv.dst)
                    words_moved += words
                    clones += 1
                    continue
                replicas = (meta.replica_count()
                            if meta.layer == Layer.L1 else 0)
                total = words * (1 + replicas)
                # Drain the master copy off the source module...
                sys.charge_pim(mv.src, words * _PACK_CYCLES_PER_WORD)
                sys.recv(mv.src, words)
                # ...and install it (plus replica fan-out) on the dest.
                sys.charge_pim(mv.dst, words * _PACK_CYCLES_PER_WORD)
                sys.send(mv.dst, total)
                meta.module = mv.dst
                sys.set_placement_override(("meta", meta.root.nid), mv.dst)
                words_moved += total
        tree.refresh_residency()
    # Journal the moves (self-committed control records) so recovery after
    # a later crash re-pins each chunk to its migrated module and
    # re-registers each cloned secondary.
    journal = getattr(tree, "journal", None)
    if journal is not None:
        migrated = [(mv.meta.root.nid, mv.dst) for mv in plan.moves
                    if mv.kind == "migrate"]
        if migrated:
            journal.log_migrate(migrated)
        cloned = [(mv.meta.root.nid, mv.dst) for mv in plan.moves
                  if mv.kind == "clone"]
        if cloned:
            journal.log_replicate(cloned)
    return {
        "moves": len(plan.moves),
        "words_moved": float(words_moved),
        "mandatory_moves": sum(1 for mv in plan.moves if mv.mandatory),
        "clones": clones,
    }
