"""Skew-aware online rebalancing (``repro.balance``).

The paper's Fig. 9 experiments hinge on load balance across PIM modules,
and PIM-tree's skew analysis shows push-pull execution alone cannot fix a
hot *mastership* — ownership has to move.  This package acts on the
imbalance the rest of the codebase only measures:

* :class:`HotnessTracker` — EWMA of per-module load deltas with the
  shared max/mean + Gini imbalance signal (``repro.workloads.skew``);
* :class:`MigrationPlanner` + :class:`BalanceConfig` — threshold
  detector and deterministic, budget-bounded victim/destination
  selection over §3.2 meta-node chunks (over-capacity modules are
  mandatory sources);
* :func:`execute_plan` — charged migration: real BSP rounds booked under
  the ``"rebalance"`` phase, with persistent placement overrides that
  compose with fault rehash;
* :class:`OnlineRebalancer` — the observe/detect/plan/execute driver the
  serve loop runs between batches under a time-budget fraction;
* :func:`choose_destination` — capacity-aware placement for rebuild
  paths (failover routes through it);
* :func:`inert_balance` — a never-trips config, the byte-identity
  baseline used by the acceptance tests.

Driven from the CLI via ``python -m repro.cli balance``.
"""

from .hotness import HotnessTracker
from .migrate import execute_plan
from .online import OnlineRebalancer
from .planner import (
    BalanceConfig,
    MigrationMove,
    MigrationPlan,
    MigrationPlanner,
    choose_destination,
    inert_balance,
)

__all__ = [
    "BalanceConfig",
    "HotnessTracker",
    "MigrationMove",
    "MigrationPlan",
    "MigrationPlanner",
    "OnlineRebalancer",
    "choose_destination",
    "execute_plan",
    "inert_balance",
]
