"""Imbalance detection and migration planning (the control plane).

The planner turns a :class:`~repro.balance.HotnessTracker` signal into a
deterministic :class:`MigrationPlan`: which meta-nodes (the §3.2 chunks —
the unit of mastership) move off which hot modules to which cold ones,
bounded by a per-invocation word budget.  Victim selection uses the
push-pull executor's per-meta popularity counters (``MetaNode.hot_hits``)
to apportion a module's EWMA heat over its resident chunks; the hottest
chunk per module is *kept* (moving the single dominant chunk to the
coldest module would only relocate the straggler and ping-pong forever —
PIM-tree's skew argument), and the next-hottest movable chunks go to the
coldest projected destinations.

Over-capacity modules (the wired-up ``PIMModule.over_capacity`` predicate)
are *mandatory* sources: they are drained largest-chunk-first regardless
of heat, because Theorem 5.1's space bound is a correctness constraint,
not a performance preference.

Everything here is host-side control-plane arithmetic: planning charges
nothing, and a plan is a pure function of (tree, tracker state, config),
so two identical runs plan identical migrations.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "BalanceConfig",
    "MigrationMove",
    "MigrationPlan",
    "MigrationPlanner",
    "choose_destination",
    "inert_balance",
]


@dataclass(frozen=True)
class BalanceConfig:
    """Thresholds and budgets for the online rebalancer.

    The detector trips when the live modules' EWMA heat shows
    ``max/mean > ratio_threshold`` *or* ``gini > gini_threshold`` (with at
    least ``min_observed_cycles`` of total heat, so cold-start noise never
    migrates anything), or unconditionally while any module is over its
    capacity budget.  Each planner invocation moves at most ``max_moves``
    chunks and roughly ``budget_words`` words; the serve loop additionally
    caps cumulative rebalance time at ``budget_fraction`` of cumulative
    service time.
    """

    ratio_threshold: float = 1.5
    gini_threshold: float = 0.35
    min_observed_cycles: float = 1000.0
    budget_words: float = 65536.0
    budget_fraction: float = 0.05
    ewma_alpha: float = 0.3
    max_moves: int = 8
    min_keep: int = 1  # hottest chunks pinned per source module
    seed: int = 0


def inert_balance() -> BalanceConfig:
    """A config whose thresholds can never trip (the do-nothing baseline).

    Used by tests to assert the acceptance property: with an inert config
    attached, every counter and golden stays byte-identical to a run with
    no balancer at all.
    """
    return BalanceConfig(
        ratio_threshold=float("inf"),
        gini_threshold=float("inf"),
        min_observed_cycles=float("inf"),
    )


@dataclass
class MigrationMove:
    """One chunk relocation (or clone): ``meta`` moves/copies ``src`` → ``dst``.

    ``kind`` is ``"migrate"`` (mastership moves, the only kind before
    replication existed) or ``"clone"`` (a *secondary copy* is installed
    on ``dst``; mastership and the master copy stay on ``src`` — only
    read heat moves, the K-way replication answer to a single mega-hot
    chunk that migration cannot split).
    """

    meta: object  # the MetaNode being relocated
    src: int
    dst: int
    words: float  # master-copy footprint (replica fan-out billed at exec)
    heat: float  # planner's heat estimate, folded back into the tracker
    mandatory: bool = False  # capacity drain (vs heat-driven)
    kind: str = "migrate"  # "migrate" | "clone"

    def to_dict(self) -> dict:
        return {
            "root_nid": int(self.meta.root.nid),
            "src": int(self.src),
            "dst": int(self.dst),
            "words": float(self.words),
            "heat": float(self.heat),
            "mandatory": bool(self.mandatory),
            "kind": self.kind,
        }


@dataclass
class MigrationPlan:
    """A deterministic, budget-bounded set of chunk relocations."""

    moves: list[MigrationMove] = field(default_factory=list)
    reason: dict = field(default_factory=dict)  # imbalance summary at plan time

    @property
    def total_words(self) -> float:
        return float(sum(mv.words for mv in self.moves))

    def to_dict(self) -> dict:
        return {
            "moves": [mv.to_dict() for mv in self.moves],
            "total_words": self.total_words,
            "reason": dict(self.reason),
        }


class MigrationPlanner:
    """Selects victims and destinations when the imbalance detector trips."""

    def __init__(self, tree, config: BalanceConfig | None = None) -> None:
        self.tree = tree
        self.config = config if config is not None else BalanceConfig()

    # ------------------------------------------------------------------
    def should_rebalance(self, tracker) -> bool:
        """Detector: capacity pressure always trips; heat needs thresholds."""
        if self.tree.system.over_capacity_modules():
            return True
        imb = tracker.imbalance()
        if imb["total"] < self.config.min_observed_cycles:
            return False
        return (imb["max_mean_ratio"] > self.config.ratio_threshold
                or imb["gini"] > self.config.gini_threshold)

    # ------------------------------------------------------------------
    def plan(self, tracker) -> MigrationPlan:
        """Build the migration plan for the current tracker state.

        Deterministic: every choice is keyed by (metric, root nid / module
        id), never by set/dict iteration order.
        """
        cfg = self.config
        sys = self.tree.system
        dead = sys.dead_modules
        live = [mid for mid in range(sys.n_modules) if mid not in dead]
        heat = tracker.hotness.astype(np.float64).copy()
        resid = sys.residency().astype(np.float64)

        by_module: dict[int, list] = defaultdict(list)
        for meta in self.tree.metas:
            by_module[meta.module].append(meta)
        for mid in by_module:
            by_module[mid].sort(key=lambda m: (-m.hot_hits, m.root.nid))

        plan = MigrationPlan(reason=tracker.imbalance())
        moved: set[int] = set()  # root nids already claimed by a move

        def capacity_of(mid: int) -> float | None:
            cap = sys.modules[mid].capacity_words
            return float(cap) if cap is not None else None

        def pick_dst(src: int, words: float,
                     exclude: set[int] | None = None) -> int | None:
            """Coldest live module with room, by (projected heat, mid).

            ``exclude`` rules out modules already holding a copy of the
            chunk (clone destinations must add a *new* copy).
            """
            best = None
            for mid in live:
                if mid == src:
                    continue
                if exclude is not None and mid in exclude:
                    continue
                cap = capacity_of(mid)
                if cap is not None and resid[mid] + words > cap:
                    continue
                key = (heat[mid], resid[mid], mid)
                if best is None or key < best[0]:
                    best = (key, mid)
            return None if best is None else best[1]

        def heat_estimate(src: int, meta) -> float:
            chunks = by_module[src]
            hits = sum(m.hot_hits for m in chunks)
            if hits > 0:
                share = meta.hot_hits / hits
            else:
                share = 1.0 / max(1, len(chunks))
            return float(heat[src]) * share

        def record(meta, src: int, dst: int, *, mandatory: bool,
                   kind: str = "migrate", heat_moved: float | None = None
                   ) -> None:
            words = float(meta.size_words(self.tree.config))
            h = heat_estimate(src, meta) if heat_moved is None else heat_moved
            plan.moves.append(
                MigrationMove(meta, src, dst, words, h,
                              mandatory=mandatory, kind=kind)
            )
            moved.add(meta.root.nid)
            heat[src] -= h
            heat[dst] += h
            if kind == "migrate":
                resid[src] -= words  # a clone's master copy stays put
            resid[dst] += words

        # -- mandatory capacity drains (largest chunks first) -------------
        for src in sys.over_capacity_modules():
            cap = capacity_of(src)
            assert cap is not None
            for meta in sorted(
                by_module[src],
                key=lambda m: (-m.size_words(self.tree.config), m.root.nid),
            ):
                if resid[src] <= cap:
                    break
                if len(plan.moves) >= cfg.max_moves:
                    break
                if plan.moves and plan.total_words >= cfg.budget_words:
                    break
                if meta.root.nid in moved:
                    continue
                words = float(meta.size_words(self.tree.config))
                dst = pick_dst(src, words)
                if dst is None:
                    break
                record(meta, src, dst, mandatory=True)

        # -- heat-driven moves (greedy makespan reduction) ----------------
        # Only the *projected-hottest* module is ever a source: moving
        # chunks off anyone else cannot lower the straggler, and doing so
        # anyway is exactly the ping-pong the min-keep rule exists to
        # prevent.  A move is emitted only when it strictly reduces the
        # src/dst pair's max — once no such move exists the plan is done,
        # so a balanced system plans (and charges) nothing.
        #
        # With a ReplicaSet attached, the pinned hottest chunk gains a
        # remedy migration never had: *clone* it.  A migration of the
        # dominant chunk would only relocate the straggler, but a clone
        # splits its read heat across one more copy (read-any routing), so
        # when the pinned chunk is still below its k copies and the split
        # strictly lowers the pair max, the planner emits a clone move.
        reps = getattr(self.tree, "replicas", None)

        def try_clone(src: int) -> bool:
            if reps is None or not by_module[src]:
                return False
            meta = by_module[src][0]  # the pinned hottest chunk
            if meta.root.nid in moved or meta.module != src:
                return False
            if not reps.can_clone(meta):
                return False
            words = float(meta.size_words(self.tree.config))
            holders = {meta.module} | set(reps.secondaries(meta))
            dst = pick_dst(src, words, exclude=holders)
            if dst is None:
                return False
            # Read-any splits the chunk's heat over copies+1 modules: the
            # source sheds the new copy's share.
            h_moved = heat_estimate(src, meta) / (reps.copy_count(meta) + 1)
            if h_moved <= 0.0 or heat[dst] + h_moved >= heat[src]:
                return False
            record(meta, src, dst, mandatory=False,
                   kind="clone", heat_moved=h_moved)
            return True

        while (len(plan.moves) < cfg.max_moves
               and (not plan.moves or plan.total_words < cfg.budget_words)):
            live_heat = np.array([heat[mid] for mid in live])
            mean = float(live_heat.mean())
            if mean <= 0.0:
                break
            if float(live_heat.max()) <= cfg.ratio_threshold * mean:
                break
            src = min(live, key=lambda m: (-heat[m], m))
            if try_clone(src):
                continue
            movable = [
                m for m in by_module[src][cfg.min_keep:]
                if m.root.nid not in moved
            ]
            if not movable:
                break
            meta = movable[0]
            words = float(meta.size_words(self.tree.config))
            dst = pick_dst(src, words)
            if dst is None:
                break
            h = heat_estimate(src, meta)
            if heat[dst] + h >= heat[src]:
                break  # no strict gain: stop instead of shuffling heat
            record(meta, src, dst, mandatory=False)
        return plan


def choose_destination(system, key, *, words: float = 0.0) -> int:
    """Capacity-aware placement for rebuild paths (failover re-placement).

    Defaults to the plain salted-hash :meth:`~repro.pim.PIMSystem.place`
    — byte-identical to the pre-balance failover layout — and only
    deviates when that module's capacity budget would be violated: then
    the least-loaded live module with room is chosen deterministically
    (ties by module id) and pinned via a placement override so later
    ``place()`` calls agree.  With ``capacity_words`` unset (the default)
    this *is* ``place()``.
    """
    mid = system.place(key)
    m = system.modules[mid]
    if m.capacity_words is None or m.used_words + words <= m.capacity_words:
        return mid
    best = None
    for cand in system.modules:
        if cand.failed:
            continue
        if (cand.capacity_words is not None
                and cand.used_words + words > cand.capacity_words):
            continue
        k = (cand.used_words, cand.mid)
        if best is None or k < best[0]:
            best = (k, cand.mid)
    if best is None:
        return mid  # everyone is over budget: keep the hash placement
    dst = best[1]
    if dst != mid:
        system.set_placement_override(key, dst)
    return dst
