"""Per-module hotness tracking: EWMA load deltas + the imbalance signal.

The simulator already exposes cumulative per-module cycles
(:meth:`repro.pim.PIMSystem.module_loads`) and resident words
(:meth:`~repro.pim.PIMSystem.residency`); what the balancer needs is a
*recency-weighted* view — a module that was hot an hour ago but is idle
now must not attract migrations.  :class:`HotnessTracker` folds the
deltas between successive :meth:`~HotnessTracker.observe` calls into an
exponentially weighted moving average per module, and summarises the live
modules' heat through the shared :func:`repro.workloads.imbalance_summary`
(max/mean straggler factor + Gini), so the detector, introspect and the
obs exports all agree on one imbalance definition.

Observation is a host-side control-plane read: it charges nothing and
mutates no simulator state, so attaching a tracker leaves every counter
byte-identical to an untracked run.
"""

from __future__ import annotations

import numpy as np

from ..workloads.skew import imbalance_summary

__all__ = ["HotnessTracker"]


class HotnessTracker:
    """EWMA of per-round module load deltas (cycles by default)."""

    def __init__(self, system, *, alpha: float = 0.3) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.system = system
        self.alpha = float(alpha)
        self.hotness = np.zeros(system.n_modules, dtype=np.float64)
        self._last = system.module_loads().astype(np.float64)
        self.observations = 0
        self.total_delta = 0.0

    # ------------------------------------------------------------------
    def observe(self) -> np.ndarray:
        """Fold the work since the last call into the EWMA; returns the delta.

        ``hot ← α·delta + (1-α)·hot`` per module.  Call once per serving
        step (or per batch) so "hot" means *recently* hot.
        """
        loads = self.system.module_loads().astype(np.float64)
        delta = loads - self._last
        self._last = loads
        a = self.alpha
        self.hotness *= 1.0 - a
        self.hotness += a * delta
        self.observations += 1
        self.total_delta += float(delta.sum())
        return delta

    def rebase(self, system=None) -> None:
        """Re-anchor the delta baseline (crash-restart rebind).

        ``module_loads()`` is *cumulative since system construction*; a
        crash restart swaps in a freshly built :class:`PIMSystem` whose
        counters restart near zero.  A tracker still holding the old
        system's baseline would observe a huge *negative* delta on the
        next :meth:`observe` and poison the EWMA (driving heat negative,
        which both disables the detector and corrupts victim selection).
        ``rebase`` swaps ``system`` (when given) and resets the baseline
        to its current loads *without* folding a delta; accumulated EWMA
        heat is kept — the workload skew survives the crash even though
        the counters did not.
        """
        if system is not None:
            if system.n_modules != len(self.hotness):
                raise ValueError(
                    f"rebase onto {system.n_modules} modules, "
                    f"tracker has {len(self.hotness)}"
                )
            self.system = system
        self._last = self.system.module_loads().astype(np.float64)

    def transfer(self, src: int, dst: int, heat: float) -> None:
        """Project a migration into the EWMA (planner's heat estimate).

        Without this, the signal that triggered a migration would stay
        stale-hot until enough observations decayed it, re-tripping the
        detector and ping-ponging shards.

        Guards: out-of-range module ids raise (a plan referencing a
        module the system doesn't have is a bug, not a race); a
        self-transfer is a no-op; and a dead ``dst`` is a no-op — a stale
        plan executed after a crash must not park heat on a
        decommissioned module, where no observation would ever decay it
        back out.
        """
        src, dst = int(src), int(dst)
        n = len(self.hotness)
        if not (0 <= src < n and 0 <= dst < n):
            raise ValueError(
                f"transfer {src}->{dst} out of range for {n} modules"
            )
        if src == dst:
            return
        if dst in self.system.dead_modules:
            return
        h = float(min(heat, self.hotness[src]))
        if h <= 0.0:
            return
        self.hotness[src] -= h
        self.hotness[dst] += h

    # ------------------------------------------------------------------
    def live_hotness(self) -> np.ndarray:
        """EWMA heat of live modules only (dead modules carry no load)."""
        dead = self.system.dead_modules
        if not dead:
            return self.hotness
        mask = np.ones(len(self.hotness), dtype=bool)
        for mid in dead:
            mask[mid] = False
        return self.hotness[mask]

    def imbalance(self) -> dict:
        """Shared imbalance statistics of the live modules' EWMA heat."""
        return imbalance_summary(self.live_hotness())
