"""The online rebalancer: observe → detect → plan → execute, one step.

:class:`OnlineRebalancer` is the object the serve loop (and the CLI)
holds: each :meth:`~OnlineRebalancer.step` folds the work since the last
step into the hotness EWMA, asks the planner whether thresholds tripped,
and — only then — executes a budget-bounded migration plan as charged
BSP work under the ``"rebalance"`` phase.  A step that does not migrate
charges *nothing* (observation is a control-plane read), so a rebalancer
built with :func:`repro.balance.inert_balance` leaves every counter
byte-identical to a run with no rebalancer at all.

After a migration the planner's per-move heat estimates are folded back
into the tracker (so the stale signal does not immediately re-trip) and
the per-chunk popularity counters are halved (so old popularity fades).
"""

from __future__ import annotations

from .hotness import HotnessTracker
from .migrate import execute_plan
from .planner import BalanceConfig, MigrationPlanner

__all__ = ["OnlineRebalancer"]


class OnlineRebalancer:
    """Background skew-repair driver bound to one tree."""

    def __init__(self, tree, config: BalanceConfig | None = None) -> None:
        self.tree = tree
        self.config = config if config is not None else BalanceConfig()
        self.tracker = HotnessTracker(tree.system, alpha=self.config.ewma_alpha)
        self.planner = MigrationPlanner(tree, self.config)
        self.history: list[dict] = []
        self.steps = 0
        self.migrations = 0
        self.words_moved = 0.0

    @property
    def budget_fraction(self) -> float:
        """Serve-loop time budget: rebalance ≤ this fraction of service."""
        return self.config.budget_fraction

    def rebind(self, tree) -> None:
        """Point the rebalancer at a recovered tree (crash restart).

        The serve loop calls this after ``crash_restart`` replaces the
        adapter's tree and system: planner and tracker swap to the new
        objects and the tracker re-anchors its cumulative-load baseline
        (:meth:`HotnessTracker.rebase`) so the fresh system's near-zero
        counters do not appear as a giant negative delta.  History,
        step/migration counts and the EWMA heat are preserved.
        """
        self.tree = tree
        self.planner.tree = tree
        self.tracker.rebase(tree.system)

    # ------------------------------------------------------------------
    def step(self) -> dict | None:
        """One observe/detect/plan/execute cycle.

        Returns the migration summary when chunks moved, else ``None``.
        """
        self.steps += 1
        self.tracker.observe()
        if not self.planner.should_rebalance(self.tracker):
            return None
        plan = self.planner.plan(self.tracker)
        if not plan.moves:
            return None
        summary = execute_plan(self.tree, plan)
        for mv in plan.moves:
            self.tracker.transfer(mv.src, mv.dst, mv.heat)
        # Integer halving keeps the counters exact and decays to zero.
        for meta in self.tree.metas:
            if meta.hot_hits:
                meta.hot_hits >>= 1
        summary["step"] = self.steps
        summary["reason"] = plan.reason
        summary["plan"] = plan.to_dict()
        self.history.append(summary)
        self.migrations += summary["moves"]
        self.words_moved += summary["words_moved"]
        return summary
