"""The replica registry: placement, routing, fan-out, promotion.

A :class:`ReplicaSet` is attached to one :class:`~repro.core.tree.PIMZdTree`
(``tree.replicas``) and maps chunk root nids to the modules holding
*secondary* copies of that chunk.  The primary copy stays wherever
mastership says (``meta.module``); secondaries are extra read capacity
and failover cover.

**Placement** is deterministic and composes with the placement-override
machinery: secondary ``i`` of chunk ``nid`` lives at
``system.place(("replica", nid, i))``, rehashed past dead modules and
past modules already holding a copy of the same chunk (a duplicate copy
adds nothing).  Because it goes through :meth:`~repro.pim.PIMSystem.place`,
a recorded override for a replica key re-routes it like any other key,
and a dead target falls through to the deterministic rehash.

**Reads** route ``read-any``: the executor asks :meth:`read_module` once
per (chunk, round) and the least-loaded live copy answers (deterministic
tie-break by module id), using a routed-work counter the ReplicaSet
maintains itself — pure control-plane state, nothing charged.  Under
``primary-async`` a chunk with unflushed writes pins reads to the
primary (read-your-writes); ``write-all`` secondaries are always fresh.

**Writes** follow the configured policy: ``write-all`` fans each update
batch's words out to every live secondary inside the same BSP round the
primary's update messages travel in; ``primary-async`` accumulates
pending words per chunk and the serve loop flushes them (one charged
round under the ``"replicate"`` phase) whenever the oldest pending write
is older than the staleness bound — every flush records the staleness
actually incurred, surfaced in ``LatencyStats.replication``.

**Failover**: when a module dies, chunks it mastered promote their
smallest-mid live secondary to primary — a control-plane pointer swap
plus a placement override, *no* shard re-upload, which is the entire
point of keeping a live copy.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ReplicationConfig", "ReplicaSet", "WRITE_POLICIES"]

WRITE_POLICIES = ("write-all", "primary-async")

# Streaming copy cycles per word on the weak PIM core (matches the
# migration executor's pack/unpack constant — same kind of bulk move).
_PACK_CYCLES_PER_WORD = 1
# Host-side placement + registry bookkeeping per installed/promoted copy
# (matches the failover/migration control-plane constant).
_CONTROL_CPU_OPS = 24
# Control words to repoint mastership at a promoted secondary (no data
# moves — the copy is already resident).
_PROMOTE_WORDS = 2


@dataclass(frozen=True)
class ReplicationConfig:
    """Replica count and write policy for one tree.

    ``k`` is the *total* number of copies including the primary; ``k=1``
    keeps single-copy semantics (the ReplicaSet becomes a no-op shell).
    ``staleness_bound_s`` only matters under ``"primary-async"``: the
    serve loop flushes pending secondary updates once the oldest pending
    write is at least this old, so no secondary ever serves data staler
    than the bound.
    """

    k: int = 2
    write_policy: str = "write-all"
    staleness_bound_s: float = 1e-3

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("replica count k must be >= 1")
        if self.write_policy not in WRITE_POLICIES:
            raise ValueError(
                f"unknown write policy {self.write_policy!r}; "
                f"choose from {WRITE_POLICIES}"
            )
        if self.staleness_bound_s < 0.0:
            raise ValueError("staleness_bound_s must be >= 0")


class ReplicaSet:
    """Registry + policies for K-way chunk replicas on one tree."""

    def __init__(self, tree, config: ReplicationConfig | None = None) -> None:
        self.tree = tree
        self.config = config if config is not None else ReplicationConfig()
        # chunk root nid → sorted tuple of secondary module ids.
        self._secondaries: dict[int, tuple[int, ...]] = {}
        # primary-async pending fan-out: nid → [words, oldest_write_clock].
        self._pending: dict[int, list[float]] = {}
        # Routed read work per module (control-plane load balancing state).
        self._routed: dict[int, float] = {}
        # Virtual clock (simulated seconds) — the serve loop keeps this
        # current so async writes can be aged against the staleness bound.
        self.clock = 0.0
        # Accounting surfaced through summary().
        self.writes_fanned = 0
        self.words_fanned = 0.0
        self.flushes = 0
        self.staleness_samples: list[float] = []
        self.promotions = 0
        tree.replicas = self

    # ------------------------------------------------------------------
    # registry
    # ------------------------------------------------------------------
    def secondaries(self, meta) -> tuple[int, ...]:
        return self._secondaries.get(meta.root.nid, ())

    def live_secondaries(self, meta) -> tuple[int, ...]:
        dead = self.tree.system.dead_modules
        return tuple(m for m in self.secondaries(meta) if m not in dead)

    def copy_count(self, meta) -> int:
        """Live copies of ``meta`` including the primary."""
        return 1 + len(self.live_secondaries(meta))

    def can_clone(self, meta) -> bool:
        """May the rebalancer add another copy of ``meta``?"""
        return (self.copy_count(meta) < self.config.k
                and self.tree.system.n_live > self.copy_count(meta))

    def register(self, nid: int, dst: int) -> None:
        """Record module ``dst`` as holding a secondary copy of ``nid``."""
        cur = self._secondaries.get(int(nid), ())
        if int(dst) not in cur:
            self._secondaries[int(nid)] = tuple(sorted(cur + (int(dst),)))

    def prune(self, live_nids: set[int]) -> None:
        """Drop registry entries whose chunk was retired by a rechunk."""
        for nid in [n for n in self._secondaries if n not in live_nids]:
            del self._secondaries[nid]
            self._pending.pop(nid, None)

    @property
    def n_replicated(self) -> int:
        return sum(1 for s in self._secondaries.values() if s)

    @property
    def total_copies(self) -> int:
        return sum(len(s) for s in self._secondaries.values())

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    def place_secondary(self, meta, index: int,
                        exclude: set[int] | None = None) -> int | None:
        """Deterministic module for secondary ``index`` of ``meta``.

        Goes through ``system.place`` (override- and fault-composing) and
        rehashes with an attempt counter past modules already holding a
        copy.  Returns ``None`` when no live module without a copy is
        left (k exceeds the live module count).
        """
        sys = self.tree.system
        nid = meta.root.nid
        taken = {meta.module} | set(self.secondaries(meta))
        if exclude:
            taken |= set(exclude)
        for attempt in range(4 * sys.n_modules):
            mid = sys.place(("replica", nid, index, attempt))
            if mid not in taken:
                return mid
        return None

    # ------------------------------------------------------------------
    # installation (charged)
    # ------------------------------------------------------------------
    def replicate_all(self) -> dict:
        """Bring every chunk up to ``k`` copies (charged, journaled).

        One BSP round under the ``"replicate"`` phase: per new copy, the
        primary packs and drains the shard to the host switch
        (``charge_pim`` + ``recv``) and the destination unpacks and
        installs it (``charge_pim`` + ``send``) — the same shape as a
        migration, minus the mastership change.  Fault injection is
        suppressed (replica control traffic rides the reliable channel).
        """
        tree = self.tree
        sys = tree.system
        installed: list[tuple[int, int]] = []
        plan: list[tuple[object, int]] = []
        for meta in sorted(tree.metas, key=lambda m: m.root.nid):
            while self.copy_count(meta) + sum(
                    1 for m2, _ in plan if m2 is meta) < self.config.k:
                chosen = {d for m2, d in plan if m2 is meta}
                dst = self.place_secondary(
                    meta, len(self.secondaries(meta)) + len(chosen),
                    exclude=chosen)
                if dst is None:
                    break
                plan.append((meta, dst))
        if not plan:
            return {"installed": 0, "words": 0.0}
        words_total = 0.0
        with sys.phase("replicate"), sys.faults_suppressed():
            sys.charge_cpu(len(plan) * _CONTROL_CPU_OPS)
            with sys.round():
                for meta, dst in plan:
                    words = meta.size_words(tree.config)
                    sys.charge_pim(meta.module,
                                   words * _PACK_CYCLES_PER_WORD)
                    sys.recv(meta.module, words)
                    sys.charge_pim(dst, words * _PACK_CYCLES_PER_WORD)
                    sys.send(dst, words)
                    self.register(meta.root.nid, dst)
                    installed.append((meta.root.nid, dst))
                    words_total += words
            tree.refresh_residency()
        journal = getattr(tree, "journal", None)
        if journal is not None:
            journal.log_replicate(installed)
        return {"installed": len(installed), "words": float(words_total)}

    # ------------------------------------------------------------------
    # read routing
    # ------------------------------------------------------------------
    def read_module(self, meta, weight: float = 1.0) -> int:
        """``read-any``: least-loaded live copy of ``meta`` (ties by mid).

        The load signal is the ReplicaSet's own routed-work counter —
        deterministic, host-side, charges nothing.  Under
        ``primary-async`` a chunk with unflushed writes reads from the
        primary only (read-your-writes within the staleness window).
        """
        primary = meta.module
        secs = self.live_secondaries(meta)
        if not secs or (self.config.write_policy == "primary-async"
                        and meta.root.nid in self._pending):
            return primary
        best = primary
        best_load = self._routed.get(primary, 0.0)
        for mid in secs:
            load = self._routed.get(mid, 0.0)
            if load < best_load or (load == best_load and mid < best):
                best, best_load = mid, load
        self._routed[best] = best_load + float(weight)
        return best

    # ------------------------------------------------------------------
    # write fan-out
    # ------------------------------------------------------------------
    def on_write(self, meta, words: float) -> None:
        """Propagate an update batch's ``words`` to the secondaries.

        ``write-all``: synchronous sends inside the caller's round (both
        update paths call this from within the batch's merge/apply round,
        so the fan-out shares the round's straggler max exactly like the
        L1 cache fan-out does).  ``primary-async``: accumulate pending
        words; :meth:`flush` ships them later under the staleness bound.
        """
        secs = self.live_secondaries(meta)
        if not secs:
            return
        self.writes_fanned += 1
        if self.config.write_policy == "write-all":
            sys = self.tree.system
            for mid in secs:
                sys.send(mid, words)
                self.words_fanned += float(words)
            return
        pend = self._pending.get(meta.root.nid)
        if pend is None:
            self._pending[meta.root.nid] = [float(words), self.clock]
        else:
            pend[0] += float(words)

    def oldest_pending_s(self, now: float) -> float:
        """Age of the oldest unflushed async write (0.0 when clean)."""
        if not self._pending:
            return 0.0
        return max(0.0, now - min(t for _, t in self._pending.values()))

    def flush_due(self, now: float) -> bool:
        return (self._pending and
                self.oldest_pending_s(now) >= self.config.staleness_bound_s)

    def flush(self, now: float) -> dict:
        """Ship all pending async fan-out (one charged round).

        Runs under the ``"replicate"`` phase with faults suppressed.
        Each flushed chunk records the staleness its secondaries actually
        reached (``now - oldest pending write``) — the numbers behind the
        ``replication.staleness`` summary in the latency stats.
        """
        if not self._pending:
            return {"flushed": 0, "words": 0.0}
        tree = self.tree
        sys = tree.system
        by_nid = {m.root.nid: m for m in tree.metas}
        flushed = 0
        words_total = 0.0
        with sys.phase("replicate"), sys.faults_suppressed():
            with sys.round():
                for nid in sorted(self._pending):
                    words, t0 = self._pending[nid]
                    meta = by_nid.get(nid)
                    if meta is None:
                        continue
                    for mid in self.live_secondaries(meta):
                        sys.charge_pim(mid, words * _PACK_CYCLES_PER_WORD)
                        sys.send(mid, words)
                        words_total += words
                    self.staleness_samples.append(max(0.0, now - t0))
                    flushed += 1
        self._pending.clear()
        self.flushes += 1
        self.words_fanned += words_total
        return {"flushed": flushed, "words": float(words_total)}

    # ------------------------------------------------------------------
    # failover
    # ------------------------------------------------------------------
    def on_module_dead(self, dead_mid: int) -> dict[int, int]:
        """React to ``dead_mid``'s decommission; returns promotions.

        For every chunk whose *primary* was on the dead module and which
        holds a live secondary, the smallest-mid live secondary is
        promoted (returned as ``{root_nid: new_primary_mid}`` — the
        caller repoints mastership and charges the control round).  Dead
        secondaries are dropped from the registry everywhere.
        """
        dead_mid = int(dead_mid)
        promotions: dict[int, int] = {}
        for meta in sorted(self.tree.metas, key=lambda m: m.root.nid):
            if meta.module != dead_mid:
                continue
            live = self.live_secondaries(meta)
            if live:
                promotions[meta.root.nid] = live[0]
        for nid, secs in list(self._secondaries.items()):
            promoted = promotions.get(nid)
            kept = tuple(m for m in secs
                         if m != dead_mid and m != promoted)
            if kept:
                self._secondaries[nid] = kept
            else:
                del self._secondaries[nid]
        self.promotions += len(promotions)
        return promotions

    # ------------------------------------------------------------------
    # residency / durability / stats
    # ------------------------------------------------------------------
    def alloc_residency(self) -> None:
        """Book secondary copies as cache words (refresh_residency hook)."""
        tree = self.tree
        self.prune({m.root.nid for m in tree.metas})
        dead = tree.system.dead_modules
        for meta in tree.metas:
            secs = self._secondaries.get(meta.root.nid)
            if not secs:
                continue
            words = meta.size_words(tree.config)
            for mid in secs:
                if mid not in dead:
                    tree.system.modules[mid].alloc_cache(words)

    def to_manifest(self) -> dict:
        """Snapshot-manifest encoding (canonical: sorted keys)."""
        return {
            "k": int(self.config.k),
            "write_policy": self.config.write_policy,
            "staleness_bound_s": float(self.config.staleness_bound_s),
            "secondaries": {
                str(nid): [int(m) for m in mids]
                for nid, mids in sorted(self._secondaries.items())
            },
        }

    @classmethod
    def from_manifest(cls, tree, doc: dict) -> "ReplicaSet":
        """Rebuild the registry from a snapshot manifest (uncharged —
        recovery charges the secondary re-uploads itself)."""
        cfg = ReplicationConfig(
            k=int(doc["k"]),
            write_policy=doc["write_policy"],
            staleness_bound_s=float(doc["staleness_bound_s"]),
        )
        rs = cls(tree, cfg)
        for nid, mids in doc.get("secondaries", {}).items():
            rs._secondaries[int(nid)] = tuple(sorted(int(m) for m in mids))
        return rs

    def summary(self) -> dict:
        """Replication accounting for ``LatencyStats.replication``."""
        stale = self.staleness_samples
        return {
            "k": int(self.config.k),
            "write_policy": self.config.write_policy,
            "staleness_bound_s": float(self.config.staleness_bound_s),
            "chunks_replicated": int(self.n_replicated),
            "total_copies": int(self.total_copies),
            "writes_fanned": int(self.writes_fanned),
            "words_fanned": float(self.words_fanned),
            "flushes": int(self.flushes),
            "promotions": int(self.promotions),
            "staleness": {
                "n": len(stale),
                "max_s": max(stale) if stale else 0.0,
                "mean_s": sum(stale) / len(stale) if stale else 0.0,
            },
        }
