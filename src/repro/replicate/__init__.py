"""K-way chunk replication with routed reads and policy-bound writes.

One logical owner per chunk (the §3.2 meta-node mastership rule) makes a
single mega-hot chunk both a throughput wall and a single point of
failure — the exact skew failure mode PIM-tree's replication-based skew
resistance targets.  This package adds the missing degree of freedom:

* :class:`ReplicationConfig` — replica count ``k`` (total copies
  including the primary), the write policy (``"write-all"`` synchronous
  fan-out or ``"primary-async"`` with a bounded staleness window), and
  the staleness bound;
* :class:`ReplicaSet` — the per-tree replica registry: deterministic
  secondary placement composing with :meth:`repro.pim.PIMSystem.place`
  overrides, charged replica installation, least-loaded read routing
  (``read-any``), write fan-out accounting, async-flush staleness
  tracking, replica-aware failover promotion, and crash-restart rebind.

A tree with ``tree.replicas is None`` (the default) takes none of these
code paths: every hook in the core is a single ``is None`` test, so
replication-off runs stay byte-identical to pre-replication builds.
"""

from .replicaset import ReplicaSet, ReplicationConfig, WRITE_POLICIES

__all__ = ["ReplicaSet", "ReplicationConfig", "WRITE_POLICIES"]
