"""Command-line driver: regenerate any paper experiment from a shell.

Examples::

    python -m repro.cli list
    python -m repro.cli fig5 --dataset osm --n 30000
    python -m repro.cli table3 --batch 256
    python -m repro.cli all --out results/
    python -m repro.cli trace --ops insert,bc-10,10-nn --out trace.json
    python -m repro.cli serve --arrival poisson --load 0.8 --out latency.json
    python -m repro.cli faults --drop-rate 0.02 --crash 3@40 --retries 3
    python -m repro.cli balance --dataset varden --steps 24 --out balance.json
    python -m repro.cli store demo --kill-round 30 --path /tmp/zd-store
    python -m repro.cli store inspect --path /tmp/zd-store
    python -m repro.cli store recover --path /tmp/zd-store
    python -m repro.cli tune search --workload varden --out varden.json
    python -m repro.cli tune report --profile varden.json
    python -m repro.cli tune apply --profile varden.json --dataset varden
    python -m repro.cli serve --profile varden.json --adapt

``all`` runs every experiment and (with ``--out``) writes one markdown
report plus a JSON dump of the raw rows.  ``trace`` runs a workload with
the ``repro.obs`` collector attached and exports the per-phase/per-module
timeline (JSON, optionally CSV), checking that the trace reconciles
exactly with the simulator's counters.  ``faults`` is ``serve`` under a
seeded :class:`repro.faults.FaultPlan`: module crashes, straggler storms
and message drops are injected, the loop retries/fails over/degrades,
and the report adds availability, the fault-event summary and the
recovery phase's share of simulated time.  ``balance`` attacks a
hash-colocated hot module with an adversarial kNN stream and serves it
twice — rebalance off, then on — reporting the throughput recovery, the
chunk migrations and the ``"rebalance"`` phase's share of simulated
time; ``serve``/``faults`` accept ``--rebalance`` to step the online
rebalancer between batches of an open-loop run.  ``store`` drives the
durable tier: ``demo`` serves with checkpoint + WAL attached (optionally
killing the whole machine mid-run and restarting from disk, charged
under the ``"recovery"`` phase), ``inspect`` prints an on-disk store's
manifest and WAL record table, and ``recover`` rebuilds the index from
disk and reports the charged restart cost.  ``tune`` drives the
self-tuning subsystem (``repro.tune``): ``search`` runs the offline
strategy-tree policy search over the serving config space and emits a
tuned profile, ``report`` prints a profile's headline numbers, and
``apply`` serves with the profile's knobs applied.  ``serve``, ``faults``
and ``sweep`` all ingest their knobs through one path
(:meth:`repro.tune.ConfigSpace.from_args`): defaults < ``--profile`` <
explicit flags, where contradicting sources — or a refinement flag like
``--rebalance-ratio`` without its ``--rebalance`` gate — are loud errors
rather than silent no-ops.  ``--adapt`` (serve/faults) additionally runs
the online controller, which nudges a whitelisted knob subset at phase
boundaries between batches.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from .eval.experiments import ALL_EXPERIMENTS, DATASETS, ExperimentResult

_COMMON_PARAMS = {
    "n": (int, "warmup dataset size"),
    "batch": (int, "operations per measured batch"),
    "n_modules": (int, "simulated PIM modules"),
    "seed": (int, "master seed"),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Regenerate the PIM-zd-tree paper's tables and figures "
                    "on the simulated PIM system.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    for name in ALL_EXPERIMENTS:
        p = sub.add_parser(name, help=f"run the {name} experiment")
        _add_common(p)
        if name in ("fig5", "latency"):
            p.add_argument(
                "--dataset", default="uniform" if name == "fig5" else "osm",
                choices=sorted(DATASETS), help="workload distribution",
            )

    p_all = sub.add_parser("all", help="run every experiment")
    _add_common(p_all)
    p_all.add_argument("--out", type=Path, default=None,
                       help="directory for report.md / results.json")

    p_tr = sub.add_parser(
        "trace",
        help="run a traced workload; export the per-phase/per-module timeline",
    )
    _add_common(p_tr)
    p_tr.add_argument("--dataset", default="uniform", choices=sorted(DATASETS),
                      help="workload distribution")
    p_tr.add_argument("--ops", default="insert,bc-10,bf-10,10-nn",
                      help="comma-separated Fig. 5 operation names")
    p_tr.add_argument("--out", type=Path, default=None,
                      help="path for the JSON trace document")
    p_tr.add_argument("--csv", type=Path, default=None,
                      help="path for the per-phase CSV table")
    p_tr.add_argument("--ring", type=int, default=65536,
                      help="raw-event ring-buffer capacity")
    p_tr.add_argument("--no-events", action="store_true",
                      help="omit raw events from the JSON document")

    p_sv = sub.add_parser(
        "serve",
        help="open-loop serving run: arrival process, admission queue, "
             "continuous batching, latency stats",
    )
    _add_serve_args(p_sv)
    _add_adapt_args(p_sv)

    p_ft = sub.add_parser(
        "faults",
        help="serving run under a seeded fault plan: crashes, straggler "
             "storms, message drops; retry/failover/degraded-mode stats",
    )
    _add_serve_args(p_ft, index_choices=["pim", "pim-skew"])
    _add_adapt_args(p_ft)
    p_ft.add_argument("--fault-seed", type=int, default=None,
                      help="fault-plan RNG seed (default: master seed)")
    p_ft.add_argument("--crash", action="append", default=None,
                      metavar="MID@ROUND",
                      help="schedule a module crash, e.g. --crash 3@40 "
                           "(repeatable)")
    p_ft.add_argument("--crash-rate", type=float, default=0.0,
                      help="per-(module, round) crash probability")
    p_ft.add_argument("--max-crashes", type=int, default=None,
                      help="cap on random crashes")
    p_ft.add_argument("--drop-rate", type=float, default=0.0,
                      help="per-transfer CPU<->PIM message-loss probability")
    p_ft.add_argument("--slow", action="append", default=None,
                      metavar="MID:FACTOR",
                      help="static straggler slowdown, e.g. --slow 0:4 "
                           "(repeatable)")
    p_ft.add_argument("--storm-rate", type=float, default=0.0,
                      help="per-round probability a straggler storm starts")
    p_ft.add_argument("--storm-factor", type=float, default=8.0,
                      help="cycle multiplier during a storm")
    p_ft.add_argument("--storm-rounds", type=int, default=4,
                      help="rounds a storm lasts")
    p_ft.add_argument("--retries", type=int, default=3,
                      help="dispatch retries before giving up on a batch")
    p_ft.add_argument("--backoff-ms", type=float, default=0.1,
                      help="base exponential-backoff delay (simulated ms)")
    p_ft.add_argument("--timeout-ms", type=float, default=None,
                      help="per-request queue timeout (simulated ms)")
    p_ft.add_argument("--no-failover", action="store_true",
                      help="do not rebuild dead modules' shards")
    p_ft.add_argument("--no-degraded", action="store_true",
                      help="fail exhausted query batches instead of "
                           "completing them with partial results")

    p_sw = sub.add_parser(
        "sweep",
        help="paper-scale sharded serve sweep: split the offered load "
             "across worker processes (independent replicas), merge "
             "latency/throughput stats",
    )
    _add_serve_args(p_sw)
    p_sw.add_argument("--procs", type=int, default=None,
                      help="worker processes / shards "
                           "(default: cpu count, capped at 8; 1 = inline)")
    p_sw.set_defaults(requests=1_000_000, queue_depth=4096)

    p_bl = sub.add_parser(
        "balance",
        help="skew-aware rebalancing demo: adversarial hot-shard workload "
             "served with rebalance off vs on; migration + recovery report",
    )
    _add_common(p_bl)
    p_bl.add_argument("--dataset", default="varden", choices=sorted(DATASETS),
                      help="workload distribution")
    p_bl.add_argument("--steps", type=int, default=24,
                      help="serving steps (one request batch each) per run")
    p_bl.add_argument("--kind", default="bc", choices=["bc", "knn"],
                      help="request shape: box-count range scans (the "
                           "straggler-bound regime) or kNN batches")
    p_bl.add_argument("--k", type=int, default=10, help="k for kNN requests")
    p_bl.add_argument("--ratio-threshold", type=float, default=1.5,
                      help="max/mean EWMA heat ratio that trips migration")
    p_bl.add_argument("--gini-threshold", type=float, default=0.35,
                      help="EWMA heat Gini that trips migration")
    p_bl.add_argument("--budget-words", type=float, default=65536.0,
                      help="word budget per migration invocation")
    p_bl.add_argument("--max-moves", type=int, default=8,
                      help="chunk moves per migration invocation")
    p_bl.add_argument("--out", type=Path, default=None,
                      help="path for the JSON comparison report")

    p_tn = sub.add_parser(
        "tune",
        help="self-tuning: offline strategy-tree search over the serving "
             "config space (search), tuned serve run (apply), or profile "
             "inspection (report)",
    )
    p_tn.add_argument("action", choices=["search", "apply", "report"],
                      help="search: emit a tuned profile for --workload; "
                           "apply: serve with --profile applied; "
                           "report: print a profile's headline numbers")
    _add_serve_args(p_tn)
    _add_adapt_args(p_tn)
    p_tn.add_argument("--workload", default="varden",
                      choices=["diurnal", "uniform", "varden"],
                      help="workload class to tune for (search)")
    p_tn.add_argument("--generations", type=int, default=2,
                      help="strategy-tree refinement depth (search)")
    p_tn.add_argument("--beam", type=int, default=4,
                      help="surviving Pareto nodes expanded per generation "
                           "(search)")
    p_tn.add_argument("--procs", type=int, default=1,
                      help="worker processes for candidate evaluation "
                           "(search; the result is procs-independent)")
    p_tn.add_argument("--knobs", default=None,
                      help="comma-separated knob subset to refine (search; "
                           "default: the serving-visible set)")
    p_tn.set_defaults(requests=240, load=1.0)

    p_st = sub.add_parser(
        "store",
        help="durable storage tier: checkpointed serving with an optional "
             "whole-machine kill + charged crash-restart, or inspect/"
             "recover an on-disk store",
    )
    p_st.add_argument("action", choices=["demo", "inspect", "recover"],
                      help="demo: serve with checkpoint/WAL attached; "
                           "inspect: print a store's manifest + WAL table; "
                           "recover: rebuild the index from disk")
    _add_common(p_st)
    p_st.add_argument("--dataset", default="uniform", choices=sorted(DATASETS),
                      help="workload distribution (demo)")
    p_st.add_argument("--backend", default="file",
                      choices=["file", "sqlite"], help="storage backend")
    p_st.add_argument("--path", type=Path, default=None,
                      help="store location (directory for file, db file for "
                           "sqlite; demo defaults to a fresh temp dir)")
    p_st.add_argument("--requests", type=int, default=400,
                      help="offered requests (demo)")
    p_st.add_argument("--load", type=float, default=0.8,
                      help="offered load as a fraction of calibrated "
                           "capacity (demo)")
    p_st.add_argument("--mix", default="knn=0.5,insert=0.35,bc=0.1,bf=0.05",
                      help="request mix (demo)")
    p_st.add_argument("--k", type=int, default=10, help="k for kNN requests")
    p_st.add_argument("--kill-round", type=int, default=None,
                      help="BSP round at which the whole machine is killed "
                           "(demo; omit for a crash-free checkpointing run)")
    p_st.add_argument("--budget-fraction", type=float, default=0.05,
                      help="checkpoint time budget as a fraction of "
                           "service time (demo)")
    p_st.add_argument("--max-restarts", type=int, default=4,
                      help="crash-restarts before the loop gives up (demo)")
    p_st.add_argument("--out", type=Path, default=None,
                      help="path for the latency + store-event JSON (demo)")
    return parser


def _add_serve_args(p: argparse.ArgumentParser,
                    index_choices: list[str] | None = None) -> None:
    """Arguments shared by the ``serve`` and ``faults`` subcommands."""
    _add_common(p)
    p.add_argument("--dataset", default="uniform", choices=sorted(DATASETS),
                   help="workload distribution")
    p.add_argument("--index", default="pim",
                   choices=index_choices or ["pim", "pim-skew", "zd", "pkd"],
                   help="index adapter to serve from")
    p.add_argument("--arrival", default="poisson",
                   choices=["poisson", "bursty", "diurnal"],
                   help="arrival process")
    p.add_argument("--requests", type=int, default=2000,
                   help="number of offered requests")
    p.add_argument("--load", type=float, default=0.8,
                   help="offered load as a fraction of calibrated capacity")
    p.add_argument("--rate", type=float, default=None,
                   help="absolute arrival rate (req/s of simulated time; "
                        "overrides --load)")
    p.add_argument("--mix", default="knn=0.7,bc=0.15,bf=0.1,insert=0.05",
                   help="request mix, e.g. knn=0.8,insert=0.2")
    p.add_argument("--k", type=int, default=10, help="k for kNN requests")
    p.add_argument("--queue-depth", type=int, default=1024,
                   help="admission-queue depth bound")
    p.add_argument("--overflow", default="reject",
                   choices=["reject", "shed-oldest"],
                   help="backpressure policy when the queue is full")
    p.add_argument("--deadline-ms", type=float, default=None,
                   help="per-request relative deadline (simulated ms)")
    p.add_argument("--policy", default=None,
                   choices=["adaptive", "fixed"],
                   help="batch-size policy (default adaptive, unless a "
                        "--profile says otherwise)")
    p.add_argument("--overhead-target", type=float, default=None,
                   help="adaptive policy: fixed-overhead share of batch "
                        "service time (default 0.1)")
    p.add_argument("--fixed-batch", type=int, default=None,
                   help="batch size for --policy fixed (default 64)")
    p.add_argument("--out", type=Path, default=None,
                   help="path for the latency-stats JSON document")
    p.add_argument("--csv", type=Path, default=None,
                   help="path for the flat metric,value CSV")
    p.add_argument("--profile", type=Path, default=None,
                   help="tuned-profile JSON (a 'tune search' artifact); "
                        "explicit flags that contradict it are an error")
    p.add_argument("--rebalance", action="store_true",
                   help="step the online rebalancer between batches "
                        "(pim index adapters only)")
    p.add_argument("--rebalance-ratio", type=float, default=None,
                   help="max/mean EWMA heat ratio that trips migration "
                        "(default 1.5; requires --rebalance)")
    p.add_argument("--rebalance-gini", type=float, default=None,
                   help="EWMA heat Gini that trips migration "
                        "(default 0.35; requires --rebalance)")
    p.add_argument("--rebalance-budget-words", type=float, default=None,
                   help="word budget per migration invocation "
                        "(default 65536; requires --rebalance)")
    p.add_argument("--rebalance-budget", type=float, default=None,
                   help="rebalance time budget as a fraction of service "
                        "time (default 0.05; requires --rebalance)")
    p.add_argument("--pull-factor", type=float, default=None,
                   help="push-pull trigger: load-imbalance factor that "
                        "flips a round from push to pull (default 3.0)")
    p.add_argument("--sim-mode", default=None, choices=["vector", "scalar"],
                   help="simulator round-accounting core: the array-backed "
                        "vector core (default) or the per-module scalar "
                        "oracle")
    p.add_argument("--tenants", default=None,
                   help="multi-tenant admission: name=weight pairs, e.g. "
                        "gold=4,bronze=1 — requests are tagged in those "
                        "traffic proportions and the queue dequeues "
                        "weighted-fair with fair-share shedding")
    p.add_argument("--replicate", type=int, default=None, metavar="K",
                   help="K-way chunk replication (total copies incl. the "
                        "primary); installs replicas before serving and "
                        "routes reads to the least-loaded copy")
    p.add_argument("--write-policy", default=None,
                   choices=["write-all", "primary-async"],
                   help="replica write policy (default write-all; "
                        "requires --replicate >= 2)")
    p.add_argument("--staleness-ms", type=float, default=1.0,
                   help="staleness bound for --write-policy primary-async "
                        "(simulated ms)")
    p.add_argument("--route-filter", action="store_true",
                   help="install host-resident membership filters that "
                        "suppress provably-empty sends on point lookups, "
                        "deletes and kNN fetches (answers unchanged)")
    p.add_argument("--route-fpr", type=float, default=None, metavar="FPR",
                   help="Bloom false-positive rate target for "
                        "--route-filter (default 0.01)")


def _add_adapt_args(p: argparse.ArgumentParser) -> None:
    """The online-controller flags (serve/faults/tune apply)."""
    p.add_argument("--adapt", action="store_true",
                   help="run the online tuning controller: adapts a "
                        "whitelisted knob subset at phase boundaries "
                        "between batches, never mid-round")
    p.add_argument("--adapt-window", type=int, default=32,
                   help="batches per controller phase")


def _add_common(p: argparse.ArgumentParser) -> None:
    for name, (typ, help_text) in _COMMON_PARAMS.items():
        p.add_argument(f"--{name.replace('_', '-')}", type=typ, default=None,
                       help=help_text)


def _kwargs_from(args: argparse.Namespace) -> dict:
    kw = {}
    for name in _COMMON_PARAMS:
        v = getattr(args, name, None)
        if v is not None:
            kw[name] = v
    if getattr(args, "dataset", None) is not None:
        kw["dataset"] = args.dataset
    return kw


def _run_one(name: str, kwargs: dict) -> ExperimentResult:
    import inspect

    fn = ALL_EXPERIMENTS[name]
    accepted = set(inspect.signature(fn).parameters)
    kwargs = {k: v for k, v in kwargs.items() if k in accepted}
    t0 = time.time()
    result = fn(**kwargs)
    print(result)
    print(f"[{name} completed in {time.time() - t0:.1f}s wall]\n")
    return result


def _run_trace(args: argparse.Namespace) -> int:
    """The ``trace`` subcommand: traced workload → timeline export."""
    from .eval import phase_breakdown_table, run_suite
    from .eval.experiments import _dataset
    from .eval.harness import PIMZdTreeAdapter
    from .obs import TraceCollector, load_summary, timeline_csv, write_trace

    n = args.n or 20_000
    batch = args.batch or 256
    n_modules = args.n_modules or 32
    seed = args.seed if args.seed is not None else 7
    ops = tuple(o.strip() for o in args.ops.split(",") if o.strip())
    for op in ops:
        root = op.split("-")[0]
        valid = (op == "insert" or
                 (op.endswith("-nn") and root.isdigit()) or
                 (op.startswith(("bc-", "bf-")) and op[3:].isdigit()))
        if not valid:
            print(f"error: unknown op {op!r} "
                  "(expected insert, bc-N, bf-N or K-nn)")
            return 2
    if args.ring < 1:
        print("error: --ring must be >= 1")
        return 2

    data = _dataset(args.dataset, n, seed)
    gen = DATASETS[args.dataset]
    counter = {"i": 0}

    def fresh(m: int):
        counter["i"] += 1
        return gen(m, 3, seed=seed * 1000 + counter["i"])

    tracer = TraceCollector(capacity=args.ring)
    adapter = PIMZdTreeAdapter(data, n_modules=n_modules, seed=seed,
                               tracer=tracer)
    measurements = run_suite(adapter, data=data, ops=ops, batch=batch,
                             seed=seed, fresh_points=fresh)

    print(f"=== trace — {args.dataset}, n={n}, batch={batch}, "
          f"P={n_modules}, ops={','.join(ops)} ===")
    print(phase_breakdown_table(measurements))
    print(f"\nevents emitted: {tracer.seq} (retained {len(tracer.events())}, "
          f"dropped {tracer.dropped}); rounds: {tracer.rounds_seen}")

    load = load_summary(tracer, residency=adapter.system.residency())
    cyc, res = load["cycles"], load["resident_words"]
    print(f"module load: cycles max/mean x{cyc['max_mean_ratio']:.2f} "
          f"gini={cyc['gini']:.3f}; resident words max/mean "
          f"x{res['max_mean_ratio']:.2f} gini={res['gini']:.3f}")
    if tracer.capacity_events:
        print(f"capacity-pressure events: {len(tracer.capacity_events)}")

    problems = tracer.timeline.reconcile(adapter.system.stats)
    if problems:
        print("RECONCILIATION FAILED:")
        for p in problems:
            print(f"  {p}")
    else:
        print("trace reconciles exactly with PIMStats totals")

    if args.out is not None or args.csv is not None:
        write_trace(tracer, json_path=args.out, csv_path=args.csv,
                    stats=adapter.system.stats,
                    include_events=not args.no_events,
                    residency=adapter.system.residency())
        for path in (args.out, args.csv):
            if path is not None:
                print(f"wrote {path}")
    elif args.csv is None and args.out is None:
        print("\n" + timeline_csv(tracer))
    return 1 if problems else 0


def _parse_tenants(spec: str | None):
    """Parse ``--tenants name=weight,...`` into a dict (None when unset).

    Returns the sentinel ``2`` (the CLI usage-error exit code) on a
    malformed spec.
    """
    if spec is None:
        return None
    tenants = {}
    try:
        for part in spec.split(","):
            name, sep, w = part.strip().partition("=")
            if not sep or not name:
                raise ValueError
            tenants[name] = float(w)
            if tenants[name] <= 0:
                raise ValueError
    except ValueError:
        print(f"error: malformed --tenants {spec!r} "
              "(want name=weight,... with positive weights)")
        return 2
    return tenants


def _resolve_tune_config(args: argparse.Namespace):
    """Resolve the knob space from defaults, ``--profile`` and flags.

    The single ingestion path (:meth:`ConfigSpace.from_args`) shared by
    serve/faults/sweep/tune: conflicting sources, and refinement flags
    whose gate mechanism is off, raise rather than being silently
    dropped.  Returns a :class:`repro.tune.Resolution` or the sentinel
    ``2`` (the CLI usage-error exit code).
    """
    from .tune import KnobConflict, default_space, load_profile

    space = default_space()
    profile = None
    path = getattr(args, "profile", None)
    if path is not None:
        try:
            profile = load_profile(json.loads(Path(path).read_text()),
                                   space=space)
        except (OSError, ValueError, KeyError) as e:
            print(f"error: cannot load profile {path}: {e}")
            return 2
    try:
        return space.from_args(args, profile=profile)
    except (KnobConflict, ValueError) as e:
        print(f"error: {e}")
        return 2


def _report_tuned(res) -> None:
    """Print the non-default knobs of a resolved configuration."""
    tuned = res.non_default()
    if tuned:
        print("tuned knobs: " + ", ".join(
            f"{k}={v} [{res.sources[k]}]" for k, v in sorted(tuned.items())))


def _apply_tune_config(args: argparse.Namespace, adapter, config: dict):
    """Attach the config's serving mechanisms to ``adapter``.

    Returns the parts dict from
    :func:`repro.tune.apply_serving_config` (``{"policy", "rebalancer",
    "replication", "filters"}``) or the sentinel ``2`` on a usage error
    (a tree-level mechanism requested on a treeless baseline adapter).
    """
    from .tune import apply_serving_config

    try:
        parts = apply_serving_config(
            adapter, config,
            staleness_s=getattr(args, "staleness_ms", 1.0) * 1e-3)
    except ValueError as e:
        print(f"error: {e} (got --index {args.index!r})")
        return 2
    rep, flt = parts["replication"], parts["filters"]
    if rep is not None:
        print(f"replication: installed {rep['installed']} secondary "
              f"copies ({rep['words']:,.0f} words)")
    if flt is not None:
        print(f"route filters: fpr={flt['fpr']:g}, "
              f"{flt['keys_indexed']} keys indexed, "
              f"{flt['filter_kib']:.1f} KiB resident")
    return parts


def _make_controller(args: argparse.Namespace):
    """Build the online tuning controller for ``--adapt`` (or None).

    Returns the sentinel ``2`` on a bad ``--adapt-window``.
    """
    if not getattr(args, "adapt", False):
        return None
    from .tune import OnlineController

    try:
        return OnlineController(window=getattr(args, "adapt_window", 32))
    except ValueError as e:
        print(f"error: {e}")
        return 2


def _report_controller(controller) -> None:
    """Print the online controller's adaptation history."""
    if controller is None:
        return
    aud = controller.audit()
    print(f"\ncontroller: {aud['changes']} change(s) over "
          f"{aud['phases']} phase(s) "
          f"(whitelist: {', '.join(aud['whitelist'])})")
    for h in aud["history"]:
        print(f"  phase {h['phase']}: {h['knob']} {h['old']:g} -> "
              f"{h['new']:g} ({h['why']})")


def _report_rebalance(loop, rebalancer, adapter) -> None:
    """Print the rebalance summary of one serve/faults run."""
    if rebalancer is None:
        return
    print(f"\nrebalance: {loop.rebalance_steps} steps, "
          f"{rebalancer.migrations} chunk moves, "
          f"{rebalancer.words_moved:,.0f} words moved "
          f"({loop.rebalance_time_s * 1e3:.3f}ms of simulated time)")
    stats = adapter.system.stats
    reb = stats.phases.get("rebalance")
    if reb is not None:
        t = adapter.tree.cost_model.time(reb)
        total_t = adapter.tree.cost_model.time(stats.total)
        share = 100.0 * t.total_s / total_t.total_s if total_t.total_s else 0.0
        print(f"rebalance phase: {t.total_s * 1e3:.3f}ms simulated "
              f"({share:.2f}% of total sim time)")


def _run_serve(args: argparse.Namespace) -> int:
    """The ``serve`` subcommand: open-loop run → latency stats."""
    import math

    from .eval.experiments import _dataset
    from .eval.harness import make_adapter
    from .obs import write_latency
    from .serve import (
        AdmissionQueue,
        ServeLoop,
        calibrate_capacity,
        make_requests,
    )
    from .tune import make_index_config
    from .workloads import bursty_arrivals, diurnal_arrivals, poisson_arrivals

    n = args.n or 20_000
    n_modules = args.n_modules or 32
    seed = args.seed if args.seed is not None else 7

    try:
        mix = {}
        for part in args.mix.split(","):
            kind, _, w = part.strip().partition("=")
            mix[kind] = float(w)
    except ValueError:
        print(f"error: malformed --mix {args.mix!r}")
        return 2
    if args.requests < 1:
        print("error: --requests must be >= 1")
        return 2
    res = _resolve_tune_config(args)
    if res == 2:
        return 2
    config = res.config
    controller = _make_controller(args)
    if controller == 2:
        return 2

    data = _dataset(args.dataset, n, seed)

    rate = args.rate
    if rate is None:
        # Express load relative to measured capacity at a well-amortised
        # reference batch; calibrate on a throwaway adapter so the serving
        # adapter starts cold.
        probe = make_adapter(args.index, data, n_modules=n_modules, seed=seed,
                             sim_mode=args.sim_mode)
        capacity = calibrate_capacity(probe, data, k=args.k, seed=seed)
        rate = args.load * capacity
        print(f"calibrated capacity ≈ {capacity:.0f} req/s; offering "
              f"{args.load:.2f}x = {rate:.0f} req/s")

    tenants = _parse_tenants(args.tenants)
    if tenants == 2:
        return 2
    arrival_fn = {"poisson": poisson_arrivals, "bursty": bursty_arrivals,
                  "diurnal": diurnal_arrivals}[args.arrival]
    arrivals = arrival_fn(rate, args.requests, seed=seed + 1)
    deadline_s = (args.deadline_ms * 1e-3 if args.deadline_ms is not None
                  else math.inf)
    try:
        requests = make_requests(data, arrivals, mix=mix, k=args.k,
                                 deadline_s=deadline_s, seed=seed + 2,
                                 tenants=tenants)
    except ValueError as e:
        print(f"error: {e}")
        return 2

    idx_cfg = make_index_config(config, kind=args.index, n_points=len(data),
                                n_modules=n_modules)
    adapter = make_adapter(args.index, data, n_modules=n_modules, seed=seed,
                           sim_mode=args.sim_mode, config=idx_cfg)
    _report_tuned(res)
    parts = _apply_tune_config(args, adapter, config)
    if parts == 2:
        return 2
    rebalancer = parts["rebalancer"]
    loop = ServeLoop(adapter,
                     AdmissionQueue(args.queue_depth, overflow=args.overflow,
                                    tenants=tenants),
                     parts["policy"], rebalancer=rebalancer,
                     controller=controller)
    result = loop.run(requests)

    print(f"=== serve — {args.dataset}, {args.index}, n={n}, P={n_modules}, "
          f"{args.arrival} arrivals, {config['batch.policy']} batching ===")
    print(result.stats.table())
    _report_rebalance(loop, rebalancer, adapter)
    _report_controller(controller)
    if args.out is not None or args.csv is not None:
        tune_doc = None
        if res.non_default() or (controller is not None and controller.active):
            tune_doc = {"knobs": res.config, "sources": res.sources}
        write_latency(result.stats, json_path=args.out, csv_path=args.csv,
                      batches=result.batches, config=tune_doc)
        for path in (args.out, args.csv):
            if path is not None:
                print(f"wrote {path}")
    return 0


def _run_sweep(args: argparse.Namespace) -> int:
    """The ``sweep`` subcommand: sharded paper-scale serve run."""
    import math

    from .eval.experiments import _dataset
    from .eval.harness import make_adapter
    from .serve import calibrate_capacity, run_sweep

    n = args.n or 20_000
    n_modules = args.n_modules or 2048
    seed = args.seed if args.seed is not None else 7

    try:
        mix = {}
        for part in args.mix.split(","):
            kind, _, w = part.strip().partition("=")
            mix[kind] = float(w)
    except ValueError:
        print(f"error: malformed --mix {args.mix!r}")
        return 2
    if args.requests < 1:
        print("error: --requests must be >= 1")
        return 2
    res = _resolve_tune_config(args)
    if res == 2:
        return 2
    config = res.config
    tenants = _parse_tenants(args.tenants)
    if tenants == 2:
        return 2
    _report_tuned(res)

    rate = args.rate
    if rate is None:
        # Per-shard rate, calibrated once on a throwaway adapter (all
        # shards serve the same index, so one probe speaks for all).
        data = _dataset(args.dataset, n, seed)
        probe = make_adapter(args.index, data, n_modules=n_modules,
                             seed=seed, sim_mode=args.sim_mode)
        capacity = calibrate_capacity(probe, data, k=args.k, seed=seed)
        rate = args.load * capacity
        print(f"calibrated capacity ≈ {capacity:.0f} req/s; offering "
              f"{args.load:.2f}x = {rate:.0f} req/s per shard")

    result = run_sweep(
        dataset=args.dataset, n=n, n_modules=n_modules, index=args.index,
        total_requests=args.requests, rate=rate, procs=args.procs, seed=seed,
        mix=mix, k=args.k,
        deadline_s=(args.deadline_ms * 1e-3 if args.deadline_ms is not None
                    else math.inf),
        queue_depth=args.queue_depth, overflow=args.overflow,
        policy=config["batch.policy"], fixed_batch=int(config["batch.fixed"]),
        sim_mode=args.sim_mode, arrival=args.arrival, tenants=tenants,
        tune_config=config if res.non_default() else None,
    )

    print(f"=== sweep — {args.dataset}, {args.index}, n={n}, P={n_modules}, "
          f"{args.arrival} arrivals, {config['batch.policy']} batching ===")
    print(result.table())
    if args.out is not None:
        args.out.write_text(json.dumps(result.to_dict(), indent=2))
        print(f"wrote {args.out}")
    if args.csv is not None:
        rows = [("n_shards", result.n_shards), ("n_offered", result.n_offered),
                ("n_done", result.n_done), ("n_failed", result.n_failed),
                ("n_timed_out", result.n_timed_out),
                ("n_rejected", result.n_rejected), ("n_shed", result.n_shed),
                ("aggregate_throughput", result.aggregate_throughput),
                ("aggregate_goodput", result.aggregate_goodput),
                ("wall_s", result.wall_s)]
        for group, d in (("latency", result.latency), ("queue", result.queue),
                         ("service", result.service)):
            rows.extend((f"{group}_{k}", v) for k, v in d.items())
        args.csv.write_text(
            "metric,value\n" + "\n".join(f"{k},{v}" for k, v in rows) + "\n")
        print(f"wrote {args.csv}")
    return 0


def _run_faults(args: argparse.Namespace) -> int:
    """The ``faults`` subcommand: serving under a seeded fault plan."""
    import math

    from .eval.experiments import _dataset
    from .eval.harness import make_adapter
    from .faults import FaultPlan
    from .obs import TraceCollector, write_latency
    from .serve import (
        AdmissionQueue,
        ServeLoop,
        calibrate_capacity,
        make_requests,
    )
    from .tune import make_index_config
    from .workloads import bursty_arrivals, diurnal_arrivals, poisson_arrivals

    n = args.n or 20_000
    n_modules = args.n_modules or 32
    seed = args.seed if args.seed is not None else 7
    fault_seed = args.fault_seed if args.fault_seed is not None else seed

    try:
        mix = {}
        for part in args.mix.split(","):
            kind, _, w = part.strip().partition("=")
            mix[kind] = float(w)
        crash_at = {}
        for spec in args.crash or []:
            mid, sep, rnd = spec.partition("@")
            if not sep:
                raise ValueError(f"malformed --crash {spec!r} (want MID@ROUND)")
            crash_at[int(mid)] = int(rnd)
        slow = {}
        for spec in args.slow or []:
            mid, sep, factor = spec.partition(":")
            if not sep:
                raise ValueError(f"malformed --slow {spec!r} (want MID:FACTOR)")
            slow[int(mid)] = float(factor)
        plan = FaultPlan(
            seed=fault_seed, crash_at=crash_at, crash_rate=args.crash_rate,
            max_crashes=args.max_crashes, drop_rate=args.drop_rate,
            slow_factors=slow, storm_rate=args.storm_rate,
            storm_factor=args.storm_factor, storm_rounds=args.storm_rounds,
        )
    except ValueError as e:
        print(f"error: {e}")
        return 2
    if args.requests < 1:
        print("error: --requests must be >= 1")
        return 2
    if any(mid >= n_modules or mid < 0 for mid in (*crash_at, *slow)):
        print(f"error: module ids must be in [0, {n_modules})")
        return 2
    res = _resolve_tune_config(args)
    if res == 2:
        return 2
    config = res.config
    controller = _make_controller(args)
    if controller == 2:
        return 2

    data = _dataset(args.dataset, n, seed)

    rate = args.rate
    if rate is None:
        # Calibrate against a fault-free throwaway adapter: capacity means
        # the healthy machine's capacity, so degradation is visible.
        probe = make_adapter(args.index, data, n_modules=n_modules, seed=seed,
                             sim_mode=args.sim_mode)
        capacity = calibrate_capacity(probe, data, k=args.k, seed=seed)
        rate = args.load * capacity
        print(f"calibrated fault-free capacity ≈ {capacity:.0f} req/s; "
              f"offering {args.load:.2f}x = {rate:.0f} req/s")

    tenants = _parse_tenants(args.tenants)
    if tenants == 2:
        return 2
    arrival_fn = {"poisson": poisson_arrivals, "bursty": bursty_arrivals,
                  "diurnal": diurnal_arrivals}[args.arrival]
    arrivals = arrival_fn(rate, args.requests, seed=seed + 1)
    deadline_s = (args.deadline_ms * 1e-3 if args.deadline_ms is not None
                  else math.inf)
    try:
        requests = make_requests(data, arrivals, mix=mix, k=args.k,
                                 deadline_s=deadline_s, seed=seed + 2,
                                 tenants=tenants)
    except ValueError as e:
        print(f"error: {e}")
        return 2

    tracer = TraceCollector()
    idx_cfg = make_index_config(config, kind=args.index, n_points=len(data),
                                n_modules=n_modules)
    adapter = make_adapter(args.index, data, n_modules=n_modules, seed=seed,
                           fault_plan=plan, tracer=tracer,
                           sim_mode=args.sim_mode, config=idx_cfg)
    _report_tuned(res)
    parts = _apply_tune_config(args, adapter, config)
    if parts == 2:
        return 2
    rebalancer = parts["rebalancer"]
    loop = ServeLoop(
        adapter, AdmissionQueue(args.queue_depth, overflow=args.overflow,
                                tenants=tenants),
        parts["policy"], max_retries=args.retries,
        backoff_s=args.backoff_ms * 1e-3,
        timeout_s=(args.timeout_ms * 1e-3 if args.timeout_ms is not None
                   else None),
        degraded_mode=not args.no_degraded, failover=not args.no_failover,
        rebalancer=rebalancer, controller=controller,
    )
    result = loop.run(requests)

    print(f"=== faults — {args.dataset}, {args.index}, n={n}, P={n_modules}, "
          f"{args.arrival} arrivals, {config['batch.policy']} batching ===")
    print(result.stats.table())
    _report_rebalance(loop, rebalancer, adapter)
    _report_controller(controller)

    summary = plan.summary()
    dead = sorted(adapter.system.dead_modules)
    events = (", ".join(f"{k}={v}" for k, v in sorted(summary.items()))
              if summary else "none")
    print(f"\ninjected events: {events}")
    print(f"dead modules: {dead if dead else 'none'} "
          f"({adapter.system.n_live}/{adapter.system.n_modules} live)")
    retried = sum(1 for b in result.batches if b.retries)
    print(f"batches: {len(result.batches)} total, {retried} retried")

    stats = adapter.system.stats
    rec = stats.phases.get("recovery")
    if rec is not None:
        t = adapter.tree.cost_model.time(rec)
        total_t = adapter.tree.cost_model.time(stats.total)
        share = 100.0 * t.total_s / total_t.total_s if total_t.total_s else 0.0
        print(f"recovery phase: {t.total_s * 1e3:.3f}ms simulated "
              f"({share:.2f}% of total sim time)")

    problems = tracer.timeline.reconcile(stats)
    print("trace reconciles exactly" if not problems
          else f"RECONCILIATION FAILED: {problems}")

    if args.out is not None or args.csv is not None:
        tune_doc = None
        if res.non_default() or (controller is not None and controller.active):
            tune_doc = {"knobs": res.config, "sources": res.sources}
        write_latency(result.stats, json_path=args.out, csv_path=args.csv,
                      batches=result.batches, faults=plan.events,
                      config=tune_doc)
        for path in (args.out, args.csv):
            if path is not None:
                print(f"wrote {path}")
    return 1 if problems else 0


def _run_tune(args: argparse.Namespace) -> int:
    """The ``tune`` subcommand: offline search / tuned serve / report."""
    if args.action == "apply":
        if args.profile is None:
            print("error: tune apply requires --profile")
            return 2
        return _run_serve(args)

    if args.action == "report":
        if args.profile is None:
            print("error: tune report requires --profile")
            return 2
        from .tune import default_space, load_profile

        try:
            doc = json.loads(args.profile.read_text())
            load_profile(doc, space=default_space())
        except (OSError, ValueError, KeyError) as e:
            print(f"error: cannot load profile {args.profile}: {e}")
            return 2
        params = doc.get("params", {})
        print(f"=== tuned profile — workload {doc['workload']}, "
              f"seed {doc['seed']} ===")
        print(f"search: {doc.get('evaluated', '?')} configs evaluated, "
              f"{len(doc.get('pareto_front', []))} on the Pareto front "
              f"(n={params.get('n')}, P={params.get('n_modules')}, "
              f"requests={params.get('requests')})")
        tuned = doc.get("tuned", {})
        print("tuned knobs: " + (", ".join(
            f"{k}={v}" for k, v in sorted(tuned.items())) or "(defaults)"))
        base, best = doc.get("baseline", {}), doc.get("objectives", {})
        imp = doc.get("improvement", {})

        def x(v):
            return f"{v:.2f}x" if isinstance(v, (int, float)) else "n/a"

        print(f"goodput: {base.get('goodput', 0.0):,.1f} -> "
              f"{best.get('goodput', 0.0):,.1f} req/s "
              f"({x(imp.get('goodput'))})")
        print(f"p99:     {base.get('p99_s', 0.0) * 1e3:.3f}ms -> "
              f"{best.get('p99_s', 0.0) * 1e3:.3f}ms ({x(imp.get('p99'))})")
        print(f"comm:    {base.get('comm_words', 0.0):,.0f} -> "
              f"{best.get('comm_words', 0.0):,.0f} words "
              f"({x(imp.get('comm_words'))})")
        return 0

    # ------------------------------------------------------------ search
    from .tune import profile_json, search

    res = _resolve_tune_config(args)
    if res == 2:
        return 2
    if res.non_default():
        print("error: tune search explores from the shipped defaults; "
              "knob flags and --profile belong to 'tune apply' "
              f"(got: {', '.join(sorted(res.non_default()))})")
        return 2
    knobs = None
    if args.knobs:
        knobs = tuple(k.strip() for k in args.knobs.split(",") if k.strip())
    seed = args.seed if args.seed is not None else 7
    try:
        result = search(
            args.workload, seed=seed, n=args.n or 4000,
            n_modules=args.n_modules or 8, requests=args.requests,
            rate=args.rate, load=args.load, k=args.k,
            deadline_ms=args.deadline_ms, generations=args.generations,
            beam=args.beam, procs=args.procs, knobs=knobs,
            queue_depth=args.queue_depth)
    except (ValueError, RuntimeError) as e:
        print(f"error: {e}")
        return 2
    print(f"=== tune search — {args.workload}, seed {seed}, "
          f"generations={args.generations}, beam={args.beam} ===")
    print(result.table())
    failed = sum(1 for nd in result.nodes.values() if nd.error)
    if failed:
        print(f"note: {failed} candidate evaluation(s) failed and were "
              "pruned")
    if args.out is not None:
        args.out.write_text(profile_json(result))
        print(f"wrote {args.out}")
    return 0


def _run_balance(args: argparse.Namespace) -> int:
    """The ``balance`` subcommand: rebalance-off vs rebalance-on serving."""
    from .balance import BalanceConfig, OnlineRebalancer
    from .eval.experiments import _dataset
    from .eval.harness import PIMZdTreeAdapter
    from .eval.skewbench import (
        boxes_under_metas,
        hottest_colocated_metas,
        queries_under_metas,
        steady_state_throughput,
        throughput_timeline,
    )
    from .obs import TraceCollector
    from .workloads import bin_points, gini_coefficient

    n = args.n or 16_000
    batch = args.batch or 64
    n_modules = args.n_modules or 16
    seed = args.seed if args.seed is not None else 8
    if args.steps < 2:
        print("error: --steps must be >= 2")
        return 2

    data = _dataset(args.dataset, n, seed)
    gini = gini_coefficient(bin_points(data))
    cfg = BalanceConfig(
        ratio_threshold=args.ratio_threshold,
        gini_threshold=args.gini_threshold,
        budget_words=args.budget_words,
        max_moves=args.max_moves,
        seed=seed,
    )

    def build():
        tracer = TraceCollector()
        adapter = PIMZdTreeAdapter(data, n_modules=n_modules, seed=seed,
                                   tracer=tracer)
        return adapter, tracer

    # Construction is deterministic, so both runs see the same layout and
    # the same adversarial query stream.
    adapter_off, tracer_off = build()
    hot_mid, hot_metas = hottest_colocated_metas(adapter_off.tree)
    if args.kind == "bc":
        queries = boxes_under_metas(adapter_off.tree, hot_metas,
                                    max(batch, 256), seed=seed + 1)
    else:
        queries = queries_under_metas(adapter_off.tree, hot_metas,
                                      max(batch, 1024), seed=seed + 1)
    print(f"=== balance — {args.dataset} (gini={gini:.3f}), n={n}, "
          f"P={n_modules}, kind={args.kind}, batch={batch}, "
          f"steps={args.steps} ===")
    print(f"attacking module {hot_mid}: {len(hot_metas)} colocated chunks, "
          f"{sum(m.root.count for m in hot_metas):,} points under them")

    rows_off = throughput_timeline(adapter_off, queries, steps=args.steps,
                                   batch=batch, k=args.k, kind=args.kind)
    adapter_on, tracer_on = build()
    rebalancer = OnlineRebalancer(adapter_on.tree, cfg)
    rows_on = throughput_timeline(adapter_on, queries, steps=args.steps,
                                  batch=batch, k=args.k, kind=args.kind,
                                  rebalancer=rebalancer)

    off = steady_state_throughput(rows_off)
    on = steady_state_throughput(rows_on)
    speedup = on / off if off > 0 else float("inf")
    print(f"\n{'step':>4} {'off req/s':>12} {'on req/s':>12} {'moves':>6}")
    for a, b in zip(rows_off, rows_on):
        print(f"{a['step']:>4} {a['throughput']:>12.0f} "
              f"{b['throughput']:>12.0f} {b['migrations']:>6}")
    print(f"\nsteady-state throughput (trailing half): "
          f"off {off:,.0f} req/s, on {on:,.0f} req/s — {speedup:.2f}x")
    print(f"migrations: {rebalancer.migrations} chunk moves, "
          f"{rebalancer.words_moved:,.0f} words, "
          f"{len(rebalancer.history)} invocations")

    stats = adapter_on.system.stats
    reb = stats.phases.get("rebalance")
    if reb is not None:
        t = adapter_on.tree.cost_model.time(reb)
        total_t = adapter_on.tree.cost_model.time(stats.total)
        share = 100.0 * t.total_s / total_t.total_s if total_t.total_s else 0.0
        print(f"rebalance phase: {t.total_s * 1e3:.3f}ms simulated "
              f"({share:.2f}% of total sim time)")

    problems = (tracer_off.timeline.reconcile(adapter_off.system.stats)
                + tracer_on.timeline.reconcile(adapter_on.system.stats))
    print("traces reconcile exactly" if not problems
          else f"RECONCILIATION FAILED: {problems}")

    if args.out is not None:
        from .obs import sanitize_json

        doc = sanitize_json({
            "format": "repro.obs/balance-1",
            "dataset": args.dataset, "gini": gini, "n": n,
            "n_modules": n_modules, "kind": args.kind,
            "batch": batch, "k": args.k,
            "hot_module": int(hot_mid),
            "hot_chunks": len(hot_metas),
            "timeline_off": rows_off, "timeline_on": rows_on,
            "steady_state": {"off": off, "on": on, "speedup": speedup},
            "migrations": rebalancer.history,
            "reconciliation": {"exact": not problems, "problems": problems},
        })
        args.out.write_text(json.dumps(doc, indent=2, allow_nan=False))
        print(f"wrote {args.out}")
    return 1 if problems else 0


def _store_backend(args: argparse.Namespace, path: Path):
    from .store import open_backend

    return open_backend(args.backend, path)


def _run_store(args: argparse.Namespace) -> int:
    """The ``store`` subcommand: durable tier demo / inspect / recover."""
    from .store import SnapshotStore, StoreError, committed_seqs, scan_wal

    if args.action in ("inspect", "recover"):
        if args.path is None:
            print(f"error: --path is required for {args.action}")
            return 2
        try:
            backend = _store_backend(args, args.path)
        except (OSError, StoreError) as e:
            print(f"error: cannot open store at {args.path}: {e}")
            return 2

    if args.action == "inspect":
        try:
            image = SnapshotStore(backend).load_image()
        except StoreError as e:
            print(f"error: {e}")
            return 1
        man = image.manifest
        tree_m, sys_m = man["tree"], man["system"]
        print(f"=== store — {args.backend} backend at {args.path} ===")
        print(f"snapshot: v{man['version']}, covers WAL seq <= "
              f"{man['wal_seq']}; {tree_m['size']:,} points, "
              f"dims={tree_m['dims']}, P={sys_m['n_modules']}, "
              f"seed={sys_m['seed']}, "
              f"dead={sys_m['dead_modules'] or 'none'}")
        print(f"chunks: {len(image.chunks)} ({image.total_bytes:,} bytes "
              f"incl. topology)")
        raw = backend.wal_read()
        try:
            records, torn = scan_wal(raw)
        except StoreError as e:
            print(f"WAL CORRUPT: {e}")
            return 1
        committed = committed_seqs(records)
        print(f"\nWAL: {len(raw):,} bytes, {len(records)} records")
        for r in records:
            mark = ("committed" if r.seq in committed else "UNCOMMITTED"
                    ) if r.kind_name in ("insert", "delete") else "control"
            print(f"  @{r.offset:<8} seq={r.seq:<6} {r.kind_name:<9} "
                  f"{len(r.payload):>8}B  {mark}")
        if torn is not None:
            print(f"  torn tail at byte {torn.offset}: {torn.reason} "
                  f"({torn.dropped_bytes}B dropped on replay)")
        return 0

    if args.action == "recover":
        from .obs import TraceCollector
        from .store import recover

        tracer = TraceCollector()
        try:
            res = recover(backend, tracer=tracer)
        except StoreError as e:
            print(f"error: recovery refused: {e}")
            return 1
        stats = res.system.stats
        t = res.tree.cost_model.time(stats.total)
        print(f"=== recover — {args.backend} backend at {args.path} ===")
        print(f"snapshot seq {res.snapshot_seq} ({res.snapshot_words:,.0f} "
              f"words) + {res.wal_records} WAL records: {res.replayed} "
              f"replayed, {res.skipped_uncommitted} uncommitted skipped"
              + (", torn tail dropped" if res.torn_tail else ""))
        print(f"index: {res.tree.root.count:,} points on "
              f"{res.system.n_live}/{res.system.n_modules} modules")
        print(f"charged restart cost: {t.total_s * 1e3:.3f}ms simulated, "
              f"all under the 'recovery' phase "
              f"(phases: {sorted(stats.phases)})")
        problems = tracer.timeline.reconcile(stats)
        print("trace reconciles exactly" if not problems
              else f"RECONCILIATION FAILED: {problems}")
        return 1 if problems else 0

    # ------------------------------------------------------------- demo
    import math
    import tempfile

    from .eval.experiments import _dataset
    from .eval.harness import make_adapter
    from .faults import FaultPlan
    from .obs import TraceCollector, write_latency
    from .serve import (
        AdaptiveBatchPolicy,
        AdmissionQueue,
        ServeLoop,
        calibrate_capacity,
        make_requests,
    )
    from .store import DurableStore
    from .workloads import poisson_arrivals

    n = args.n or 20_000
    n_modules = args.n_modules or 32
    seed = args.seed if args.seed is not None else 7
    try:
        mix = {}
        for part in args.mix.split(","):
            kind, _, w = part.strip().partition("=")
            mix[kind] = float(w)
    except ValueError:
        print(f"error: malformed --mix {args.mix!r}")
        return 2
    if args.requests < 1:
        print("error: --requests must be >= 1")
        return 2

    path = args.path
    if path is None:
        tmp = Path(tempfile.mkdtemp(prefix="repro-store-"))
        path = tmp / "store.db" if args.backend == "sqlite" else tmp
    backend = _store_backend(args, path)

    data = _dataset(args.dataset, n, seed)
    probe = make_adapter("pim", data, n_modules=n_modules, seed=seed)
    capacity = calibrate_capacity(probe, data, k=args.k, seed=seed)
    rate = args.load * capacity
    print(f"calibrated capacity ≈ {capacity:.0f} req/s; offering "
          f"{args.load:.2f}x = {rate:.0f} req/s")
    arrivals = poisson_arrivals(rate, args.requests, seed=seed + 1)
    try:
        requests = make_requests(data, arrivals, mix=mix, k=args.k,
                                 deadline_s=math.inf, seed=seed + 2)
    except ValueError as e:
        print(f"error: {e}")
        return 2

    plan = (FaultPlan(machine_kill_at=args.kill_round)
            if args.kill_round is not None else None)
    tracer = TraceCollector()
    adapter = make_adapter("pim", data, n_modules=n_modules, seed=seed,
                           fault_plan=plan, tracer=tracer)
    store = DurableStore(backend, budget_fraction=args.budget_fraction)
    store.attach(adapter.tree)
    loop = ServeLoop(adapter, AdmissionQueue(1024), AdaptiveBatchPolicy(),
                     store=store, max_restarts=args.max_restarts)
    result = loop.run(requests)

    print(f"=== store demo — {args.dataset}, n={n}, P={n_modules}, "
          f"{args.backend} backend at {path} ===")
    print(result.stats.table())
    print(f"\ncheckpoints: {loop.checkpoints} "
          f"({loop.checkpoint_time_s * 1e3:.3f}ms of simulated time); "
          f"WAL records pending: {store.dirty_records}")
    for r in loop.restarts:
        print(f"machine killed at t={r['killed_at_s'] * 1e3:.3f}ms, "
              f"recovered at t={r['recovered_at_s'] * 1e3:.3f}ms "
              f"(restart {r['restart_s'] * 1e3:.3f}ms = time-to-first-query; "
              f"{r['replayed']} replayed, "
              f"{r['skipped_uncommitted']} uncommitted skipped)")
    if plan is not None and not loop.restarts:
        print("no machine kill fired (too few BSP rounds before --kill-round?)")

    stats = adapter.system.stats
    rec = stats.phases.get("recovery")
    if rec is not None:
        t = adapter.tree.cost_model.time(rec)
        total_t = adapter.tree.cost_model.time(stats.total)
        share = 100.0 * t.total_s / total_t.total_s if total_t.total_s else 0.0
        print(f"recovery phase: {t.total_s * 1e3:.3f}ms simulated "
              f"({share:.2f}% of the post-restart system's sim time)")

    # The serve tracer watches the pre-crash system, whose stats die with
    # the kill — so after a restart, reconcile a *fresh* standalone
    # recovery instead (every charge on that system is recovery, traced
    # from birth).  Crash-free runs reconcile the serve trace directly.
    if loop.restarts:
        from .store import recover

        tracer2 = TraceCollector()
        res = recover(backend, tracer=tracer2,
                      cost_model=adapter.tree.cost_model)
        problems = tracer2.timeline.reconcile(res.system.stats)
        print("recovery trace reconciles exactly" if not problems
              else f"RECOVERY RECONCILIATION FAILED: {problems}")
    else:
        problems = tracer.timeline.reconcile(stats)
        print("trace reconciles exactly" if not problems
              else f"RECONCILIATION FAILED: {problems}")

    if args.out is not None:
        write_latency(result.stats, json_path=args.out,
                      batches=result.batches,
                      faults=plan.events if plan is not None else None,
                      store_events=store.events, restarts=loop.restarts)
        print(f"wrote {args.out}")
    return 1 if problems else 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.command == "list":
        print("available experiments:")
        for name, fn in ALL_EXPERIMENTS.items():
            doc = (fn.__doc__ or "").strip().splitlines()
            print(f"  {name:8s} {doc[0] if doc else ''}")
        return 0

    if args.command == "trace":
        return _run_trace(args)

    if args.command == "serve":
        return _run_serve(args)

    if args.command == "faults":
        return _run_faults(args)

    if args.command == "sweep":
        return _run_sweep(args)

    if args.command == "tune":
        return _run_tune(args)

    if args.command == "balance":
        return _run_balance(args)

    if args.command == "store":
        return _run_store(args)

    if args.command == "all":
        kwargs = _kwargs_from(args)
        results = []
        for name in ALL_EXPERIMENTS:
            kw = dict(kwargs)
            results.append(_run_one(name, kw))
        if args.out is not None:
            args.out.mkdir(parents=True, exist_ok=True)
            report = args.out / "report.md"
            with report.open("w") as f:
                f.write("# PIM-zd-tree reproduction report\n\n")
                for r in results:
                    f.write(f"## {r.name} ({r.paper_ref})\n\n```\n{r.table()}\n```\n")
                    if r.notes:
                        f.write(f"\n{r.notes}\n")
                    f.write("\n")
            blob = {
                r.name: {"headers": r.headers, "rows": r.rows, "notes": r.notes}
                for r in results
            }
            (args.out / "results.json").write_text(json.dumps(blob, indent=2))
            print(f"wrote {report} and {args.out / 'results.json'}")
        return 0

    _run_one(args.command, _kwargs_from(args))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
