"""Command-line driver: regenerate any paper experiment from a shell.

Examples::

    python -m repro.cli list
    python -m repro.cli fig5 --dataset osm --n 30000
    python -m repro.cli table3 --batch 256
    python -m repro.cli all --out results/

``all`` runs every experiment and (with ``--out``) writes one markdown
report plus a JSON dump of the raw rows.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from .eval.experiments import ALL_EXPERIMENTS, DATASETS, ExperimentResult

_COMMON_PARAMS = {
    "n": (int, "warmup dataset size"),
    "batch": (int, "operations per measured batch"),
    "n_modules": (int, "simulated PIM modules"),
    "seed": (int, "master seed"),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Regenerate the PIM-zd-tree paper's tables and figures "
                    "on the simulated PIM system.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    for name in ALL_EXPERIMENTS:
        p = sub.add_parser(name, help=f"run the {name} experiment")
        _add_common(p)
        if name in ("fig5", "latency"):
            p.add_argument(
                "--dataset", default="uniform" if name == "fig5" else "osm",
                choices=sorted(DATASETS), help="workload distribution",
            )

    p_all = sub.add_parser("all", help="run every experiment")
    _add_common(p_all)
    p_all.add_argument("--out", type=Path, default=None,
                       help="directory for report.md / results.json")
    return parser


def _add_common(p: argparse.ArgumentParser) -> None:
    for name, (typ, help_text) in _COMMON_PARAMS.items():
        p.add_argument(f"--{name.replace('_', '-')}", type=typ, default=None,
                       help=help_text)


def _kwargs_from(args: argparse.Namespace) -> dict:
    kw = {}
    for name in _COMMON_PARAMS:
        v = getattr(args, name, None)
        if v is not None:
            kw[name] = v
    if getattr(args, "dataset", None) is not None:
        kw["dataset"] = args.dataset
    return kw


def _run_one(name: str, kwargs: dict) -> ExperimentResult:
    import inspect

    fn = ALL_EXPERIMENTS[name]
    accepted = set(inspect.signature(fn).parameters)
    kwargs = {k: v for k, v in kwargs.items() if k in accepted}
    t0 = time.time()
    result = fn(**kwargs)
    print(result)
    print(f"[{name} completed in {time.time() - t0:.1f}s wall]\n")
    return result


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.command == "list":
        print("available experiments:")
        for name, fn in ALL_EXPERIMENTS.items():
            doc = (fn.__doc__ or "").strip().splitlines()
            print(f"  {name:8s} {doc[0] if doc else ''}")
        return 0

    if args.command == "all":
        kwargs = _kwargs_from(args)
        results = []
        for name in ALL_EXPERIMENTS:
            kw = dict(kwargs)
            results.append(_run_one(name, kw))
        if args.out is not None:
            args.out.mkdir(parents=True, exist_ok=True)
            report = args.out / "report.md"
            with report.open("w") as f:
                f.write("# PIM-zd-tree reproduction report\n\n")
                for r in results:
                    f.write(f"## {r.name} ({r.paper_ref})\n\n```\n{r.table()}\n```\n")
                    if r.notes:
                        f.write(f"\n{r.notes}\n")
                    f.write("\n")
            blob = {
                r.name: {"headers": r.headers, "rows": r.rows, "notes": r.notes}
                for r in results
            }
            (args.out / "results.json").write_text(json.dumps(blob, indent=2))
            print(f"wrote {report} and {args.out / 'results.json'}")
        return 0

    _run_one(args.command, _kwargs_from(args))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
