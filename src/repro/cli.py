"""Command-line driver: regenerate any paper experiment from a shell.

Examples::

    python -m repro.cli list
    python -m repro.cli fig5 --dataset osm --n 30000
    python -m repro.cli table3 --batch 256
    python -m repro.cli all --out results/
    python -m repro.cli trace --ops insert,bc-10,10-nn --out trace.json

``all`` runs every experiment and (with ``--out``) writes one markdown
report plus a JSON dump of the raw rows.  ``trace`` runs a workload with
the ``repro.obs`` collector attached and exports the per-phase/per-module
timeline (JSON, optionally CSV), checking that the trace reconciles
exactly with the simulator's counters.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from .eval.experiments import ALL_EXPERIMENTS, DATASETS, ExperimentResult

_COMMON_PARAMS = {
    "n": (int, "warmup dataset size"),
    "batch": (int, "operations per measured batch"),
    "n_modules": (int, "simulated PIM modules"),
    "seed": (int, "master seed"),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Regenerate the PIM-zd-tree paper's tables and figures "
                    "on the simulated PIM system.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    for name in ALL_EXPERIMENTS:
        p = sub.add_parser(name, help=f"run the {name} experiment")
        _add_common(p)
        if name in ("fig5", "latency"):
            p.add_argument(
                "--dataset", default="uniform" if name == "fig5" else "osm",
                choices=sorted(DATASETS), help="workload distribution",
            )

    p_all = sub.add_parser("all", help="run every experiment")
    _add_common(p_all)
    p_all.add_argument("--out", type=Path, default=None,
                       help="directory for report.md / results.json")

    p_tr = sub.add_parser(
        "trace",
        help="run a traced workload; export the per-phase/per-module timeline",
    )
    _add_common(p_tr)
    p_tr.add_argument("--dataset", default="uniform", choices=sorted(DATASETS),
                      help="workload distribution")
    p_tr.add_argument("--ops", default="insert,bc-10,bf-10,10-nn",
                      help="comma-separated Fig. 5 operation names")
    p_tr.add_argument("--out", type=Path, default=None,
                      help="path for the JSON trace document")
    p_tr.add_argument("--csv", type=Path, default=None,
                      help="path for the per-phase CSV table")
    p_tr.add_argument("--ring", type=int, default=65536,
                      help="raw-event ring-buffer capacity")
    p_tr.add_argument("--no-events", action="store_true",
                      help="omit raw events from the JSON document")
    return parser


def _add_common(p: argparse.ArgumentParser) -> None:
    for name, (typ, help_text) in _COMMON_PARAMS.items():
        p.add_argument(f"--{name.replace('_', '-')}", type=typ, default=None,
                       help=help_text)


def _kwargs_from(args: argparse.Namespace) -> dict:
    kw = {}
    for name in _COMMON_PARAMS:
        v = getattr(args, name, None)
        if v is not None:
            kw[name] = v
    if getattr(args, "dataset", None) is not None:
        kw["dataset"] = args.dataset
    return kw


def _run_one(name: str, kwargs: dict) -> ExperimentResult:
    import inspect

    fn = ALL_EXPERIMENTS[name]
    accepted = set(inspect.signature(fn).parameters)
    kwargs = {k: v for k, v in kwargs.items() if k in accepted}
    t0 = time.time()
    result = fn(**kwargs)
    print(result)
    print(f"[{name} completed in {time.time() - t0:.1f}s wall]\n")
    return result


def _run_trace(args: argparse.Namespace) -> int:
    """The ``trace`` subcommand: traced workload → timeline export."""
    from .eval import phase_breakdown_table, run_suite
    from .eval.experiments import _dataset
    from .eval.harness import PIMZdTreeAdapter
    from .obs import TraceCollector, timeline_csv, write_trace

    n = args.n or 20_000
    batch = args.batch or 256
    n_modules = args.n_modules or 32
    seed = args.seed if args.seed is not None else 7
    ops = tuple(o.strip() for o in args.ops.split(",") if o.strip())
    for op in ops:
        root = op.split("-")[0]
        valid = (op == "insert" or
                 (op.endswith("-nn") and root.isdigit()) or
                 (op.startswith(("bc-", "bf-")) and op[3:].isdigit()))
        if not valid:
            print(f"error: unknown op {op!r} "
                  "(expected insert, bc-N, bf-N or K-nn)")
            return 2
    if args.ring < 1:
        print("error: --ring must be >= 1")
        return 2

    data = _dataset(args.dataset, n, seed)
    gen = DATASETS[args.dataset]
    counter = {"i": 0}

    def fresh(m: int):
        counter["i"] += 1
        return gen(m, 3, seed=seed * 1000 + counter["i"])

    tracer = TraceCollector(capacity=args.ring)
    adapter = PIMZdTreeAdapter(data, n_modules=n_modules, seed=seed,
                               tracer=tracer)
    measurements = run_suite(adapter, data=data, ops=ops, batch=batch,
                             seed=seed, fresh_points=fresh)

    print(f"=== trace — {args.dataset}, n={n}, batch={batch}, "
          f"P={n_modules}, ops={','.join(ops)} ===")
    print(phase_breakdown_table(measurements))
    print(f"\nevents emitted: {tracer.seq} (retained {len(tracer.events())}, "
          f"dropped {tracer.dropped}); rounds: {tracer.rounds_seen}")

    problems = tracer.timeline.reconcile(adapter.system.stats)
    if problems:
        print("RECONCILIATION FAILED:")
        for p in problems:
            print(f"  {p}")
    else:
        print("trace reconciles exactly with PIMStats totals")

    if args.out is not None or args.csv is not None:
        write_trace(tracer, json_path=args.out, csv_path=args.csv,
                    stats=adapter.system.stats,
                    include_events=not args.no_events)
        for path in (args.out, args.csv):
            if path is not None:
                print(f"wrote {path}")
    elif args.csv is None and args.out is None:
        print("\n" + timeline_csv(tracer))
    return 1 if problems else 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.command == "list":
        print("available experiments:")
        for name, fn in ALL_EXPERIMENTS.items():
            doc = (fn.__doc__ or "").strip().splitlines()
            print(f"  {name:8s} {doc[0] if doc else ''}")
        return 0

    if args.command == "trace":
        return _run_trace(args)

    if args.command == "all":
        kwargs = _kwargs_from(args)
        results = []
        for name in ALL_EXPERIMENTS:
            kw = dict(kwargs)
            results.append(_run_one(name, kw))
        if args.out is not None:
            args.out.mkdir(parents=True, exist_ok=True)
            report = args.out / "report.md"
            with report.open("w") as f:
                f.write("# PIM-zd-tree reproduction report\n\n")
                for r in results:
                    f.write(f"## {r.name} ({r.paper_ref})\n\n```\n{r.table()}\n```\n")
                    if r.notes:
                        f.write(f"\n{r.notes}\n")
                    f.write("\n")
            blob = {
                r.name: {"headers": r.headers, "rows": r.rows, "notes": r.notes}
                for r in results
            }
            (args.out / "results.json").write_text(json.dumps(blob, indent=2))
            print(f"wrote {report} and {args.out / 'results.json'}")
        return 0

    _run_one(args.command, _kwargs_from(args))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
