"""Host-resident per-module membership filters for send suppression.

PIM-tree's skew-resistance lesson (PAPERS.md) and the PrIM study agree:
these workloads are communication-bound, so the cheapest round is the one
never sent.  :class:`RouteFilterSet` keeps, on the host,

* a **global Bloom filter** over every resident Morton key — one probe
  decides whether a point lookup or delete can possibly hit anything, so
  the whole L1/L2 descent for a provably-absent key is suppressed;
* **per-module Bloom filters** over the keys resident on each module
  (primary chunks plus replica copies), probed on descent hops whose
  target chunk is *closed* (no external children — the traversal cannot
  continue elsewhere, so module-level absence proves the send is empty);
* a **per-module zvalue-range summary** — for each chunk mastered on the
  module, the ``[min, max]`` of its resident keys — probed by the kNN
  candidate/fetch routers with the query ball's covering z-range
  (Morton encoding is monotone per coordinate, so the encoded corners of
  the ball's bounding box bracket every key the ball can contain).

A filter can only suppress **provably-empty** sends: Bloom filters have
no false negatives over the indexed key set, range summaries are exact
bounds, and closedness is structural — so answers stay byte-identical
and a false positive costs exactly what the unfiltered send costs today.

Maintenance is charged honestly.  Filters rebuild from residency inside
``tree.refresh_residency()``, which every path that moves keys already
calls under its charged phase (bulk upload, insert/delete batches,
rebalance migrate/clone, replica install/promotion, failover rebuild,
recovery replay).  A full rebuild charges ``k`` hash ops per indexed key
plus a DRAM stream of the filter words under a ``"route"`` phase (the
pinned ``"recovery"`` phase keeps recovery attribution).  **Insert-only
batches are cheaper**: the insert path stages its new keys
(:meth:`RouteFilterSet.stage_inserts`), and when the rebuild's residency
walk proves nothing else moved, the new bits are OR-ed in place —
bit-identical to the full rebuild, but charged per *new* key only.
Deletes, migrations and every other structural change fall back to the
full rebuild automatically (the staged arithmetic stops matching).
Probes charge a few host ops each.  Crash-restart persists only ``(fpr,
seed, enabled)`` in the snapshot manifest — the bit arrays are a pure
function of residency and seed, so :func:`repro.store.recovery.recover`
rebuilds them bit-identically.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["RouteFilterSet", "DEFAULT_FPR"]

DEFAULT_FPR = 0.01

_MASK64 = (1 << 64) - 1
# splitmix64 constants; two seeded streams give the double-hashing pair.
_C1 = 0x9E3779B97F4A7C15
_C2 = 0xBF58476D1CE4E5B9
_C3 = 0x94D049BB133111EB

# Charge model (host ops, all integers).
_PROBE_BASE_OPS = 2          # range/closedness checks per probe
_HASH_OPS = 1                # per hash function evaluated
_REBUILD_OPS_PER_KEY = 1     # per (key, hash) bit set during a rebuild
_REBUILD_OPS_PER_META = 4    # per-chunk summary bookkeeping


def _splitmix_array(x: np.ndarray, salt: int) -> np.ndarray:
    """Vectorized splitmix64 finalizer over uint64 keys."""
    with np.errstate(over="ignore"):
        z = (x ^ np.uint64(salt & _MASK64)) + np.uint64(_C1)
        z = (z ^ (z >> np.uint64(30))) * np.uint64(_C2)
        z = (z ^ (z >> np.uint64(27))) * np.uint64(_C3)
        return z ^ (z >> np.uint64(31))


def _splitmix_int(x: int, salt: int) -> int:
    """Scalar splitmix64, bit-identical to :func:`_splitmix_array`."""
    z = ((x ^ (salt & _MASK64)) + _C1) & _MASK64
    z = ((z ^ (z >> 30)) * _C2) & _MASK64
    z = ((z ^ (z >> 27)) * _C3) & _MASK64
    return z ^ (z >> 31)


def _bloom_params(n_keys: int, fpr: float) -> tuple[int, int]:
    """(m_bits power of two, k hashes) sized for ``n_keys`` at ``fpr``."""
    k = max(1, min(16, round(-math.log2(fpr))))
    want = max(64, math.ceil(n_keys * k / math.log(2)))
    m_bits = 1 << (want - 1).bit_length()
    return m_bits, k


class _ModuleFilter:
    """Bloom bits + resident-key range for one module."""

    __slots__ = ("words", "m_bits", "k", "lo", "hi", "n_keys")

    def __init__(self, keys: np.ndarray, fpr: float, seed: int) -> None:
        self.n_keys = len(keys)
        self.m_bits, self.k = _bloom_params(max(1, self.n_keys), fpr)
        self.words = np.zeros(self.m_bits // 64, dtype=np.uint64)
        if self.n_keys:
            self.lo = int(keys.min())
            self.hi = int(keys.max())
            mask = np.uint64(self.m_bits - 1)
            h1 = _splitmix_array(keys, seed)
            h2 = _splitmix_array(keys, seed + 1) | np.uint64(1)
            with np.errstate(over="ignore"):
                for i in range(self.k):
                    idx = (h1 + np.uint64(i) * h2) & mask
                    np.bitwise_or.at(
                        self.words, (idx >> np.uint64(6)).astype(np.int64),
                        np.uint64(1) << (idx & np.uint64(63)),
                    )
        else:
            self.lo = None
            self.hi = None

    def add(self, keys: np.ndarray, seed: int) -> None:
        """OR ``keys``' bits in place and widen the range summary.

        Bloom bits are an OR over per-key hashes, so adding the new
        keys' bits to the existing array is *bit-identical* to a full
        rebuild over old ∪ new — provided ``m_bits``/``k`` are unchanged
        (the caller checks :func:`_bloom_params` before choosing this
        path) and the seed is the same.
        """
        if not len(keys):
            return
        mask = np.uint64(self.m_bits - 1)
        h1 = _splitmix_array(keys, seed)
        h2 = _splitmix_array(keys, seed + 1) | np.uint64(1)
        with np.errstate(over="ignore"):
            for i in range(self.k):
                idx = (h1 + np.uint64(i) * h2) & mask
                np.bitwise_or.at(
                    self.words, (idx >> np.uint64(6)).astype(np.int64),
                    np.uint64(1) << (idx & np.uint64(63)),
                )
        klo, khi = int(keys.min()), int(keys.max())
        self.lo = klo if self.lo is None else min(self.lo, klo)
        self.hi = khi if self.hi is None else max(self.hi, khi)
        self.n_keys += len(keys)

    def probe(self, key: int, seed: int) -> bool:
        """May ``key`` be present?  No false negatives by construction."""
        if self.lo is None or not self.lo <= key <= self.hi:
            return False
        h1 = _splitmix_int(key, seed)
        h2 = _splitmix_int(key, seed + 1) | 1
        mask = self.m_bits - 1
        for i in range(self.k):
            idx = (h1 + i * h2) & mask
            if not (int(self.words[idx >> 6]) >> (idx & 63)) & 1:
                return False
        return True


class RouteFilterSet:
    """Membership-filter routing state attached to a :class:`PIMZdTree`.

    Constructing one attaches it as ``tree.route_filters`` (mirroring
    :class:`repro.replicate.ReplicaSet`) and builds the filters from the
    current residency, charged under a ``"route"`` phase.
    """

    def __init__(self, tree, *, fpr: float = DEFAULT_FPR, seed: int = 0,
                 enabled: bool = True) -> None:
        if not 0.0 < fpr < 0.5:
            raise ValueError("route-filter FPR must be in (0, 0.5)")
        self.tree = tree
        self.fpr = float(fpr)
        self.seed = int(seed)
        self.enabled = bool(enabled)
        # Observability counters (host-side, never charged).
        self.queries_pruned = 0
        self.words_saved = 0.0
        self.fp_probes = 0
        self.probes = 0
        self.rebuilds = 0
        self.incremental = 0         # rebuilds served by the in-place path
        self.keys_indexed = 0
        self._global: _ModuleFilter | None = None
        self._filters: dict[int, _ModuleFilter] = {}
        # meta.root.nid -> (module, res_lo, res_hi, closed)
        self._meta_info: dict[int, tuple[int, int | None, int | None, bool]] = {}
        # Incremental-maintenance state: keys staged by an insert-only
        # batch, per-chunk resident counts and the replica-placement
        # snapshot as of the last (re)build — the evidence the next
        # rebuild uses to prove that setting bits in place is safe.
        self._staged: np.ndarray | None = None
        self._chunk_counts: dict[int, int] = {}
        self._reps_snapshot: dict[int, tuple[int, ...]] = {}
        tree.route_filters = self
        self.rebuild()

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def stage_inserts(self, keys) -> None:
        """Declare that the residency change now in flight only *adds*
        ``keys`` (an insert batch).  The next :meth:`rebuild` then tries
        the in-place incremental path: Bloom bits are an OR over per-key
        hashes, so OR-ing the new keys' bits into the existing arrays is
        bit-identical to a full rebuild *provided* nothing else moved —
        which the rebuild verifies against the staged keys before
        touching a bit (and otherwise falls back to the full, charged
        rebuild, so stale or wrong staging can never corrupt a filter).
        Deletes, migrations and rollbacks never stage, so they keep the
        full-rebuild path.
        """
        arr = np.ascontiguousarray(np.asarray(keys, dtype=np.uint64))
        if not len(arr):
            return
        self._staged = (arr.copy() if self._staged is None
                        else np.concatenate([self._staged, arr]))

    def rebuild(self) -> None:
        """Recompute every filter from current residency (charged).

        Called from ``tree.refresh_residency()`` — i.e. inside every
        charged phase where residency actually changes — and once at
        attach time.  Determinism: bits are an OR over per-key hashes,
        so iteration order cannot matter; summaries iterate
        ``tree.metas`` in list order.

        When an insert-only batch staged its keys via
        :meth:`stage_inserts` and the residency walk proves nothing else
        changed, the rebuild is served **incrementally**: new bits are
        OR-ed into the existing arrays (bit-identical, see
        :meth:`_ModuleFilter.add`) and only the new keys' hashes are
        charged, instead of re-hashing every resident key.
        """
        staged = self._staged
        self._staged = None
        tree = self.tree
        sys = tree.system
        by_module: dict[int, list[np.ndarray]] = {}
        meta_info: dict[int, tuple[int, int | None, int | None, bool]] = {}
        all_keys: list[np.ndarray] = []
        chunk_keys: dict[int, np.ndarray] = {}
        for meta in tree.metas:
            closed = True
            parts: list[np.ndarray] = []
            stack = [meta.root]
            while stack:
                node = stack.pop()
                if node.meta is not meta:
                    closed = False
                    continue
                if node.is_leaf:
                    if len(node.keys):
                        parts.append(node.keys)
                    continue
                stack.append(node.left)
                stack.append(node.right)
            nid = meta.root.nid
            if parts:
                arr = np.concatenate(parts) if len(parts) > 1 else parts[0]
                chunk_keys[nid] = arr
                by_module.setdefault(meta.module, []).append(arr)
                all_keys.append(arr)
                meta_info[nid] = (meta.module, int(arr.min()), int(arr.max()),
                                  closed)
            else:
                meta_info[nid] = (meta.module, None, None, closed)
        # Keys held above the chunked layers (host/broadcast L0 leaves)
        # still belong in the global filter: absence there must prove
        # absence everywhere.
        stack = [tree.root]
        while stack:
            node = stack.pop()
            if node is None or node.meta is not None:
                continue
            if node.is_leaf:
                if len(node.keys):
                    all_keys.append(node.keys)
                continue
            stack.append(node.left)
            stack.append(node.right)
        # Replica copies: the keys are resident on the secondary modules
        # too (installed/promoted under their own charged phases).
        reps = getattr(self.tree, "replicas", None)
        reps_snap: dict[int, tuple[int, ...]] = {}
        if reps is not None:
            for nid, mids in reps._secondaries.items():
                reps_snap[int(nid)] = tuple(int(m) for m in mids)
                arr = chunk_keys.get(nid)
                if arr is None:
                    continue
                for mid in mids:
                    by_module.setdefault(int(mid), []).append(arr)

        if staged is not None and self._try_incremental(
                staged, chunk_keys, meta_info, all_keys, reps_snap):
            return

        seed = self.seed
        self._filters = {
            mid: _ModuleFilter(
                np.concatenate(parts) if len(parts) > 1 else parts[0],
                self.fpr, seed + 2 * (mid + 1),
            )
            for mid, parts in by_module.items()
        }
        gkeys = (np.concatenate(all_keys) if all_keys
                 else np.empty(0, dtype=np.uint64))
        self._global = _ModuleFilter(gkeys, self.fpr, seed)
        self._meta_info = meta_info
        self._chunk_counts = {nid: len(arr)
                              for nid, arr in chunk_keys.items()}
        self._reps_snapshot = reps_snap
        self.rebuilds += 1
        self.keys_indexed = int(sum(f.n_keys for f in self._filters.values())
                                + self._global.n_keys)

        # Charge the maintenance under its own phase (a pinned phase —
        # recovery — keeps its label): k hash ops per indexed key, the
        # per-chunk summary bookkeeping, and a DRAM stream of the bits.
        k_ops = (self._global.k * self._global.n_keys
                 + sum(f.k * f.n_keys for f in self._filters.values()))
        bit_words = (len(self._global.words)
                     + sum(len(f.words) for f in self._filters.values()))
        with sys.phase("route"):
            sys.charge_cpu(k_ops * _REBUILD_OPS_PER_KEY
                           + len(self._meta_info) * _REBUILD_OPS_PER_META)
            sys.dram_stream(bit_words)

    def _try_incremental(self, staged: np.ndarray, chunk_keys: dict,
                         meta_info: dict, all_keys: list,
                         reps_snap: dict) -> bool:
        """Serve a rebuild by OR-ing staged insert keys in place.

        All evidence comes from the *fresh* residency walk, checked
        against the state recorded by the last build — the staging is a
        hint, never trusted: (1) the chunk set, each chunk's module and
        closedness, and the replica placement are unchanged; (2) every
        chunk's resident count grew by exactly its share of the staged
        keys, and the global count by exactly ``len(staged)`` (a delete,
        move, split or re-insert of an existing key breaks the
        arithmetic and falls back); (3) no Bloom geometry changes —
        ``_bloom_params`` for the new counts must match every touched
        filter's existing ``(m_bits, k)``.  Only then are bits OR-ed in
        (bit-identical to the full rebuild, :meth:`_ModuleFilter.add`)
        and only the *new* keys' hashes charged.  Returns True when the
        rebuild was served in place.
        """
        g = self._global
        if g is None or not len(staged):
            return False
        old_info = self._meta_info
        if set(meta_info) != set(old_info):
            return False
        for nid, (module, _, _, closed) in meta_info.items():
            old = old_info[nid]
            if module != old[0] or closed != old[3]:
                return False
        if reps_snap != self._reps_snapshot:
            return False
        # Per-chunk arithmetic: new count == old count + staged keys
        # that landed in the chunk (and no chunk lost its keys).
        added_per_chunk: dict[int, np.ndarray] = {}
        for nid, arr in chunk_keys.items():
            add = arr[np.isin(arr, staged)]
            if len(arr) != self._chunk_counts.get(nid, 0) + len(add):
                return False
            if len(add):
                added_per_chunk[nid] = add
        for nid, old_n in self._chunk_counts.items():
            if old_n and nid not in chunk_keys:
                return False
        new_gn = int(sum(len(a) for a in all_keys))
        if new_gn != g.n_keys + len(staged):
            return False
        if _bloom_params(max(1, new_gn), self.fpr) != (g.m_bits, g.k):
            return False
        # Per-module additions: each touched chunk feeds its primary
        # module plus every replica secondary holding a copy.
        added_per_module: dict[int, list[np.ndarray]] = {}
        for nid, add in added_per_chunk.items():
            for mid in (meta_info[nid][0], *reps_snap.get(nid, ())):
                added_per_module.setdefault(int(mid), []).append(add)
        per_module: list[tuple[int, np.ndarray]] = []
        for mid in sorted(added_per_module):
            parts = added_per_module[mid]
            f = self._filters.get(mid)
            if f is None:
                return False  # module gained its first keys: full build
            add = np.concatenate(parts) if len(parts) > 1 else parts[0]
            if _bloom_params(max(1, f.n_keys + len(add)),
                             self.fpr) != (f.m_bits, f.k):
                return False
            per_module.append((mid, add))

        # Every check passed — mutate.  Bits are ORs, so the result is
        # bit-identical to the full rebuild over the same residency.
        touched: list[tuple[_ModuleFilter, int]] = []
        for mid, add in per_module:
            f = self._filters[mid]
            f.add(add, self.seed + 2 * (mid + 1))
            touched.append((f, len(add)))
        g.add(staged, self.seed)
        touched.append((g, len(staged)))
        self._meta_info = meta_info
        self._chunk_counts = {nid: len(arr)
                              for nid, arr in chunk_keys.items()}
        self._reps_snapshot = reps_snap
        self.rebuilds += 1
        self.incremental += 1
        self.keys_indexed = int(
            sum(f.n_keys for f in self._filters.values()) + g.n_keys)

        # Charge only the delta: k hash ops per *new* (key, copy) pair,
        # summary bookkeeping for the touched chunks, and a DRAM stream
        # bounded by the bits actually written (never more than the
        # filter itself — the full-rebuild stream is the ceiling).
        k_ops = sum(f.k * cnt for f, cnt in touched)
        bit_words = sum(min(len(f.words), f.k * cnt) for f, cnt in touched)
        sys = self.tree.system
        with sys.phase("route"):
            sys.charge_cpu(k_ops * _REBUILD_OPS_PER_KEY
                           + len(added_per_chunk) * _REBUILD_OPS_PER_META)
            sys.dram_stream(bit_words)
        return True

    # ------------------------------------------------------------------
    # probes (charged per call)
    # ------------------------------------------------------------------
    def _probe_global(self, key: int) -> bool:
        g = self._global
        self.probes += 1
        self.tree.system.charge_cpu(_PROBE_BASE_OPS + g.k * _HASH_OPS)
        return g.probe(key, self.seed)

    def _probe_module(self, mid: int, key: int) -> bool:
        f = self._filters.get(mid)
        self.probes += 1
        if f is None:
            self.tree.system.charge_cpu(_PROBE_BASE_OPS)
            return False
        self.tree.system.charge_cpu(_PROBE_BASE_OPS + f.k * _HASH_OPS)
        return f.probe(key, self.seed + 2 * (mid + 1))

    def _probe_meta_range(self, nid: int, zlo: int, zhi: int) -> bool:
        """May the chunk rooted at ``nid`` hold a key in ``[zlo, zhi]``?"""
        self.probes += 1
        self.tree.system.charge_cpu(_PROBE_BASE_OPS)
        info = self._meta_info.get(nid)
        if info is None:
            return True  # unknown chunk (stale summary): never suppress
        _, lo, hi, closed = info
        if not closed:
            return True  # traversal may continue into other chunks
        if lo is None:
            return False  # closed chunk with no resident keys
        return not (zhi < lo or zlo > hi)

    # ------------------------------------------------------------------
    # pre-send pruning callbacks
    # ------------------------------------------------------------------
    def prune_l0_route(self, results):
        """Global-filter gate ahead of the *replicated-L0* routing round.

        When L0 outgrew the LLC, every query pays a send + trace return
        just to walk L0 on a module — the earliest send there is, and at
        paper-scale P most point lookups never get past it.  Probing the
        global Bloom first suppresses that round participation for
        provably-absent keys.  Returns ``(surviving results, probed
        qids)``; the executor-level filter skips re-probing survivors.
        """
        from ..core.push_pull import QUERY_WORDS
        from ..core.search import TRACE_WORDS

        live = []
        probed: set[int] = set()
        for res in results:
            probed.add(res.qid)
            if self._probe_global(res.key):
                live.append(res)
            else:
                res.pruned = True
                self.queries_pruned += 1
                self.words_saved += QUERY_WORDS + TRACE_WORDS
        return live, probed

    def make_search_prune(self, results, pre_probed: set[int] | None = None):
        """Frontier filter for point lookups and delete planning.

        The first task of a query probes the global Bloom — absence
        suppresses the whole descent.  Later hops whose target chunk is
        closed probe the target module's filter as well.  ``pre_probed``
        marks queries already screened by :meth:`prune_l0_route`, whose
        survivors must not be re-probed (or double-counted).
        """
        decided: dict[int, bool] = (
            {} if pre_probed is None else dict.fromkeys(pre_probed, False))
        probed: set[int] = set() if pre_probed is None else set(pre_probed)

        def prune(task) -> bool:
            res = results[task.qid]
            verdict = decided.get(task.qid)
            if verdict is None:
                probed.add(task.qid)
                verdict = not self._probe_global(res.key)
                decided[task.qid] = verdict
                if verdict:
                    res.pruned = True
                    self.queries_pruned += 1
            if verdict:
                self.words_saved += task.send_words
                return True
            info = self._meta_info.get(task.meta.root.nid)
            if info is not None and info[3]:
                if not self._probe_module(info[0], res.key):
                    decided[task.qid] = True
                    res.pruned = True
                    self.queries_pruned += 1
                    self.words_saved += task.send_words
                    return True
            return False

        prune.probed = probed
        return prune

    def account_search(self, results, probed: set[int]) -> None:
        """Tally false positives once ground truth is known (stats only)."""
        for qid in probed:
            res = results[qid]
            if res.pruned:
                continue
            leaf = res.leaf
            present = False
            if leaf is not None and leaf.keys is not None and len(leaf.keys):
                key = np.uint64(res.key)
                j = int(np.searchsorted(leaf.keys, key))
                present = j < len(leaf.keys) and leaf.keys[j] == key
            if not present:
                self.fp_probes += 1

    def make_knn_prune(self, states, bounds=None):
        """Frontier filter for kNN candidate/fetch task emission.

        A task probing a *closed* chunk whose resident z-range misses the
        query ball's covering z-range is provably empty: the chunk holds
        no point the ball can contain and the traversal cannot continue
        into another chunk.  The ball's covering range is the Morton code
        of the clipped corners of ``[q - r, q + r]`` (encoding is
        monotone per coordinate).  ``bounds`` fixes per-query radii
        (fetch); without it the current coarse radius is used and the
        cached range is refreshed whenever the radius tightens.
        """
        tree = self.tree
        cache: dict[int, tuple[float, int, int]] = {}

        def prune(task) -> bool:
            qid = task.qid
            r = bounds[qid] if bounds is not None else states[qid].radius()
            if not math.isfinite(r):
                return False
            ent = cache.get(qid)
            if ent is None or ent[0] != r:
                q = states[qid].q
                corners = np.vstack([q - r, q + r])
                zlo, zhi = (int(x) for x in tree.encode_keys(corners))
                cache[qid] = (r, zlo, zhi)
            else:
                _, zlo, zhi = ent
            if self._probe_meta_range(task.meta.root.nid, zlo, zhi):
                return False
            self.queries_pruned += 1
            self.words_saved += task.send_words
            return True

        return prune

    # ------------------------------------------------------------------
    # observability + persistence
    # ------------------------------------------------------------------
    def summary(self) -> dict:
        return {
            "enabled": self.enabled,
            "fpr": self.fpr,
            "queries_pruned": self.queries_pruned,
            "words_saved": self.words_saved,
            "fp_probes": self.fp_probes,
            "probes": self.probes,
            "rebuilds": self.rebuilds,
            "incremental": self.incremental,
            "keys_indexed": self.keys_indexed,
            "filter_kib": round(
                8 * (len(self._global.words)
                     + sum(len(f.words) for f in self._filters.values()))
                / 1024.0, 3,
            ),
        }

    def to_manifest(self) -> dict:
        """Snapshot payload: config only — bits rebuild from residency."""
        return {"fpr": self.fpr, "seed": self.seed, "enabled": self.enabled}

    @classmethod
    def from_manifest(cls, tree, doc: dict) -> "RouteFilterSet":
        return cls(tree, fpr=float(doc["fpr"]), seed=int(doc["seed"]),
                   enabled=bool(doc.get("enabled", True)))
