"""Membership-filter routing: suppress provably-empty sends.

See :mod:`repro.route.filters` for the design; the short version is a
host-resident, seeded, deterministic Bloom filter per module (plus a
global one and per-chunk zvalue-range summaries) maintained under the
charged phases that move keys, consulted by the query planners before
every send they can prove empty.
"""

from .filters import DEFAULT_FPR, RouteFilterSet

__all__ = ["RouteFilterSet", "DEFAULT_FPR"]
