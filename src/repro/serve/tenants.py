"""Tenant model: SLO classes and weighted-fair shares for admission.

Multi-tenant serving needs two policies the single-tenant queue never
asked: *who dequeues next* (weighted fair queueing across tenants, so a
flood from one tenant cannot starve another) and *who gets shed first*
when the bounded queue overflows (the tenant most over its weighted fair
share — which, under an adversarial flood, is the flooder itself).

Both are driven by one :class:`TenantPolicy`: a map from tenant name to a
positive WFQ weight.  Weights usually come from SLO classes
(:data:`SLO_CLASSES` — gold/silver/bronze at 4/2/1) via
:meth:`TenantPolicy.from_classes`, but any positive weights work.  A
tenant absent from the map serves at ``default_weight``, so one policy
object covers an open tenant population.

Everything here is host-side control-plane arithmetic — no charges, no
simulator state — and every decision is a pure function of (policy,
queue contents), so multi-tenant runs stay deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["DEFAULT_TENANT", "SLO_CLASSES", "TenantPolicy"]

DEFAULT_TENANT = "default"

# SLO class → WFQ weight.  Gold gets 4x a bronze tenant's service share
# and 4x its share of the bounded queue before fair-share shedding bites.
SLO_CLASSES = {"gold": 4.0, "silver": 2.0, "bronze": 1.0}


@dataclass(frozen=True)
class TenantPolicy:
    """Per-tenant WFQ weights (the admission queue's fairness contract)."""

    weights: dict[str, float] = field(default_factory=dict)
    default_weight: float = 1.0

    def __post_init__(self) -> None:
        if self.default_weight <= 0.0:
            raise ValueError("default_weight must be positive")
        for name, w in self.weights.items():
            if w <= 0.0:
                raise ValueError(f"tenant {name!r} weight must be positive")

    @classmethod
    def from_classes(cls, assignment: dict[str, str],
                     *, default_weight: float = 1.0) -> "TenantPolicy":
        """Build a policy from tenant → SLO-class-name assignments."""
        weights = {}
        for tenant, klass in assignment.items():
            if klass not in SLO_CLASSES:
                raise ValueError(
                    f"unknown SLO class {klass!r}; "
                    f"choose from {sorted(SLO_CLASSES)}"
                )
            weights[tenant] = SLO_CLASSES[klass]
        return cls(weights=weights, default_weight=default_weight)

    # ------------------------------------------------------------------
    def weight(self, tenant: str) -> float:
        return self.weights.get(tenant, self.default_weight)

    def fair_share(self, tenant: str, depth: int,
                   active: list[str]) -> float:
        """``tenant``'s weighted share of ``depth`` queue slots.

        ``active`` is the set of tenants competing for the queue right
        now (queued tenants plus the arrival under consideration); the
        share is proportional to weight within that set, so an idle
        tenant's weight never reserves empty slots.
        """
        total = sum(self.weight(t) for t in active)
        if total <= 0.0:
            return float(depth)
        return depth * self.weight(tenant) / total
