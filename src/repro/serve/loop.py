"""Event-loop scheduler: a virtual clock over the measured adapters.

The loop is *open-loop*: arrival times are fixed in advance by the
arrival process and do not react to server progress.  The server is the
BSP machine behind one harness adapter, which executes one batch at a
time (the simulator's rounds are globally synchronised), so the loop is a
single-server queueing system:

1. admit every arrival with ``arrival_s <= now`` into the admission
   queue (the queue applies its overflow policy — reject or shed);
2. expire queued requests past their timeout (``timeout_s``), then, if
   the queue is empty, advance the clock to the next arrival;
3. otherwise form a batch — the batching group of the *oldest* queued
   request (FIFO across groups), sized by the batch policy — dispatch it
   through ``adapter.measure``, and advance the virtual clock by the
   measured :class:`~repro.pim.SimTime` total;
4. stamp every request in the batch with dispatch/complete times; admit
   the arrivals that landed during the service interval at their own
   arrival instants.

**Fault resilience.**  When the adapter's simulator carries a
:class:`~repro.faults.FaultPlan`, a dispatch can raise a typed
:class:`~repro.faults.FaultError`.  The loop then:

* bills the simulated time the failed attempt burned (attached to the
  error by ``adapter.measure``) to the batch — wasted work is part of
  the latency the clients see;
* on :class:`~repro.faults.ModuleFailure`, triggers **failover** (once
  per module): ``adapter.fail_over`` rebuilds the dead module's shard
  from the host-resident index, charged under the ``"recovery"`` phase;
* rolls back any partial insert (a measured, fault-suppressed
  compensating delete) so a retry never double-inserts and the logical
  point set stays byte-identical to a fault-free run's;
* retries up to ``max_retries`` times with exponential backoff
  (``backoff_s * 2**attempt`` of virtual time);
* when retries are exhausted, completes query batches in **degraded
  mode** (partial results, status DEGRADED) or fails them (FAILED);
  inserts always fail atomically (compensated first).

Every offered request still ends in exactly one terminal state.  Every
timestamp is simulated seconds; no wall clock is read, so a run is a pure
function of (adapter construction, request sequence, queue configuration,
batch policy, fault plan) and two identical runs produce byte-identical
:class:`~repro.serve.stats.LatencyStats`.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field

import numpy as np

from ..faults.errors import FaultError, MachineKill, ModuleFailure
from .queue import AdmissionQueue
from .request import DEGRADED, DONE, FAILED, Request
from .stats import LatencyStats

__all__ = ["BatchRecord", "ServeResult", "ServeLoop"]


@dataclass
class BatchRecord:
    """One dispatched batch (for the batch-size/amortisation analysis)."""

    bid: int
    kind: str
    k: int
    size: int
    dispatch_s: float
    service_s: float
    elements: int
    status: str = DONE          # terminal state of the batch's requests
    retries: int = 0            # fault retries this batch consumed

    def to_dict(self) -> dict:
        return {
            "bid": self.bid, "kind": self.kind, "k": self.k,
            "size": self.size, "dispatch_s": self.dispatch_s,
            "service_s": self.service_s, "elements": self.elements,
            "status": self.status, "retries": self.retries,
        }


@dataclass
class ServeResult:
    """A finished run: stamped requests, batch log, aggregate stats."""

    requests: list[Request]
    batches: list[BatchRecord]
    stats: LatencyStats = field(init=False)

    def __post_init__(self) -> None:
        self.stats = LatencyStats.compute(self.requests, self.batches)


class ServeLoop:
    """Single-server continuous-batching scheduler on a virtual clock.

    Fault-resilience knobs (all inert on a fault-free adapter):

    max_retries:
        Dispatch attempts after the first before giving up on a batch.
    backoff_s:
        Base of the exponential backoff added to the virtual clock after
        a failed attempt (``backoff_s * 2**attempt``).
    timeout_s:
        Per-request queue timeout; ``None`` disables expiry.
    degraded_mode:
        Exhausted query batches complete with partial results (DEGRADED)
        instead of failing outright.
    failover:
        Rebuild a dead module's shard on the first ModuleFailure naming
        it (disable to study unrecovered degradation).
    rebalancer:
        A :class:`repro.balance.OnlineRebalancer` stepped between batches
        (``None`` disables — the default, with zero behavioral change).
        Rebalance work runs on the same virtual clock: each step is
        measured and its simulated seconds advance ``now``; cumulative
        rebalance time is capped at the rebalancer's ``budget_fraction``
        of cumulative service time, so migration is amortised against the
        work it speeds up.
    store:
        A :class:`repro.store.DurableStore` already attached to the
        adapter's tree (``None`` disables durability — the default, with
        zero behavioral change).  Two effects: snapshot checkpoints run
        between batches under the store's ``budget_fraction`` gate
        (identical cadence mechanics to rebalancing, skipped while the
        journal is clean), and a whole-machine
        :class:`~repro.faults.MachineKill` triggers a charged crash
        restart (``adapter.crash_restart``) instead of killing the run —
        the killed batch retries on the recovered machine, and because
        its uncommitted journal record is skipped on replay, the retry is
        exactly-once.  Restart wall-clock (virtual) is billed to the
        batch and recorded in :attr:`restarts`.
    controller:
        A :class:`repro.tune.OnlineController` consulted between batches
        at phase boundaries (``None`` disables — the default).  With an
        empty whitelist the controller is inert: it is never invoked and
        the run stays byte-identical to one without it.  When it adapts,
        any charged work it triggers runs on the virtual clock, and its
        audit trail (plus the batch policy snapshot) is attached as
        ``stats.config``.
    max_restarts:
        Machine restarts tolerated before the kill propagates (safety
        valve against a kill-loop).
    """

    def __init__(self, adapter, queue: AdmissionQueue, policy, *,
                 max_retries: int = 3, backoff_s: float = 1e-4,
                 timeout_s: float | None = None, degraded_mode: bool = True,
                 failover: bool = True, rebalancer=None, store=None,
                 controller=None, max_restarts: int = 4) -> None:
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if backoff_s < 0:
            raise ValueError("backoff_s must be >= 0")
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError("timeout_s must be positive (or None)")
        self.adapter = adapter
        self.queue = queue
        self.policy = policy
        self.max_retries = int(max_retries)
        self.backoff_s = float(backoff_s)
        self.timeout_s = timeout_s
        self.degraded_mode = bool(degraded_mode)
        if max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        self.failover = bool(failover)
        self.rebalancer = rebalancer
        self.store = store
        self.controller = controller
        self.max_restarts = int(max_restarts)
        self._recovered: set[int] = set()  # modules already failed over
        # Cumulative virtual seconds: service vs rebalance/checkpoint
        # (both budget-gated against service time).
        self.service_time_s = 0.0
        self.rebalance_time_s = 0.0
        self.rebalance_steps = 0
        self.checkpoint_time_s = 0.0
        self.checkpoints = 0
        self.restarts: list[dict] = []  # one record per machine restart

    # ------------------------------------------------------------------
    def run(self, requests: list[Request]) -> ServeResult:
        """Serve ``requests`` (any order; sorted by arrival internally)."""
        pending = sorted(requests, key=lambda r: (r.arrival_s, r.rid))
        n = len(pending)
        i = 0
        now = 0.0
        batches: list[BatchRecord] = []
        while True:
            if self.timeout_s is not None:
                self.queue.expire(now, self.timeout_s)
            if self.queue.is_empty:
                if i >= n:
                    break
                # Idle server: jump to the next arrival.
                now = max(now, pending[i].arrival_s)
                while i < n and pending[i].arrival_s <= now:
                    self.queue.offer(pending[i], pending[i].arrival_s)
                    i += 1
                continue
            assert not self.queue.is_empty, "batch forming on empty queue"
            group = self.queue.head_group()
            size = self.policy.batch_size(group, self.queue.backlog(group))
            batch = self.queue.take(group, size)
            reps = self._replicas()
            if reps is not None:
                # Keep the replica registry's virtual clock current so
                # primary-async writes age against the staleness bound.
                reps.clock = now
            service_s, elements, status, retries = self._dispatch(batch, now)
            end = now + service_s
            for r in batch:
                r.dispatch_s = now
                r.complete_s = end
                r.status = status
                r.batch_id = len(batches)
            if status == DONE and retries == 0:
                # Only clean dispatches feed the amortisation fit: a
                # retried batch's service time includes wasted attempts,
                # backoff and recovery, which would poison t(B) = a + bB.
                self.policy.observe(group, len(batch), service_s)
            batches.append(
                BatchRecord(
                    bid=len(batches), kind=batch[0].kind, k=batch[0].k,
                    size=len(batch), dispatch_s=now, service_s=service_s,
                    elements=elements, status=status, retries=retries,
                )
            )
            # Arrivals that landed while the batch was in service are
            # admitted at their own instants (queue-state order matters for
            # the overflow policy).
            while i < n and pending[i].arrival_s <= end:
                self.queue.offer(pending[i], pending[i].arrival_s)
                i += 1
            now = end
            self.service_time_s += service_s
            # Background rebalance between batches, inside the time
            # budget.  The step runs on the virtual clock: its measured
            # simulated seconds advance `now` and delay queued requests —
            # migration is not free, it is amortised.
            if self.rebalancer is not None:
                frac = getattr(self.rebalancer, "budget_fraction", 0.05)
                if self.rebalance_time_s <= frac * self.service_time_s:
                    m = self.adapter.measure(
                        lambda: 0 if self.rebalancer.step() is None else 1
                    )
                    self.rebalance_steps += 1
                    if m.sim_time_s > 0.0:
                        self.rebalance_time_s += m.sim_time_s
                        end = now + m.sim_time_s
                        while i < n and pending[i].arrival_s <= end:
                            self.queue.offer(pending[i], pending[i].arrival_s)
                            i += 1
                        now = end
            # Snapshot checkpoint between batches, inside its own time
            # budget (same amortisation mechanics as rebalancing): only
            # when the journal has records the last snapshot doesn't
            # cover, and only while cumulative checkpoint time stays
            # under the store's budget fraction of service time.
            if (self.store is not None and self.store.dirty_records > 0
                    and self.checkpoint_time_s
                    <= self.store.budget_fraction * self.service_time_s):
                m = self.adapter.measure(
                    lambda: (self.store.checkpoint(self.adapter.tree), 0)[1]
                )
                self.checkpoints += 1
                if m.sim_time_s > 0.0:
                    self.checkpoint_time_s += m.sim_time_s
                    end = now + m.sim_time_s
                    while i < n and pending[i].arrival_s <= end:
                        self.queue.offer(pending[i], pending[i].arrival_s)
                        i += 1
                    now = end
            # Primary-async replica flush between batches: once the oldest
            # pending secondary update reaches the staleness bound, ship
            # the backlog as one charged round on the virtual clock (same
            # mechanics as the rebalance/checkpoint blocks — replication
            # is not free either).
            reps = self._replicas()
            if reps is not None and reps.flush_due(now):
                m = self.adapter.measure(lambda: (reps.flush(now), 0)[1])
                if m.sim_time_s > 0.0:
                    end = now + m.sim_time_s
                    while i < n and pending[i].arrival_s <= end:
                        self.queue.offer(pending[i], pending[i].arrival_s)
                        i += 1
                    now = end
            # Online tuning at phase boundaries — between batches, so
            # never mid-round.  The controller reads the run's own
            # signals and may move whitelisted knobs; any charged work
            # it triggers (a route-filter FPR rebuild) is measured and
            # advances the virtual clock like the blocks above.  An
            # inactive controller (empty whitelist) is never called.
            if self.controller is not None and self.controller.due(
                    len(batches)):
                m = self.adapter.measure(lambda: self.controller.adapt(self))
                if m.sim_time_s > 0.0:
                    end = now + m.sim_time_s
                    while i < n and pending[i].arrival_s <= end:
                        self.queue.offer(pending[i], pending[i].arrival_s)
                        i += 1
                    now = end
        # Drain any remaining async backlog so the staleness accounting
        # covers every fanned write (no latency impact — all requests are
        # already terminal).
        reps = self._replicas()
        if reps is not None and reps._pending:
            self.adapter.measure(lambda: (reps.flush(now), 0)[1])
        result = ServeResult(requests=pending, batches=batches)
        if reps is not None:
            result.stats.replication = reps.summary()
        rf = self._route_filters()
        if rf is not None:
            result.stats.filters = rf.summary()
        if self.controller is not None and self.controller.active:
            snap = getattr(self.policy, "snapshot", None)
            result.stats.config = {
                "policy": (snap() if snap is not None
                           else {"name": getattr(self.policy, "name", "?")}),
                "controller": self.controller.audit(),
            }
        return result

    def _replicas(self):
        """The adapter tree's ReplicaSet, or None (re-read every time —
        a crash restart swaps the tree out from under the loop)."""
        return getattr(getattr(self.adapter, "tree", None), "replicas", None)

    def _route_filters(self):
        """The adapter tree's RouteFilterSet, or None (re-read like
        :meth:`_replicas` — recovery reattaches filters to a fresh tree)."""
        return getattr(
            getattr(self.adapter, "tree", None), "route_filters", None)

    # ------------------------------------------------------------------
    def _dispatch(self, batch: list[Request], now: float = 0.0
                  ) -> tuple[float, int, str, int]:
        """Execute one batch with retry/failover/degradation/restart.

        Returns ``(service seconds, elements, terminal status, retries)``.
        The service time accumulates every failed attempt, recovery,
        compensation, backoff and machine restart — the full price the
        batch paid.  ``now`` is the batch's dispatch instant, used to
        stamp restart records in virtual time.
        """
        kind = batch[0].kind
        total_s = 0.0
        attempt = 0
        while True:
            try:
                service_s, elements = self._execute(batch)
                return total_s + service_s, elements, DONE, attempt
            except MachineKill as e:
                # The whole machine is gone: every in-memory structure is
                # lost.  With a durable store attached, restart from disk
                # (charged — the recovered system's counters convert to
                # the restart seconds billed here) and retry the batch.
                # The killed batch's journal record is uncommitted, so
                # replay skipped it and this retry is exactly-once.
                m = getattr(e, "measurement", None)
                if m is not None:
                    total_s += m.sim_time_s
                if (self.store is None
                        or not hasattr(self.adapter, "crash_restart")
                        or len(self.restarts) >= self.max_restarts):
                    raise
                killed_at = now + total_s
                restart_s, info = self.adapter.crash_restart(self.store)
                total_s += restart_s
                if self.rebalancer is not None:
                    # The restart built a fresh tree *and* a fresh system
                    # whose cumulative load counters restart near zero; a
                    # rebalancer still pointed at the old objects would
                    # observe a huge negative delta and poison its EWMA.
                    self.rebalancer.rebind(self.adapter.tree)
                self.restarts.append({
                    "killed_at_s": killed_at,
                    "recovered_at_s": killed_at + restart_s,
                    "restart_s": restart_s,
                    "batch_kind": kind,
                    **info,
                })
            except FaultError as e:
                m = getattr(e, "measurement", None)
                if m is not None:
                    total_s += m.sim_time_s
                total_s += self._recover(e)
                if kind == "insert":
                    # Roll back whatever the failed attempt inserted so a
                    # retry never double-inserts (and a FAILED batch
                    # leaves the logical point set untouched).
                    total_s += self._compensate_insert(batch)
                if attempt >= self.max_retries:
                    if kind != "insert" and self.degraded_mode:
                        # Partial results: answered from whatever the
                        # attempts produced before faulting.
                        return total_s, 0, DEGRADED, attempt
                    return total_s, 0, FAILED, attempt
                total_s += self.backoff_s * (2 ** attempt)
                attempt += 1

    def _recover(self, exc: FaultError) -> float:
        """Failover after a ModuleFailure (once per module); returns the
        simulated seconds recovery charged."""
        if not (self.failover and isinstance(exc, ModuleFailure)):
            return 0.0
        mid = exc.mid
        if mid in self._recovered or not hasattr(self.adapter, "fail_over"):
            return 0.0
        self._recovered.add(mid)
        m = self.adapter.measure(lambda: self.adapter.fail_over(mid))
        return m.sim_time_s

    def _compensate_insert(self, batch: list[Request]) -> float:
        """Measured, fault-suppressed delete of the batch's points."""
        pts = np.stack([r.payload for r in batch])
        with self._faults_suppressed():
            try:
                m = self.adapter.measure(lambda: self.adapter.delete(pts))
            except FaultError as e:
                # Without failover a dead module can make even the
                # rollback fail; bill the attempt and move on (the
                # no-failover configuration forfeits oracle equality).
                m = getattr(e, "measurement", None)
                return m.sim_time_s if m is not None else 0.0
        return m.sim_time_s

    def _faults_suppressed(self):
        system = getattr(self.adapter, "system", None)
        if system is not None and hasattr(system, "faults_suppressed"):
            return system.faults_suppressed()
        return nullcontext()

    # ------------------------------------------------------------------
    def _execute(self, batch: list[Request]) -> tuple[float, int]:
        """Dispatch one same-group batch; returns (service seconds, elements)."""
        kind = batch[0].kind
        if kind == "insert":
            pts = np.stack([r.payload for r in batch])
            m = self.adapter.measure(lambda: self.adapter.insert(pts))
        elif kind == "knn":
            q = np.stack([r.payload for r in batch])
            k = batch[0].k
            m = self.adapter.measure(lambda: self.adapter.knn(q, k))
        elif kind == "bc":
            boxes = [r.payload for r in batch]
            m = self.adapter.measure(lambda: self.adapter.box_count(boxes))
        elif kind == "bf":
            boxes = [r.payload for r in batch]
            m = self.adapter.measure(lambda: self.adapter.box_fetch(boxes))
        else:
            raise ValueError(f"unknown request kind {kind!r}")
        return m.sim_time_s, m.elements
