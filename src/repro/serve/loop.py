"""Event-loop scheduler: a virtual clock over the measured adapters.

The loop is *open-loop*: arrival times are fixed in advance by the
arrival process and do not react to server progress.  The server is the
BSP machine behind one harness adapter, which executes one batch at a
time (the simulator's rounds are globally synchronised), so the loop is a
single-server queueing system:

1. admit every arrival with ``arrival_s <= now`` into the admission
   queue (the queue applies its overflow policy — reject or shed);
2. if the queue is empty, advance the clock to the next arrival;
3. otherwise form a batch — the batching group of the *oldest* queued
   request (FIFO across groups), sized by the batch policy — dispatch it
   through ``adapter.measure``, and advance the virtual clock by the
   measured :class:`~repro.pim.SimTime` total;
4. stamp every request in the batch with dispatch/complete times; admit
   the arrivals that landed during the service interval at their own
   arrival instants.

Every timestamp is simulated seconds; no wall clock is read, so a run is
a pure function of (adapter construction, request sequence, queue
configuration, batch policy) and two identical runs produce
byte-identical :class:`~repro.serve.stats.LatencyStats`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .queue import AdmissionQueue
from .request import DONE, Request
from .stats import LatencyStats

__all__ = ["BatchRecord", "ServeResult", "ServeLoop"]


@dataclass
class BatchRecord:
    """One dispatched batch (for the batch-size/amortisation analysis)."""

    bid: int
    kind: str
    k: int
    size: int
    dispatch_s: float
    service_s: float
    elements: int

    def to_dict(self) -> dict:
        return {
            "bid": self.bid, "kind": self.kind, "k": self.k,
            "size": self.size, "dispatch_s": self.dispatch_s,
            "service_s": self.service_s, "elements": self.elements,
        }


@dataclass
class ServeResult:
    """A finished run: stamped requests, batch log, aggregate stats."""

    requests: list[Request]
    batches: list[BatchRecord]
    stats: LatencyStats = field(init=False)

    def __post_init__(self) -> None:
        self.stats = LatencyStats.compute(self.requests, self.batches)


class ServeLoop:
    """Single-server continuous-batching scheduler on a virtual clock."""

    def __init__(self, adapter, queue: AdmissionQueue, policy) -> None:
        self.adapter = adapter
        self.queue = queue
        self.policy = policy

    # ------------------------------------------------------------------
    def run(self, requests: list[Request]) -> ServeResult:
        """Serve ``requests`` (any order; sorted by arrival internally)."""
        pending = sorted(requests, key=lambda r: (r.arrival_s, r.rid))
        n = len(pending)
        i = 0
        now = 0.0
        batches: list[BatchRecord] = []
        while True:
            if self.queue.is_empty:
                if i >= n:
                    break
                # Idle server: jump to the next arrival.
                now = max(now, pending[i].arrival_s)
                while i < n and pending[i].arrival_s <= now:
                    self.queue.offer(pending[i], pending[i].arrival_s)
                    i += 1
                continue
            group = self.queue.head_group()
            size = self.policy.batch_size(group, self.queue.backlog(group))
            batch = self.queue.take(group, size)
            service_s, elements = self._execute(batch)
            end = now + service_s
            for r in batch:
                r.dispatch_s = now
                r.complete_s = end
                r.status = DONE
                r.batch_id = len(batches)
            self.policy.observe(group, len(batch), service_s)
            batches.append(
                BatchRecord(
                    bid=len(batches), kind=batch[0].kind, k=batch[0].k,
                    size=len(batch), dispatch_s=now, service_s=service_s,
                    elements=elements,
                )
            )
            # Arrivals that landed while the batch was in service are
            # admitted at their own instants (queue-state order matters for
            # the overflow policy).
            while i < n and pending[i].arrival_s <= end:
                self.queue.offer(pending[i], pending[i].arrival_s)
                i += 1
            now = end
        return ServeResult(requests=pending, batches=batches)

    # ------------------------------------------------------------------
    def _execute(self, batch: list[Request]) -> tuple[float, int]:
        """Dispatch one same-group batch; returns (service seconds, elements)."""
        kind = batch[0].kind
        if kind == "insert":
            pts = np.stack([r.payload for r in batch])
            m = self.adapter.measure(lambda: self.adapter.insert(pts))
        elif kind == "knn":
            q = np.stack([r.payload for r in batch])
            k = batch[0].k
            m = self.adapter.measure(lambda: self.adapter.knn(q, k))
        elif kind == "bc":
            boxes = [r.payload for r in batch]
            m = self.adapter.measure(lambda: self.adapter.box_count(boxes))
        elif kind == "bf":
            boxes = [r.payload for r in batch]
            m = self.adapter.measure(lambda: self.adapter.box_fetch(boxes))
        else:
            raise ValueError(f"unknown request kind {kind!r}")
        return m.sim_time_s, m.elements
