"""Request model and workload construction for the serving layer.

A :class:`Request` is one user-level operation — a single kNN query, point
insert, BoxCount or BoxFetch — stamped with its arrival time and an
absolute deadline.  The serving loop fills in the queueing lifecycle
(enqueue / dispatch / complete) and a terminal :attr:`Request.status`;
every offered request ends in exactly one terminal state, so nothing is
ever dropped silently.

:func:`make_requests` turns an arrival-time array (see
``repro.workloads.arrivals``) plus an operation mix into a concrete
request sequence against a dataset, drawing all payloads from one seeded
generator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..core import Box

__all__ = ["Request", "KINDS", "make_requests"]

KINDS = ("insert", "knn", "bc", "bf")

# Lifecycle states.  PENDING → QUEUED → DONE for the happy path; REJECTED
# (arrival refused, queue full) and SHED (evicted from a full queue to
# admit newer work) are the backpressure outcomes.  Under fault injection
# three more terminal states appear: TIMED_OUT (exceeded its per-request
# timeout while queued), DEGRADED (query completed with partial results
# after retries were exhausted) and FAILED (retries exhausted, no result;
# inserts are rolled back so the logical point set stays consistent).
PENDING, QUEUED, DONE, REJECTED, SHED = "pending", "queued", "done", "rejected", "shed"
FAILED, TIMED_OUT, DEGRADED = "failed", "timed_out", "degraded"


@dataclass
class Request:
    """One open-loop request and its measured lifecycle."""

    rid: int
    kind: str                  # "insert" | "knn" | "bc" | "bf"
    payload: object            # point row / query row / Box
    arrival_s: float
    deadline_s: float = math.inf   # absolute deadline (simulated clock)
    k: int = 0                 # kNN only
    tenant: str = "default"    # multi-tenant admission (repro.serve.tenants)
    # Filled in by the serving loop.
    enqueue_s: float = math.nan
    dispatch_s: float = math.nan
    complete_s: float = math.nan
    status: str = PENDING
    batch_id: int = -1
    extra: dict = field(default_factory=dict)

    @property
    def group(self) -> tuple:
        """Batching group: requests in one group may share a batch."""
        return (self.kind, self.k)

    @property
    def latency_s(self) -> float:
        return self.complete_s - self.arrival_s

    @property
    def queue_s(self) -> float:
        return self.dispatch_s - self.arrival_s

    @property
    def service_s(self) -> float:
        return self.complete_s - self.dispatch_s

    @property
    def on_time(self) -> bool:
        return self.status == DONE and self.complete_s <= self.deadline_s


def make_requests(
    data: np.ndarray,
    arrivals: np.ndarray,
    *,
    mix: dict[str, float] | None = None,
    k: int = 10,
    box_side: float = 0.05,
    deadline_s: float = math.inf,
    seed: int = 0,
    fresh_points=None,
    tenants: dict[str, float] | None = None,
) -> list[Request]:
    """Build one request per arrival time against ``data``.

    ``mix`` maps kind → weight (default: query-heavy, ``{"knn": 0.7,
    "bc": 0.15, "bf": 0.1, "insert": 0.05}``).  kNN queries are data
    samples with small jitter; boxes are cubes of side ``box_side``
    centred on data samples; inserts come from ``fresh_points(rng)``
    (default: uniform points over the data's bounding box).  ``deadline_s``
    is a per-request *relative* deadline added to the arrival time.

    ``tenants`` maps tenant name → traffic weight: each request is tagged
    with a tenant drawn from those proportions.  The draw uses its own
    derived generator so the payload stream is byte-identical to a
    ``tenants=None`` run (all requests tagged ``"default"``) — tagging
    never moves a query point.
    """
    if mix is None:
        mix = {"knn": 0.7, "bc": 0.15, "bf": 0.1, "insert": 0.05}
    for kind in mix:
        if kind not in KINDS:
            raise ValueError(f"unknown request kind {kind!r}; choose from {KINDS}")
    rng = np.random.default_rng(seed)
    data = np.asarray(data, dtype=np.float64)
    n, dims = data.shape
    kinds = sorted(mix)
    weights = np.array([mix[kname] for kname in kinds], dtype=np.float64)
    if weights.sum() <= 0:
        raise ValueError("mix weights must sum to a positive value")
    weights = weights / weights.sum()
    lo, hi = data.min(axis=0), data.max(axis=0)

    tenant_of = None
    if tenants is not None:
        names = sorted(tenants)
        tw = np.array([tenants[t] for t in names], dtype=np.float64)
        if len(names) == 0 or tw.sum() <= 0:
            raise ValueError("tenants weights must sum to a positive value")
        trng = np.random.default_rng(seed + 7_777_777)
        picks = trng.choice(len(names), size=len(arrivals), p=tw / tw.sum())
        tenant_of = [names[i] for i in picks]

    choice = rng.choice(len(kinds), size=len(arrivals), p=weights)
    out: list[Request] = []
    for rid, t in enumerate(np.asarray(arrivals, dtype=np.float64)):
        kind = kinds[choice[rid]]
        if kind == "insert":
            if fresh_points is not None:
                payload = np.asarray(fresh_points(rng), dtype=np.float64)
            else:
                payload = lo + rng.random(dims) * (hi - lo)
            kk = 0
        elif kind == "knn":
            payload = data[int(rng.integers(0, n))] + rng.normal(
                scale=1e-4, size=dims
            )
            kk = k
        else:  # bc / bf
            c = data[int(rng.integers(0, n))]
            payload = Box(c - box_side / 2.0, c + box_side / 2.0)
            kk = 0
        out.append(
            Request(
                rid=rid,
                kind=kind,
                payload=payload,
                arrival_s=float(t),
                deadline_s=float(t) + deadline_s,
                k=kk,
                tenant="default" if tenant_of is None else tenant_of[rid],
            )
        )
    return out
