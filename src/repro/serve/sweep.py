"""Multiprocess sweep runner: paper-scale serve runs sharded over processes.

The vector simulator core removes the per-module Python overhead, but a
1M+-request open-loop run is still bounded by the serving loop itself
(batch forming, per-request bookkeeping).  The sweep runner shards the
offered load across worker processes: shard ``i`` of ``S`` models an
independent serving replica that owns ``1/S`` of the traffic — its own
:class:`~repro.eval.harness.PIMZdTreeAdapter` (same dataset, same index),
its own arrival process and request stream drawn from a per-shard seed
(``seed + 1000·i``), and its own virtual clock.

Sharding semantics, not a simulation of one bigger machine: latencies are
pooled across shards before the percentile summary (every request's
latency counts once), counts are summed, and the aggregate rate is the
sum of per-shard rates — the standard way replicated serving deployments
report fleet throughput.  Because each shard is deterministic given its
seed and the merge is by shard index, the merged result is byte-stable no
matter how the OS schedules the workers.

Workers are plain ``multiprocessing`` processes (fork where available,
spawn otherwise); ``procs <= 1`` runs every shard inline in this process,
which is what CI uses for reproducibility checks.
"""

from __future__ import annotations

import math
import os
import time
import traceback
from dataclasses import dataclass, field

import numpy as np

from .stats import latency_summary

__all__ = ["SweepResult", "SweepShardError", "run_shard", "run_sweep"]


class SweepShardError(RuntimeError):
    """One shard of a sweep failed.

    Raised by :func:`run_sweep` in the *calling* process whichever way the
    shard ran (inline or in a worker), so a failure surfaces as one
    exception naming the shard index and its seed — enough to re-run just
    that shard with ``run_shard`` — instead of a bare multiprocessing
    traceback with no indication of which replica died.  The worker-side
    traceback is preserved on ``worker_traceback``.
    """

    def __init__(self, shard_index: int, seed: int, message: str,
                 worker_traceback: str | None = None) -> None:
        super().__init__(
            f"sweep shard {shard_index} (seed {seed}) failed: {message}"
        )
        self.shard_index = int(shard_index)
        self.seed = int(seed)
        self.worker_traceback = worker_traceback


@dataclass
class SweepResult:
    """Merged outcome of one sharded serve sweep."""

    n_shards: int
    n_offered: int
    n_done: int
    n_failed: int
    n_timed_out: int
    n_rejected: int
    n_shed: int
    aggregate_throughput: float     # sum of per-shard completed/makespan
    aggregate_goodput: float
    latency: dict[str, float]       # pooled percentiles, seconds
    queue: dict[str, float]
    service: dict[str, float]
    wall_s: float                   # end-to-end wall-clock of the sweep
    shard_wall_s: list[float] = field(default_factory=list)
    shard_seeds: list[int] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "n_shards": self.n_shards,
            "n_offered": self.n_offered,
            "n_done": self.n_done,
            "n_failed": self.n_failed,
            "n_timed_out": self.n_timed_out,
            "n_rejected": self.n_rejected,
            "n_shed": self.n_shed,
            "aggregate_throughput": self.aggregate_throughput,
            "aggregate_goodput": self.aggregate_goodput,
            "latency": self.latency,
            "queue": self.queue,
            "service": self.service,
            "wall_s": self.wall_s,
            "shard_wall_s": self.shard_wall_s,
            "shard_seeds": self.shard_seeds,
        }

    def table(self) -> str:
        lines = [
            f"shards            {self.n_shards}",
            f"offered           {self.n_offered:,}",
            f"completed         {self.n_done:,}",
            f"rejected/shed     {self.n_rejected:,}/{self.n_shed:,}",
            f"failed/timed-out  {self.n_failed:,}/{self.n_timed_out:,}",
            f"agg throughput    {self.aggregate_throughput:,.0f} req/s",
            f"agg goodput       {self.aggregate_goodput:,.0f} req/s",
            f"latency p50/p99   {self.latency['p50'] * 1e3:.3f}ms / "
            f"{self.latency['p99'] * 1e3:.3f}ms",
            f"wall clock        {self.wall_s:.1f}s "
            f"(slowest shard {max(self.shard_wall_s):.1f}s)"
            if self.shard_wall_s else f"wall clock        {self.wall_s:.1f}s",
        ]
        return "\n".join(lines)


# ======================================================================
# one shard (module-level so it pickles under spawn)
# ======================================================================
def run_shard(spec: dict) -> dict:
    """Run one serve shard described by ``spec``; returns a plain dict.

    ``spec`` keys: dataset, n, n_modules, index, variant kwargs are
    implicit in index kind, seed, requests, rate, mix, k, deadline_s,
    queue_depth, overflow, policy, fixed_batch, sim_mode, exec_mode,
    arrival, tenants (optional tenant→weight dict: tags requests and
    turns the queue weighted-fair), tune_config (optional resolved
    ``repro.tune`` config dict — the shard then builds its policy,
    rebalancer, replicas and route filters through
    :func:`repro.tune.apply.apply_serving_config`, each replica owning
    its own copies).  Everything in and out is picklable.
    """
    from ..eval.experiments import _dataset
    from ..eval.harness import make_adapter
    from ..workloads import (bursty_arrivals, diurnal_arrivals,
                             poisson_arrivals)
    from . import (AdaptiveBatchPolicy, AdmissionQueue, FixedBatchPolicy,
                   ServeLoop, make_requests)
    from .request import DEGRADED, DONE

    t0 = time.perf_counter()
    seed = int(spec["seed"])
    data = _dataset(spec["dataset"], int(spec["n"]), int(spec["data_seed"]))
    arrival_fn = {"poisson": poisson_arrivals, "bursty": bursty_arrivals,
                  "diurnal": diurnal_arrivals}[spec.get("arrival", "poisson")]
    arrivals = arrival_fn(float(spec["rate"]), int(spec["requests"]),
                          seed=seed + 1)
    requests = make_requests(
        data, arrivals, mix=spec.get("mix"), k=int(spec.get("k", 10)),
        deadline_s=float(spec.get("deadline_s", math.inf)), seed=seed + 2,
        tenants=spec.get("tenants"))
    tune_config = spec.get("tune_config")
    rebalancer = None
    if tune_config is not None:
        from ..tune.apply import (apply_serving_config, make_index_config)

        idx_cfg = make_index_config(
            tune_config, kind=spec.get("index", "pim"), n_points=len(data),
            n_modules=int(spec["n_modules"]))
        adapter = make_adapter(
            spec.get("index", "pim"), data, n_modules=int(spec["n_modules"]),
            seed=seed, sim_mode=spec.get("sim_mode"),
            exec_mode=spec.get("exec_mode"), config=idx_cfg)
        parts = apply_serving_config(adapter, tune_config, filter_seed=seed)
        policy = parts["policy"]
        rebalancer = parts["rebalancer"]
    else:
        adapter = make_adapter(
            spec.get("index", "pim"), data, n_modules=int(spec["n_modules"]),
            seed=seed, sim_mode=spec.get("sim_mode"),
            exec_mode=spec.get("exec_mode"))
        policy = (FixedBatchPolicy(int(spec.get("fixed_batch", 256)))
                  if spec.get("policy") == "fixed" else AdaptiveBatchPolicy())
    loop = ServeLoop(
        adapter,
        AdmissionQueue(int(spec.get("queue_depth", 4096)),
                       overflow=spec.get("overflow", "reject"),
                       tenants=spec.get("tenants")),
        policy, rebalancer=rebalancer)
    result = loop.run(requests)
    s = result.stats
    answered = sorted(
        (r for r in result.requests if r.status in (DONE, DEGRADED)),
        key=lambda r: r.rid)
    return {
        "seed": seed,
        "wall_s": time.perf_counter() - t0,
        "n_offered": s.n_offered,
        "n_done": s.n_done,
        "n_failed": s.n_failed,
        "n_timed_out": s.n_timed_out,
        "n_rejected": s.n_rejected,
        "n_shed": s.n_shed,
        "throughput": s.throughput,
        "goodput": s.goodput,
        "latency_s": [r.latency_s for r in answered],
        "queue_s": [r.queue_s for r in answered],
        "service_s": [r.service_s for r in answered],
    }


def _run_shard_trapped(spec: dict) -> dict:
    """``run_shard`` with failures reified as a picklable marker dict.

    A worker process cannot raise a rich exception across the pool
    boundary without losing the shard identity, so failures travel home
    as data and :func:`run_sweep` re-raises them as
    :class:`SweepShardError`.  Module-level so it pickles under spawn;
    dispatches through the module global so tests can monkeypatch
    ``run_shard`` (fork workers inherit the patch).
    """
    try:
        return run_shard(spec)
    except Exception as exc:  # noqa: BLE001 - reified, re-raised by caller
        return {
            "shard_error": {
                "shard_index": int(spec.get("shard", -1)),
                "seed": int(spec["seed"]),
                "message": f"{type(exc).__name__}: {exc}",
                "worker_traceback": traceback.format_exc(),
            }
        }


def _raise_if_failed(shards: list[dict]) -> None:
    for s in shards:
        err = s.get("shard_error")
        if err is not None:
            raise SweepShardError(**err)


# ======================================================================
# the sweep
# ======================================================================
def _shard_specs(*, procs: int, total_requests: int, seed: int,
                 spec_kw: dict) -> list[dict]:
    """Split ``total_requests`` over up to ``procs`` shard specs.

    Earlier shards take the remainder (sizes differ by at most one);
    shard ``i`` serves with seed ``seed + 1000·i``.  Zero-request shards
    are dropped, so ``procs > total_requests`` yields one single-request
    shard per request.
    """
    n_shards = max(1, min(int(procs), int(total_requests)))
    base, extra = divmod(int(total_requests), n_shards)
    specs = []
    for i in range(n_shards):
        reqs = base + (1 if i < extra else 0)
        if reqs == 0:
            continue
        specs.append({**spec_kw, "shard": i, "seed": int(seed + 1000 * i),
                      "requests": reqs})
    return specs


def run_sweep(
    *,
    dataset: str = "uniform",
    n: int = 20_000,
    n_modules: int = 2048,
    index: str = "pim",
    total_requests: int = 1_000_000,
    rate: float,
    procs: int | None = None,
    seed: int = 7,
    mix: dict[str, float] | None = None,
    k: int = 10,
    deadline_s: float = math.inf,
    queue_depth: int = 4096,
    overflow: str = "reject",
    policy: str = "adaptive",
    fixed_batch: int = 256,
    sim_mode: str | None = None,
    exec_mode: str | None = None,
    arrival: str = "poisson",
    tenants: dict[str, float] | None = None,
    tune_config: dict | None = None,
) -> SweepResult:
    """Shard ``total_requests`` across ``procs`` serve replicas and merge.

    ``rate`` is the *per-shard* offered rate (each replica sees its own
    independent arrival process at this rate).  ``procs`` defaults to
    ``os.cpu_count()`` capped at 8; each shard gets seed ``seed + 1000·i``
    for its arrival/request streams while sharing the dataset (drawn from
    ``seed`` so every replica serves the same index).  ``tune_config`` (a
    resolved :mod:`repro.tune` config dict) makes every shard build its
    serving objects — batch policy, rebalancer, replicas, route filters —
    through the one config-application path; ``None`` keeps the legacy
    ``policy``/``fixed_batch`` arguments.
    """
    if procs is None:
        procs = min(8, os.cpu_count() or 1)
    procs = max(1, int(procs))
    spec_kw = {
        "dataset": dataset, "n": int(n), "data_seed": int(seed),
        "n_modules": int(n_modules), "index": index,
        "rate": float(rate), "mix": mix, "k": int(k),
        "deadline_s": float(deadline_s),
        "queue_depth": int(queue_depth), "overflow": overflow,
        "policy": policy, "fixed_batch": int(fixed_batch),
        "sim_mode": sim_mode, "exec_mode": exec_mode,
        "arrival": arrival, "tenants": tenants,
        "tune_config": tune_config,
    }
    specs = _shard_specs(procs=procs, total_requests=total_requests,
                         seed=seed, spec_kw=spec_kw)

    t0 = time.perf_counter()
    if procs <= 1 or len(specs) == 1:
        shards = [_run_shard_trapped(s) for s in specs]
    else:
        import multiprocessing as mp

        try:
            ctx = mp.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            ctx = mp.get_context("spawn")
        with ctx.Pool(processes=len(specs)) as pool:
            shards = pool.map(_run_shard_trapped, specs)
    _raise_if_failed(shards)
    wall = time.perf_counter() - t0

    lat = np.concatenate([np.asarray(s["latency_s"]) for s in shards]) \
        if shards else np.empty(0)
    que = np.concatenate([np.asarray(s["queue_s"]) for s in shards]) \
        if shards else np.empty(0)
    srv = np.concatenate([np.asarray(s["service_s"]) for s in shards]) \
        if shards else np.empty(0)
    return SweepResult(
        n_shards=len(shards),
        n_offered=sum(s["n_offered"] for s in shards),
        n_done=sum(s["n_done"] for s in shards),
        n_failed=sum(s["n_failed"] for s in shards),
        n_timed_out=sum(s["n_timed_out"] for s in shards),
        n_rejected=sum(s["n_rejected"] for s in shards),
        n_shed=sum(s["n_shed"] for s in shards),
        aggregate_throughput=sum(s["throughput"] for s in shards),
        aggregate_goodput=sum(s["goodput"] for s in shards),
        latency=latency_summary(lat),
        queue=latency_summary(que),
        service=latency_summary(srv),
        wall_s=wall,
        shard_wall_s=[s["wall_s"] for s in shards],
        shard_seeds=[s["seed"] for s in shards],
    )
