"""Bounded admission queue with explicit backpressure.

The queue sits between the arrival process and the batch former.  Its
depth bounds both memory and worst-case queueing delay; when full, one of
two *explicit* overflow policies applies — there is no code path that
discards a request without marking it:

* ``"reject"`` — refuse the new arrival (load shedding at the door; the
  client sees an immediate error and can retry elsewhere);
* ``"shed-oldest"`` — evict the oldest queued request to admit the new
  one (freshness-first: under overload the head of the queue is the work
  most likely to be past its deadline anyway).

Rejected and shed requests keep their stamps and terminal status and are
reported in :class:`~repro.serve.stats.LatencyStats`.
"""

from __future__ import annotations

from .request import QUEUED, REJECTED, SHED, TIMED_OUT, Request

__all__ = ["AdmissionQueue", "OVERFLOW_POLICIES"]

OVERFLOW_POLICIES = ("reject", "shed-oldest")


class AdmissionQueue:
    """FIFO admission queue with bounded depth and explicit overflow."""

    def __init__(self, depth: int, *, overflow: str = "reject") -> None:
        if depth < 1:
            raise ValueError("queue depth must be >= 1")
        if overflow not in OVERFLOW_POLICIES:
            raise ValueError(
                f"unknown overflow policy {overflow!r}; "
                f"choose from {OVERFLOW_POLICIES}"
            )
        self.depth = int(depth)
        self.overflow = overflow
        self._q: list[Request] = []
        self.rejected: list[Request] = []
        self.shed: list[Request] = []
        self.timed_out: list[Request] = []

    def __len__(self) -> int:
        return len(self._q)

    @property
    def is_empty(self) -> bool:
        return not self._q

    def offer(self, req: Request, now: float) -> bool:
        """Admit ``req`` at time ``now``; apply the overflow policy if full.

        Returns ``True`` iff the request was admitted.  Either way the
        request (and any evicted one) leaves with a recorded status.
        """
        req.enqueue_s = now
        if len(self._q) >= self.depth:
            if self.overflow == "reject":
                req.status = REJECTED
                self.rejected.append(req)
                return False
            victim = self._q.pop(0)
            victim.status = SHED
            self.shed.append(victim)
        req.status = QUEUED
        self._q.append(req)
        return True

    def head_group(self) -> tuple:
        """Batching group of the oldest queued request (FIFO fairness)."""
        if not self._q:
            raise LookupError("head_group() on an empty admission queue")
        return self._q[0].group

    def expire(self, now: float, timeout_s: float) -> list[Request]:
        """Time out queued requests older than ``timeout_s`` at ``now``.

        Expired requests leave with status TIMED_OUT and a completion
        stamp at the moment their timeout elapsed (not at ``now``, which
        may be later — the batch that exposed the timeout is irrelevant to
        the client that stopped waiting).
        """
        if timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        expired = [r for r in self._q if now - r.arrival_s > timeout_s]
        if expired:
            self._q = [r for r in self._q if now - r.arrival_s <= timeout_s]
            for r in expired:
                r.status = TIMED_OUT
                r.complete_s = r.arrival_s + timeout_s
            self.timed_out.extend(expired)
        return expired

    def backlog(self, group: tuple) -> int:
        """Number of queued requests in ``group``."""
        return sum(1 for r in self._q if r.group == group)

    def take(self, group: tuple, limit: int) -> list[Request]:
        """Remove and return up to ``limit`` oldest requests of ``group``."""
        if limit < 1:
            raise ValueError("batch limit must be >= 1")
        taken: list[Request] = []
        rest: list[Request] = []
        for r in self._q:
            if r.group == group and len(taken) < limit:
                taken.append(r)
            else:
                rest.append(r)
        self._q = rest
        return taken
