"""Bounded admission queue with explicit backpressure and tenant fairness.

The queue sits between the arrival process and the batch former.  Its
depth bounds both memory and worst-case queueing delay; when full, one of
two *explicit* overflow policies applies — there is no code path that
discards a request without marking it:

* ``"reject"`` — refuse the new arrival (load shedding at the door; the
  client sees an immediate error and can retry elsewhere);
* ``"shed-oldest"`` — evict the oldest queued request to admit the new
  one (freshness-first: under overload the head of the queue is the work
  most likely to be past its deadline anyway).

Rejected and shed requests keep their stamps and terminal status and are
reported in :class:`~repro.serve.stats.LatencyStats`.

**Structure.**  Requests live in per-``(tenant, group)`` deques with a
global admission sequence number: ``offer``/``take``/``head_group``/
``backlog`` are O(1)–O(#subqueues) instead of the former full-list scans
and ``pop(0)`` shifts, which mattered once per-tenant fair dequeue
multiplied the subqueue count.  Single-tenant FIFO behavior is preserved
exactly: the merge order across deques is the admission sequence, so the
observable offer/take/shed/expire sequences are byte-identical to the old
list implementation.

**Tenant fairness.**  With a :class:`~repro.serve.tenants.TenantPolicy`
attached (``tenants=``), dequeue order becomes weighted fair queueing:
each tenant carries a virtual finish time advanced by ``1/weight`` per
dequeued request, and ``head_group``/``take`` serve the eligible tenant
with the smallest finish time (ties by tenant name) instead of global
FIFO — within one tenant, order stays FIFO.  Overflow under
``shed-oldest`` becomes *fair-share shedding*: an arrival from a tenant
already at or over its weighted share of the queue sheds that tenant's
own oldest request, otherwise the tenant most over its share sheds — so
an adversarial flood cannibalises itself and a well-behaved tenant's
backlog survives.  With ``tenants=None`` (the default) every fairness
branch is skipped and the queue is the plain single-tenant FIFO.
"""

from __future__ import annotations

from collections import deque

from .request import QUEUED, REJECTED, SHED, TIMED_OUT, Request
from .tenants import TenantPolicy

__all__ = ["AdmissionQueue", "OVERFLOW_POLICIES"]

OVERFLOW_POLICIES = ("reject", "shed-oldest")


class AdmissionQueue:
    """Admission queue with bounded depth, explicit overflow, optional WFQ."""

    def __init__(self, depth: int, *, overflow: str = "reject",
                 tenants: TenantPolicy | None = None) -> None:
        if depth < 1:
            raise ValueError("queue depth must be >= 1")
        if overflow not in OVERFLOW_POLICIES:
            raise ValueError(
                f"unknown overflow policy {overflow!r}; "
                f"choose from {OVERFLOW_POLICIES}"
            )
        if tenants is not None and not isinstance(tenants, TenantPolicy):
            tenants = TenantPolicy(weights=dict(tenants))
        self.depth = int(depth)
        self.overflow = overflow
        self.tenants = tenants
        # (tenant, group) → deque of (seq, Request); seq is the global
        # admission counter, so min-head-seq across deques is the global
        # FIFO order the old list implementation exposed.
        self._sub: dict[tuple, deque] = {}
        self._size = 0
        self._seq = 0
        # Per-tenant queued counts (fair-share shedding) and WFQ virtual
        # clock state: virtual finish time per tenant + the global virtual
        # time (the max start time granted so far).
        self._tenant_count: dict[str, int] = {}
        self._vft: dict[str, float] = {}
        self._vnow = 0.0
        self.rejected: list[Request] = []
        self.shed: list[Request] = []
        self.timed_out: list[Request] = []

    def __len__(self) -> int:
        return self._size

    @property
    def is_empty(self) -> bool:
        return self._size == 0

    # -- internals ------------------------------------------------------
    def _remove_entry(self, key: tuple, seq: int, req: Request) -> None:
        """Bookkeeping after an entry left the subqueue ``key``."""
        self._size -= 1
        t = key[0]
        self._tenant_count[t] -= 1
        if self._tenant_count[t] == 0:
            del self._tenant_count[t]
        if not self._sub[key]:
            del self._sub[key]

    def _oldest_key(self, *, tenant: str | None = None,
                    group: tuple | None = None) -> tuple | None:
        """Subqueue key holding the globally oldest entry (min head seq),
        optionally restricted to one tenant and/or one batching group."""
        best_key = None
        best_seq = None
        for key, dq in self._sub.items():
            if tenant is not None and key[0] != tenant:
                continue
            if group is not None and key[1] != group:
                continue
            seq = dq[0][0]
            if best_seq is None or seq < best_seq:
                best_seq = seq
                best_key = key
        return best_key

    def _shed_from(self, key: tuple) -> Request:
        seq, victim = self._sub[key].popleft()
        self._remove_entry(key, seq, victim)
        victim.status = SHED
        self.shed.append(victim)
        return victim

    def _weight(self, tenant: str) -> float:
        assert self.tenants is not None
        return self.tenants.weight(tenant)

    def _shed_victim_tenant(self, arriving: str) -> str:
        """Fair-share shedding: whose oldest request goes.

        The arriving tenant sheds *itself* when it is at or over its
        weighted share of the queue (an adversarial flood pays for its
        own overflow); otherwise the tenant most over its share sheds,
        ties broken by tenant name for determinism.
        """
        active = sorted(set(self._tenant_count) | {arriving})
        share = self.tenants.fair_share(arriving, self.depth, active)
        if self._tenant_count.get(arriving, 0) >= share:
            return arriving
        worst = None
        for t in sorted(self._tenant_count):
            over = self._tenant_count[t] / self._weight(t)
            if worst is None or over > worst[0]:
                worst = (over, t)
        return worst[1]

    # -- admission ------------------------------------------------------
    def offer(self, req: Request, now: float) -> bool:
        """Admit ``req`` at time ``now``; apply the overflow policy if full.

        Returns ``True`` iff the request was admitted.  Either way the
        request (and any evicted one) leaves with a recorded status.
        ``req.enqueue_s`` is stamped with ``now`` — the admission instant,
        which a re-offered request (restart/retry paths) resets, so
        queue-wait accounting (:meth:`expire`) charges only time actually
        spent in *this* queue residence.
        """
        req.enqueue_s = now
        if self._size >= self.depth:
            if self.overflow == "reject":
                req.status = REJECTED
                self.rejected.append(req)
                return False
            if self.tenants is not None:
                victim_tenant = self._shed_victim_tenant(req.tenant)
                key = self._oldest_key(tenant=victim_tenant)
                if key is None:  # arriving tenant has nothing queued yet
                    key = self._oldest_key()
            else:
                key = self._oldest_key()
            self._shed_from(key)
        req.status = QUEUED
        key = (req.tenant, req.group)
        dq = self._sub.get(key)
        if dq is None:
            dq = self._sub[key] = deque()
        dq.append((self._seq, req))
        self._seq += 1
        self._size += 1
        self._tenant_count[req.tenant] = \
            self._tenant_count.get(req.tenant, 0) + 1
        if self.tenants is not None and self._tenant_count[req.tenant] == 1:
            # Idle → backlogged: re-anchor the tenant's virtual finish to
            # the current virtual time, so a returning tenant competes
            # from *now* instead of replaying its idle past — but a
            # continuously backlogged tenant keeps its finish time, which
            # is what prevents an aggressive tenant from pushing it
            # forever into the future (starvation).
            self._vft[req.tenant] = max(self._vft.get(req.tenant, 0.0),
                                        self._vnow)
        return True

    # -- WFQ dequeue order ----------------------------------------------
    def _wfq_pick(self, group: tuple | None = None) -> tuple | None:
        """Subqueue to serve next under WFQ (peek — no virtual-time
        mutation): the queued tenant with the smallest prospective
        virtual finish time, ties by tenant name; within the tenant, its
        oldest entry (optionally restricted to ``group``).

        The prospective finish is ``vft[t] + 1/weight`` with ``vft``
        anchored at the tenant's last dequeue (or its idle→backlogged
        transition, see :meth:`offer`) — *not* re-maxed against the
        global virtual time, which would let a busy tenant indefinitely
        postpone a backlogged one.
        """
        best = None
        for t in sorted(self._tenant_count):
            key = self._oldest_key(tenant=t, group=group)
            if key is None:
                continue
            finish = self._vft.get(t, 0.0) + 1.0 / self._weight(t)
            if best is None or (finish, t) < best[0]:
                best = ((finish, t), key)
        return None if best is None else best[1]

    def _wfq_advance(self, tenant: str) -> None:
        start = self._vft.get(tenant, 0.0)
        # vnow tracks the virtual start of the request in service (SFQ):
        # it only re-anchors tenants returning from idle.
        self._vnow = start
        self._vft[tenant] = start + 1.0 / self._weight(tenant)

    # -- batch forming ---------------------------------------------------
    def head_group(self) -> tuple:
        """Batching group to serve next.

        FIFO mode: the group of the oldest queued request (FIFO fairness
        across groups).  WFQ mode: the group of the next tenant's oldest
        request under weighted fair queueing — a pure peek, the virtual
        clock only advances when :meth:`take` dequeues.
        """
        if self._size == 0:
            raise LookupError("head_group() on an empty admission queue")
        if self.tenants is not None:
            key = self._wfq_pick()
        else:
            key = self._oldest_key()
        return key[1]

    def backlog(self, group: tuple) -> int:
        """Number of queued requests in ``group`` (across all tenants)."""
        return sum(len(dq) for key, dq in self._sub.items()
                   if key[1] == group)

    def take(self, group: tuple, limit: int) -> list[Request]:
        """Remove and return up to ``limit`` requests of ``group``.

        FIFO mode: the globally oldest requests of the group, in
        admission order.  WFQ mode: requests are drawn tenant-by-tenant
        in weighted-fair order (each dequeue advances the tenant's
        virtual finish time by ``1/weight``), FIFO within each tenant —
        so one batch interleaves tenants in their service proportions.
        """
        if limit < 1:
            raise ValueError("batch limit must be >= 1")
        taken: list[Request] = []
        while len(taken) < limit:
            if self.tenants is not None:
                key = self._wfq_pick(group)
            else:
                key = self._oldest_key(group=group)
            if key is None:
                break
            seq, req = self._sub[key].popleft()
            self._remove_entry(key, seq, req)
            if self.tenants is not None:
                self._wfq_advance(key[0])
            taken.append(req)
        return taken

    # -- expiry ----------------------------------------------------------
    def expire(self, now: float, timeout_s: float) -> list[Request]:
        """Time out requests queued longer than ``timeout_s`` at ``now``.

        The timeout base is :attr:`Request.enqueue_s` — the instant this
        queue admitted the request — **not** ``arrival_s``: a request
        re-offered after a machine restart or a retry path re-enters the
        queue with a fresh ``enqueue_s`` and must not be charged
        queue-wait it never spent waiting here (in the normal serve loop
        the two coincide, since arrivals are offered at their arrival
        instants).  Expired requests leave with status TIMED_OUT and
        ``complete_s = enqueue_s + timeout_s`` — the moment their timeout
        elapsed, not ``now``, which may be later: the batch that exposed
        the timeout is irrelevant to the client that stopped waiting.
        """
        if timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        expired: list[tuple[int, Request]] = []
        for key in list(self._sub):
            dq = self._sub[key]
            keep = deque()
            for seq, r in dq:
                if now - r.enqueue_s > timeout_s:
                    expired.append((seq, r))
                    self._remove_entry(key, seq, r)
                else:
                    keep.append((seq, r))
            if keep:
                self._sub[key] = keep
            else:
                self._sub.pop(key, None)
        expired.sort(key=lambda e: e[0])  # admission order, as before
        out = []
        for _seq, r in expired:
            r.status = TIMED_OUT
            r.complete_s = r.enqueue_s + timeout_s
            self.timed_out.append(r)
            out.append(r)
        return out
