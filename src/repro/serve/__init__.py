"""Open-loop serving layer over the measured index adapters (``repro.serve``).

Closed-loop benchmarks (one pre-formed batch at a time) reproduce the
paper's throughput figures but cannot speak to tail latency, queueing or
saturation — the metrics a serving stack is judged on.  This package adds
the missing layer on top of the existing harness adapters:

* arrival processes live in ``repro.workloads.arrivals`` (Poisson /
  bursty / diurnal-replay);
* :class:`AdmissionQueue` — bounded depth, explicit backpressure
  (reject or shed-oldest; never a silent drop);
* :class:`AdaptiveBatchPolicy` / :class:`FixedBatchPolicy` — continuous
  batch forming, with the adaptive policy tuning batch size online from
  the cost model's round-overhead amortisation curve (Fig. 7);
* :class:`ServeLoop` — an event-loop scheduler advancing a virtual clock
  by each batch's measured :class:`~repro.pim.SimTime`, stamping
  per-request enqueue/dispatch/complete times;
* :class:`LatencyStats` — p50/p90/p99/p999 latency, time-in-queue vs
  time-in-service, goodput under deadline; exported as JSON/CSV through
  ``repro.obs`` and surfaced by ``python -m repro.cli serve``;
* :class:`TenantPolicy` (``repro.serve.tenants``) — multi-tenant
  admission: weighted-fair dequeue with SLO-class weights, fair-share
  shedding, and per-tenant latency/goodput breakdowns in the stats;
  composes with K-way chunk replication (``repro.replicate``) for the
  tenant-isolation story.

Under a :class:`repro.faults.FaultPlan` the loop is *resilient*: typed
faults from the simulator are retried with exponential backoff, a dead
module's shard is failed over (rebuilt from the host-resident index,
charged under the ``"recovery"`` phase), queued requests expire after a
per-request timeout, and exhausted query batches complete with partial
results — every request still ends in exactly one terminal state, and
:class:`LatencyStats` reports availability alongside goodput.  Driven
from the CLI via ``python -m repro.cli faults``.

Everything runs on the simulated clock, so serve runs are deterministic:
identical inputs produce byte-identical stats.
"""

from .batcher import AdaptiveBatchPolicy, FixedBatchPolicy
from .loop import BatchRecord, ServeLoop, ServeResult
from .queue import AdmissionQueue, OVERFLOW_POLICIES
from .request import KINDS, Request, make_requests
from .stats import LatencyStats, latency_summary
from .sweep import SweepResult, SweepShardError, run_shard, run_sweep
from .tenants import DEFAULT_TENANT, SLO_CLASSES, TenantPolicy

__all__ = [
    "AdaptiveBatchPolicy",
    "AdmissionQueue",
    "BatchRecord",
    "DEFAULT_TENANT",
    "FixedBatchPolicy",
    "KINDS",
    "LatencyStats",
    "OVERFLOW_POLICIES",
    "Request",
    "SLO_CLASSES",
    "ServeLoop",
    "ServeResult",
    "SweepResult",
    "SweepShardError",
    "TenantPolicy",
    "calibrate_capacity",
    "latency_summary",
    "make_requests",
    "run_shard",
    "run_sweep",
    "serve",
]


def calibrate_capacity(adapter, data, *, kind: str = "knn", k: int = 10,
                       batch: int = 256, seed: int = 0) -> float:
    """Measured service capacity (requests/s) at a reference batch size.

    Runs one batch of ``kind`` through ``adapter.measure`` and returns
    ``batch / service_seconds`` — the sustained rate at good amortisation,
    used to express offered load as a fraction of capacity.  Queries are
    read-only but do warm the adapter's simulated LLC; calibrate on a
    throwaway adapter when byte-exact downstream stats matter.
    """
    import numpy as np

    rng = np.random.default_rng(seed)
    if kind == "knn":
        q = data[rng.integers(0, len(data), size=batch)]
        q = q + rng.normal(scale=1e-4, size=q.shape)
        m = adapter.measure(lambda: adapter.knn(q, k))
    elif kind == "insert":
        lo, hi = data.min(axis=0), data.max(axis=0)
        pts = lo + rng.random((batch, data.shape[1])) * (hi - lo)
        m = adapter.measure(lambda: adapter.insert(pts))
    else:
        raise ValueError(f"cannot calibrate capacity on kind {kind!r}")
    if m.sim_time_s <= 0:
        raise RuntimeError("calibration batch took zero simulated time")
    return batch / m.sim_time_s


def serve(adapter, requests, *, queue_depth: int = 1024,
          overflow: str = "reject", policy=None,
          max_retries: int = 3, backoff_s: float = 1e-4,
          timeout_s: float | None = None, degraded_mode: bool = True,
          failover: bool = True, rebalancer=None,
          tenants=None, replication=None) -> ServeResult:
    """One-call serve run: build the queue and loop, serve ``requests``.

    The fault-resilience knobs (``max_retries``, ``backoff_s``,
    ``timeout_s``, ``degraded_mode``, ``failover``) are forwarded to
    :class:`ServeLoop`; all are inert on a fault-free adapter except
    ``timeout_s``, which expires over-age queued requests regardless.
    ``rebalancer`` (a :class:`repro.balance.OnlineRebalancer`) enables
    budget-capped background migration between batches.

    ``tenants`` (a :class:`TenantPolicy` or a tenant→weight dict) turns
    the admission queue into weighted-fair dequeue with fair-share
    shedding.  ``replication`` (a
    :class:`repro.replicate.ReplicationConfig`) attaches a ReplicaSet to
    the adapter's tree and installs the initial K-way copies (charged)
    before serving starts.
    """
    if policy is None:
        policy = AdaptiveBatchPolicy()
    if replication is not None:
        from ..replicate import ReplicaSet

        ReplicaSet(adapter.tree, replication).replicate_all()
    loop = ServeLoop(adapter,
                     AdmissionQueue(queue_depth, overflow=overflow,
                                    tenants=tenants),
                     policy, max_retries=max_retries, backoff_s=backoff_s,
                     timeout_s=timeout_s, degraded_mode=degraded_mode,
                     failover=failover, rebalancer=rebalancer)
    return loop.run(requests)
