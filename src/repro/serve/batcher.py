"""Continuous batch forming: fixed and adaptive batch-size policies.

The BSP substrate pays fixed per-round costs — the mux switch, driver/API
overhead, and per-(module, round) DMA setup (``repro.pim.cost_model``) —
so per-operation cost falls with batch size along the Fig. 7 amortisation
curve ``t(B) ≈ a + b·B``: ``a`` is the fixed per-dispatch overhead and
``b`` the marginal per-request cost.  A continuous batcher must tune this
knob online:

* batches far below the amortisation knee waste capacity on overheads
  (the server saturates earlier, queues explode);
* unboundedly large batches serve the backlog in coarse grains, so every
  request in a grain inherits the whole grain's service time
  (head-of-line blocking inside the batch).

:class:`AdaptiveBatchPolicy` estimates ``(a, b)`` per request group from
observed ``(batch size, service time)`` pairs by least squares over a
sliding window, then dispatches ``min(backlog, B*)`` where ``B*`` is the
smallest batch keeping the fixed-overhead share of the batch's service
time under ``overhead_target``.  Until two distinct batch sizes have been
observed it probes a doubling schedule (1, 2, 4, ...) to expose the
curve.  :class:`FixedBatchPolicy` is the closed-loop-style baseline: a
constant cap, whatever the load.

Both policies are work-conserving — they never hold the server idle to
wait for more arrivals — and deterministic.
"""

from __future__ import annotations

import math

__all__ = ["FixedBatchPolicy", "AdaptiveBatchPolicy"]


class FixedBatchPolicy:
    """Always dispatch up to a constant ``batch`` requests."""

    name = "fixed"

    def __init__(self, batch: int) -> None:
        if batch < 1:
            raise ValueError("fixed batch size must be >= 1")
        self.batch = int(batch)

    def batch_size(self, group: tuple, backlog: int) -> int:
        return max(1, min(backlog, self.batch))

    def observe(self, group: tuple, size: int, service_s: float) -> None:
        pass

    def snapshot(self) -> dict:
        """Auditable policy state for the stats config block."""
        return {"name": self.name, "batch": self.batch}


class AdaptiveBatchPolicy:
    """Batch size from the measured round-overhead amortisation curve."""

    name = "adaptive"

    def __init__(self, *, overhead_target: float = 0.1, min_batch: int = 1,
                 max_batch: int = 4096, window: int = 32) -> None:
        if not 0.0 < overhead_target < 1.0:
            raise ValueError("overhead_target must be in (0, 1)")
        if not 1 <= min_batch <= max_batch:
            raise ValueError("need 1 <= min_batch <= max_batch")
        self.overhead_target = float(overhead_target)
        self.min_batch = int(min_batch)
        self.max_batch = int(max_batch)
        self.window = int(window)
        self._obs: dict[tuple, list[tuple[int, float]]] = {}
        self._probe: dict[tuple, int] = {}

    # ------------------------------------------------------------------
    def batch_size(self, group: tuple, backlog: int) -> int:
        backlog = max(1, backlog)
        fit = self._fit(group)
        if fit is None:
            # Bootstrap: doubling probes expose the amortisation curve with
            # distinct batch sizes while staying work-conserving.
            probe = self._probe.get(group, self.min_batch)
            return min(backlog, probe, self.max_batch)
        a, b = fit
        # A noisy window can fit b <= 0 (or an a/b ratio far beyond the
        # observed range), which would jump the batch straight to
        # max_batch on the strength of a degenerate extrapolation.  Cap
        # every fitted choice at 2x the largest batch actually observed:
        # growth stays geometric (like the bootstrap probes) instead of
        # cliff-jumping into head-of-line blocking.
        cap = max(self.min_batch, 2 * max(sz for sz, _ in self._obs[group]))
        if a <= 0.0:
            # No measurable fixed overhead: batching buys nothing, serve in
            # the finest grains the backlog allows.
            return min(backlog, max(1, self.min_batch))
        if b <= 0.0:
            # No measurable marginal cost: amortise as hard as the
            # observed range supports.
            return min(backlog, cap, self.max_batch)
        f = self.overhead_target
        b_star = math.ceil(a * (1.0 - f) / (b * f))
        b_star = max(b_star, self.min_batch)
        return min(backlog, b_star, cap, self.max_batch)

    def observe(self, group: tuple, size: int, service_s: float) -> None:
        obs = self._obs.setdefault(group, [])
        obs.append((int(size), float(service_s)))
        del obs[: -self.window]
        self._probe[group] = min(max(2 * int(size), self.min_batch),
                                 self.max_batch)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Auditable policy state: the fitted amortisation coefficients
        ``(a, b)`` and the current target per request group.

        ``target`` is the backlog-independent batch size the policy
        would pick right now (``B*`` clamped by the observed-range cap
        and ``max_batch``); ``None`` while a group is still on the
        doubling-probe bootstrap.  Attached to ``LatencyStats.config``
        so tuned profiles and online adaptations are auditable.
        """
        groups: dict[str, dict] = {}
        for group, obs in sorted(self._obs.items(), key=lambda kv: str(kv[0])):
            entry: dict = {"n_obs": len(obs)}
            fit = self._fit(group)
            if fit is None:
                entry.update(a=None, b=None, target=None,
                             probe=self._probe.get(group, self.min_batch))
            else:
                a, b = fit
                cap = max(self.min_batch, 2 * max(sz for sz, _ in obs))
                if a <= 0.0:
                    target = max(1, self.min_batch)
                elif b <= 0.0:
                    target = min(cap, self.max_batch)
                else:
                    f = self.overhead_target
                    target = min(max(math.ceil(a * (1.0 - f) / (b * f)),
                                     self.min_batch), cap, self.max_batch)
                entry.update(a=a, b=b, target=int(target), cap=int(cap))
            groups["/".join(str(p) for p in group)] = entry
        return {
            "name": self.name,
            "overhead_target": self.overhead_target,
            "min_batch": self.min_batch,
            "max_batch": self.max_batch,
            "window": self.window,
            "groups": groups,
        }

    # ------------------------------------------------------------------
    def _fit(self, group: tuple) -> tuple[float, float] | None:
        """Least-squares ``t(B) = a + b·B`` over the window; ``None`` until
        two distinct batch sizes have been observed."""
        obs = self._obs.get(group)
        if not obs or len({sz for sz, _ in obs}) < 2:
            return None
        n = len(obs)
        sx = sum(sz for sz, _ in obs)
        sy = sum(t for _, t in obs)
        sxx = sum(sz * sz for sz, _ in obs)
        sxy = sum(sz * t for sz, t in obs)
        denom = n * sxx - sx * sx
        if denom <= 0:
            return None
        b = (n * sxy - sx * sy) / denom
        a = (sy - b * sx) / n
        return a, b
