"""Latency accounting for open-loop serve runs.

:class:`LatencyStats` condenses a finished run — the full request list
with lifecycle stamps plus the dispatched batch records — into the
serving metrics that closed-loop throughput cannot express:

* tail latency (p50/p90/p99/p999, mean, max) of total latency, split into
  time-in-queue and time-in-service;
* goodput: completed-on-time requests per second of makespan, versus raw
  throughput;
* backpressure outcomes: rejected / shed counts (explicit, never silent);
* fault outcomes: failed / timed-out / degraded counts and availability
  (the fraction of dispatched-or-expired work that produced a result);
* batching behaviour: dispatched batch count and mean batch size.

Everything is computed from simulated-clock stamps with the repo's
nearest-rank :func:`repro.eval.metrics.percentile`, so two identical runs
produce byte-identical stats (``to_json`` is canonical: sorted keys,
fixed separators).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..eval.metrics import percentile
from .request import DEGRADED, DONE, FAILED, REJECTED, SHED, TIMED_OUT

__all__ = ["LatencyStats", "latency_summary"]

_QUANTILES = (("p50", 50.0), ("p90", 90.0), ("p99", 99.0), ("p999", 99.9))


def latency_summary(values) -> dict[str, float]:
    """Nearest-rank percentile summary of ``values`` (seconds)."""
    vals = [float(v) for v in values]
    out = {name: percentile(vals, q) for name, q in _QUANTILES}
    out["mean"] = sum(vals) / len(vals) if vals else float("nan")
    out["max"] = max(vals) if vals else float("nan")
    return out


@dataclass
class LatencyStats:
    """Aggregate serving metrics for one open-loop run."""

    # Population.
    n_offered: int
    n_done: int
    n_rejected: int
    n_shed: int
    n_late: int                     # completed after their deadline
    # Clock.
    horizon_s: float                # last arrival time
    makespan_s: float               # last completion (or arrival) time
    # Rates (requests per simulated second).
    offered_rate: float
    throughput: float               # completed / makespan
    goodput: float                  # completed on time / makespan
    # Seconds, nearest-rank percentiles over completed requests.
    latency: dict[str, float]
    queue: dict[str, float]
    service: dict[str, float]
    # Batching.
    n_batches: int
    mean_batch: float
    # Completed-request count per request kind.
    by_kind: dict[str, int] = field(default_factory=dict)
    # Fault outcomes (all zero on a fault-free run).
    n_failed: int = 0               # retries exhausted, no result
    n_timed_out: int = 0            # expired while queued
    n_degraded: int = 0             # completed with partial results
    # Of the requests that reached service or expired waiting (done +
    # degraded + failed + timed out), the fraction that produced a result
    # (full or partial).  1.0 when that population is empty.
    availability: float = 1.0
    # Per-tenant breakdown (repro.serve.tenants).  Populated only when a
    # run carries a non-default tenant, so single-tenant runs keep their
    # exact historical dict/JSON shape.
    by_tenant: dict = field(default_factory=dict)
    # Replication accounting (repro.replicate.ReplicaSet.summary),
    # attached by the serve loop when a ReplicaSet is present.
    replication: dict | None = None
    # Membership-filter routing accounting
    # (repro.route.RouteFilterSet.summary), attached by the serve loop
    # when filters are installed on the adapter's tree.
    filters: dict | None = None
    # Tuning audit block (policy snapshot with fitted amortisation
    # coefficients + online-controller history), attached by the serve
    # loop only when an active OnlineController ran.
    config: dict | None = None

    # ------------------------------------------------------------------
    @classmethod
    def compute(cls, requests, batches) -> "LatencyStats":
        done = [r for r in requests if r.status == DONE]
        rejected = [r for r in requests if r.status == REJECTED]
        shed = [r for r in requests if r.status == SHED]
        failed = [r for r in requests if r.status == FAILED]
        timed_out = [r for r in requests if r.status == TIMED_OUT]
        degraded = [r for r in requests if r.status == DEGRADED]
        late = [r for r in done if not r.on_time]
        # Latency percentiles cover every request that produced a result;
        # a degraded answer was still delivered (late answers already
        # count, partial ones do too).
        answered = done + degraded
        answered.sort(key=lambda r: r.rid)
        horizon = max((r.arrival_s for r in requests), default=0.0)
        makespan = max(
            [horizon] + [r.complete_s for r in answered]
        ) if requests else 0.0
        by_kind: dict[str, int] = {}
        for r in done:
            by_kind[r.kind] = by_kind.get(r.kind, 0) + 1
        n_batches = len(batches)
        total_batched = sum(b.size for b in batches)
        served = len(answered) + len(failed) + len(timed_out)
        tenants = sorted({r.tenant for r in requests})
        by_tenant: dict[str, dict] = {}
        if tenants and tenants != ["default"]:
            for t in tenants:
                t_reqs = [r for r in requests if r.tenant == t]
                t_done = [r for r in t_reqs if r.status == DONE]
                t_answered = sorted(
                    (r for r in t_reqs if r.status in (DONE, DEGRADED)),
                    key=lambda r: r.rid,
                )
                t_on_time = sum(1 for r in t_done if r.on_time)
                by_tenant[t] = {
                    "n_offered": len(t_reqs),
                    "n_done": len(t_done),
                    "n_rejected": sum(
                        1 for r in t_reqs if r.status == REJECTED),
                    "n_shed": sum(1 for r in t_reqs if r.status == SHED),
                    "n_timed_out": sum(
                        1 for r in t_reqs if r.status == TIMED_OUT),
                    "throughput": (len(t_answered) / makespan
                                   if makespan > 0 else 0.0),
                    "goodput": (t_on_time / makespan
                                if makespan > 0 else 0.0),
                    "latency_s": latency_summary(
                        r.latency_s for r in t_answered),
                    "queue_s": latency_summary(
                        r.queue_s for r in t_answered),
                }
        return cls(
            n_offered=len(requests),
            n_done=len(done),
            n_rejected=len(rejected),
            n_shed=len(shed),
            n_late=len(late),
            horizon_s=horizon,
            makespan_s=makespan,
            offered_rate=len(requests) / horizon if horizon > 0 else 0.0,
            throughput=len(answered) / makespan if makespan > 0 else 0.0,
            goodput=(len(done) - len(late)) / makespan if makespan > 0 else 0.0,
            latency=latency_summary(r.latency_s for r in answered),
            queue=latency_summary(r.queue_s for r in answered),
            service=latency_summary(r.service_s for r in answered),
            n_batches=n_batches,
            mean_batch=total_batched / n_batches if n_batches else 0.0,
            by_kind=dict(sorted(by_kind.items())),
            n_failed=len(failed),
            n_timed_out=len(timed_out),
            n_degraded=len(degraded),
            availability=len(answered) / served if served else 1.0,
            by_tenant=by_tenant,
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        out = {
            "n_offered": self.n_offered,
            "n_done": self.n_done,
            "n_rejected": self.n_rejected,
            "n_shed": self.n_shed,
            "n_late": self.n_late,
            "n_failed": self.n_failed,
            "n_timed_out": self.n_timed_out,
            "n_degraded": self.n_degraded,
            "availability": self.availability,
            "horizon_s": self.horizon_s,
            "makespan_s": self.makespan_s,
            "offered_rate": self.offered_rate,
            "throughput": self.throughput,
            "goodput": self.goodput,
            "latency_s": dict(self.latency),
            "queue_s": dict(self.queue),
            "service_s": dict(self.service),
            "n_batches": self.n_batches,
            "mean_batch": self.mean_batch,
            "by_kind": dict(self.by_kind),
        }
        # Optional sections: omitted entirely when inactive, so runs
        # without tenants/replicas keep their exact historical JSON.
        if self.by_tenant:
            out["by_tenant"] = {t: dict(d) for t, d in self.by_tenant.items()}
        if self.replication is not None:
            out["replication"] = dict(self.replication)
        if self.filters is not None:
            out["filters"] = dict(self.filters)
        if self.config is not None:
            out["config"] = dict(self.config)
        return out

    def to_json(self) -> str:
        """Canonical JSON (sorted keys, fixed separators): byte-identical
        for identical runs.  Non-finite floats serialise as ``null`` —
        bare ``NaN`` tokens are not JSON and break strict parsers."""
        from ..obs.export import sanitize_json

        return json.dumps(sanitize_json(self.to_dict()), sort_keys=True,
                          separators=(",", ":"), allow_nan=False)

    # ------------------------------------------------------------------
    def table(self) -> str:
        """Human-readable summary for the CLI."""
        ms = 1e3
        lines = [
            f"offered {self.n_offered} ({self.offered_rate:.1f} req/s) | "
            f"done {self.n_done} | rejected {self.n_rejected} | "
            f"shed {self.n_shed} | late {self.n_late}",
            f"throughput {self.throughput:.1f} req/s | "
            f"goodput {self.goodput:.1f} req/s | "
            f"batches {self.n_batches} (mean size {self.mean_batch:.1f})",
        ]
        if self.n_failed or self.n_timed_out or self.n_degraded:
            lines.append(
                f"failed {self.n_failed} | timed out {self.n_timed_out} | "
                f"degraded {self.n_degraded} | "
                f"availability {self.availability * 100:.2f}%"
            )
        lines.append(
            "            p50        p90        p99        p999       max"
        )
        for label, s in (("latency", self.latency), ("queue", self.queue),
                         ("service", self.service)):
            lines.append(
                f"{label:8s} {s['p50'] * ms:9.3f}ms {s['p90'] * ms:9.3f}ms "
                f"{s['p99'] * ms:9.3f}ms {s['p999'] * ms:9.3f}ms "
                f"{s['max'] * ms:9.3f}ms"
            )
        for t, d in self.by_tenant.items():
            s = d["latency_s"]
            lines.append(
                f"tenant {t}: offered {d['n_offered']} done {d['n_done']} "
                f"shed {d['n_shed']} rejected {d['n_rejected']} | "
                f"goodput {d['goodput']:.1f} req/s | "
                f"p50 {s['p50'] * ms:.3f}ms p99 {s['p99'] * ms:.3f}ms"
            )
        if self.replication is not None:
            r = self.replication
            lines.append(
                f"replication k={r['k']} ({r['write_policy']}): "
                f"{r['chunks_replicated']} chunks, {r['total_copies']} copies"
                f" | {r['writes_fanned']} writes fanned | "
                f"{r['promotions']} promotions | "
                f"staleness max {r['staleness']['max_s'] * ms:.3f}ms"
            )
        if self.filters is not None:
            f = self.filters
            lines.append(
                f"route filters (fpr={f['fpr']:g}): "
                f"{f['queries_pruned']} queries pruned | "
                f"{f['words_saved']:.0f} words saved | "
                f"{f['fp_probes']} false-positive probes | "
                f"{f['filter_kib']:.1f} KiB resident"
            )
        if self.config is not None and "controller" in self.config:
            c = self.config["controller"]
            lines.append(
                f"online tuning: {c['changes']} change(s) over "
                f"{c['phases']} phase(s) "
                f"(whitelist: {', '.join(c['whitelist']) or 'empty'})"
            )
        return "\n".join(lines)
