"""Workload generators for the §7 experiments.

* :func:`uniform_points` — the §7.2 microbenchmark distribution.
* :func:`varden_points` — the Varden extreme-skew generator of Gan & Tao
  [32]: a random walk laying down dense filament clusters with occasional
  restarts, the paper's Fig. 9 stressor.
* :func:`cosmos_like_points` — a synthetic stand-in for the COSMOS
  astronomy catalogue [78]: Gaussian galaxy clusters with lognormal masses
  over a uniform background, tuned to the published Gini ≈ 0.287 over
  2048 bins (moderate skew).
* :func:`osm_like_points` — a synthetic stand-in for OpenStreetMap North
  America [38]: Pareto-mass city clusters connected by polyline "roads",
  tuned to the published Gini ≈ 0.967 (extreme skew).

The real datasets are proprietary-scale downloads the paper used only for
their *spatial skew*; DESIGN.md records this substitution.  All generators
emit points in the unit cube ``[0, 1]^D`` and take a NumPy ``Generator``
or an integer seed.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "uniform_points",
    "varden_points",
    "cosmos_like_points",
    "osm_like_points",
    "zipf_mix_queries",
]


def _rng(seed) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def uniform_points(n: int, dims: int = 3, seed=0) -> np.ndarray:
    """Uniformly random points in the unit cube."""
    return _rng(seed).random((n, dims))


def varden_points(n: int, dims: int = 3, seed=0, *, restart_prob: float = 1e-4,
                  step_scale: float = 2e-4) -> np.ndarray:
    """Varden [32]: random-walk filaments with restarts (extreme skew).

    The walk deposits one point per step, moving by a small Gaussian step;
    with probability ``restart_prob`` it teleports to a uniform location,
    starting a new filament.  Density along a filament is ~1/step_scale
    per unit length — orders of magnitude above the background, which is
    what makes the distribution adversarial for range-partitioned indexes.
    """
    rng = _rng(seed)
    out = np.empty((n, dims))
    pos = rng.random(dims)
    restarts = rng.random(n) < restart_prob
    steps = rng.normal(scale=step_scale, size=(n, dims))
    for i in range(n):
        if restarts[i]:
            pos = rng.random(dims)
        else:
            pos = pos + steps[i]
            # Reflect at the boundary to stay inside the cube.
            pos = np.abs(pos)
            over = pos > 1.0
            pos[over] = 2.0 - pos[over]
        out[i] = pos
    return np.clip(out, 0.0, 1.0)


def cosmos_like_points(n: int, dims: int = 3, seed=0, *,
                       n_clusters: int = 400, background_fraction: float = 0.52,
                       sigma_mean: float = 0.035, mass_sigma: float = 0.75
                       ) -> np.ndarray:
    """COSMOS-like moderate skew: lognormal-mass Gaussian clusters.

    Defaults are calibrated so that ``gini_coefficient(points, 2048)`` is
    ≈ 0.29 for 3-D data (the paper reports 0.287 for the real catalogue,
    ≈ Zipf γ = 0.455).
    """
    rng = _rng(seed)
    n_bg = int(n * background_fraction)
    n_cl = n - n_bg
    centers = rng.random((n_clusters, dims))
    masses = rng.lognormal(mean=0.0, sigma=mass_sigma, size=n_clusters)
    masses /= masses.sum()
    counts = rng.multinomial(n_cl, masses)
    sigmas = rng.lognormal(mean=np.log(sigma_mean), sigma=0.4, size=n_clusters)
    chunks = [rng.random((n_bg, dims))]
    for c in range(n_clusters):
        if counts[c] == 0:
            continue
        pts = rng.normal(loc=centers[c], scale=sigmas[c], size=(counts[c], dims))
        chunks.append(pts)
    out = np.vstack(chunks)[:n]
    out = np.abs(out)
    over = out > 1.0
    out[over] = 2.0 - out[over]
    out = np.clip(out, 0.0, 1.0)
    rng.shuffle(out)
    return out


def osm_like_points(n: int, dims: int = 3, seed=0, *,
                    n_cities: int = 350, pareto_a: float = 0.55,
                    road_fraction: float = 0.3, city_sigma: float = 0.008
                    ) -> np.ndarray:
    """OSM-like extreme skew: Pareto-mass cities plus polyline roads.

    Road-network data concentrates points in tight urban clusters with
    thin connecting corridors.  Defaults are calibrated so that the Gini
    over 2048 bins is ≈ 0.96 (the paper reports 0.967 for OSM North
    America, ≈ Zipf γ = 1.5).
    """
    rng = _rng(seed)
    centers = rng.random((n_cities, dims))
    masses = rng.pareto(pareto_a, size=n_cities) + 1e-9
    masses /= masses.sum()
    n_road = int(n * road_fraction)
    n_city = n - n_road
    counts = rng.multinomial(n_city, masses)
    chunks: list[np.ndarray] = []
    for c in range(n_cities):
        if counts[c] == 0:
            continue
        chunks.append(
            rng.normal(loc=centers[c], scale=city_sigma, size=(counts[c], dims))
        )
    # Roads: segments between mass-weighted city pairs with small jitter.
    if n_road > 0:
        n_segments = max(1, n_cities)
        seg_counts = rng.multinomial(n_road, np.full(n_segments, 1.0 / n_segments))
        a_idx = rng.choice(n_cities, size=n_segments, p=masses)
        b_idx = rng.choice(n_cities, size=n_segments, p=masses)
        for s in range(n_segments):
            m = seg_counts[s]
            if m == 0:
                continue
            t = rng.random((m, 1))
            pts = centers[a_idx[s]] * (1 - t) + centers[b_idx[s]] * t
            pts += rng.normal(scale=0.002, size=(m, dims))
            chunks.append(pts)
    out = np.vstack(chunks)[:n]
    out = np.abs(out)
    over = out > 1.0
    out[over] = 2.0 - out[over]
    out = np.clip(out, 0.0, 1.0)
    rng.shuffle(out)
    return out


def zipf_mix_queries(base_points: np.ndarray, n: int, skew_fraction: float,
                     seed=0, *, skew_generator=None, dims: int | None = None
                     ) -> np.ndarray:
    """Query batch mixing uniform queries with skewed ones (Fig. 9 setup).

    ``skew_fraction`` of the batch comes from ``skew_generator`` (default:
    Varden); the rest are uniform points over the base data's bounding
    box.
    """
    rng = _rng(seed)
    dims = dims if dims is not None else base_points.shape[1]
    n_skew = int(round(n * skew_fraction))
    n_unif = n - n_skew
    lo = base_points.min(axis=0)
    hi = base_points.max(axis=0)
    unif = lo + rng.random((n_unif, dims)) * (hi - lo)
    if n_skew == 0:
        return unif
    gen = skew_generator or (lambda m, d, s: varden_points(m, d, s))
    skew = gen(n_skew, dims, rng)
    out = np.vstack([unif, skew])
    rng.shuffle(out)
    return out
