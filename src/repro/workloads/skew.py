"""Skew statistics: Gini coefficient, Zipf fit, and (α, β)-skew (Defn. 3).

The paper quantifies dataset skew by the Gini coefficient of the point
distribution over P = 2048 equal spatial bins (§7.2): COSMOS ≈ 0.287 and
OSM North America ≈ 0.967, corresponding to Zipf exponents ≈ 0.455 and
1.5.  The synthetic datasets in this package are tuned against these
statistics; the functions here compute them.

Definition 3 ((α, β)-skew): a batch of S queries has (α, β)-skew iff,
splitting the key range into β equal subranges, every subrange receives at
most S/α of the keys.  ``max_alpha`` returns the largest α for which a
batch satisfies the definition at a given β.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "gini_coefficient",
    "bin_points",
    "zipf_exponent_fit",
    "max_alpha",
    "max_mean_ratio",
    "imbalance_summary",
]


def bin_points(points: np.ndarray, n_bins: int = 2048,
               bounds: tuple[np.ndarray, np.ndarray] | None = None) -> np.ndarray:
    """Histogram points into ≈``n_bins`` equal spatial cells.

    The grid uses ``round(n_bins**(1/D))`` cells per dimension, matching
    the paper's equal-partition binning.  Returns the per-cell counts
    (including empty cells).
    """
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    dims = points.shape[1]
    per_dim = max(2, int(round(n_bins ** (1.0 / dims))))
    if bounds is None:
        lo = points.min(axis=0)
        hi = points.max(axis=0)
    else:
        lo = np.asarray(bounds[0], dtype=np.float64)
        hi = np.asarray(bounds[1], dtype=np.float64)
    span = np.maximum(hi - lo, np.finfo(np.float64).tiny)
    idx = np.floor((points - lo) / span * per_dim).astype(np.int64)
    np.clip(idx, 0, per_dim - 1, out=idx)
    flat = idx[:, 0]
    for d in range(1, dims):
        flat = flat * per_dim + idx[:, d]
    counts = np.bincount(flat, minlength=per_dim**dims)
    return counts


def gini_coefficient(counts_or_points: np.ndarray, n_bins: int = 2048) -> float:
    """Gini coefficient of a count vector (or of binned points)."""
    arr = np.asarray(counts_or_points)
    if arr.ndim == 2:
        arr = bin_points(arr, n_bins)
    counts = np.sort(arr.astype(np.float64))
    n = len(counts)
    if n == 0 or counts.sum() == 0:
        return 0.0
    cum = np.cumsum(counts)
    # G = 1 - 2 * B where B is the area under the Lorenz curve.
    lorenz = cum / cum[-1]
    b = (lorenz.sum() - lorenz[-1] / 2.0) / n
    return float(1.0 - 2.0 * b)


def max_mean_ratio(counts: np.ndarray) -> float:
    """Max-over-mean of a load vector (the straggler factor).

    The canonical imbalance measure of the Fig. 9 experiments: a value of
    1.0 is a perfectly balanced system; x means the busiest element carries
    x times the average.  Empty or all-zero vectors report 0.0 (no load,
    no imbalance).  Every imbalance number in the codebase — introspect's
    placement imbalance, the obs per-module exports and the
    ``repro.balance`` detector — is computed through this one definition.
    """
    arr = np.asarray(counts, dtype=np.float64)
    if arr.size == 0:
        return 0.0
    mean = float(arr.mean())
    if mean <= 0.0:
        return 0.0
    return float(arr.max() / mean)


def imbalance_summary(counts: np.ndarray) -> dict:
    """Shared imbalance statistics of one load vector.

    Returns ``{"max_mean_ratio", "gini", "max", "mean", "total"}`` — the
    common denominator used by ``repro.balance`` (detector thresholds),
    ``repro.core.introspect`` (placement stats) and ``repro.obs.export``
    (per-module load distributions), so all three agree on one definition.
    """
    arr = np.asarray(counts, dtype=np.float64)
    if arr.size == 0:
        return {"max_mean_ratio": 0.0, "gini": 0.0, "max": 0.0,
                "mean": 0.0, "total": 0.0}
    return {
        "max_mean_ratio": max_mean_ratio(arr),
        "gini": gini_coefficient(arr),
        "max": float(arr.max()),
        "mean": float(arr.mean()),
        "total": float(arr.sum()),
    }


def zipf_exponent_fit(counts: np.ndarray, top_fraction: float = 0.2) -> float:
    """Least-squares Zipf exponent from the top occupied cells.

    Fits ``log(count) ≈ -s·log(rank) + c`` over the most populated
    ``top_fraction`` of non-empty cells (the head is where Zipf behaviour
    is identifiable); returns ``s``.
    """
    counts = np.sort(np.asarray(counts, dtype=np.float64))[::-1]
    counts = counts[counts > 0]
    if len(counts) < 3:
        return 0.0
    m = max(3, int(len(counts) * top_fraction))
    y = np.log(counts[:m])
    x = np.log(np.arange(1, m + 1, dtype=np.float64))
    slope, _ = np.polyfit(x, y, 1)
    return float(-slope)


def max_alpha(keys: np.ndarray, beta: int,
              key_range: tuple[int, int] | None = None) -> float:
    """Largest α such that the batch has (α, β)-skew (Defn. 3).

    Splits ``[U1, U2]`` into β equal subranges and returns
    ``S / max_subrange_count``; larger is more uniform.
    """
    keys = np.asarray(keys, dtype=np.float64)
    s = len(keys)
    if s == 0:
        return float("inf")
    if key_range is None:
        u1, u2 = float(keys.min()), float(keys.max())
    else:
        u1, u2 = float(key_range[0]), float(key_range[1])
    span = max(u2 - u1, np.finfo(np.float64).tiny)
    idx = np.floor((keys - u1) / span * beta).astype(np.int64)
    np.clip(idx, 0, beta - 1, out=idx)
    worst = np.bincount(idx, minlength=beta).max()
    return s / worst
