"""Workload generators and skew statistics for the §7 experiments."""

from .generators import (
    cosmos_like_points,
    osm_like_points,
    uniform_points,
    varden_points,
    zipf_mix_queries,
)
from .skew import bin_points, gini_coefficient, max_alpha, zipf_exponent_fit

__all__ = [
    "bin_points",
    "cosmos_like_points",
    "gini_coefficient",
    "max_alpha",
    "osm_like_points",
    "uniform_points",
    "varden_points",
    "zipf_exponent_fit",
    "zipf_mix_queries",
]
