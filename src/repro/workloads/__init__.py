"""Workload generators, arrival processes and skew statistics (§7 + serving)."""

from .arrivals import bursty_arrivals, diurnal_arrivals, poisson_arrivals
from .generators import (
    cosmos_like_points,
    osm_like_points,
    uniform_points,
    varden_points,
    zipf_mix_queries,
)
from .skew import (
    bin_points,
    gini_coefficient,
    imbalance_summary,
    max_alpha,
    max_mean_ratio,
    zipf_exponent_fit,
)

__all__ = [
    "bin_points",
    "bursty_arrivals",
    "cosmos_like_points",
    "diurnal_arrivals",
    "gini_coefficient",
    "imbalance_summary",
    "max_alpha",
    "max_mean_ratio",
    "osm_like_points",
    "poisson_arrivals",
    "uniform_points",
    "varden_points",
    "zipf_exponent_fit",
    "zipf_mix_queries",
]
