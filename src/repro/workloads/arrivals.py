"""Arrival processes for the open-loop serving experiments (``repro.serve``).

The closed-loop harness feeds one pre-formed batch at a time, so it can
reproduce Fig. 5/7 throughput but says nothing about queueing.  An
*open-loop* experiment instead draws request arrival times from a stochastic
process and offers them to the server regardless of whether it has kept up —
the standard methodology for measuring tail latency and saturation.

Three processes are provided, all returning a sorted ``float64`` array of
``n`` arrival times (simulated seconds from 0) for a seeded generator:

* :func:`poisson_arrivals` — memoryless arrivals at a constant rate, the
  baseline open-loop workload;
* :func:`bursty_arrivals` — a two-state Markov-modulated Poisson process
  (quiet rate / burst rate), stressing the admission queue with arrival
  clumps far above the mean rate;
* :func:`diurnal_arrivals` — a nonhomogeneous Poisson process whose rate
  follows a compressed sinusoidal day (peak/trough), replaying the
  load shape a user-facing service sees over 24 h.

All draws come from one explicit ``numpy`` Generator, so a given seed
yields one byte-stable arrival schedule.
"""

from __future__ import annotations

import numpy as np

__all__ = ["poisson_arrivals", "bursty_arrivals", "diurnal_arrivals"]


def _rng(seed) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def poisson_arrivals(rate: float, n: int, seed=0, *, start: float = 0.0
                     ) -> np.ndarray:
    """``n`` Poisson arrivals at ``rate`` requests per simulated second."""
    if rate <= 0:
        raise ValueError("arrival rate must be positive")
    if n < 0:
        raise ValueError("need n >= 0 arrivals")
    gaps = _rng(seed).exponential(scale=1.0 / rate, size=n)
    return start + np.cumsum(gaps)


def bursty_arrivals(rate: float, n: int, seed=0, *, burst_factor: float = 8.0,
                    burst_fraction: float = 0.15, mean_cycle_s: float | None = None,
                    start: float = 0.0) -> np.ndarray:
    """``n`` arrivals from a two-state MMPP with mean rate ``rate``.

    The process alternates between a *quiet* state and a *burst* state whose
    instantaneous rate is ``burst_factor`` times the quiet rate; the burst
    state is occupied ``burst_fraction`` of the time, and the state-holding
    times are exponential with a mean cycle of ``mean_cycle_s`` (default:
    long enough for ~64 arrivals per cycle at the mean rate).  Rates are
    normalised so the long-run mean equals ``rate``, making offered load
    directly comparable with :func:`poisson_arrivals`.
    """
    if rate <= 0:
        raise ValueError("arrival rate must be positive")
    if not 0.0 < burst_fraction < 1.0:
        raise ValueError("burst_fraction must be in (0, 1)")
    if burst_factor < 1.0:
        raise ValueError("burst_factor must be >= 1")
    rng = _rng(seed)
    # quiet/burst rates with the requested long-run mean.
    mean_factor = (1.0 - burst_fraction) + burst_fraction * burst_factor
    quiet_rate = rate / mean_factor
    burst_rate = quiet_rate * burst_factor
    if mean_cycle_s is None:
        mean_cycle_s = 64.0 / rate
    mean_burst_s = mean_cycle_s * burst_fraction
    mean_quiet_s = mean_cycle_s - mean_burst_s

    out = np.empty(n)
    got = 0
    t = start
    bursting = False
    while got < n:
        hold = rng.exponential(mean_burst_s if bursting else mean_quiet_s)
        r = burst_rate if bursting else quiet_rate
        # Arrivals inside this state interval.
        tt = t
        while got < n:
            tt += rng.exponential(1.0 / r)
            if tt > t + hold:
                break
            out[got] = tt
            got += 1
        t += hold
        bursting = not bursting
    return out


def diurnal_arrivals(rate: float, n: int, seed=0, *, day_s: float = 240.0,
                     peak_to_trough: float = 4.0, start: float = 0.0
                     ) -> np.ndarray:
    """``n`` arrivals replaying a sinusoidal diurnal load curve.

    A nonhomogeneous Poisson process via thinning: the instantaneous rate is
    ``rate * (1 + a*sin(2*pi*t/day_s))`` with the amplitude ``a`` derived
    from ``peak_to_trough`` (peak rate / trough rate), and ``day_s`` is the
    *compressed* day length in simulated seconds, so a full daily cycle fits
    in an experiment.  Mean rate over whole days equals ``rate``.
    """
    if rate <= 0:
        raise ValueError("arrival rate must be positive")
    if peak_to_trough < 1.0:
        raise ValueError("peak_to_trough must be >= 1")
    rng = _rng(seed)
    amp = (peak_to_trough - 1.0) / (peak_to_trough + 1.0)
    lam_max = rate * (1.0 + amp)
    out = np.empty(n)
    got = 0
    t = start
    while got < n:
        t += rng.exponential(1.0 / lam_max)
        lam_t = rate * (1.0 + amp * np.sin(2.0 * np.pi * (t - start) / day_s))
        if rng.random() * lam_max <= lam_t:
            out[got] = t
            got += 1
    return out
