"""The PIM-zd-tree facade: construction, layering, chunk maintenance.

This class owns the canonical tree structure and all bookkeeping the
operation modules (:mod:`.search`, :mod:`.update`, :mod:`.knn`,
:mod:`.range_query`) rely on:

* building the compressed zd-tree from the initial points and *uploading*
  it to the simulated PIM system;
* the three-layer assignment (§3.1) — layers are derived from the lazy
  counters against θ_L0/θ_L1 and clamped to be monotone along root-to-leaf
  paths (a child is never in a higher layer than its parent);
* meta-node chunking and its amortised maintenance: chunks are rebuilt for
  a region when its root's lazy counter drifts by 2× from the value the
  chunk was built at, mirroring the amortisation of §3.2;
* lazy counters (§3.4): ``record_count_change`` accumulates deltas and
  triggers snapshot syncs per the Table 1 thresholds, charging replica
  updates (L0 broadcast; L1 cached copies) when they fire;
* residency accounting per module for the Theorem 5.1 space bounds.
"""

from __future__ import annotations

import numpy as np

from ..pim.cost_model import PIMCostModel, upmem_scaled
from ..pim.model import PIMSystem
from .chunking import MetaNode, chunk_region, iter_meta_subtree
from .config import PIMZdTreeConfig, throughput_optimized
from .geometry import L2, Box, Metric
from .morton import MortonCodec, max_bits_per_dim, morton_encode
from .node import Layer, Node, node_words

__all__ = ["PIMZdTree"]

_SYNC_WORDS = 2  # one counter update message: node address + value


class PIMZdTree:
    """Batch-dynamic zd-tree distributed over a simulated PIM system."""

    def __init__(
        self,
        points: np.ndarray,
        *,
        config: PIMZdTreeConfig | None = None,
        system: PIMSystem | None = None,
        cost_model: PIMCostModel | None = None,
        bounds: tuple[np.ndarray, np.ndarray] | None = None,
        bits: int | None = None,
    ) -> None:
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if points.shape[0] == 0:
            raise ValueError("PIMZdTree requires at least one initial point")
        self.dims = points.shape[1]
        self.system = system if system is not None else PIMSystem(64)
        if config is None:
            config = throughput_optimized(len(points), self.system.n_modules)
        self.config = config
        if cost_model is None:
            cost_model = upmem_scaled(self.system.n_modules)
        self.cost_model = cost_model.with_direct_api(config.direct_api)

        if bounds is not None:
            lo, hi = bounds
            self.codec = MortonCodec(
                lo, hi, self.dims, bits or max_bits_per_dim(self.dims),
                fast=config.fast_zorder,
            )
        else:
            self.codec = MortonCodec.fit(points, bits)
            if not config.fast_zorder:
                self.codec = MortonCodec(
                    self.codec.lo, self.codec.hi, self.dims, self.codec.bits, fast=False
                )
        self.key_bits = self.codec.key_bits

        self._next_nid = 0
        self._batch_counter = 0
        self._l0_route_salt = 0
        self.metas: set[MetaNode] = set()
        self._stale_metas: set[MetaNode] = set()
        # Lazy-counter value of each meta root at chunk-build time, for the
        # 2x staleness rule that amortises re-chunking (§3.2).
        self._meta_built_sc: dict[MetaNode, int] = {}
        self.last_executor = None
        # Write-ahead journal (repro.store): attached by DurableStore so
        # insert/delete append before mutating; None means no durability.
        self.journal = None
        # K-way replica registry (repro.replicate): attached by ReplicaSet;
        # None means single-copy mastership — all replica hooks inert.
        self.replicas = None
        # Membership-filter routing (repro.route): attached by
        # RouteFilterSet; None means no filters — all routing hooks inert.
        self.route_filters = None

        with self.system.phase("build"):
            keys = self.encode_keys(points)
            order = np.argsort(keys, kind="stable")
            n = len(keys)
            self.system.charge_cpu(n * max(1, int(np.log2(n + 1))) * 4)
            self.system.dram_stream(n * (self.dims + 1))
            self.root: Node = self._build_nodes(keys[order], points[order], 0)
            self._assign_layers_subtree(self.root, parent_layer=None)
            self._chunk_everything()
            self._decide_l0_mode()
            self._upload()
        self.refresh_residency()

    # ==================================================================
    # key encoding
    # ==================================================================
    def encode_keys(self, points: np.ndarray) -> np.ndarray:
        """Morton-encode ``points``, charging CPU work per the z-order mode.

        Fast mode costs O(log bits) word operations per dimension (§6);
        naive interleaving costs O(bits) — the Table 3 "Fast z-order"
        ablation flips this switch.
        """
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        n = len(points)
        if self.config.fast_zorder:
            # O(log bits) shift/mask stages per dimension (§6).
            keys = self.codec.encode(points)
            self.system.charge_cpu(
                n * (self.dims * 4 * max(1, int(np.log2(self.codec.bits))) + 8)
            )
        else:
            # Bit-by-bit interleaving: extract, shift, or — per key bit.
            keys = morton_encode(self.codec.quantize(points), self.codec.bits, fast=False)
            self.system.charge_cpu(n * (8 * self.key_bits + self.dims))
        self.system.dram_stream(n * self.dims)
        return keys

    # ==================================================================
    # construction helpers
    # ==================================================================
    def new_nid(self) -> int:
        self._next_nid += 1
        return self._next_nid

    def _build_nodes(self, keys: np.ndarray, pts: np.ndarray, base_depth: int) -> Node:
        """Recursively build a compressed subtree from sorted keys."""
        n = len(keys)
        kb = self.key_bits
        first = int(keys[0])
        last = int(keys[-1])
        cp = kb - (first ^ last).bit_length() if first != last else kb
        if n <= self.config.leaf_size or cp >= kb:
            prefix = first >> (kb - base_depth) if base_depth else 0
            node = Node(self.new_nid(), prefix, base_depth)
            node.keys = keys.copy()
            node.pts = pts.copy()
            node.count = n
            node.sc = n
            return node
        depth = cp
        prefix = first >> (kb - depth)
        split_bit = kb - depth - 1
        threshold = ((prefix << 1) | 1) << split_bit
        idx = int(np.searchsorted(keys, np.uint64(threshold)))
        node = Node(self.new_nid(), prefix, depth)
        node.left = self._build_nodes(keys[:idx], pts[:idx], depth + 1)
        node.right = self._build_nodes(keys[idx:], pts[idx:], depth + 1)
        node.left.parent = node
        node.right.parent = node
        node.count = n
        node.sc = n
        return node

    # ==================================================================
    # layers (§3.1)
    # ==================================================================
    def layer_from_sc(self, sc: int) -> Layer:
        if sc >= self.config.theta_l0:
            return Layer.L0
        if sc >= self.config.theta_l1:
            return Layer.L1
        return Layer.L2

    def clamped_layer(self, node: Node) -> Layer:
        """Layer from the lazy counter, kept monotone under the parent."""
        raw = self.layer_from_sc(node.sc)
        if node.parent is None:
            return raw
        return Layer(max(raw, node.parent.layer))

    def _assign_layers_subtree(self, node: Node, parent_layer: Layer | None) -> None:
        raw = self.layer_from_sc(node.sc)
        node.layer = raw if parent_layer is None else Layer(max(raw, parent_layer))
        if not node.is_leaf:
            self._assign_layers_subtree(node.left, node.layer)
            self._assign_layers_subtree(node.right, node.layer)

    def l0_nodes(self) -> list[Node]:
        out: list[Node] = []
        stack = [self.root]
        while stack:
            n = stack.pop()
            if n.layer != Layer.L0:
                continue
            out.append(n)
            if not n.is_leaf:
                stack.append(n.left)
                stack.append(n.right)
        return out

    def l0_words(self) -> int:
        return sum(node_words(n, self.dims) for n in self.l0_nodes())

    def _decide_l0_mode(self) -> None:
        # L0 lives in the LLC while it fits (half the cache, leaving room
        # for the working set); otherwise it is replicated on every module.
        self.l0_on_cpu = self.l0_words() * 8 <= self.system.llc.capacity_blocks * 64 // 2

    # ==================================================================
    # chunking (§3.2)
    # ==================================================================
    def _region_roots_below(self, node: Node) -> list[Node]:
        """Topmost non-L0 nodes at or below ``node``."""
        if node.layer != Layer.L0:
            return [node]
        if node.is_leaf:
            return []
        return self._region_roots_below(node.left) + self._region_roots_below(node.right)

    def _chunk_everything(self) -> None:
        self.metas.clear()
        self._stale_metas.clear()
        for region_root in self._region_roots_below(self.root):
            new = chunk_region(region_root, self.config, self.dims, self.system.place)
            for m in new:
                self._meta_built_sc[m] = m.root.sc
            self.metas.update(new)

    def mark_stale(self, meta: MetaNode) -> None:
        if meta in self.metas:
            self._stale_metas.add(meta)

    def meta_is_stale(self, meta: MetaNode) -> bool:
        if meta in self._stale_metas:
            return True
        built = self._meta_built_sc.get(meta)
        return built is not None and not (built / 2 <= max(1, meta.root.sc) <= built * 2)

    def rechunk_stale(self) -> None:
        """Rebuild chunking for every stale region (amortised maintenance).

        A region is rebuilt from its topmost non-L0 node, retiring every
        meta-node referenced by nodes in the region (a *geometric* walk, so
        node→meta references can never dangle) and re-running the §3.2
        chunking rule.  Data movement is charged as one round of traffic
        proportional to the rebuilt masters plus the L1 cache fan-out.
        """
        # Canonical (root-nid) order: set iteration follows object hashes,
        # i.e. memory addresses, and the rebuild order is observable — both
        # through the retired/done_regions guards below and through the
        # charged rebuild traffic.
        stale = sorted(
            (m for m in self.metas if self.meta_is_stale(m)),
            key=lambda m: m.root.nid,
        )
        if not stale:
            return
        done_regions: set[int] = set()
        for meta in stale:
            if meta not in self.metas:
                continue  # already retired by an earlier region rebuild
            root = meta.root
            if self._node_detached(root):
                # The meta root was spliced out this batch; the survivors'
                # region was already rebuilt at splice time.
                self._discard_meta(meta)
                continue
            # Rebuild locally from the stale meta's own root: re-chunking
            # is amortised per-chunk, not per-module-region (a drifted leaf
            # chunk must not trigger an n/P-sized rebuild).
            if root.nid in done_regions:
                continue
            done_regions.add(root.nid)
            self.force_rechunk_region(root)
        self._stale_metas.clear()
        self._purge_empty_metas()

    def _discard_meta(self, meta: MetaNode) -> None:
        """Retire one meta-node, keeping the meta tree consistent: the
        parent drops it, surviving children re-attach upward, and the
        ancestors' L1-descendant counters shed this meta (its descendants
        stay below the same ancestors, so only the meta itself is shed)."""
        self.metas.discard(meta)
        self._stale_metas.discard(meta)
        self._meta_built_sc.pop(meta, None)
        parent = meta.parent if meta.parent in self.metas else None
        if meta.layer == Layer.L1:
            anc = meta.parent
            while anc is not None:
                if anc in self.metas:
                    anc.l1_desc_metas -= 1
                anc = anc.parent
        if parent is not None and meta in parent.children:
            parent.children.remove(meta)
        for ch in meta.children:
            if ch in self.metas and ch.parent is meta:
                ch.parent = parent
                if parent is not None:
                    parent.children.append(ch)

    def _purge_empty_metas(self) -> None:
        """Drop meta-nodes that lost all members (e.g. their only node was
        promoted into L0); their children re-attach to the grandparent."""
        # Root-nid order: _discard_meta re-appends surviving children to
        # their grandparent, so discard order shapes the meta tree.
        for m in sorted(
            (m for m in self.metas if m.n_nodes <= 0), key=lambda m: m.root.nid
        ):
            self._discard_meta(m)

    def _node_detached(self, node: Node) -> bool:
        n = node
        while n.parent is not None:
            p = n.parent
            if p.left is not n and p.right is not n:
                return True
            n = p
        return n is not self.root

    def _region_root_of(self, node: Node) -> Node:
        """Topmost non-L0 ancestor of ``node`` (the chunk region root)."""
        region_root = node
        while region_root.parent is not None and region_root.parent.layer != Layer.L0:
            region_root = region_root.parent
        return region_root

    def force_rechunk_region(self, region_root: Node) -> None:
        """Retire and rebuild every chunk at or under ``region_root``.

        ``region_root`` may be any node: non-L0 nodes rebuild their own
        subtree's chunks (local, amortised maintenance); L0 nodes rebuild
        each maximal non-L0 subtree below them (the promotion case).

        Works purely from the tree geometry, with a fixpoint expansion: a
        retired meta-node may span *several* rebuild scopes when a
        promotion moved the L0 border through its middle this batch (its
        root sits above the new border while members sit below, on both
        sides).  Every scope holding members of a retired meta is rebuilt,
        so node→meta references can never dangle.
        """
        pending: dict[int, Node] = {}
        for rr in self._region_roots_below(region_root):
            pending[rr.nid] = rr
        processed: dict[int, Node] = {}
        retired: set[MetaNode] = set()
        covered_roots: set[int] = set()
        while pending:
            nid, r = pending.popitem()
            if nid in processed:
                continue
            processed[nid] = r
            stack = [r]
            while stack:
                n = stack.pop()
                covered_roots.add(n.nid)
                if n.meta is not None and n.meta not in retired:
                    retired.add(n.meta)
                    root = n.meta.root
                    # Expand to every region the retired meta reaches.
                    if root.nid not in covered_roots and not self._node_detached(root):
                        for rr in self._region_roots_below(root):
                            if rr.nid not in processed:
                                pending[rr.nid] = rr
                if not n.is_leaf:
                    stack.append(n.left)
                    stack.append(n.right)
        for m in retired:
            self.metas.discard(m)
            self._stale_metas.discard(m)
            self._meta_built_sc.pop(m, None)
        # Surviving ancestors stop counting the retired L1 descendants.
        for m in retired:
            if m.layer != Layer.L1:
                continue
            anc = m.parent
            while anc is not None:
                if anc in self.metas:
                    anc.l1_desc_metas -= 1
                anc = anc.parent
        # Rebuild each processed scope, re-linking every new top chunk to
        # the live meta of the node just above it (None at the L0 border).
        new_all: list[MetaNode] = []
        for r in processed.values():
            for rr in self._region_roots_below(r):
                created = chunk_region(rr, self.config, self.dims, self.system.place)
                for m in created:
                    self.metas.add(m)
                    self._meta_built_sc[m] = max(1, m.root.sc)
                parent_meta = None
                p = rr.parent
                if p is not None and p.layer != Layer.L0 and p.meta in self.metas:
                    parent_meta = p.meta
                created[0].parent = parent_meta
                if parent_meta is not None:
                    parent_meta.children.append(created[0])
                    new_l1 = sum(1 for m in created if m.layer == Layer.L1)
                    if new_l1:
                        anc = parent_meta
                        while anc is not None:
                            anc.l1_desc_metas += new_l1
                            anc = anc.parent
                new_all.extend(created)
        # Drop dangling children links from any surviving parents.
        for m in self.metas:
            if m.children:
                m.children = [c for c in m.children if c in self.metas]
        # One round of master movement plus L1 cache rebuild fan-out.
        words = sum(m.size_words(self.config) for m in new_all)
        cache_words = sum(
            m.size_words(self.config) * m.replica_count()
            for m in new_all
            if m.layer == Layer.L1
        )
        self.system.charge_comm_flat(words + cache_words)

    # ==================================================================
    # lazy counters (§3.4)
    # ==================================================================
    def record_count_change(self, node: Node, delta: int) -> bool:
        """Apply a subtree-size change; returns True if a snapshot synced."""
        node.count += delta
        node.delta += delta
        if node.delta == 0:
            return False
        if not self.config.lazy_counters:
            # Eager (strictly consistent) counters: every individual update
            # propagates its increment to the master and all replicas the
            # moment it happens — the "prohibitively expensive" strawman of
            # §3.4 and the Table 3 "Lazy Counter" ablation.
            self.sync_counter(node, eager_updates=abs(delta))
            return True
        dmin, dmax = self.config.lazy_delta_bounds(int(node.layer))
        if node.delta >= dmax or node.delta <= dmin:
            self.sync_counter(node)
            return True
        return False

    def sync_counter(self, node: Node, eager_updates: int = 0) -> None:
        """Publish the exact count into the replicated snapshot (charged).

        With ``eager_updates > 0`` the charge models per-update immediate
        propagation (that many separate messages per copy) instead of one
        batched snapshot message.
        """
        node.sc = node.count
        node.delta = 0
        messages = max(1, eager_updates)
        if node.layer == Layer.L0:
            if self.l0_on_cpu:
                self.system.charge_cpu(_SYNC_WORDS * messages)
            else:
                # Replicas live only on live modules (dead ones were
                # decommissioned and hold nothing).
                self.system.charge_comm_flat(
                    _SYNC_WORDS * self.system.n_live * messages
                )
            if eager_updates:
                self.system.charge_comm_flat(_SYNC_WORDS * eager_updates)
        elif node.layer == Layer.L1 and node.meta is not None:
            # Replica fan-out only: the master copy's counter update rides
            # along with the batch's update messages to that module.
            copies = node.meta.replica_count()
            self.system.charge_comm_flat(
                _SYNC_WORDS * (copies * messages + eager_updates)
            )
        elif eager_updates:
            self.system.charge_comm_flat(_SYNC_WORDS * eager_updates)

    # ==================================================================
    # upload / residency / space
    # ==================================================================
    def _upload(self) -> None:
        """Initial distribution of the built tree onto the modules.

        The per-meta fan-out is aggregated per destination module and
        charged through the array-native bulk entry point: at paper scale
        the build touches every one of the P=2048 modules, and one
        ``send_bulk`` replaces |metas| scalar sends (byte-identical
        counters — integer word counts sum exactly in any order).
        """
        send_by: dict[int, float] = {}
        for meta in self.metas:
            words = meta.size_words(self.config)
            total = words * (
                1 + (meta.replica_count() if meta.layer == Layer.L1 else 0)
            )
            send_by[meta.module] = send_by.get(meta.module, 0.0) + total
        with self.system.round():
            self.system.send_bulk(send_by)
            if not self.l0_on_cpu:
                self.system.broadcast(self.l0_words())

    def refresh_residency(self) -> None:
        """Recompute per-module master/cache words from current structure."""
        for m in self.system.modules:
            m.master_words = 0.0
            m.cache_words = 0.0
        cfg = self.config
        l1_metas: list[MetaNode] = []
        for meta in self.metas:
            words = meta.size_words(cfg)
            self.system.modules[meta.module].alloc_master(words)
            if meta.layer == Layer.L1:
                l1_metas.append(meta)
        # L1 sharing: each L1 meta is cached on the modules of its L1
        # ancestors and descendants (§3.1).
        for meta in l1_metas:
            words = meta.size_words(cfg)
            for holder in meta.l1_ancestors():
                self.system.modules[holder.module].alloc_cache(words)
            for desc in iter_meta_subtree(meta):
                if desc is not meta and desc.layer == Layer.L1:
                    self.system.modules[desc.module].alloc_cache(words)
        if self.replicas is not None:
            self.replicas.alloc_residency()
        if not self.l0_on_cpu:
            w = self.l0_words()
            for m in self.system.modules:
                if not m.failed:
                    m.alloc_cache(w)
        # The kNN sibling-box cache only ever holds per-node geometry that
        # cannot go stale, but structural changes discard nodes — drop
        # their entries here so the cache tracks the live L0.
        self.__dict__.pop("_pair_box_cache", None)
        # Membership filters (repro.route) rebuild whenever residency
        # changes: every path that moves keys (upload, insert/delete,
        # migrate/clone, replica install/promotion, failover, recovery)
        # funnels through here under its charged phase.
        if self.route_filters is not None:
            self.route_filters.rebuild()

    def space_words(self) -> dict[str, float]:
        """Space consumption split by category (Theorem 5.1)."""
        master = self.system.master_words()
        cache = self.system.cache_words()
        host_l0 = float(self.l0_words()) if self.l0_on_cpu else 0.0
        return {
            "master": master,
            "cache": cache,
            "host_l0": host_l0,
            "total": master + cache + host_l0,
        }

    # ==================================================================
    # public operations (delegated)
    # ==================================================================
    @property
    def size(self) -> int:
        return self.root.count

    def search(self, points: np.ndarray):
        from .search import search_batch

        self._batch_counter += 1
        self._l0_route_salt = self._batch_counter
        return search_batch(self, points)

    def insert(self, points: np.ndarray) -> None:
        from .update import insert_batch

        self._batch_counter += 1
        self._l0_route_salt = self._batch_counter
        insert_batch(self, points)

    def delete(self, points: np.ndarray) -> int:
        from .update import delete_batch

        self._batch_counter += 1
        self._l0_route_salt = self._batch_counter
        return delete_batch(self, points)

    def knn(self, queries: np.ndarray, k: int, metric: Metric = L2):
        from .knn import knn_batch

        self._batch_counter += 1
        self._l0_route_salt = self._batch_counter
        return knn_batch(self, queries, k, metric)

    def box_count(self, boxes) -> np.ndarray:
        from .range_query import box_count_batch

        self._batch_counter += 1
        return box_count_batch(self, boxes)

    def box_fetch(self, boxes):
        from .range_query import box_fetch_batch

        self._batch_counter += 1
        return box_fetch_batch(self, boxes)

    def fail_over(self, mid: int) -> dict:
        """Decommission module ``mid`` and rebuild its shard on live modules.

        Charged under the ``"recovery"`` phase; see
        :func:`repro.faults.fail_over`.
        """
        from ..faults.recovery import fail_over

        return fail_over(self, mid)

    # ==================================================================
    # geometry helper
    # ==================================================================
    def node_box(self, node: Node) -> Box:
        if node.box is None:
            lo, hi = self.codec.prefix_box(node.prefix, node.depth)
            node.box = Box(lo, hi)
        return node.box

    # ==================================================================
    # inspection / invariants
    # ==================================================================
    def all_points(self) -> np.ndarray:
        chunks: list[np.ndarray] = []

        def rec(n: Node) -> None:
            if n.is_leaf:
                chunks.append(n.pts)
            else:
                rec(n.left)
                rec(n.right)

        rec(self.root)
        return np.vstack(chunks) if chunks else np.empty((0, self.dims))

    def stats(self):
        """Structural statistics snapshot (see :mod:`repro.core.introspect`)."""
        from .introspect import tree_stats

        return tree_stats(self)

    def height(self) -> int:
        def h(n: Node) -> int:
            return 1 if n.is_leaf else 1 + max(h(n.left), h(n.right))

        return h(self.root)

    def num_nodes(self) -> int:
        def c(n: Node) -> int:
            return 1 if n.is_leaf else 1 + c(n.left) + c(n.right)

        return c(self.root)

    def check_invariants(self) -> None:
        """Raise AssertionError on any structural/layer/counter violation."""
        kb = self.key_bits
        cfg = self.config

        def rec(node: Node, lo: int, hi: int, parent: Node | None) -> int:
            node_lo, node_hi = node.key_range(kb)
            assert lo <= node_lo < node_hi <= hi, "node range escapes parent"
            assert node.parent is parent, "broken parent pointer"
            # Layer monotonicity along the path.
            if parent is not None:
                assert node.layer >= parent.layer, "layer inversion"
            # Lemma 3.1: T/2 <= SC <= 2T.
            if node.count > 0:
                assert node.count / 2 - 1e-9 <= node.sc <= 2 * node.count + 1e-9, (
                    f"lazy counter out of Lemma 3.1 range: sc={node.sc} "
                    f"count={node.count}"
                )
            assert node.sc == node.count - node.delta, "delta bookkeeping broken"
            # Meta membership.
            if node.layer == Layer.L0:
                assert node.meta is None, "L0 node assigned to a meta-node"
            else:
                assert node.meta is not None, "non-L0 node without meta-node"
                assert node.meta in self.metas, "node points at retired meta"
                assert node.meta.layer == node.layer, "meta/layer mismatch"
            if node.is_leaf:
                assert node.count == len(node.keys) == len(node.pts)
                assert node.count > 0, "empty leaf"
                equal = int(node.keys[0]) == int(node.keys[-1])
                assert node.count <= cfg.leaf_size or equal, "oversized mixed leaf"
                keys = node.keys
                assert all(
                    node_lo <= int(x) < node_hi for x in keys.tolist()
                ), "leaf key outside range"
                return node.count
            assert node.left is not None and node.right is not None
            mid = node_lo + (node_hi - node_lo) // 2
            nl = rec(node.left, node_lo, mid, node)
            nr = rec(node.right, mid, node_hi, node)
            assert node.count == nl + nr, "count mismatch"
            return node.count

        rec(self.root, 0, 1 << kb, None)
        # Meta tree consistency.
        for meta in self.metas:
            assert meta.root.meta is meta, "meta root not assigned to meta"
            for ch in meta.children:
                assert ch.parent is meta
                assert ch in self.metas, "retired child meta still linked"
        # L1-descendant counters (replica accounting) match the links.
        memo: dict[int, int] = {}

        def l1_below(meta) -> int:
            key = id(meta)
            if key not in memo:
                memo[key] = sum(
                    (1 if ch.layer == Layer.L1 else 0) + l1_below(ch)
                    for ch in meta.children
                )
            return memo[key]

        for meta in self.metas:
            assert meta.l1_desc_metas == l1_below(meta), (
                f"l1_desc_metas drift: {meta.l1_desc_metas} vs {l1_below(meta)}"
            )
