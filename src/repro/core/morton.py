"""Morton (z-order) key codecs.

The zd-tree splits space by the bits of the z-order (Morton) key of each
point: the key interleaves the bits of the D coordinates, most-significant
bit first, cycling through dimensions.  This module provides

* ``split_by_2`` / ``split_by_3`` — the O(log bits) "gap" spreading tricks
  from the paper (§6, *Fast z-Order Computation*), vectorised over NumPy
  ``uint64`` arrays, with exact inverses ``compact_by_2``/``compact_by_3``;
* a byte-lookup-table generalisation for arbitrary dimension
  (``split_bits_lut``), which keeps the O(bits / 8) table-lookup cost the
  paper's technique targets while supporting D > 3;
* ``split_bits_naive`` — the O(bits) per-bit reference implementation used
  by prior work, kept both as a correctness oracle and as the ablation
  target for Table 3 ("Fast z-order" row);
* :class:`MortonCodec` — quantises floating-point points inside a bounding
  box onto an integer grid and encodes/decodes full Morton keys, exposing
  the prefix→cell geometry the tree needs for bounding boxes.

Bit layout convention
---------------------
For ``D`` dimensions with ``bits`` bits per dimension, coordinate bit ``i``
(``i = 0`` is the least-significant grid bit) of dimension ``d`` lands at
key-bit position ``i * D + (D - 1 - d)``.  Dimension 0 is therefore the
most significant dimension within each group, and the top key bit is bit
``D * bits - 1``.  A tree level ``l`` (root = 0) splits on key bit
``D * bits - 1 - l``.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "split_by_2",
    "split_by_3",
    "compact_by_2",
    "compact_by_3",
    "split_bits_lut",
    "compact_bits_lut",
    "split_bits_naive",
    "compact_bits_naive",
    "morton_encode",
    "morton_decode",
    "morton_encode_naive",
    "MortonCodec",
    "max_bits_per_dim",
]

_U64 = np.uint64

# Magic masks for spreading 32 bits with one-bit gaps (2-D case).
_MASKS_2 = (
    (16, 0x0000FFFF0000FFFF),
    (8, 0x00FF00FF00FF00FF),
    (4, 0x0F0F0F0F0F0F0F0F),
    (2, 0x3333333333333333),
    (1, 0x5555555555555555),
)

# Magic masks for spreading 21 bits with two-bit gaps (3-D case); the
# constants are the ones printed in the paper (§6).
_MASKS_3 = (
    (32, 0x001F00000000FFFF),
    (16, 0x001F0000FF0000FF),
    (8, 0x100F00F00F00F00F),
    (4, 0x10C30C30C30C30C3),
    (2, 0x1249249249249249),
)


def max_bits_per_dim(dims: int) -> int:
    """Largest per-dimension bit width so the full key fits in 64 bits."""
    if dims < 1:
        raise ValueError(f"dims must be >= 1, got {dims}")
    return min(64 // dims, 32)


def _as_u64(x) -> np.ndarray:
    arr = np.asarray(x)
    if arr.dtype != _U64:
        if np.issubdtype(arr.dtype, np.signedinteger) and arr.size and arr.min() < 0:
            raise ValueError("coordinates must be non-negative integers")
        if np.issubdtype(arr.dtype, np.floating) and arr.size:
            # A negative or fractional float silently wraps / truncates in
            # the uint64 cast (e.g. -1.0 → 2**64 - 1), scrambling the key.
            if not np.isfinite(arr).all():
                raise ValueError("coordinates must be finite")
            if arr.min() < 0:
                raise ValueError("coordinates must be non-negative integers")
            if (arr != np.floor(arr)).any():
                raise ValueError("float coordinates must be integral")
        arr = arr.astype(_U64)
    return arr


def split_by_2(x) -> np.ndarray:
    """Spread the low 32 bits of ``x`` so bit ``i`` moves to bit ``2*i``."""
    v = _as_u64(x) & _U64(0xFFFFFFFF)
    for shift, mask in _MASKS_2:
        v = (v | (v << _U64(shift))) & _U64(mask)
    return v


def split_by_3(x) -> np.ndarray:
    """Spread the low 21 bits of ``x`` so bit ``i`` moves to bit ``3*i``."""
    v = _as_u64(x) & _U64(0x1FFFFF)
    for shift, mask in _MASKS_3:
        v = (v | (v << _U64(shift))) & _U64(mask)
    return v


def compact_by_2(x) -> np.ndarray:
    """Inverse of :func:`split_by_2`: gather bits ``0,2,4,…`` of ``x``."""
    v = _as_u64(x) & _U64(0x5555555555555555)
    v = (v | (v >> _U64(1))) & _U64(0x3333333333333333)
    v = (v | (v >> _U64(2))) & _U64(0x0F0F0F0F0F0F0F0F)
    v = (v | (v >> _U64(4))) & _U64(0x00FF00FF00FF00FF)
    v = (v | (v >> _U64(8))) & _U64(0x0000FFFF0000FFFF)
    v = (v | (v >> _U64(16))) & _U64(0x00000000FFFFFFFF)
    return v


def compact_by_3(x) -> np.ndarray:
    """Inverse of :func:`split_by_3`: gather bits ``0,3,6,…`` of ``x``."""
    v = _as_u64(x) & _U64(0x1249249249249249)
    v = (v | (v >> _U64(2))) & _U64(0x10C30C30C30C30C3)
    v = (v | (v >> _U64(4))) & _U64(0x100F00F00F00F00F)
    v = (v | (v >> _U64(8))) & _U64(0x001F0000FF0000FF)
    v = (v | (v >> _U64(16))) & _U64(0x001F00000000FFFF)
    v = (v | (v >> _U64(32))) & _U64(0x00000000001FFFFF)
    return v


@functools.lru_cache(maxsize=32)
def _spread_lut(dims: int) -> np.ndarray:
    """256-entry table mapping a byte to its bits spread with gap ``dims``."""
    lut = np.zeros(256, dtype=_U64)
    for byte in range(256):
        out = 0
        for i in range(8):
            if byte >> i & 1:
                out |= 1 << (i * dims)
        lut[byte] = out
    return lut


def split_bits_lut(x, dims: int, bits: int) -> np.ndarray:
    """Spread the low ``bits`` bits of ``x`` with gap ``dims`` via byte LUTs.

    This is the general-dimension fast path: O(bits / 8) vectorised table
    lookups per key instead of O(bits) single-bit operations.
    """
    if dims == 2:
        return split_by_2(x) & _mask_u64(2 * bits)
    if dims == 3:
        return split_by_3(x) & _mask_u64(3 * bits)
    v = _as_u64(x) & _mask_u64(bits)
    lut = _spread_lut(dims)
    out = np.zeros_like(v)
    nbytes = (bits + 7) // 8
    for j in range(nbytes):
        byte = (v >> _U64(8 * j)) & _U64(0xFF)
        out |= lut[byte.astype(np.intp)] << _U64(8 * j * dims)
    return out


def compact_bits_lut(x, dims: int, bits: int) -> np.ndarray:
    """Inverse of :func:`split_bits_lut` (general-dimension)."""
    if dims == 2:
        return compact_by_2(x) & _mask_u64(bits)
    if dims == 3:
        return compact_by_3(x) & _mask_u64(bits)
    v = _as_u64(x)
    out = np.zeros_like(v)
    for i in range(bits):
        out |= ((v >> _U64(i * dims)) & _U64(1)) << _U64(i)
    return out


def split_bits_naive(x, dims: int, bits: int) -> np.ndarray:
    """O(bits) per-bit spreading — the reference / ablation implementation."""
    v = _as_u64(x) & _mask_u64(bits)
    out = np.zeros_like(v)
    for i in range(bits):
        out |= ((v >> _U64(i)) & _U64(1)) << _U64(i * dims)
    return out


def compact_bits_naive(x, dims: int, bits: int) -> np.ndarray:
    """O(bits) per-bit gathering — inverse of :func:`split_bits_naive`."""
    v = _as_u64(x)
    out = np.zeros_like(v)
    for i in range(bits):
        out |= ((v >> _U64(i * dims)) & _U64(1)) << _U64(i)
    return out


def _mask_u64(nbits: int) -> np.uint64:
    if nbits >= 64:
        return _U64(0xFFFFFFFFFFFFFFFF)
    return _U64((1 << nbits) - 1)


def morton_encode(grid: np.ndarray, bits: int, *, fast: bool = True) -> np.ndarray:
    """Interleave integer grid coordinates into Morton keys.

    Parameters
    ----------
    grid:
        ``(n, D)`` array of non-negative integer coordinates, each
        ``< 2**bits``.
    bits:
        Bits per dimension; ``D * bits`` must be ≤ 64.
    fast:
        Use the O(log bits) / LUT spreading (paper's technique).  With
        ``fast=False`` the naive O(bits) loop is used (Table 3 ablation).
    """
    grid = np.atleast_2d(np.asarray(grid))
    n, dims = grid.shape
    if dims * bits > 64:
        raise ValueError(f"key would need {dims * bits} bits; max is 64")
    spread = split_bits_lut if fast else split_bits_naive
    key = np.zeros(n, dtype=_U64)
    for d in range(dims):
        key |= spread(grid[:, d], dims, bits) << _U64(dims - 1 - d)
    return key


def morton_encode_naive(grid: np.ndarray, bits: int) -> np.ndarray:
    """Alias of ``morton_encode(..., fast=False)`` for the ablation bench."""
    return morton_encode(grid, bits, fast=False)


def morton_decode(keys: np.ndarray, dims: int, bits: int, *, fast: bool = True) -> np.ndarray:
    """Invert :func:`morton_encode`: recover the ``(n, D)`` grid coordinates."""
    keys = np.atleast_1d(_as_u64(keys))
    compact = compact_bits_lut if fast else compact_bits_naive
    grid = np.empty((keys.shape[0], dims), dtype=_U64)
    for d in range(dims):
        grid[:, d] = compact(keys >> _U64(dims - 1 - d), dims, bits)
    return grid


@dataclass(frozen=True)
class MortonCodec:
    """Quantises float points in a bounding box and encodes Morton keys.

    The codec is the only place where floating-point geometry meets the
    integer key space; the tree itself works purely on keys and prefixes.

    Attributes
    ----------
    lo, hi:
        Bounding box of the key space (length-``dims`` float arrays).
        Points outside are clipped onto the box surface, which matches the
        zd-tree's "root represents the entire bounding box" semantics.
    dims:
        Number of dimensions.
    bits:
        Bits per dimension.  ``key_bits = dims * bits``.
    fast:
        Whether encoding uses the fast spreading path.
    """

    lo: np.ndarray
    hi: np.ndarray
    dims: int
    bits: int
    fast: bool = True
    _scale: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        lo = np.asarray(self.lo, dtype=np.float64).reshape(self.dims)
        hi = np.asarray(self.hi, dtype=np.float64).reshape(self.dims)
        if np.any(hi < lo):
            raise ValueError("bounding box has hi < lo")
        if self.bits < 1 or self.dims * self.bits > 64:
            raise ValueError(f"invalid bits={self.bits} for dims={self.dims}")
        extent = np.maximum(hi - lo, np.finfo(np.float64).tiny)
        scale = (2.0**self.bits - 1.0) / extent
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)
        object.__setattr__(self, "_scale", scale)

    @classmethod
    def fit(cls, points: np.ndarray, bits: int | None = None, *, fast: bool = True,
            pad: float = 1e-9) -> "MortonCodec":
        """Build a codec whose box (slightly padded) covers ``points``."""
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        dims = points.shape[1]
        if bits is None:
            bits = max_bits_per_dim(dims)
        lo = points.min(axis=0)
        hi = points.max(axis=0)
        span = np.maximum(hi - lo, 1.0)
        return cls(lo - pad * span, hi + pad * span, dims, bits, fast)

    @property
    def key_bits(self) -> int:
        """Total number of significant bits in a key."""
        return self.dims * self.bits

    def quantize(self, points: np.ndarray) -> np.ndarray:
        """Map float points to integer grid coordinates (clipped to box)."""
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if points.shape[1] != self.dims:
            raise ValueError(f"expected {self.dims}-D points, got {points.shape[1]}-D")
        g = np.floor((points - self.lo) * self._scale)
        np.clip(g, 0, 2**self.bits - 1, out=g)
        return g.astype(_U64)

    def encode(self, points: np.ndarray) -> np.ndarray:
        """Encode float points to Morton keys."""
        return morton_encode(self.quantize(points), self.bits, fast=self.fast)

    def decode_cell(self, keys: np.ndarray) -> np.ndarray:
        """Grid coordinates of each key's cell."""
        return morton_decode(keys, self.dims, self.bits, fast=self.fast)

    def cell_center(self, keys: np.ndarray) -> np.ndarray:
        """Float coordinates of each key's grid-cell centre."""
        g = self.decode_cell(keys).astype(np.float64)
        return self.lo + (g + 0.5) / self._scale

    def prefix_box(self, prefix: int, depth: int) -> tuple[np.ndarray, np.ndarray]:
        """Bounding box of the tree node with the given key prefix.

        ``prefix`` holds the top ``depth`` key bits in the *low* bits of an
        integer (i.e. the node's path from the root), exactly as the tree
        stores it.  Returns ``(lo, hi)`` float arrays.
        """
        kb = self.key_bits
        if not 0 <= depth <= kb:
            raise ValueError(f"depth {depth} out of range [0, {kb}]")
        lo_key = int(prefix) << (kb - depth) if depth < kb else int(prefix)
        glo = morton_decode(np.array([lo_key], dtype=_U64), self.dims, self.bits)[0]
        # Per-dimension: how many of this dimension's bits are fixed by the
        # prefix.  Dimension d owns key bits at positions p ≡ (dims-1-d)
        # (mod dims) counting from the top; of the top `depth` bits,
        # dimension d contributes ceil((depth - d) / dims) bits.
        box_lo = np.empty(self.dims)
        box_hi = np.empty(self.dims)
        for d in range(self.dims):
            fixed = max(0, (depth - d + self.dims - 1) // self.dims)
            free = self.bits - fixed
            cell_lo = int(glo[d])
            cell_hi = cell_lo + (1 << free) - 1
            box_lo[d] = self.lo[d] + cell_lo / self._scale[d]
            box_hi[d] = self.lo[d] + (cell_hi + 1) / self._scale[d]
        return box_lo, box_hi

    def prefix_box_batch(self, prefixes, depths) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised :meth:`prefix_box` over ``M`` (prefix, depth) pairs.

        Returns ``(lo, hi)`` of shape ``(M, dims)``.  Bitwise identical to
        the scalar method row by row: every intermediate stays an exact
        integer below 2**53, so the float arithmetic reassociates freely.
        """
        kb = self.key_bits
        pfx = np.asarray(prefixes, dtype=_U64)
        dep = np.asarray(depths, dtype=np.int64)
        if dep.size and (dep.min() < 0 or dep.max() > kb):
            raise ValueError("depth out of range")
        # prefix << (kb - depth); a 64-bit shift (depth == 0, kb == 64) is
        # undefined for uint64, but the root's prefix is 0 — mask it out.
        shift = kb - dep
        full = shift >= 64
        lo_key = np.where(dep < kb, pfx << np.where(full, 0, shift).astype(_U64), pfx)
        lo_key = np.where(full, _U64(0), lo_key)
        glo = morton_decode(lo_key, self.dims, self.bits).astype(np.float64)
        d_idx = np.arange(self.dims)
        fixed = np.maximum(0, (dep[:, None] - d_idx + self.dims - 1) // self.dims)
        free = self.bits - fixed
        pow2 = (np.int64(1) << free).astype(np.float64)  # exact: free <= 32
        box_lo = self.lo + glo / self._scale
        box_hi = self.lo + (glo + pow2) / self._scale
        return box_lo, box_hi
