"""Orthogonal range (box) queries: BoxCount and BoxFetch (§4.4).

Both follow the SEARCH structure — push-pull applied level by level at
meta-node granularity — but track every node *intersecting* the query box
rather than a single root-to-leaf path:

* **BoxCount** returns the number of stored points inside the box.  A
  node whose bounding box is contained in the query box contributes its
  exact master count (one word of result traffic); only partially
  overlapping leaves are scanned.
* **BoxFetch** returns the points themselves, so contained subtrees must
  still be walked down to their leaves (``all`` mode skips the box tests)
  and every reported point costs D words of result traffic — which is why
  the paper's Fig. 6 shows BoxFetch-100 dominated by CPU↔PIM transfer
  time.

Counts used for contained subtrees are the exact master counts, not the
lazy snapshots: BoxCount is exact by construction.
"""

from __future__ import annotations

import numpy as np

from .geometry import Box
from .node import Layer, Node
from .push_pull import PushPullExecutor, Task

__all__ = ["box_count_batch", "box_fetch_batch"]

_CPU_BOX_TEST_OPS = 4
_PIM_BOX_TEST_CYCLES = 6


def _normalize_boxes(tree, boxes) -> list[Box]:
    if isinstance(boxes, Box):
        boxes = [boxes]
    out = []
    for b in boxes:
        if not isinstance(b, Box):
            lo, hi = b
            b = Box(np.asarray(lo, dtype=np.float64), np.asarray(hi, dtype=np.float64))
        if b.dims != tree.dims:
            raise ValueError("box dimensionality mismatch")
        out.append(b)
    # Dispatching a box to meta-nodes compares against the corners' Morton
    # keys; encode both corners per query (charged per z-order mode).
    if out:
        corners = np.vstack([np.vstack([b.lo, b.hi]) for b in out])
        tree.encode_keys(corners)
    return out


def _classify(tree, node: Node, box: Box) -> str:
    nbox = tree.node_box(node)
    if not box.intersects(nbox):
        return "disjoint"
    if box.contains_box(nbox):
        return "contained"
    return "partial"


def _seed_l0(tree, box: Box, qid: int, tasks: list[Task], *,
             fetch: bool, counts: list[int], chunks: list[np.ndarray]) -> None:
    """Walk the L0 portion on the host; emit border tasks."""
    sys = tree.system
    stack: list[tuple[Node, bool]] = [(tree.root, False)]
    while stack:
        node, skip_test = stack.pop()
        if node.layer != Layer.L0:
            words = 2 * tree.dims + 2  # the box corners + query id/mode
            tasks.append(
                Task(qid, node.meta, node, "all" if skip_test else "test", words)
            )
            continue
        sys.charge_cpu(_CPU_BOX_TEST_OPS)
        sys.touch_cpu_block(("pimzd", "l0", node.nid))
        cls = "contained" if skip_test else _classify(tree, node, box)
        if cls == "disjoint":
            continue
        if cls == "contained":
            if not fetch:
                counts[qid] += node.count
                continue
            if node.is_leaf:
                chunks.append(node.pts)
                continue
            stack.append((node.left, True))
            stack.append((node.right, True))
            continue
        if node.is_leaf:
            mask = box.contains_point(node.pts)
            sys.charge_cpu(node.count * 2 * tree.dims)
            if fetch:
                if mask.any():
                    chunks.append(node.pts[mask])
            else:
                counts[qid] += int(np.count_nonzero(mask))
            continue
        stack.append((node.left, False))
        stack.append((node.right, False))


def _make_handler(tree, boxes: list[Box], *, fetch: bool):
    dims = tree.dims

    def handler(task: Task, ctx) -> None:
        box = boxes[task.qid]
        stack: list[tuple[Node, bool]] = [(task.node, task.payload == "all")]
        total = 0
        collected: list[np.ndarray] = []
        n_pts = 0
        while stack:
            node, skip_test = stack.pop()
            ctx.visit_node(node)
            if skip_test:
                cls = "contained"
            else:
                ctx.extra_work(_CPU_BOX_TEST_OPS, _PIM_BOX_TEST_CYCLES)
                cls = _classify(tree, node, box)
            if cls == "disjoint":
                continue
            if cls == "contained" and not fetch:
                total += node.count
                continue
            if node.is_leaf:
                if cls == "contained":
                    if fetch:
                        collected.append(node.pts)
                        n_pts += node.count
                    continue
                ctx.scan_points(node.count, _SCAN_METRIC, dims)
                mask = box.contains_point(node.pts)
                if fetch:
                    if mask.any():
                        collected.append(node.pts[mask])
                        n_pts += int(mask.sum())
                else:
                    total += int(np.count_nonzero(mask))
                continue
            nxt = cls == "contained"
            for child in (node.left, node.right):
                if ctx.local(child):
                    stack.append((child, nxt))
                else:
                    ctx.emit(
                        Task(task.qid, child.meta, child,
                             "all" if nxt else "test", 2 * dims + 2)
                    )
        if fetch:
            if collected:
                ctx.return_words(n_pts * dims)
                ctx.result(("pts", np.vstack(collected)))
        elif total:
            ctx.return_words(1)
            ctx.result(("count", total))

    return handler


class _ScanCost:
    """Box membership test cost profile (compare-only, like ℓ∞)."""

    name = "boxtest"
    cpu_ops_per_dim = 2
    pim_cycles_per_dim = 2


_SCAN_METRIC = _ScanCost()


def box_count_batch(tree, boxes) -> np.ndarray:
    """Exact number of stored points in each box."""
    boxes = _normalize_boxes(tree, boxes)
    sys = tree.system
    vectorized = tree.config.exec_mode == "vectorized"
    with sys.phase("boxcount"):
        counts = [0] * len(boxes)
        tasks: list[Task] = []
        if vectorized:
            from .vexec import seed_l0_boxes

            seed_l0_boxes(tree, boxes, tasks, fetch=False, counts=counts,
                          chunks_list=[[] for _ in boxes])
        else:
            for qid, box in enumerate(boxes):
                _seed_l0(tree, box, qid, tasks, fetch=False, counts=counts,
                         chunks=[])
        if tasks:
            executor = PushPullExecutor(tree)
            handler = _make_handler(tree, boxes, fetch=False)
            if vectorized:
                from .vexec import make_range_group_kernel

                handler.group_kernel = make_range_group_kernel(
                    tree, boxes, fetch=False
                )
            out = executor.run(tasks, handler)
            tree.last_executor = executor
            for qid, items in out.items():
                for kind, value in items:
                    if kind == "count":
                        counts[qid] += value
        sys.charge_cpu(len(boxes) * 2)
    return np.array(counts, dtype=np.int64)


def box_fetch_batch(tree, boxes) -> list[np.ndarray]:
    """All stored points in each box, one ``(m, D)`` array per box."""
    boxes = _normalize_boxes(tree, boxes)
    sys = tree.system
    vectorized = tree.config.exec_mode == "vectorized"
    with sys.phase("boxfetch"):
        per_query_chunks: list[list[np.ndarray]] = [[] for _ in boxes]
        tasks: list[Task] = []
        if vectorized:
            from .vexec import seed_l0_boxes

            seed_l0_boxes(tree, boxes, tasks, fetch=True,
                          counts=[0] * len(boxes),
                          chunks_list=per_query_chunks)
        else:
            for qid, box in enumerate(boxes):
                _seed_l0(
                    tree, box, qid, tasks, fetch=True, counts=[],
                    chunks=per_query_chunks[qid],
                )
        if tasks:
            executor = PushPullExecutor(tree)
            handler = _make_handler(tree, boxes, fetch=True)
            if vectorized:
                from .vexec import make_range_group_kernel

                handler.group_kernel = make_range_group_kernel(
                    tree, boxes, fetch=True
                )
            out = executor.run(tasks, handler)
            tree.last_executor = executor
            for qid, items in out.items():
                for kind, value in items:
                    if kind == "pts":
                        per_query_chunks[qid].append(value)
        answers = []
        for qid in range(len(boxes)):
            chunks = per_query_chunks[qid]
            if chunks:
                allp = np.vstack(chunks)
                sys.dram_stream(len(allp) * tree.dims)
            else:
                allp = np.empty((0, tree.dims))
            answers.append(allp)
    return answers
