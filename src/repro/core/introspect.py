"""Structure introspection: per-layer, per-chunk, per-module statistics.

``tree_stats`` summarises a PIM-zd-tree the way the paper's §3/§5 describe
it — how many nodes each layer holds, how chunking shaped the meta-nodes
(sparse vs dense, §6), how much replication L1 sharing costs, and how the
hash placement spread masters over the modules.  Useful for tuning
θ_L0/θ_L1/B on a new workload and for the space-bound tests
(Theorem 5.1).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from ..workloads.skew import gini_coefficient, max_mean_ratio
from .node import Layer

__all__ = ["TreeStats", "tree_stats"]


@dataclass
class TreeStats:
    """Aggregate structural statistics of one PIM-zd-tree."""

    n_points: int
    n_nodes: int
    n_leaves: int
    height: int
    nodes_per_layer: dict[str, int]
    points_per_layer: dict[str, int]
    n_metas: int
    metas_per_layer: dict[str, int]
    dense_metas: int
    sparse_metas: int
    meta_nodes_mean: float
    meta_nodes_max: int
    l1_replica_copies: int
    master_words: float
    cache_words: float
    host_l0_words: float
    module_master_words: np.ndarray = field(repr=False, default=None)
    placement_imbalance: float = 0.0
    placement_gini: float = 0.0

    def summary(self) -> str:
        lines = [
            f"points={self.n_points:,}  nodes={self.n_nodes:,} "
            f"(leaves={self.n_leaves:,})  height={self.height}",
            "layer nodes/points: "
            + "  ".join(
                f"{layer}: {self.nodes_per_layer.get(layer, 0):,}n/"
                f"{self.points_per_layer.get(layer, 0):,}p"
                for layer in ("L0", "L1", "L2")
            ),
            f"meta-nodes={self.n_metas:,} "
            f"(dense {self.dense_metas:,} / sparse {self.sparse_metas:,}; "
            f"mean {self.meta_nodes_mean:.1f} nodes, max {self.meta_nodes_max})",
            f"L1 replica copies={self.l1_replica_copies:,}",
            f"space: master {self.master_words:,.0f}w + cache "
            f"{self.cache_words:,.0f}w + host L0 {self.host_l0_words:,.0f}w",
            f"placement imbalance (max/mean master words): "
            f"x{self.placement_imbalance:.2f}  gini={self.placement_gini:.3f}",
        ]
        return "\n".join(lines)


def tree_stats(tree) -> TreeStats:
    """Collect a :class:`TreeStats` snapshot from a live PIM-zd-tree."""
    nodes_per_layer: Counter = Counter()
    points_per_layer: Counter = Counter()
    n_nodes = 0
    n_leaves = 0

    def rec(node, depth) -> int:
        nonlocal n_nodes, n_leaves
        n_nodes += 1
        nodes_per_layer[node.layer.name] += 1
        if node.is_leaf:
            n_leaves += 1
            points_per_layer[node.layer.name] += node.count
            return depth
        return max(rec(node.left, depth + 1), rec(node.right, depth + 1))

    height = rec(tree.root, 1)

    metas_per_layer: Counter = Counter()
    dense = sparse = 0
    sizes = []
    replica_copies = 0
    for m in tree.metas:
        metas_per_layer[m.layer.name] += 1
        sizes.append(m.n_nodes)
        if m.dense(tree.config):
            dense += 1
        else:
            sparse += 1
        if m.layer == Layer.L1:
            replica_copies += m.replica_count()

    module_master = np.array([mod.master_words for mod in tree.system.modules])
    space = tree.space_words()
    return TreeStats(
        n_points=tree.size,
        n_nodes=n_nodes,
        n_leaves=n_leaves,
        height=height,
        nodes_per_layer=dict(nodes_per_layer),
        points_per_layer=dict(points_per_layer),
        n_metas=len(tree.metas),
        metas_per_layer=dict(metas_per_layer),
        dense_metas=dense,
        sparse_metas=sparse,
        meta_nodes_mean=float(np.mean(sizes)) if sizes else 0.0,
        meta_nodes_max=int(max(sizes)) if sizes else 0,
        l1_replica_copies=replica_copies,
        master_words=space["master"],
        cache_words=space["cache"],
        host_l0_words=space["host_l0"],
        module_master_words=module_master,
        # Shared definitions from workloads.skew, so introspect, the obs
        # exports and repro.balance agree on one imbalance measure.
        placement_imbalance=max_mean_ratio(module_master),
        placement_gini=gini_coefficient(module_master),
    )
