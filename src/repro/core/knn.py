"""Batch k-nearest-neighbour queries (Alg. 3).

The batched kNN pipeline:

1. SEARCH the batch, recording traces.
2. For each query, pick the lowest trace node whose lazy counter is at
   least ``2k`` (the paper states ``SC ≥ k``; because Lemma 3.1 only
   guarantees ``T ≥ SC/2``, the implementation uses the 2k slack so the
   chosen subtree provably holds ≥ k points) and push-pull traverse its
   descendants for k candidates.
3. Compute the smallest sphere around the query containing all candidates
   (under the *exact* metric, on the CPU) and pick the lowest trace node
   whose box contains it.
4. Push-pull traverse that node's descendants, fetching every point that
   can lie in the sphere.
5. Filter on the CPU for the exact answer.

Coarse/fine filtering (§6): UPMEM-like PIM cores multiply slowly (32
cycles), so when the query metric is ℓ2 and ``config.fast_l2`` is on, the
PIM-side work (steps 2 and 4) uses the ℓ1 norm — additions only — with the
``√D`` anchoring bound guaranteeing the candidate superset; the CPU-side
steps (3, 5) use exact ℓ2.  Disabling ``fast_l2`` (Table 3 ablation) runs
ℓ2 directly on the PIM cores at the 32-cycle multiply cost.
"""

from __future__ import annotations

import math

import numpy as np

from .geometry import L1, L2, LINF, Metric, dist, dist_point_box
from .node import Layer, Node
from .push_pull import PushPullExecutor, Task
from .search import search_batch

__all__ = ["knn_batch"]

_CPU_TRACE_OPS = 2
_CPU_MERGE_OPS = 14  # per candidate heap merge step


class _KnnState:
    """Shared per-query state; only the CPU round-hook mutates it."""

    __slots__ = ("q", "k", "cand_d", "cand_p")

    def __init__(self, q: np.ndarray, k: int, dims: int) -> None:
        self.q = q
        self.k = k
        self.cand_d = np.empty(0)
        self.cand_p = np.empty((0, dims))

    def radius(self) -> float:
        """Current coarse pruning radius (k-th best coarse distance)."""
        if len(self.cand_d) < self.k:
            return math.inf
        return float(self.cand_d[self.k - 1])


def knn_batch(tree, queries: np.ndarray, k: int, metric: Metric = L2):
    """Exact batched kNN; returns a list of ``(dists, points)`` per query."""
    queries = np.asarray(queries, dtype=np.float64)
    if k < 1:
        raise ValueError("k must be >= 1")
    if queries.size == 0:
        # Empty batch: nothing to do, no rounds.  Short-circuit before
        # atleast_2d, which would turn a bare ``[]`` into one bogus 0-D
        # query and trip the Morton codec.
        return []
    queries = np.atleast_2d(queries)
    sys = tree.system
    dims = tree.dims
    use_anchor = tree.config.fast_l2 and metric.name == "l2"
    coarse = L1 if use_anchor else metric
    anchor_factor = math.sqrt(dims) if use_anchor else 1.0

    with sys.phase("knn"):
        results = search_batch(tree, queries, phase="knn")
        states = [_KnnState(queries[i], k, dims) for i in range(len(queries))]

        # ---- Step 2: candidate subtrees and coarse candidate search -----
        tasks: list[Task] = []
        for res in results:
            sys.charge_cpu(len(res.trace) * _CPU_TRACE_OPS)
            start = _lowest_with_sc(res.trace, 2 * k) or tree.root
            _seed_from(tree, start, res.qid, states[res.qid], coarse, tasks,
                       mode="candidates")
        executor = PushPullExecutor(tree)
        hook = _make_merge_hook(tree, states, k)
        cand_handler = _make_candidate_handler(tree, states, coarse, k)
        if tree.config.exec_mode == "vectorized":
            from .vexec import make_candidate_group_kernel

            cand_handler.group_kernel = make_candidate_group_kernel(
                tree, states, coarse, k
            )
        # Membership-filter routing (repro.route): suppress candidate
        # probes into closed chunks whose resident z-range the current
        # coarse ball provably misses.
        rf = getattr(tree, "route_filters", None)
        use_rf = rf is not None and rf.enabled
        out = executor.run(tasks, cand_handler, round_hook=hook,
                           prune=rf.make_knn_prune(states) if use_rf else None)
        hook(out)  # merge any CPU-seeded results not covered by rounds

        # ---- Step 3: exact radius + sphere-covering trace node ----------
        fetch_tasks: list[Task] = []
        bounds: list[float] = []
        exact_radii: list[float] = []
        for res in results:
            st = states[res.qid]
            if len(st.cand_d) == 0:
                r_exact = math.inf
            else:
                exact = np.sort(dist(st.cand_p, st.q, metric))
                sys.charge_cpu(len(exact) * metric.cpu_ops_per_dim * dims)
                kk = min(k, len(exact))
                r_exact = float(exact[kk - 1]) if len(st.cand_d) >= k else math.inf
            bound = r_exact * anchor_factor if math.isfinite(r_exact) else math.inf
            bounds.append(bound)
            exact_radii.append(r_exact)
            n2 = _lowest_containing_sphere(tree, res.trace, st.q, r_exact)
            sys.charge_cpu(len(res.trace) * _CPU_TRACE_OPS)
            # Reset candidate store: step 4 re-fetches the full ball.
            st.cand_d = np.empty(0)
            st.cand_p = np.empty((0, dims))
            _seed_from(tree, n2, res.qid, st, coarse, fetch_tasks,
                       mode="fetch", bound=bound, r_exact=r_exact)

        # ---- Step 4: fetch all points inside the (anchored) ball ---------
        executor2 = PushPullExecutor(tree)
        fetch_handler = _make_fetch_handler(tree, states, coarse, bounds,
                                            exact_radii)
        if tree.config.exec_mode == "vectorized":
            from .vexec import make_fetch_group_kernel

            fetch_handler.group_kernel = make_fetch_group_kernel(
                tree, states, coarse, bounds, exact_radii
            )
        fetched = executor2.run(
            fetch_tasks, fetch_handler,
            prune=rf.make_knn_prune(states, bounds) if use_rf else None,
        )
        tree.last_executor = executor2

        # ---- Step 5: exact filter on the CPU ------------------------------
        answers = []
        for res in results:
            st = states[res.qid]
            chunks = [st.cand_p] + [
                pts for kind, pts in fetched.get(res.qid, []) if kind == "pts"
            ]
            allp = np.vstack([c for c in chunks if len(c)]) if any(
                len(c) for c in chunks
            ) else np.empty((0, dims))
            if len(allp):
                d = dist(allp, st.q, metric)
                sys.charge_cpu(len(allp) * metric.cpu_ops_per_dim * dims)
                order = np.argsort(d, kind="stable")[: min(k, len(d))]
                sys.charge_cpu(len(allp) * max(1, int(np.log2(k + 1))))
                answers.append((d[order], allp[order]))
            else:
                answers.append((np.empty(0), np.empty((0, dims))))
    return answers


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _lowest_with_sc(trace: list[Node], threshold: int) -> Node | None:
    for node in reversed(trace):
        if node.sc >= threshold:
            return node
    return None


def _lowest_containing_sphere(tree, trace: list[Node], q: np.ndarray, r: float
                              ) -> Node:
    if math.isfinite(r):
        for node in reversed(trace):
            if tree.node_box(node).contains_sphere(q, r):
                return node
    return tree.root


def _child_box_dists(tree, left: Node, right: Node, q: np.ndarray,
                     coarse: Metric, want_linf: bool):
    """Coarse (and optionally ℓ∞) box distances for a sibling pair.

    One gap evaluation covers both children, and the ℓ∞ distance reuses
    the same gap array.  The row-wise formula is elementwise identical to
    :func:`dist_point_box`, so values are bitwise equal to the per-child
    scalar calls the L0 walk used to make.

    The stacked ``(2, dims)`` lo/hi arrays are memoized per (left, right)
    nid pair — node ids are never reused and a node's box is fixed by its
    (prefix, depth), so entries can never go stale; the cache is cleared
    on residency refreshes only to drop entries for discarded nodes.
    """
    try:
        cache = tree._pair_box_cache
    except AttributeError:
        cache = tree._pair_box_cache = {}
    pair = (left.nid, right.nid)
    ent = cache.get(pair)
    if ent is None:
        bl = tree.node_box(left)
        br = tree.node_box(right)
        ent = (np.stack((bl.lo, br.lo)), np.stack((bl.hi, br.hi)))
        cache[pair] = ent
    lo, hi = ent
    gap = np.maximum(np.maximum(lo - q, q - hi), 0.0)
    if coarse.name == "l1":
        dc = gap.sum(axis=-1)
    elif coarse.name == "linf":
        dc = gap.max(axis=-1)
    else:
        dc = np.sqrt((gap * gap).sum(axis=-1))
    dl = gap.max(axis=-1) if want_linf else None
    return dc, dl


def _seed_from(tree, start: Node, qid: int, state: _KnnState, coarse: Metric,
               tasks: list[Task], *, mode: str, bound: float = math.inf,
               r_exact: float = math.inf) -> None:
    """Walk the L0 portion (on the host) and emit border tasks.

    For ``mode="candidates"`` L0 leaves feed the candidate store directly;
    for ``mode="fetch"`` they contribute points within the anchored bound
    (ℓ1 ≤ √D·r) *and* the ℓ∞ secondary filter (ℓ∞ ≤ r — every true kNN
    satisfies ℓ∞ ≤ ℓ2 ≤ r, and the extra compare-only test shrinks the
    candidate superset from the ℓ1 cross-polytope to the r-cube).

    Box distances for both children of an expanded node are computed in a
    single vectorized call (:func:`_child_box_dists`) instead of one
    ``dist_point_box`` per child per pop — same values, same charges, same
    LLC touch order; only the host wall-clock changes.
    """
    sys = tree.system
    send_words = tree.dims + 3
    q = state.q
    use_linf = mode == "fetch" and math.isfinite(r_exact)
    # Stack entries carry the precomputed (coarse, ℓ∞) box distances; the
    # start node (and non-L0 children, whose distances are never used)
    # carry None and compute lazily.
    stack = [(start, None, None)]
    while stack:
        node, d, dlinf = stack.pop()
        if node.layer != Layer.L0:
            tasks.append(Task(qid, node.meta, node, None, send_words))
            continue
        sys.charge_cpu(4)
        sys.touch_cpu_block(("pimzd", "l0", node.nid))
        if d is None:
            d = dist_point_box(q, tree.node_box(node), coarse)
            if use_linf:
                dlinf = dist_point_box(q, tree.node_box(node), LINF)
        prune_at = state.radius() if mode == "candidates" else bound
        if d > prune_at:
            continue
        if use_linf and dlinf > r_exact:
            continue
        if node.is_leaf:
            dd = dist(node.pts, q, coarse)
            sys.charge_cpu(node.count * coarse.cpu_ops_per_dim * tree.dims)
            if mode == "candidates":
                _merge_into_state(state, dd, node.pts, state.k)
            else:
                mask = dd <= bound
                if math.isfinite(r_exact):
                    mask &= dist(node.pts, q, LINF) <= r_exact
                if mask.any():
                    _merge_points_into_state(state, node.pts[mask], dd[mask])
            continue
        left, right = node.left, node.right
        if left.layer == Layer.L0 or right.layer == Layer.L0:
            dc, dl = _child_box_dists(tree, left, right, q, coarse, use_linf)
            ll, lr = (float(dl[0]), float(dl[1])) if use_linf else (None, None)
            stack.append((left, float(dc[0]), ll))
            stack.append((right, float(dc[1]), lr))
        else:
            stack.append((left, None, None))
            stack.append((right, None, None))


def _merge_into_state(state: _KnnState, dists: np.ndarray, pts: np.ndarray,
                      k: int) -> None:
    d = np.concatenate([state.cand_d, dists])
    p = np.vstack([state.cand_p, pts]) if len(pts) else state.cand_p
    order = np.argsort(d, kind="stable")[: min(k, len(d))]
    state.cand_d = d[order]
    state.cand_p = p[order]


def _merge_points_into_state(state: _KnnState, pts: np.ndarray, dists: np.ndarray
                             ) -> None:
    state.cand_d = np.concatenate([state.cand_d, dists])
    state.cand_p = np.vstack([state.cand_p, pts]) if len(state.cand_p) else pts.copy()


def _make_candidate_handler(tree, states: list[_KnnState], coarse: Metric, k: int):
    dims = tree.dims

    def handler(task: Task, ctx) -> None:
        state = states[task.qid]
        # Prune on the round-start radius only: the bound is fixed for the
        # whole round (BSP-consistent), so the visit set is independent of
        # traversal order — the property the vectorized frontier kernels
        # rely on to charge the exact same simulated cost.
        radius = state.radius()
        local_d: list[np.ndarray] = []
        local_p: list[np.ndarray] = []
        stack = [task.node]
        while stack:
            node = stack.pop()
            ctx.visit_node(node)
            d = dist_point_box(state.q, tree.node_box(node), coarse)
            ctx.extra_work(2 * dims, coarse.pim_cycles_per_dim * dims)
            if d > radius:
                continue
            if node.is_leaf:
                ctx.scan_points(node.count, coarse, dims)
                dd = dist(node.pts, state.q, coarse)
                local_d.append(dd)
                local_p.append(node.pts)
                continue
            for child in (node.left, node.right):
                if ctx.local(child):
                    stack.append(child)
                else:
                    ctx.emit(Task(task.qid, child.meta, child, None, dims + 3))
        if local_d:
            dcat = np.concatenate(local_d)
            pcat = np.vstack(local_p)
            order = np.argsort(dcat, kind="stable")[: min(k, len(dcat))]
            ctx.extra_work(len(dcat) * 4, len(dcat) * 6)
            ctx.return_words(len(order) * (dims + 1))
            ctx.result(("cand", dcat[order], pcat[order]))

    return handler


def _make_merge_hook(tree, states: list[_KnnState], k: int):
    consumed: dict[int, int] = {}

    def hook(results: dict[int, list]) -> None:
        for qid, items in results.items():
            start = consumed.get(qid, 0)
            fresh = items[start:]
            consumed[qid] = len(items)
            for item in fresh:
                if item[0] != "cand":
                    continue
                _, dd, pp = item
                tree.system.charge_cpu(len(dd) * _CPU_MERGE_OPS)
                _merge_into_state(states[qid], dd, pp, k)

    return hook


def _make_fetch_handler(tree, states: list[_KnnState], coarse: Metric,
                        bounds: list[float], exact_radii: list[float]):
    dims = tree.dims

    def handler(task: Task, ctx) -> None:
        state = states[task.qid]
        bound = bounds[task.qid]
        r_exact = exact_radii[task.qid]
        use_linf = math.isfinite(r_exact) and coarse.name != "l2"
        stack = [task.node]
        collected: list[np.ndarray] = []
        n_pts = 0
        while stack:
            node = stack.pop()
            ctx.visit_node(node)
            d = dist_point_box(state.q, tree.node_box(node), coarse)
            ctx.extra_work(2 * dims, coarse.pim_cycles_per_dim * dims)
            if d > bound:
                continue
            if use_linf:
                ctx.extra_work(2 * dims, LINF.pim_cycles_per_dim * dims)
                if dist_point_box(state.q, tree.node_box(node), LINF) > r_exact:
                    continue
            if node.is_leaf:
                ctx.scan_points(node.count, coarse, dims)
                dd = dist(node.pts, state.q, coarse)
                mask = dd <= bound
                if use_linf:
                    ctx.scan_points(node.count, LINF, dims)
                    mask &= dist(node.pts, state.q, LINF) <= r_exact
                if mask.any():
                    collected.append(node.pts[mask])
                    n_pts += int(mask.sum())
                continue
            for child in (node.left, node.right):
                if ctx.local(child):
                    stack.append(child)
                else:
                    ctx.emit(Task(task.qid, child.meta, child, None, dims + 3))
        if collected:
            ctx.return_words(n_pts * dims)
            ctx.result(("pts", np.vstack(collected)))

    return handler
