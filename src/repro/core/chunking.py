"""Subtree-size chunking into meta-nodes (§3.2) with sparse/dense modes (§6).

Traditional fanout-based chunking assumes meaningful levels; zd-trees are
imbalanced, so PIM-zd-tree chunks purely by subtree size: for the highest
unchunked node ``N_i`` of a layer, every same-layer descendant ``N_j`` with
``T(N_j) > T(N_i)/B`` joins ``N_i``'s chunk (a *meta-node*); the rule then
recurses on the highest remaining nodes.  All nodes of a meta-node live on
one PIM module, and L1 sharing/caching operates at meta-node granularity.

Practical chunking (§6) gives each meta-node one of two capacity modes,
ART-style: chunks with < B/4 member nodes use *sparse* mode (two parallel
sorted arrays of keys and pointers — lookups binary-search), denser chunks
use *dense* mode (a B-slot pointer array indexed directly by key bits).
The mode changes both the chunk's storage footprint and its per-node
traversal cost on the PIM core.

Chunking decisions use the lazy counters (``node.sc``), not the exact
counts — exactly why Lemma 3.1's 2-approximation matters: it bounds how
far a chunk can drift from the shape the true sizes would give.
"""

from __future__ import annotations

from typing import Callable, Iterator

from .config import PIMZdTreeConfig
from .node import Layer, Node, node_words

__all__ = ["MetaNode", "chunk_region", "iter_meta_subtree"]

# PIM-core cycles to advance one node inside a meta-node.
DENSE_CYCLES_PER_NODE = 8  # direct pointer-array indexing
SPARSE_CYCLES_PER_NODE = 14  # binary search in the sorted key array


class MetaNode:
    """A chunk of same-layer tree nodes resident on one PIM module."""

    __slots__ = (
        "root",
        "layer",
        "module",
        "parent",
        "children",
        "n_nodes",
        "payload_words",
        "l1_desc_metas",
        "hot_hits",
    )

    def __init__(self, root: Node, module: int) -> None:
        self.root = root
        self.layer: Layer = root.layer
        self.module = module
        self.parent: "MetaNode | None" = None
        self.children: list[MetaNode] = []
        self.n_nodes = 0
        self.payload_words = 0
        # Number of L1 meta-nodes strictly below this one (for replication
        # accounting: an L1 meta is cached by its L1 ancestors/descendants).
        self.l1_desc_metas = 0
        # Tasks dispatched to this meta's module on its behalf (maintained
        # by the push-pull executor, decayed by the rebalancer).  Pure
        # host-side popularity signal — never charged.
        self.hot_hits = 0

    # -- practical chunking (§6) ----------------------------------------
    def dense(self, config: PIMZdTreeConfig) -> bool:
        return self.n_nodes >= max(1, config.chunk_factor // 4)

    def index_words(self, config: PIMZdTreeConfig) -> int:
        b = config.chunk_factor
        return b if self.dense(config) else 2 * max(1, b // 4)

    def size_words(self, config: PIMZdTreeConfig) -> int:
        """Master-copy footprint: member nodes plus the chunk index."""
        return self.payload_words + self.index_words(config)

    def cycles_per_node(self, config: PIMZdTreeConfig) -> int:
        return DENSE_CYCLES_PER_NODE if self.dense(config) else SPARSE_CYCLES_PER_NODE

    def l1_ancestors(self) -> list["MetaNode"]:
        """L1 meta-nodes strictly above this one (stops at the L0 border)."""
        out = []
        m = self.parent
        while m is not None and m.layer == Layer.L1:
            out.append(m)
            m = m.parent
        return out

    def replica_count(self) -> int:
        """How many caches hold a copy of this meta-node (L1 sharing, §3.1).

        Each L1 meta-node is cached alongside the master storage of every
        L1 ancestor and every L1 descendant meta-node; other layers are
        never replicated at meta-node granularity.
        """
        if self.layer != Layer.L1:
            return 0
        return len(self.l1_ancestors()) + self.l1_desc_metas

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MetaNode(root={self.root.nid} layer={self.layer.name} "
            f"module={self.module} nodes={self.n_nodes})"
        )


def chunk_region(
    region_root: Node,
    config: PIMZdTreeConfig,
    dims: int,
    place: Callable[[object], int],
) -> list[MetaNode]:
    """Chunk the whole subtree under ``region_root`` into meta-nodes.

    ``region_root`` must be the topmost node of a non-L0 region (its parent
    is an L0 node, or it is the tree root).  Returns every created meta-node
    (the first is the topmost).  ``place`` maps a placement key to a module
    (hash-randomised placement, §3).  Parent/child meta links are built for
    the region; the caller is responsible for linking the topmost meta to
    whatever sits above the region.
    """
    if region_root.layer == Layer.L0:
        raise ValueError("L0 nodes are globally shared, never chunked")
    metas: list[MetaNode] = []

    def build(root: Node, parent_meta: MetaNode | None) -> MetaNode:
        meta = MetaNode(root, place(("meta", root.nid)))
        meta.parent = parent_meta
        if parent_meta is not None:
            parent_meta.children.append(meta)
        metas.append(meta)
        threshold = root.sc / max(1, config.chunk_factor)
        stack = [root]
        while stack:
            n = stack.pop()
            n.meta = meta
            meta.n_nodes += 1
            meta.payload_words += node_words(n, dims)
            if n.is_leaf:
                continue
            for c in (n.left, n.right):
                assert c is not None
                if c.layer == root.layer and c.sc > threshold:
                    stack.append(c)
                else:
                    build(c, meta)
        return meta

    top = build(region_root, None)
    _accumulate_l1_desc(top)
    return metas


def extend_meta(
    meta: MetaNode,
    node: Node,
    config: PIMZdTreeConfig,
    dims: int,
    place: Callable[[object], int],
) -> list[MetaNode]:
    """Absorb a brand-new subtree under an existing meta-node.

    ``node`` is the root of a subtree consisting entirely of new nodes
    whose parent already belongs to ``meta``.  Nodes satisfying the chunk
    rule against ``meta``'s root join ``meta``; the rest are chunked into
    fresh meta-nodes (returned) parented under ``meta``.
    """
    created: list[MetaNode] = []
    threshold = meta.root.sc / max(1, config.chunk_factor)
    stack = [node]
    while stack:
        n = stack.pop()
        if n.layer == meta.layer and n.sc > threshold:
            n.meta = meta
            meta.n_nodes += 1
            meta.payload_words += node_words(n, dims)
            if not n.is_leaf:
                stack.append(n.left)
                stack.append(n.right)
        else:
            new = chunk_region(n, config, dims, place)
            new[0].parent = meta
            meta.children.append(new[0])
            created.extend(new)
    if created:
        new_l1 = sum(1 for m in created if m.layer == Layer.L1)
        if new_l1:
            anc: MetaNode | None = meta
            while anc is not None:
                anc.l1_desc_metas += new_l1
                anc = anc.parent
    return created


def _accumulate_l1_desc(meta: MetaNode) -> int:
    """Post-order fill of ``l1_desc_metas``; returns #L1 metas in subtree."""
    below = 0
    for child in meta.children:
        below += _accumulate_l1_desc(child)
    meta.l1_desc_metas = below
    return below + (1 if meta.layer == Layer.L1 else 0)


def iter_meta_subtree(meta: MetaNode) -> Iterator[MetaNode]:
    """All meta-nodes of the subtree rooted at ``meta`` (pre-order)."""
    yield meta
    for child in meta.children:
        yield from iter_meta_subtree(child)
