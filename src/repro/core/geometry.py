"""Geometric primitives shared by the indexes.

Axis-aligned boxes, point–point and point–box distances under the ℓ1, ℓ2
and ℓ∞ norms, and the ℓ1↔ℓ2 anchoring bound the paper exploits to run
cheap coarse filtering on PIM cores (§6, *Execution of Complex Distance
Metrics on PIMs*): for any ``x ∈ R^D``, ``‖x‖₂ ≤ ‖x‖₁ ≤ √D · ‖x‖₂``.

All functions are vectorised over NumPy arrays; single points are accepted
as 1-D arrays.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "Box",
    "Metric",
    "L1",
    "L2",
    "LINF",
    "dist",
    "dist_point_box",
    "l1_radius_bound",
]


@dataclass(frozen=True)
class Box:
    """A closed axis-aligned box ``[lo, hi]`` in D dimensions."""

    lo: np.ndarray
    hi: np.ndarray

    def __post_init__(self) -> None:
        lo = np.asarray(self.lo, dtype=np.float64)
        hi = np.asarray(self.hi, dtype=np.float64)
        if lo.shape != hi.shape or lo.ndim != 1:
            raise ValueError("Box lo/hi must be 1-D arrays of equal length")
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)

    @property
    def dims(self) -> int:
        return self.lo.shape[0]

    def contains_point(self, p: np.ndarray) -> np.ndarray | bool:
        """Whether each point of ``p`` lies inside the box (closed)."""
        p = np.asarray(p, dtype=np.float64)
        inside = (p >= self.lo) & (p <= self.hi)
        return inside.all(axis=-1)

    def contains_box(self, other: "Box") -> bool:
        """Whether ``other`` lies entirely inside this box."""
        return bool(np.all(other.lo >= self.lo) and np.all(other.hi <= self.hi))

    def intersects(self, other: "Box") -> bool:
        """Whether the two closed boxes share at least one point."""
        return bool(np.all(self.lo <= other.hi) and np.all(other.lo <= self.hi))

    def contains_sphere(self, center: np.ndarray, radius: float) -> bool:
        """Whether the ℓ2 ball ``B(center, radius)`` fits inside the box."""
        center = np.asarray(center, dtype=np.float64)
        return bool(
            np.all(center - radius >= self.lo) and np.all(center + radius <= self.hi)
        )

    def min_dist(self, p: np.ndarray, metric: "Metric") -> float:
        """Smallest ``metric`` distance from point ``p`` to the box."""
        return float(dist_point_box(p, self, metric))

    def volume(self) -> float:
        return float(np.prod(self.hi - self.lo))

    def clip(self, other: "Box") -> "Box":
        """Intersection box (may be degenerate if disjoint)."""
        return Box(np.maximum(self.lo, other.lo), np.minimum(self.hi, other.hi))


@dataclass(frozen=True)
class Metric:
    """A norm tag carrying its PIM instruction cost profile.

    ``pim_cycles_per_dim`` reflects UPMEM-like cores where multiplication
    costs ~32 cycles but addition/compare cost 1 (§6): ℓ2 needs one multiply
    per dimension, ℓ1/ℓ∞ only adds and compares.
    """

    name: str
    pim_cycles_per_dim: int
    cpu_ops_per_dim: int

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return dist(a, b, self)


L1 = Metric("l1", pim_cycles_per_dim=2, cpu_ops_per_dim=2)
L2 = Metric("l2", pim_cycles_per_dim=34, cpu_ops_per_dim=3)
LINF = Metric("linf", pim_cycles_per_dim=2, cpu_ops_per_dim=2)


def dist(a: np.ndarray, b: np.ndarray, metric: Metric = L2) -> np.ndarray:
    """Distance between points ``a`` and ``b`` (broadcasting over rows).

    For ℓ2 the *actual* Euclidean distance is returned (not squared), so
    values are directly comparable to radii.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    diff = np.abs(a - b)
    if metric.name == "l1":
        out = diff.sum(axis=-1)
    elif metric.name == "linf":
        out = diff.max(axis=-1)
    elif metric.name == "l2":
        out = np.sqrt((diff * diff).sum(axis=-1))
    else:
        raise ValueError(f"unknown metric {metric.name!r}")
    # Single-point (1-D) inputs reduce to a 0-d array; callers on the kNN
    # heap path compare against Python floats, so hand back a true float.
    return float(out) if out.ndim == 0 else out


def dist_point_box(p: np.ndarray, box: Box, metric: Metric = L2) -> np.ndarray:
    """Smallest distance from point(s) ``p`` to ``box`` under ``metric``."""
    p = np.asarray(p, dtype=np.float64)
    gap = np.maximum(np.maximum(box.lo - p, p - box.hi), 0.0)
    if metric.name == "l1":
        out = gap.sum(axis=-1)
    elif metric.name == "linf":
        out = gap.max(axis=-1)
    elif metric.name == "l2":
        out = np.sqrt((gap * gap).sum(axis=-1))
    else:
        raise ValueError(f"unknown metric {metric.name!r}")
    return float(out) if out.ndim == 0 else out


def l1_radius_bound(l1_kth_dist: float, dims: int) -> float:
    """ℓ1 search radius that provably covers the true ℓ2 k-NN set.

    If the k-th nearest neighbour under ℓ1 lies at ℓ1-distance ``x``, then
    the k-th nearest neighbour under ℓ2 lies at ℓ2-distance ≤ ``x`` (those
    same k candidates have ℓ2 ≤ ℓ1 ≤ x).  Every true ℓ2 k-NN therefore has
    ℓ2 ≤ x, hence ℓ1 ≤ √D·x; fetching all points with ℓ1-distance ≤ √D·x
    yields a candidate superset of the exact answer (§6).
    """
    return float(l1_kth_dist) * math.sqrt(dims)
