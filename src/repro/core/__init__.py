"""PIM-zd-tree: the paper's primary contribution.

Public surface:

* :class:`PIMZdTree` — the batch-dynamic index (§3, §4).
* :func:`throughput_optimized` / :func:`skew_resistant` — the two Table 2
  configurations; :class:`PIMZdTreeConfig` for custom tuning.
* :class:`MortonCodec` and the z-order codecs (§6).
* :class:`Box`, metrics ``L1``/``L2``/``LINF`` — geometry primitives.
"""

from .config import PIMZdTreeConfig, skew_resistant, throughput_optimized
from .geometry import L1, L2, LINF, Box, Metric, dist, dist_point_box
from .introspect import TreeStats, tree_stats
from .morton import (
    MortonCodec,
    max_bits_per_dim,
    morton_decode,
    morton_encode,
)
from .node import Layer, Node
from .tree import PIMZdTree

__all__ = [
    "Box",
    "L1",
    "L2",
    "LINF",
    "Layer",
    "Metric",
    "MortonCodec",
    "Node",
    "PIMZdTree",
    "PIMZdTreeConfig",
    "TreeStats",
    "dist",
    "dist_point_box",
    "max_bits_per_dim",
    "morton_decode",
    "morton_encode",
    "skew_resistant",
    "throughput_optimized",
    "tree_stats",
]
