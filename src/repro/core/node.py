"""Node representation of the PIM-zd-tree.

The tree is the compressed binary radix tree of §2.3 over Morton keys:
every internal node has exactly two children, a leaf holds at most
``leaf_size`` points (unless all its keys are identical), and each node
records its key ``prefix``/``depth``.  On top of the plain zd-tree shape,
a PIM-zd-tree node carries:

* ``count`` — the exact subtree size maintained by the master copy;
* ``sc`` — the *lazy counter* snapshot replicated into caches (§3.4); it
  only tracks ``count`` when the accumulated ``delta`` crosses the Table 1
  thresholds, and Lemma 3.1 guarantees ``count/2 ≤ sc ≤ 2·count``;
* ``layer`` — L0 (globally shared), L1 (partially shared) or L2
  (exclusive), derived from ``count`` against θ_L0/θ_L1 (§3.1);
* ``meta`` — the meta-node (chunk) the node belongs to (§3.2); ``None``
  for L0 nodes, which are not chunked.
"""

from __future__ import annotations

from enum import IntEnum

import numpy as np

__all__ = ["Layer", "Node", "node_words", "LEAF_HEADER_WORDS", "INTERNAL_WORDS"]

INTERNAL_WORDS = 8  # prefix, depth, counters, two child refs, flags
LEAF_HEADER_WORDS = 4


class Layer(IntEnum):
    """The three layers of §3.1, ordered from root to leaves."""

    L0 = 0
    L1 = 1
    L2 = 2


class Node:
    """One zd-tree node (internal or leaf)."""

    __slots__ = (
        "nid",
        "prefix",
        "depth",
        "count",
        "sc",
        "delta",
        "left",
        "right",
        "parent",
        "keys",
        "pts",
        "layer",
        "meta",
        "box",
    )

    def __init__(self, nid: int, prefix: int, depth: int) -> None:
        self.nid = nid
        self.prefix = prefix
        self.depth = depth
        self.count = 0
        self.sc = 0  # lazy snapshot (§3.4)
        self.delta = 0  # unsynced count change since last snapshot
        self.left: Node | None = None
        self.right: Node | None = None
        self.parent: Node | None = None
        self.keys: np.ndarray | None = None  # leaves only, sorted uint64
        self.pts: np.ndarray | None = None  # leaves only, (count, D)
        self.layer: Layer = Layer.L2
        self.meta = None  # MetaNode, set by chunking
        self.box = None  # geometry.Box, computed lazily

    @property
    def is_leaf(self) -> bool:
        return self.keys is not None

    def key_range(self, key_bits: int) -> tuple[int, int]:
        """[lo, hi) of Morton keys covered by this node."""
        lo = self.prefix << (key_bits - self.depth) if self.depth else 0
        return lo, lo + (1 << (key_bits - self.depth))

    def key_lo(self, key_bits: int) -> int:
        """Start of the node's key range.

        The scalar handlers traverse right-child-first (LIFO stack), so
        disjoint nodes are visited in *descending* ``key_lo`` order — the
        vectorized kernels sort by this key to replay the exact scalar
        visitation order (repro.core.vexec).
        """
        return self.prefix << (key_bits - self.depth) if self.depth else 0

    def child_for_key(self, key: int, key_bits: int) -> "Node":
        """The child whose range contains ``key`` (internal nodes only)."""
        bit = (key >> (key_bits - self.depth - 1)) & 1
        return self.right if bit else self.left  # type: ignore[return-value]

    def words(self, dims: int) -> int:
        """Storage footprint of the master copy, in 8-byte words."""
        return node_words(self, dims)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "leaf" if self.is_leaf else "int"
        return (
            f"Node({kind} nid={self.nid} depth={self.depth} count={self.count} "
            f"layer={self.layer.name})"
        )


def node_words(node: Node, dims: int) -> int:
    """Words of storage for a node: header plus leaf payload."""
    if node.is_leaf:
        return LEAF_HEADER_WORDS + node.count * (dims + 1)
    return INTERNAL_WORDS
