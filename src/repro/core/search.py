"""Batched top-down SEARCH (Alg. 1).

SEARCH locates, for each query point, the leaf whose key range contains the
point's Morton key — the preprocessing step of updates, kNN and range
queries.  The batch traverses L0 on the host (or, when L0 is replicated
because it outgrew the LLC, on the PIM modules in one round), then descends
through L1/L2 with push-pull at meta-node granularity.

Because the tree is a *compressed* radix tree, a key can diverge from the
structure in the middle of a compressed edge; SEARCH detects this (the key
falls outside the child's range) and reports the edge instead of a leaf —
INSERT uses exactly this to split edges (Alg. 2 step 2c).

The search trace (the nodes visited, with their lazy counters) is recorded
on the CPU (Alg. 2 step 1): per meta-node segment the module ships the
segment endpoints plus the k-threshold crossing point, which we charge as
``TRACE_WORDS`` per segment; the host-side trace list holds the full node
path, which the real system reconstructs from those segment records.
"""

from __future__ import annotations

import numpy as np

from .node import Layer, Node
from .push_pull import PushPullExecutor, Task, CPU_NODE_OPS

__all__ = ["SearchResult", "search_batch", "route_through_l0"]

TRACE_WORDS = 3  # segment start, segment end, counter-crossing node
_L0_PIM_CYCLES_PER_NODE = 10


class SearchResult:
    """Outcome of one top-down search.

    Exactly one of the two shapes holds:

    * ``leaf`` is set — the key lies inside ``leaf``'s range;
    * ``edge`` is set to ``(parent, child)`` — the key diverges from the
      compressed edge entering ``child`` (``parent is None`` means the key
      diverges above the root).
    """

    __slots__ = ("qid", "key", "leaf", "edge", "trace", "pruned")

    def __init__(self, qid: int, key: int) -> None:
        self.qid = qid
        self.key = key
        self.leaf: Node | None = None
        self.edge: tuple[Node | None, Node] | None = None
        self.trace: list[Node] = []
        # Membership-filter verdict (repro.route): the descent was
        # suppressed because the key is provably absent.  Consumers treat
        # this exactly like a key that searched to a miss.
        self.pruned = False


def route_through_l0(tree, results: list[SearchResult]) -> list[Task]:
    """Traverse the globally-shared layer for every query (Alg. 1 step 1).

    Returns the border tasks entering L1/L2.  Terminal outcomes (leaf or
    edge divergence inside L0) are written into ``results`` directly.
    """
    if tree.config.exec_mode == "vectorized":
        from .vexec import route_through_l0_vec

        return route_through_l0_vec(tree, results)

    sys = tree.system
    kb = tree.key_bits
    tasks: list[Task] = []
    on_cpu = tree.l0_on_cpu

    def step(res: SearchResult) -> tuple[Node, Node] | None:
        """Walk L0; returns (parent, border_child) or None if terminal."""
        node = tree.root
        lo, hi = node.key_range(kb)
        if not lo <= res.key < hi:
            res.edge = (None, node)
            return None
        if node.layer != Layer.L0:
            # Tiny trees (or huge θ_L0) may have an empty L0: the border
            # sits at the root itself.
            return None, node
        while True:
            res.trace.append(node)
            if on_cpu:
                sys.charge_cpu(CPU_NODE_OPS)
                sys.touch_cpu_block(("pimzd", "l0", node.nid))
            if node.is_leaf:
                res.leaf = node
                return None
            child = node.child_for_key(res.key, kb)
            lo, hi = child.key_range(kb)
            if not lo <= res.key < hi:
                res.edge = (node, child)
                return None
            if child.layer != Layer.L0:
                return node, child
            node = child

    if on_cpu:
        for res in results:
            out = step(res)
            if out is not None:
                tasks.append(Task(res.qid, out[1].meta, out[1]))
        return tasks

    # L0 replicated across modules: queries are hash-partitioned into P
    # groups and each group walks its module's replica in one round.
    with sys.round():
        for res in results:
            mid = sys.place(("l0q", tree._l0_route_salt, res.qid))
            sys.send(mid, 2)
            out = step(res)
            depth = len(res.trace)
            sys.charge_pim(mid, depth * _L0_PIM_CYCLES_PER_NODE)
            sys.recv(mid, TRACE_WORDS)
            if out is not None:
                tasks.append(Task(res.qid, out[1].meta, out[1]))
    return tasks


def make_search_handler(tree, results: list[SearchResult]):
    """Per-task handler descending within the locally available region."""
    kb = tree.key_bits

    def handler(task: Task, ctx) -> None:
        res = results[task.qid]
        node = task.node
        while True:
            ctx.visit_node(node)
            res.trace.append(node)
            if node.is_leaf:
                ctx.return_words(TRACE_WORDS)
                res.leaf = node
                return
            child = node.child_for_key(res.key, kb)
            lo, hi = child.key_range(kb)
            if not lo <= res.key < hi:
                ctx.return_words(TRACE_WORDS)
                res.edge = (node, child)
                return
            if ctx.local(child):
                node = child
                continue
            ctx.return_words(TRACE_WORDS)
            ctx.emit(Task(task.qid, child.meta, child))
            return

    return handler


def search_batch(tree, points: np.ndarray, *, phase: str = "search"
                 ) -> list[SearchResult]:
    """SEARCH a batch of query points; returns one result per row."""
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    sys = tree.system
    with sys.phase(phase):
        keys = tree.encode_keys(points)
        results = [SearchResult(i, int(k)) for i, k in enumerate(keys)]
        # Membership-filter routing (repro.route): point lookups and
        # delete planning may suppress descents for provably-absent keys.
        # Phases whose answers depend on the full descent (insert needs
        # the target leaf/edge; kNN needs the byte-identical trace) are
        # never pruned.  With a replicated L0 even the routing round is a
        # send, so the global filter gates it; a host-resident L0 walks
        # for free and queries are screened at their first L1/L2 task.
        rf = getattr(tree, "route_filters", None)
        use_rf = (rf is not None and rf.enabled
                  and phase in ("search", "delete"))
        live, pre_probed = results, None
        if use_rf and not tree.l0_on_cpu:
            live, pre_probed = rf.prune_l0_route(results)
        tasks = route_through_l0(tree, live) if live else []
        prune = rf.make_search_prune(results, pre_probed) if use_rf else None
        if tasks:
            executor = PushPullExecutor(tree)
            handler = make_search_handler(tree, results)
            if tree.config.exec_mode == "vectorized":
                from .vexec import make_search_group_kernel

                handler.group_kernel = make_search_group_kernel(tree, results)
            executor.run(tasks, handler, prune=prune)
            tree.last_executor = executor
        if prune is not None:
            rf.account_search(results, prune.probed)
        # The trace records land in host memory.
        sys.charge_cpu(len(results) * 2, span=np.log2(len(results) + 2))
    return results
