"""PIM-zd-tree configurations (Table 2) and tuning knobs.

The index is tunable along three axes (§3.1–§3.2): the layer thresholds
``theta_l0`` / ``theta_l1`` (subtree-size cutoffs for the globally-shared /
partially-shared / exclusive layers) and the chunking factor ``B``.  The
paper implements the two extremes of the design frontier (§6):

* **throughput-optimized** — ``θ_L0 = n/P``, ``θ_L1 = 1``, ``B = θ_L0``:
  the top O(P) nodes are shared, everything below is a single meta-node
  per subtree placed wholly on one random module.  O(1) communication per
  operation; tolerates (P log P, 3)-skew.
* **skew-resistant** — ``θ_L0 = Θ(P)``, ``θ_L1 = Θ(log_B P)``, ``B = 16``:
  finer layers plus push-pull give O(log_B log_B P) communication while
  tolerating arbitrary skew for batches of Ω(P log² P).

The boolean switches correspond to the Table 3 implementation-technique
ablations plus the extra design ablations listed in DESIGN.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

__all__ = ["PIMZdTreeConfig", "throughput_optimized", "skew_resistant"]


@dataclass(frozen=True)
class PIMZdTreeConfig:
    """Static tuning of a PIM-zd-tree instance."""

    name: str
    theta_l0: int
    theta_l1: int
    chunk_factor: int  # B
    leaf_size: int = 16
    # Push-pull thresholds (§3.3 / Alg. 1).
    pull_imbalance_factor: float = 3.0
    # Implementation-technique switches (Table 3 ablations).
    lazy_counters: bool = True
    fast_zorder: bool = True
    fast_l2: bool = True
    direct_api: bool = True
    # Design ablations (DESIGN.md §Key design decisions).
    push_pull: bool = True
    # Execution backend for the batch kernels (see repro.core.vexec):
    # "vectorized" runs the NumPy frontier-at-a-time kernels, "reference"
    # runs the scalar per-element oracle.  Both produce identical results
    # and identical PIMStats counters (enforced by the differential suite).
    exec_mode: str = "vectorized"
    # Simulator core backing the PIMSystem (see repro.pim.vector):
    # "vector" keeps per-module round state in NumPy arrays and closes
    # BSP rounds with array reductions (the paper-scale P=2048 path);
    # "scalar" keeps one PIMModule object per module (the byte-exact
    # oracle).  Both produce byte-identical PIMStats (enforced by
    # tests/test_sim_modes.py).
    sim_mode: str = "vector"

    def __post_init__(self) -> None:
        if self.exec_mode not in ("vectorized", "reference"):
            raise ValueError(
                f"exec_mode must be 'vectorized' or 'reference', got {self.exec_mode!r}"
            )
        if self.sim_mode not in ("vector", "scalar"):
            raise ValueError(
                f"sim_mode must be 'vector' or 'scalar', got {self.sim_mode!r}"
            )
        if self.theta_l0 < self.theta_l1:
            raise ValueError("theta_l0 must be >= theta_l1")
        if self.theta_l1 < 1:
            raise ValueError("theta_l1 must be >= 1")
        if self.chunk_factor < 1:
            raise ValueError("chunk factor B must be >= 1")
        if self.leaf_size < 1:
            raise ValueError("leaf_size must be >= 1")

    # -- derived quantities -------------------------------------------
    @property
    def pull_threshold_l1(self) -> int:
        """K for L1 pulls: ``B · log_B(θ_L0 / θ_L1)`` (Alg. 1 step 2a)."""
        b = max(2, self.chunk_factor)
        ratio = max(2.0, self.theta_l0 / max(1, self.theta_l1))
        return max(1, int(self.chunk_factor * max(1.0, math.log(ratio, b))))

    @property
    def pull_threshold_l2(self) -> int:
        """K for L2 pulls: ``B`` (Alg. 1 step 4)."""
        return max(1, self.chunk_factor)

    def lazy_delta_bounds(self, layer: int, theta_ratio_log: float | None = None
                          ) -> tuple[float, float]:
        """(Δ_min, Δ_max) of Table 1 for a node in ``layer`` (0, 1 or 2)."""
        if not self.lazy_counters:
            return (0.0, 0.0)
        if layer == 0:
            return (-self.theta_l0 / 2.0, float(self.theta_l0))
        if layer == 1:
            b = max(2, self.chunk_factor)
            log_term = math.log(max(2.0, self.theta_l0 / max(1, self.theta_l1)), b)
            d = min(float(self.theta_l1), log_term)
            d = max(1.0, d)
            return (-0.5 * d, d)
        return (0.0, 0.0)

    def with_overrides(self, **kw) -> "PIMZdTreeConfig":
        return replace(self, **kw)


def throughput_optimized(n: int, n_modules: int, *, leaf_size: int = 16,
                         headroom: float = 1.5, **overrides) -> PIMZdTreeConfig:
    """Table 2, column 1: range-partitioned layout with random placement.

    ``headroom`` sets θ_L0 slightly above n/P so freshly built region
    roots (whose subtree sizes sit exactly at n/P) do not all cross the
    promotion threshold on the first post-warmup insert batch — the
    asymptotic Table 2 choice θ_L0 = Θ(n/P) is unchanged.
    """
    theta_l0 = max(2 * leaf_size, int(headroom * n) // max(1, n_modules))
    cfg = PIMZdTreeConfig(
        name="throughput-optimized",
        theta_l0=theta_l0,
        theta_l1=1,
        chunk_factor=theta_l0,
        leaf_size=leaf_size,
    )
    return cfg.with_overrides(**overrides) if overrides else cfg


def skew_resistant(n_modules: int, *, chunk_factor: int = 16, leaf_size: int = 16,
                   c0: int = 4, c1: int = 8, **overrides) -> PIMZdTreeConfig:
    """Table 2, column 2: fine-grained layers tolerating arbitrary skew."""
    b = max(2, chunk_factor)
    theta_l1 = max(2, int(c1 * max(1.0, math.log(max(2, n_modules), b))))
    theta_l0 = max(theta_l1 * 2, c0 * n_modules)
    cfg = PIMZdTreeConfig(
        name="skew-resistant",
        theta_l0=theta_l0,
        theta_l1=theta_l1,
        chunk_factor=chunk_factor,
        leaf_size=leaf_size,
    )
    return cfg.with_overrides(**overrides) if overrides else cfg
