"""Vectorized batch-execution kernels for the query/update hot paths.

The scalar operation modules (:mod:`.search`, :mod:`.knn`,
:mod:`.range_query`, :mod:`.update`) walk the pointer tree one
(query, node) pair at a time.  This module provides NumPy
frontier-at-a-time equivalents that the push-pull executor dispatches
when ``config.exec_mode == "vectorized"``:

* :class:`LeafStore` — a structure-of-arrays mirror of the leaf payloads
  (contiguous ``keys``/``pts`` arrays with a free-slot mask) used to
  gather many leaves' points in one fancy-index operation;
* :class:`RegionTable` — a flattened per-meta view of the locally
  traversable subtree (box corners, child indices, per-node cycles and
  leaf-store slots as parallel arrays), cached between update batches;
* :func:`route_through_l0_vec` — batched L0 routing (whole query
  frontiers advance one tree level per step instead of per-point
  ``step()`` calls);
* :func:`make_search_group_kernel` / :func:`make_candidate_group_kernel`
  / :func:`make_fetch_group_kernel` / :func:`make_range_group_kernel` —
  per-meta group kernels evaluating box distances, kNN candidate
  distance matrices, and range masks for whole task groups at once;
* :func:`seed_l0_boxes` — batched host-side L0 seeding for range queries;
* :func:`plan_leaf_deletions` — ``np.searchsorted``-based delete
  partitioning.

Counter-exactness contract
--------------------------
Every kernel produces *byte-identical* ``PIMStats`` to the scalar
reference path.  This works because

1. every per-element charge in the scalar path is an integer number of
   cycles/ops/words, so float64 sums are exact and order-independent —
   aggregating them per (phase, module, round) is lossless;
2. the BSP round structure (which task reaches which meta-node in which
   round) is preserved exactly: emitted tasks are re-ordered into the
   scalar emission order before entering the next frontier;
3. LLC touch *sequences* (order-sensitive under LRU eviction) are
   replayed in the exact scalar order via ``touch_cpu_blocks``;
4. all floating-point result values are computed by the same NumPy
   elementwise/row-reduction formulas the scalar path uses, so they
   match bitwise, and concatenation follows the scalar right-child-first
   DFS order: disjoint subtrees are visited in descending ``key_lo``
   order, which ``np.lexsort`` on ``(pos, ~key_lo)`` reconstructs.
"""

from __future__ import annotations

import numpy as np

from .geometry import LINF, Box, Metric
from .node import Layer, Node
from .push_pull import Task

__all__ = [
    "LeafStore",
    "leaf_store",
    "RegionTable",
    "region_table",
    "invalidate_exec_caches",
    "ensure_node_boxes",
    "route_through_l0_vec",
    "make_search_group_kernel",
    "make_candidate_group_kernel",
    "make_fetch_group_kernel",
    "make_range_group_kernel",
    "seed_l0_boxes",
    "plan_leaf_deletions",
]

_U64 = np.uint64
_FULL = 1 << 64


# ======================================================================
# structure-of-arrays leaf store
# ======================================================================
class LeafStore:
    """Contiguous keys/points arrays mirroring all leaf payloads.

    Leaves are appended on first use; every leaf mutation in the scalar
    code *replaces* ``node.keys``/``node.pts`` with fresh arrays (never
    in-place), so an identity check against the registered ``keys``
    object detects staleness.  Stale segments flip their ``live`` mask
    off; when dead rows outnumber half the used rows the store resets
    and re-fills on demand (amortised O(1) per mutation).
    """

    __slots__ = ("dims", "keys", "pts", "live", "epoch", "_used", "_dead",
                 "_seg", "_ref")

    def __init__(self, dims: int, capacity: int = 1024) -> None:
        self.dims = dims
        self.epoch = 0
        self.keys = np.zeros(capacity, dtype=_U64)
        self.pts = np.zeros((capacity, dims), dtype=np.float64)
        self.live = np.zeros(capacity, dtype=bool)
        self._used = 0
        self._dead = 0
        self._seg: dict[int, tuple[int, int]] = {}
        self._ref: dict[int, np.ndarray] = {}

    def _grow(self, need: int) -> None:
        cap = max(len(self.keys) * 2, self._used + need)
        keys = np.zeros(cap, dtype=_U64)
        pts = np.zeros((cap, self.dims), dtype=np.float64)
        live = np.zeros(cap, dtype=bool)
        keys[: self._used] = self.keys[: self._used]
        pts[: self._used] = self.pts[: self._used]
        live[: self._used] = self.live[: self._used]
        self.keys, self.pts, self.live = keys, pts, live

    def _reset(self) -> None:
        self.epoch += 1
        self._seg.clear()
        self._ref.clear()
        self.live[: self._used] = False
        self._used = 0
        self._dead = 0

    def slots(self, node: Node) -> tuple[int, int]:
        """Row range of ``node``'s payload, refreshing a stale segment."""
        if self._dead > max(1024, self._used // 2):
            self._reset()
        nid = node.nid
        seg = self._seg.get(nid)
        if seg is not None:
            if self._ref[nid] is node.keys:
                return seg
            s, e = seg
            self.live[s:e] = False
            self._dead += e - s
        n = node.count
        if self._used + n > len(self.keys):
            self._grow(n)
        s = self._used
        e = s + n
        self.keys[s:e] = node.keys
        self.pts[s:e] = node.pts
        self.live[s:e] = True
        self._used = e
        self._seg[nid] = (s, e)
        self._ref[nid] = node.keys
        return s, e


def leaf_store(tree) -> LeafStore:
    store = getattr(tree, "_leaf_store", None)
    if store is None or store.dims != tree.dims:
        store = LeafStore(tree.dims)
        tree._leaf_store = store
    return store


# ======================================================================
# batched node boxes
# ======================================================================
def ensure_node_boxes(tree, nodes) -> None:
    """Fill ``node.box`` for every node lacking one, in a single batch.

    Bitwise identical to the lazy scalar ``tree.node_box`` fills (see
    ``MortonCodec.prefix_box_batch``), so both exec modes see the same
    cached geometry.
    """
    missing = [n for n in nodes if n.box is None]
    if not missing:
        return
    lo, hi = tree.codec.prefix_box_batch(
        [n.prefix for n in missing], [n.depth for n in missing]
    )
    for i, n in enumerate(missing):
        n.box = Box(lo[i].copy(), hi[i].copy())


def _in_range_mask(keys: np.ndarray, lo: int, hi: int) -> np.ndarray:
    ok = np.ones(len(keys), dtype=bool)
    if lo > 0:
        ok &= keys >= _U64(lo)
    if hi < _FULL:
        ok &= keys < _U64(hi)
    return ok


def _dist_point_boxes(p: np.ndarray, lo: np.ndarray, hi: np.ndarray,
                      metric: Metric) -> np.ndarray:
    """Row-wise :func:`repro.core.geometry.dist_point_box`.

    Same elementwise formula, so each row is bitwise identical to the
    scalar per-(point, box) call.
    """
    gap = np.maximum(np.maximum(lo - p, p - hi), 0.0)
    if metric.name == "l1":
        return gap.sum(axis=-1)
    if metric.name == "linf":
        return gap.max(axis=-1)
    return np.sqrt((gap * gap).sum(axis=-1))


def _dist_rows(rows: np.ndarray, q: np.ndarray, metric: Metric) -> np.ndarray:
    """Row-wise :func:`repro.core.geometry.dist` (same formula, bitwise)."""
    diff = np.abs(rows - q)
    if metric.name == "l1":
        return diff.sum(axis=-1)
    if metric.name == "linf":
        return diff.max(axis=-1)
    return np.sqrt((diff * diff).sum(axis=-1))


# ======================================================================
# flattened per-meta region tables
# ======================================================================
class RegionTable:
    """SoA view of the subtree a pushed meta-node may traverse locally.

    Holds, as parallel arrays indexed by a *local node index*: box
    corners, exact counts, per-visit PIM cycles, child indices, Morton
    key ranges and leaf-store slot ranges.  Nodes where the locality
    rule fails (the push-pull boundary) are included as *external*
    terminals so the kernels can emit follow-up tasks for them.

    Tables are cached on the tree and invalidated wholesale by
    :func:`invalidate_exec_caches` at the start of every update batch —
    queries never mutate the tree, so between updates the arrays stay
    valid.
    """

    __slots__ = (
        "tree", "meta", "rule_l1", "nodes", "idx_of", "_ext", "_dirty",
        "store", "epoch", "lo", "hi", "count", "cycles", "is_leaf",
        "external", "left", "right", "key_lo", "hi_incl", "depth",
        "seg_lo", "seg_hi",
    )

    def __init__(self, tree, meta) -> None:
        self.tree = tree
        self.meta = meta
        self.rule_l1 = meta.layer == Layer.L1
        self.nodes: list[Node] = []
        self.idx_of: dict[int, int] = {}
        self._ext: list[bool] = []
        self._dirty = True
        self.store = leaf_store(tree)
        self.epoch = -1
        self._add_region(meta.root)

    def _local(self, node: Node) -> bool:
        if self.rule_l1:
            return node.layer == Layer.L1
        return node.meta is self.meta

    def _add_region(self, root: Node) -> None:
        """Register ``root``'s locally-traversable closure."""
        stack = [root]
        while stack:
            nd = stack.pop()
            if id(nd) in self.idx_of:
                continue
            self.idx_of[id(nd)] = len(self.nodes)
            self.nodes.append(nd)
            self._ext.append(False)
            if nd.is_leaf:
                continue
            for child in (nd.left, nd.right):
                if self._local(child):
                    stack.append(child)
                elif id(child) not in self.idx_of:
                    self.idx_of[id(child)] = len(self.nodes)
                    self.nodes.append(child)
                    self._ext.append(True)
        self._dirty = True

    def entry(self, node: Node) -> int:
        """Local index of a task's entry node, extending the table if the
        chunk was transiently disconnected."""
        idx = self.idx_of.get(id(node))
        if idx is None:
            self._add_region(node)
            idx = self.idx_of[id(node)]
        return idx

    def refresh(self) -> None:
        """(Re)build the parallel arrays after region additions.

        Structural arrays only — box corners are deferred to
        :meth:`need_geometry`, since pure SEARCH traffic (the update
        pipelines' step 1) never tests a box.
        """
        if not self._dirty:
            return
        self._dirty = False
        tree = self.tree
        kb = tree.key_bits
        cfg = tree.config
        nodes = self.nodes
        ext_l = self._ext
        n = len(nodes)
        ext = np.array(ext_l, dtype=bool)
        depth = np.fromiter((nd.depth for nd in nodes), dtype=np.int64, count=n)
        prefix = np.fromiter((nd.prefix for nd in nodes), dtype=_U64, count=n)
        count = np.fromiter((nd.count for nd in nodes), dtype=np.int64, count=n)
        is_leaf = np.fromiter((nd.is_leaf for nd in nodes), dtype=bool, count=n)
        # key_lo/hi_incl: guard the depth-0 row (a 64-bit shift is UB).
        sh = np.where(depth > 0, kb - depth, 0).astype(_U64)
        key_lo = np.where(depth > 0, prefix << sh, _U64(0))
        hi_incl = np.where(
            depth > 0,
            key_lo + ((_U64(1) << sh) - _U64(1)),
            _U64(0xFFFFFFFFFFFFFFFF),
        )
        # Per-visit cycles are constant per owning meta; memoise the lookup.
        cyc_of: dict[int, float] = {}

        def _cyc(nd: Node, e: bool) -> float:
            if e:
                return 0.0
            m = nd.meta
            c = cyc_of.get(id(m))
            if c is None:
                c = float(m.cycles_per_node(cfg)) if m is not None else 12.0
                cyc_of[id(m)] = c
            return c

        cycles = np.fromiter(
            (_cyc(nd, e) for nd, e in zip(nodes, ext_l)), dtype=np.float64,
            count=n,
        )
        left = np.full(n, -1, dtype=np.intp)
        right = np.full(n, -1, dtype=np.intp)
        idx_of = self.idx_of
        ii = np.flatnonzero(~ext & ~is_leaf)
        if len(ii):
            left[ii] = [idx_of[id(nodes[i].left)] for i in ii]
            right[ii] = [idx_of[id(nodes[i].right)] for i in ii]
        seg_lo = np.zeros(n, dtype=np.intp)
        seg_hi = np.zeros(n, dtype=np.intp)
        li = np.flatnonzero(is_leaf & ~ext)
        if len(li):
            # Registration can trigger a store compaction mid-pass, which
            # would invalidate slots read before it; re-read until the
            # epoch is stable (a second pass registers nothing new, so it
            # always converges).
            while True:
                e0 = self.store.epoch
                segs = [self.store.slots(nodes[i]) for i in li]
                if self.store.epoch == e0:
                    break
            segs = np.array(segs, dtype=np.intp)
            seg_lo[li] = segs[:, 0]
            seg_hi[li] = segs[:, 1]
        self.lo = None
        self.hi = None
        self.count, self.cycles = count, cycles
        self.is_leaf, self.external = is_leaf, ext
        self.left, self.right = left, right
        self.key_lo, self.hi_incl, self.depth = key_lo, hi_incl, depth
        self.seg_lo, self.seg_hi = seg_lo, seg_hi
        self.epoch = self.store.epoch

    def need_geometry(self) -> None:
        """Fill the box-corner arrays (deferred from :meth:`refresh`)."""
        if self.lo is not None:
            return
        nodes = self.nodes
        ii = np.flatnonzero(~self.external)
        local = [nodes[i] for i in ii]
        ensure_node_boxes(self.tree, local)
        n = len(nodes)
        dims = self.tree.dims
        lo = np.zeros((n, dims))
        hi = np.zeros((n, dims))
        if local:
            lo[ii] = [nd.box.lo for nd in local]
            hi[ii] = [nd.box.hi for nd in local]
        self.lo, self.hi = lo, hi


def region_table(tree, meta) -> RegionTable:
    tabs = getattr(tree, "_region_tables", None)
    if tabs is None:
        tabs = {}
        tree._region_tables = tabs
    tab = tabs.get(meta)
    if tab is None:
        tab = RegionTable(tree, meta)
        tabs[meta] = tab
    return tab


def invalidate_exec_caches(tree) -> None:
    """Drop cached region tables; called before every update batch."""
    tree._region_tables = {}


def _entries(tab: RegionTable, ts) -> np.ndarray:
    if tab.store.epoch != tab.epoch:
        # The leaf store was compacted since this table was built; the
        # cached slot ranges are stale and must be re-read.
        tab._dirty = True
    idxs = [tab.entry(t.node) for t in ts]
    tab.refresh()
    return np.array(idxs, dtype=np.intp)


def _gather_rows(tab: RegionTable, lnidx: np.ndarray):
    """Fancy-gather the payload rows of many leaves in one shot.

    Returns ``(rows, row_pair, lens)``: ``rows`` stacks the leaves'
    points in order, ``row_pair`` maps each row to its index in
    ``lnidx`` and ``lens`` gives the per-leaf row counts.
    """
    s = tab.seg_lo[lnidx]
    lens = tab.seg_hi[lnidx] - s
    tot = int(lens.sum())
    row_pair = np.repeat(np.arange(len(lnidx), dtype=np.intp), lens)
    offs = np.arange(tot, dtype=np.intp) - np.repeat(np.cumsum(lens) - lens, lens)
    rows = tab.store.pts[np.repeat(s, lens) + offs]
    return rows, row_pair, lens


def _pos_segments(row_pos: np.ndarray):
    """Contiguous [start, end) ranges per position in a sorted pos array."""
    upos, first = np.unique(row_pos, return_index=True)
    ends = np.append(first[1:], len(row_pos))
    return upos, first, ends


def _emit_key(tab: RegionTable, parent: int, child: int) -> tuple:
    """Sort key reproducing the scalar DFS emission order within a task.

    The scalar handlers emit a non-local child when its *parent* is
    visited, left child before right.  Parents are visited in right-first
    pre-order, which sorts as ``(hi_incl DESC, depth ASC)``; the left
    child has the smaller ``key_lo``.
    """
    return (
        -int(tab.hi_incl[parent]),
        int(tab.depth[parent]),
        int(tab.key_lo[child]),
    )


# ======================================================================
# L0 routing (SEARCH step 1)
# ======================================================================
def route_through_l0_vec(tree, results) -> list[Task]:
    """Vectorized :func:`repro.core.search.route_through_l0`.

    Advances the whole query frontier one L0 level at a time, splitting
    the query-index array by the key bit at each node.  Traces, terminal
    outcomes, border tasks and all simulated charges are identical to
    the scalar walk.
    """
    from .search import TRACE_WORDS, _L0_PIM_CYCLES_PER_NODE
    from .push_pull import CPU_NODE_OPS

    sys = tree.system
    kb = tree.key_bits
    root = tree.root
    on_cpu = tree.l0_on_cpu
    n = len(results)
    keys = np.array([r.key for r in results], dtype=_U64)
    idx_all = np.arange(n)

    rlo, rhi = root.key_range(kb)
    ok = _in_range_mask(keys, rlo, rhi)
    for i in idx_all[~ok]:
        results[i].edge = (None, root)

    border: dict[int, Task] = {}
    if root.layer != Layer.L0:
        # Empty L0: the border sits at the root itself (no trace/charges).
        for i in idx_all[ok]:
            border[i] = Task(results[i].qid, root.meta, root)
    else:
        # Level-synchronous descent; paths memoised so each trace is one
        # extend() instead of per-node appends.
        paths: dict[int, list[Node]] = {id(root): [root]}
        frontier: list[tuple[Node, np.ndarray]] = [(root, idx_all[ok])]
        while frontier:
            nxt: list[tuple[Node, np.ndarray]] = []
            for node, idxs in frontier:
                path = paths[id(node)]
                if node.is_leaf:
                    for i in idxs:
                        res = results[i]
                        res.trace.extend(path)
                        res.leaf = node
                    continue
                shift = _U64(kb - node.depth - 1)
                bits = (keys[idxs] >> shift) & _U64(1)
                for side, child in ((0, node.left), (1, node.right)):
                    sub = idxs[bits == side]
                    if len(sub) == 0:
                        continue
                    clo, chi = child.key_range(kb)
                    okc = _in_range_mask(keys[sub], clo, chi)
                    for i in sub[~okc]:
                        res = results[i]
                        res.trace.extend(path)
                        res.edge = (node, child)
                    good = sub[okc]
                    if len(good) == 0:
                        continue
                    if child.layer != Layer.L0:
                        for i in good:
                            results[i].trace.extend(path)
                            border[i] = Task(results[i].qid, child.meta, child)
                    else:
                        paths[id(child)] = path + [child]
                        nxt.append((child, good))
            frontier = nxt

    # -- charges, replayed exactly as the scalar walk orders them -------
    if on_cpu:
        blocks = [
            ("pimzd", "l0", nd.nid) for res in results for nd in res.trace
        ]
        if blocks:
            sys.charge_cpu(CPU_NODE_OPS * len(blocks))
            sys.touch_cpu_blocks(blocks)
    else:
        salt = tree._l0_route_salt
        send_by: dict[int, float] = {}
        cyc_by: dict[int, float] = {}
        recv_by: dict[int, float] = {}
        # Aggregate per placed module; all three dicts share one key
        # sequence (first-appearance order), so a single mids array drives
        # the three array-native charges below — and, under a drop-prone
        # fault plan, the per-transfer RNG is consumed in that same order.
        for res in results:
            mid = sys.place(("l0q", salt, res.qid))
            send_by[mid] = send_by.get(mid, 0.0) + 2
            cyc_by[mid] = (
                cyc_by.get(mid, 0.0) + len(res.trace) * _L0_PIM_CYCLES_PER_NODE
            )
            recv_by[mid] = recv_by.get(mid, 0.0) + TRACE_WORDS
        n_mids = len(send_by)
        mids = np.fromiter(send_by.keys(), dtype=np.intp, count=n_mids)
        with sys.round():
            sys.send_array(
                mids, np.fromiter(send_by.values(), dtype=np.float64,
                                  count=n_mids))
            sys.charge_pim_array(
                mids, np.fromiter(cyc_by.values(), dtype=np.float64,
                                  count=n_mids))
            sys.recv_array(
                mids, np.fromiter(recv_by.values(), dtype=np.float64,
                                  count=n_mids))
    return [border[i] for i in sorted(border)]


# ======================================================================
# SEARCH group kernel
# ======================================================================
def make_search_group_kernel(tree, results):
    """Frontier-at-a-time descent for one meta's search tasks.

    SEARCH is pure pointer-chasing — a region table only pays off when a
    later leaf-scanning kernel (kNN, range) reuses it.  So the batched
    descent runs over a table only if one is already cached for this
    meta; otherwise the kernel walks the pointers directly (scalar-speed)
    while still aggregating the charges, which is counter-exact either
    way.
    """
    from .search import TRACE_WORDS

    kb = tree.key_bits

    def walk_kernel(meta, ts, g) -> None:
        cfg = tree.config
        l1_rule = meta.layer == Layer.L1
        cyc_of: dict[int, float] = {}
        for p, t in enumerate(ts):
            res = results[t.qid]
            node = t.node
            while True:
                m = node.meta
                c = cyc_of.get(id(m))
                if c is None:
                    c = float(m.cycles_per_node(cfg)) if m is not None else 12.0
                    cyc_of[id(m)] = c
                g.cycles += c
                res.trace.append(node)
                if node.is_leaf:
                    g.recv += TRACE_WORDS
                    res.leaf = node
                    break
                child = node.child_for_key(res.key, kb)
                lo, hi = child.key_range(kb)
                if not lo <= res.key < hi:
                    g.recv += TRACE_WORDS
                    res.edge = (node, child)
                    break
                loc = child.layer == Layer.L1 if l1_rule else child.meta is meta
                if loc:
                    node = child
                    continue
                g.recv += TRACE_WORDS
                g.emit(p, Task(t.qid, child.meta, child))
                break

    def kernel(meta, ts, g) -> None:
        tabs = getattr(tree, "_region_tables", None)
        tab = tabs.get(meta) if tabs else None
        if tab is None:
            walk_kernel(meta, ts, g)
            return
        nidx = _entries(tab, ts)
        m = len(ts)
        keys = np.array([results[t.qid].key for t in ts], dtype=_U64)
        pos = np.arange(m, dtype=np.intp)
        paths: list[list[int]] = [[] for _ in range(m)]
        while len(nidx):
            g.cycles += float(tab.cycles[nidx].sum())
            for i, p in zip(nidx, pos):
                paths[p].append(i)
            leaf = tab.is_leaf[nidx]
            if leaf.any():
                g.recv += TRACE_WORDS * int(leaf.sum())
                for i, p in zip(nidx[leaf], pos[leaf]):
                    res = results[ts[p].qid]
                    res.trace.extend(tab.nodes[j] for j in paths[p])
                    res.leaf = tab.nodes[i]
            cont = ~leaf
            nidx, pos = nidx[cont], pos[cont]
            if not len(nidx):
                break
            shift = (kb - 1 - tab.depth[nidx]).astype(_U64)
            bit = (keys[pos] >> shift) & _U64(1)
            child = np.where(bit == 1, tab.right[nidx], tab.left[nidx])
            k = keys[pos]
            inr = (k >= tab.key_lo[child]) & (k <= tab.hi_incl[child])
            div = ~inr
            if div.any():
                g.recv += TRACE_WORDS * int(div.sum())
                for p, par, ch in zip(pos[div], nidx[div], child[div]):
                    res = results[ts[p].qid]
                    res.trace.extend(tab.nodes[j] for j in paths[p])
                    res.edge = (tab.nodes[par], tab.nodes[ch])
            nidx, pos = child[inr], pos[inr]
            ext = tab.external[nidx]
            if ext.any():
                g.recv += TRACE_WORDS * int(ext.sum())
                for p, ch in zip(pos[ext], nidx[ext]):
                    res = results[ts[p].qid]
                    res.trace.extend(tab.nodes[j] for j in paths[p])
                    node = tab.nodes[ch]
                    g.emit(p, Task(ts[p].qid, node.meta, node),
                           -int(tab.key_lo[ch]))
                keep = ~ext
                nidx, pos = nidx[keep], pos[keep]

    return kernel


# ======================================================================
# kNN group kernels
# ======================================================================
def make_candidate_group_kernel(tree, states, coarse: Metric, k: int):
    """Fused distance-matrix evaluation for kNN candidate search."""
    dims = tree.dims
    box_cyc = coarse.pim_cycles_per_dim * dims
    scan_cyc = 6 + coarse.pim_cycles_per_dim * dims  # PIM_POINT_BASE_CYCLES

    def kernel(meta, ts, g) -> None:
        tab = region_table(tree, meta)
        nidx = _entries(tab, ts)
        tab.need_geometry()
        Q = np.stack([states[t.qid].q for t in ts])
        radius = np.array([states[t.qid].radius() for t in ts])
        pos = np.arange(len(ts), dtype=np.intp)
        lp_n: list[np.ndarray] = []
        lp_p: list[np.ndarray] = []
        while len(nidx):
            g.cycles += float(tab.cycles[nidx].sum()) + box_cyc * len(nidx)
            d = _dist_point_boxes(Q[pos], tab.lo[nidx], tab.hi[nidx], coarse)
            keep = d <= radius[pos]
            nidx, pos = nidx[keep], pos[keep]
            if not len(nidx):
                break
            leaf = tab.is_leaf[nidx]
            if leaf.any():
                ln = nidx[leaf]
                g.cycles += float(tab.count[ln].sum()) * scan_cyc
                lp_n.append(ln)
                lp_p.append(pos[leaf])
            inner = ~leaf
            ni, pi = nidx[inner], pos[inner]
            child = np.concatenate([tab.left[ni], tab.right[ni]])
            cpos = np.concatenate([pi, pi])
            cpar = np.concatenate([ni, ni])
            ext = tab.external[child]
            if ext.any():
                for p, ch, pa in zip(cpos[ext], child[ext], cpar[ext]):
                    node = tab.nodes[ch]
                    g.emit(p, Task(ts[p].qid, node.meta, node, None, dims + 3),
                           _emit_key(tab, pa, ch))
                ext = ~ext
                child, cpos = child[ext], cpos[ext]
            nidx, pos = child, cpos

        if not lp_n:
            return
        ln = np.concatenate(lp_n)
        lp = np.concatenate(lp_p)
        # Scalar leaf-scan order: tasks in group order, leaves per task in
        # right-first DFS order = descending key_lo (disjoint leaves).
        order = np.lexsort((~tab.key_lo[ln], lp))
        ln, lp = ln[order], lp[order]
        rows, row_pair, _ = _gather_rows(tab, ln)
        row_pos = lp[row_pair]
        dd = _dist_rows(rows, Q[row_pos], coarse)
        for _, a, b in zip(*_pos_segments(row_pos)):
            p = int(row_pos[a])
            dcat = dd[a:b]
            sel = np.argsort(dcat, kind="stable")[: min(k, len(dcat))]
            g.cycles += len(dcat) * 6
            g.recv += len(sel) * (dims + 1)
            g.result(p, ("cand", dcat[sel], rows[a:b][sel]))

    return kernel


def make_fetch_group_kernel(tree, states, coarse: Metric, bounds, exact_radii):
    """Fused ball-fetch for kNN step 4 (anchored bound + ℓ∞ filter)."""
    dims = tree.dims
    box_cyc = coarse.pim_cycles_per_dim * dims
    linf_cyc = LINF.pim_cycles_per_dim * dims
    scan_cyc = 6 + coarse.pim_cycles_per_dim * dims
    linf_scan_cyc = 6 + LINF.pim_cycles_per_dim * dims

    def kernel(meta, ts, g) -> None:
        tab = region_table(tree, meta)
        nidx = _entries(tab, ts)
        tab.need_geometry()
        Q = np.stack([states[t.qid].q for t in ts])
        bnd = np.array([bounds[t.qid] for t in ts])
        rex = np.array([exact_radii[t.qid] for t in ts])
        use_linf = (
            np.isfinite(rex)
            if coarse.name != "l2"
            else np.zeros(len(ts), dtype=bool)
        )
        pos = np.arange(len(ts), dtype=np.intp)
        lp_n: list[np.ndarray] = []
        lp_p: list[np.ndarray] = []
        while len(nidx):
            g.cycles += float(tab.cycles[nidx].sum()) + box_cyc * len(nidx)
            d = _dist_point_boxes(Q[pos], tab.lo[nidx], tab.hi[nidx], coarse)
            keep = d <= bnd[pos]
            nidx, pos = nidx[keep], pos[keep]
            lmask = use_linf[pos]
            if lmask.any():
                g.cycles += linf_cyc * int(lmask.sum())
                li = np.flatnonzero(lmask)
                dl = _dist_point_boxes(
                    Q[pos[li]], tab.lo[nidx[li]], tab.hi[nidx[li]], LINF
                )
                drop = li[dl > rex[pos[li]]]
                if len(drop):
                    km = np.ones(len(nidx), dtype=bool)
                    km[drop] = False
                    nidx, pos = nidx[km], pos[km]
            if not len(nidx):
                break
            leaf = tab.is_leaf[nidx]
            if leaf.any():
                ln, lpp = nidx[leaf], pos[leaf]
                g.cycles += float(tab.count[ln].sum()) * scan_cyc
                lscan = use_linf[lpp]
                if lscan.any():
                    g.cycles += float(tab.count[ln[lscan]].sum()) * linf_scan_cyc
                lp_n.append(ln)
                lp_p.append(lpp)
            inner = ~leaf
            ni, pi = nidx[inner], pos[inner]
            child = np.concatenate([tab.left[ni], tab.right[ni]])
            cpos = np.concatenate([pi, pi])
            cpar = np.concatenate([ni, ni])
            ext = tab.external[child]
            if ext.any():
                for p, ch, pa in zip(cpos[ext], child[ext], cpar[ext]):
                    node = tab.nodes[ch]
                    g.emit(p, Task(ts[p].qid, node.meta, node, None, dims + 3),
                           _emit_key(tab, pa, ch))
                ext = ~ext
                child, cpos = child[ext], cpos[ext]
            nidx, pos = child, cpos

        if not lp_n:
            return
        ln = np.concatenate(lp_n)
        lp = np.concatenate(lp_p)
        order = np.lexsort((~tab.key_lo[ln], lp))
        ln, lp = ln[order], lp[order]
        rows, row_pair, _ = _gather_rows(tab, ln)
        row_pos = lp[row_pair]
        dd = _dist_rows(rows, Q[row_pos], coarse)
        mask = dd <= bnd[row_pos]
        lrows = use_linf[row_pos]
        if lrows.any():
            ddl = _dist_rows(rows, Q[row_pos], LINF)
            mask &= ~lrows | (ddl <= rex[row_pos])
        for _, a, b in zip(*_pos_segments(row_pos)):
            p = int(row_pos[a])
            sel = mask[a:b]
            n_sel = int(sel.sum())
            if n_sel:
                g.recv += n_sel * dims
                g.result(p, ("pts", rows[a:b][sel]))

    return kernel


# ======================================================================
# range-query group kernel
# ======================================================================
def make_range_group_kernel(tree, boxes, *, fetch: bool):
    """Mask-based range filtering for one meta's box-query tasks."""
    dims = tree.dims
    scan_cyc = 6 + 2 * dims  # PIM_POINT_BASE + _SCAN_METRIC per dim

    def kernel(meta, ts, g) -> None:
        tab = region_table(tree, meta)
        nidx = _entries(tab, ts)
        tab.need_geometry()
        Lo = np.stack([boxes[t.qid].lo for t in ts])
        Hi = np.stack([boxes[t.qid].hi for t in ts])
        pos = np.arange(len(ts), dtype=np.intp)
        skip = np.array([t.payload == "all" for t in ts], dtype=bool)
        totals = np.zeros(len(ts), dtype=np.int64)
        whole_n: list[np.ndarray] = []
        whole_p: list[np.ndarray] = []
        part_n: list[np.ndarray] = []
        part_p: list[np.ndarray] = []
        while len(nidx):
            g.cycles += float(tab.cycles[nidx].sum())
            tested = ~skip
            g.cycles += 6.0 * int(tested.sum())  # _PIM_BOX_TEST_CYCLES
            nlo, nhi = tab.lo[nidx], tab.hi[nidx]
            ql, qh = Lo[pos], Hi[pos]
            inter = (nlo <= qh).all(axis=1) & (ql <= nhi).all(axis=1)
            contained = (ql <= nlo).all(axis=1) & (nhi <= qh).all(axis=1)
            cont = skip | contained
            part = tested & inter & ~contained
            leaf = tab.is_leaf[nidx]
            if not fetch:
                cm = cont
                if cm.any():
                    np.add.at(totals, pos[cm], tab.count[nidx[cm]])
                exp_masks = ((part & ~leaf, False),)
            else:
                wl = cont & leaf
                if wl.any():
                    whole_n.append(nidx[wl])
                    whole_p.append(pos[wl])
                exp_masks = ((cont & ~leaf, True), (part & ~leaf, False))
            pl = part & leaf
            if pl.any():
                ln = nidx[pl]
                g.cycles += float(tab.count[ln].sum()) * scan_cyc
                part_n.append(ln)
                part_p.append(pos[pl])
            cn: list[np.ndarray] = []
            cp: list[np.ndarray] = []
            cs: list[np.ndarray] = []
            cr: list[np.ndarray] = []
            for msk, flag in exp_masks:
                if not msk.any():
                    continue
                ni, pi = nidx[msk], pos[msk]
                cn.append(tab.left[ni])
                cn.append(tab.right[ni])
                cp.append(pi)
                cp.append(pi)
                cs.append(np.full(2 * len(ni), flag, dtype=bool))
                cr.append(ni)
                cr.append(ni)
            if not cn:
                break
            nidx = np.concatenate(cn)
            pos = np.concatenate(cp)
            skip = np.concatenate(cs)
            par = np.concatenate(cr)
            ext = tab.external[nidx]
            if ext.any():
                for p, ch, sk, pa in zip(pos[ext], nidx[ext], skip[ext],
                                         par[ext]):
                    node = tab.nodes[ch]
                    g.emit(
                        p,
                        Task(ts[p].qid, node.meta, node,
                             "all" if sk else "test", 2 * dims + 2),
                        _emit_key(tab, pa, ch),
                    )
                ext = ~ext
                nidx, pos, skip = nidx[ext], pos[ext], skip[ext]

        if not fetch:
            if part_n:
                ln = np.concatenate(part_n)
                lp = np.concatenate(part_p)
                rows, row_pair, _ = _gather_rows(tab, ln)
                row_pos = lp[row_pair]
                inside = (rows >= Lo[row_pos]).all(axis=1) & (
                    rows <= Hi[row_pos]
                ).all(axis=1)
                if inside.any():
                    np.add.at(totals, row_pos[inside], 1)
            for p in range(len(ts)):
                if totals[p]:
                    g.recv += 1
                    g.result(p, ("count", int(totals[p])))
            return

        if not (whole_n or part_n):
            return
        ln = np.concatenate(whole_n + part_n)
        lp = np.concatenate(whole_p + part_p)
        whole_flag = np.zeros(len(ln), dtype=bool)
        nw = sum(len(a) for a in whole_n)
        whole_flag[:nw] = True
        order = np.lexsort((~tab.key_lo[ln], lp))
        ln, lp, whole_flag = ln[order], lp[order], whole_flag[order]
        rows, row_pair, lens = _gather_rows(tab, ln)
        row_pos = lp[row_pair]
        # Contained leaves skip the membership test in the scalar path, so
        # their rows are taken wholesale (no float compare involved).
        inside = np.repeat(whole_flag, lens)
        pm = ~inside
        if pm.any():
            inside[pm] = (rows[pm] >= Lo[row_pos[pm]]).all(axis=1) & (
                rows[pm] <= Hi[row_pos[pm]]
            ).all(axis=1)
        for _, a, b in zip(*_pos_segments(row_pos)):
            p = int(row_pos[a])
            sel = inside[a:b]
            n_sel = int(sel.sum())
            if n_sel:
                g.recv += n_sel * dims
                g.result(p, ("pts", rows[a:b][sel]))

    return kernel


# ======================================================================
# host-side L0 seeding for range queries
# ======================================================================
def seed_l0_boxes(tree, boxes, tasks, *, fetch: bool, counts, chunks_list) -> None:
    """Vectorized ``_seed_l0`` over the whole box batch.

    Precomputes the (box × L0-node) containment/intersection matrices in
    one broadcast, then replays the scalar per-box DFS using the matrix
    — charges are aggregated and the LLC touch sequence is replayed in
    the exact scalar order.
    """
    sys = tree.system
    root = tree.root
    dims = tree.dims
    l0 = tree.l0_nodes()
    idx_of: dict[int, int] = {}
    if l0:
        ensure_node_boxes(tree, l0)
        idx_of = {id(nd): j for j, nd in enumerate(l0)}
        NLo = np.stack([nd.box.lo for nd in l0])
        NHi = np.stack([nd.box.hi for nd in l0])
        QLo = np.stack([b.lo for b in boxes]) if boxes else np.empty((0, dims))
        QHi = np.stack([b.hi for b in boxes]) if boxes else np.empty((0, dims))
        inter = (NLo[None, :, :] <= QHi[:, None, :]).all(-1) & (
            QLo[:, None, :] <= NHi[None, :, :]
        ).all(-1)
        contd = (QLo[:, None, :] <= NLo[None, :, :]).all(-1) & (
            NHi[None, :, :] <= QHi[:, None, :]
        ).all(-1)
    touches: list[tuple] = []
    cpu_ops = 0
    for qid, box in enumerate(boxes):
        stack: list[tuple[Node, bool]] = [(root, False)]
        while stack:
            node, skip = stack.pop()
            if node.layer != Layer.L0:
                tasks.append(
                    Task(qid, node.meta, node, "all" if skip else "test",
                         2 * dims + 2)
                )
                continue
            cpu_ops += 4  # _CPU_BOX_TEST_OPS
            touches.append(("pimzd", "l0", node.nid))
            j = idx_of[id(node)]
            if skip or contd[qid, j]:
                if not fetch:
                    counts[qid] += node.count
                    continue
                if node.is_leaf:
                    chunks_list[qid].append(node.pts)
                    continue
                stack.append((node.left, True))
                stack.append((node.right, True))
                continue
            if not inter[qid, j]:
                continue
            if node.is_leaf:
                mask = box.contains_point(node.pts)
                cpu_ops += node.count * 2 * dims
                if fetch:
                    if mask.any():
                        chunks_list[qid].append(node.pts[mask])
                else:
                    counts[qid] += int(np.count_nonzero(mask))
                continue
            stack.append((node.left, False))
            stack.append((node.right, False))
    if cpu_ops:
        sys.charge_cpu(cpu_ops)
    if touches:
        sys.touch_cpu_blocks(touches)


# ======================================================================
# delete partitioning
# ======================================================================
def plan_leaf_deletions(leaf, qids, results, points, removal_count) -> np.ndarray:
    """Vectorized delete plan for one leaf: which stored rows go.

    Batched ``np.searchsorted`` over all query keys plus a row-equality
    mask per query replaces the per-row Python scan.  Claim semantics
    are preserved exactly: queries claim rows in qid order, and only
    queries with equal keys (hence equal row ranges) can contend.
    """
    keep = np.ones(leaf.count, dtype=bool)
    karr = np.array([results[q].key for q in qids], dtype=_U64)
    j0s = np.searchsorted(leaf.keys, karr, side="left")
    j1s = np.searchsorted(leaf.keys, karr, side="right")
    for i, q in enumerate(qids):
        j0, j1 = int(j0s[i]), int(j1s[i])
        removed_here = 0
        if j1 > j0:
            p = points[q]
            match = (leaf.pts[j0:j1] == p).all(axis=1) & keep[j0:j1]
            removed_here = int(match.sum())
            if removed_here:
                keep[j0:j1] &= ~match
        removal_count[q] = removed_here
    return keep
