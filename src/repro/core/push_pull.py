"""Push-pull batched execution over meta-nodes (§3.3, Alg. 1).

PIM-zd-tree processes a batch of queries level by level *at meta-node
granularity*: each BSP round, every active query sits at some meta-node.
Per round the executor decides, per meta-node, whether to

* **push** — forward the queries to the PIM module mastering the meta-node
  and run the per-query handler there (charging that module's core), or
* **pull** — fetch the meta-node's *master* storage to the CPU (its cached
  descendants are deliberately excluded, §3.3) and run the handler on the
  host, when the meta-node is contended enough that pushing would create a
  straggler.

Pull rules follow Alg. 1: L1 meta-nodes are pulled while the busiest
module holds more than ``pull_imbalance_factor``× the average load, taking
the meta-nodes with more than ``K = B·log_B(θ_L0/θ_L1)`` queries; L2
meta-nodes with more than ``K = B`` queries are always pulled.

Handlers receive an :class:`ExecContext` describing *where* they run and
charge through it; they traverse locally as far as the locality rules
allow (an L1 module sees every L1 descendant meta through its caches; a
pulled meta on the CPU sees only its own master nodes) and emit follow-up
:class:`Task`s for the next round when they cross a boundary.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable

from ..core.geometry import Metric
from .chunking import MetaNode
from .node import Layer, Node

__all__ = [
    "Task",
    "ExecContext",
    "GroupContext",
    "PushPullExecutor",
    "QUERY_WORDS",
    "RESULT_WORDS",
]

QUERY_WORDS = 2  # morton key + query id
RESULT_WORDS = 2  # node address + flags

# PIM-core constants (weak in-order cores, MRAM-latency dominated).
PIM_TASK_DISPATCH_CYCLES = 40
PIM_LEAF_BASE_CYCLES = 16
PIM_POINT_BASE_CYCLES = 6
# CPU-side constants (match the baseline meters).
CPU_NODE_OPS = 6
CPU_POINT_BASE_OPS = 2


class Task:
    """One query's presence at one meta-node for the next round."""

    __slots__ = ("qid", "meta", "node", "payload", "send_words")

    def __init__(self, qid: int, meta: MetaNode, node: Node, payload=None,
                 send_words: float = QUERY_WORDS) -> None:
        self.qid = qid
        self.meta = meta
        self.node = node
        self.payload = payload
        self.send_words = send_words


class ExecContext:
    """Charging interface handed to handlers; binds one task execution."""

    __slots__ = ("_tree", "_sys", "meta", "on_cpu", "_module", "_emitted", "_results",
                 "qid")

    def __init__(self, tree, meta: MetaNode, on_cpu: bool, qid: int,
                 module: int | None = None) -> None:
        self._tree = tree
        self._sys = tree.system
        self.meta = meta
        self.on_cpu = on_cpu
        # Execution site: the mastering module unless read routing picked
        # a replica (repro.replicate) — then all charges land there.
        self._module = meta.module if module is None else module
        self._emitted: list[Task] = []
        self._results: list = []
        self.qid = qid

    # -- locality rules ---------------------------------------------------
    def local(self, node: Node) -> bool:
        """May the current execution site keep traversing into ``node``?"""
        if self.on_cpu:
            # Pulled execution sees only this meta-node's master nodes.
            return node.meta is self.meta
        if self.meta.layer == Layer.L1:
            # The module caches every L1 descendant meta-node (§3.1).
            return node.layer == Layer.L1
        return node.meta is self.meta

    # -- charging ---------------------------------------------------------
    def visit_node(self, node: Node) -> None:
        if self.on_cpu:
            self._sys.charge_cpu(CPU_NODE_OPS)
            self._sys.touch_cpu_block(("pimzd", "pulled", node.nid))
        else:
            cycles = node.meta.cycles_per_node(self._tree.config) if node.meta else 12
            self._sys.charge_pim(self._module, cycles)

    def scan_points(self, n_points: int, metric: Metric, dims: int) -> None:
        """Charge ``n_points`` distance evaluations under ``metric``."""
        if self.on_cpu:
            self._sys.charge_cpu(
                n_points * (CPU_POINT_BASE_OPS + metric.cpu_ops_per_dim * dims)
            )
        else:
            self._sys.charge_pim(
                self._module,
                n_points * (PIM_POINT_BASE_CYCLES + metric.pim_cycles_per_dim * dims),
            )

    def extra_work(self, cpu_ops: float, pim_cycles: float) -> None:
        """Charge handler-specific work (heap pushes, compares, …)."""
        if self.on_cpu:
            self._sys.charge_cpu(cpu_ops)
        else:
            self._sys.charge_pim(self._module, pim_cycles)

    def return_words(self, words: float) -> None:
        """Result payload shipped back to the CPU at round end."""
        if not self.on_cpu:
            self._sys.recv(self._module, words)

    # -- control flow -------------------------------------------------------
    def emit(self, task: Task) -> None:
        """Schedule ``task`` for the next round."""
        self._emitted.append(task)

    def result(self, value) -> None:
        self._results.append(value)


class GroupContext:
    """Aggregated charging interface for a *group kernel*.

    A group kernel processes every task pushed to one meta-node in a
    single vectorized pass (``kernel(meta, ts, group_ctx)``).  Instead of
    charging per (task, node) it accumulates cycles and return words here;
    the executor flushes the totals with one ``charge_pim``/``recv`` pair
    per meta.  Because every scalar charge is integer-valued, the
    aggregated float64 totals are byte-identical to the per-element sums.

    Results and emitted tasks are tagged with the task's position in the
    group (and emissions additionally with a sort key) so the executor
    can restore the exact scalar ordering: tasks in group order, and
    within one task the scalar DFS emission order — emits happen at
    parent-visit time (parents in right-first pre-order), left child
    before right.
    """

    __slots__ = ("cycles", "recv", "_results", "_emits", "_seq")

    def __init__(self) -> None:
        self.cycles = 0.0
        self.recv = 0.0
        self._results: list[tuple[int, object]] = []
        self._emits: list[tuple[int, int, int, Task]] = []
        self._seq = 0

    def result(self, pos: int, value) -> None:
        self._results.append((pos, value))

    def emit(self, pos: int, task: Task, sort_key: int = 0) -> None:
        self._emits.append((pos, sort_key, self._seq, task))
        self._seq += 1


Handler = Callable[[Task, ExecContext], None]


class PushPullExecutor:
    """Runs a batch of tasks to completion, one meta-node level per round."""

    def __init__(self, tree) -> None:
        self.tree = tree
        self.sys = tree.system
        self.config = tree.config
        self.rounds_executed = 0
        self.pulled_metas = 0
        self.pushed_tasks = 0
        self.pulled_tasks = 0

    # ------------------------------------------------------------------
    def run(
        self,
        tasks: list[Task],
        handler: Handler,
        *,
        round_hook: Callable[[dict[int, list]], None] | None = None,
        prune: Callable[[Task], bool] | None = None,
    ) -> dict[int, list]:
        """Execute ``tasks`` (and everything they emit) to completion.

        Returns ``{qid: [results...]}``.  ``round_hook`` runs on the CPU
        after each round with the results accumulated so far — kNN uses it
        to merge candidate sets and tighten pruning radii between rounds.

        ``prune`` is the membership-filter hook (repro.route): it runs on
        the host at frontier-formation time — before grouping, read
        routing, or any charge for the round — and returning True drops
        the task, suppressing its send entirely.  Both exec modes share
        this one site, so filter decisions are identical by construction.
        """
        results: dict[int, list] = defaultdict(list)
        # Group kernels (repro.core.vexec) process a whole meta's task
        # group in one vectorized pass; pulled metas always take the
        # scalar per-task path (host-side execution is not the hot loop).
        group_kernel = (
            getattr(handler, "group_kernel", None)
            if self.config.exec_mode == "vectorized"
            else None
        )
        frontier = list(tasks)
        while frontier:
            by_meta: dict[MetaNode, list[Task]] = defaultdict(list)
            for t in frontier:
                by_meta[t.meta].append(t)
            # Push/pull decisions use the *offered* load — the frontier
            # before filtering.  Pruning a task then only ever removes its
            # send; it can never flip a straggler-avoidance pull into a
            # push (or vice versa), so a filtered round charges a strict
            # subset of the unfiltered round's communication and cycles.
            pulled = self._decide_pulls(by_meta)
            if prune is not None:
                by_meta = {
                    m: kept
                    for m, ts in by_meta.items()
                    if (kept := [t for t in ts if not prune(t)])
                }
                if not by_meta:
                    break
            next_frontier: list[Task] = []
            pulled_items: list[tuple[MetaNode, list[Task]]] = []

            reps = self.tree.replicas
            with self.sys.round():
                for meta, ts in by_meta.items():
                    # Read routing: with a ReplicaSet attached, this round's
                    # work for the chunk may land on a replica module; one
                    # routing decision per (chunk, round).
                    mod = (meta.module if reps is None
                           else reps.read_module(meta, len(ts)))
                    if meta in pulled:
                        # Fetch only the master storage (§3.3).
                        self.sys.recv(mod, meta.size_words(self.config))
                        # Queries stay on the CPU; execution happens below.
                        pulled_items.append((meta, ts))
                        self.pulled_tasks += len(ts)
                        continue
                    self.pushed_tasks += len(ts)
                    # Popularity signal for repro.balance victim selection:
                    # count the tasks this meta drew onto its module.
                    meta.hot_hits += len(ts)
                    self.sys.charge_pim(mod, PIM_TASK_DISPATCH_CYCLES)
                    if group_kernel is not None:
                        self.sys.send(
                            mod, sum(t.send_words for t in ts)
                        )
                        g = GroupContext()
                        group_kernel(meta, ts, g)
                        self.sys.charge_pim(mod, g.cycles)
                        self.sys.recv(
                            mod, g.recv + RESULT_WORDS * len(ts)
                        )
                        g._results.sort(key=lambda r: r[0])
                        for pos, value in g._results:
                            results[ts[pos].qid].append(value)
                        g._emits.sort(key=lambda e: (e[0], e[1], e[2]))
                        next_frontier.extend(e[3] for e in g._emits)
                        continue
                    for t in ts:
                        self.sys.send(mod, t.send_words)
                        ctx = ExecContext(self.tree, meta, False, t.qid,
                                          module=mod)
                        handler(t, ctx)
                        ctx.return_words(RESULT_WORDS)
                        results[t.qid].extend(ctx._results)
                        next_frontier.extend(ctx._emitted)
                self.rounds_executed += 1

            # Pulled meta-nodes are searched on the host after the fetch.
            for meta, ts in pulled_items:
                self.pulled_metas += 1
                for t in ts:
                    ctx = ExecContext(self.tree, meta, True, t.qid)
                    handler(t, ctx)
                    results[t.qid].extend(ctx._results)
                    next_frontier.extend(ctx._emitted)

            if round_hook is not None:
                round_hook(results)
            frontier = next_frontier
        return results

    # ------------------------------------------------------------------
    def _decide_pulls(self, by_meta: dict[MetaNode, list[Task]]) -> set[MetaNode]:
        cfg = self.config
        if not cfg.push_pull:
            return set()
        pulled: set[MetaNode] = set()

        # L1 rule (Alg. 1 step 2): pull hot meta-nodes while the busiest
        # module gets more than `factor`× the average load.
        l1_counts = {
            m: len(ts) for m, ts in by_meta.items() if m.layer == Layer.L1
        }
        k_l1 = cfg.pull_threshold_l1
        while l1_counts:
            loads: dict[int, int] = defaultdict(int)
            for m, c in l1_counts.items():
                loads[m.module] += c
            total = sum(loads.values())
            mean = total / self.sys.n_modules
            busiest = max(loads.values())
            if busiest <= cfg.pull_imbalance_factor * max(mean, 1e-12):
                break
            hot = [m for m, c in l1_counts.items() if c > k_l1]
            if not hot:
                break
            for m in hot:
                pulled.add(m)
                del l1_counts[m]

        # L2 rule (Alg. 1 step 4): pull any meta-node with more than B
        # queries.
        k_l2 = cfg.pull_threshold_l2
        for m, ts in by_meta.items():
            if m.layer == Layer.L2 and len(ts) > k_l2:
                pulled.add(m)
        return pulled
