"""Batch dynamic updates: INSERT (Alg. 2) and DELETE.

INSERT pipeline (the Alg. 2 rounds, with charges for each):

1. SEARCH the batch, recording traces on the CPU.
2. CPU groups keys by target (leaf, or compressed edge on divergence) —
   one semisort — and deduplicates conflicting new-node creations by
   construction (all keys targeting the same edge are merged together).
3. Lazy counters along all search paths are updated first (so that the
   exact counts of freshly created internal nodes can be derived from
   their children); one round then ships the new points to the master
   modules and performs the leaf merges / leaf splits / edge splits
   there; a second round links new parent–child pointers; two rounds
   refresh the L1 cached copies; promotions/demotions take two more.

Structural invariants preserved throughout: the tree stays a compressed
radix tree (every internal node has two children), leaves hold at most
``leaf_size`` points unless all keys are equal, counts are exact on master
nodes while replicated snapshots lag per the lazy-counter protocol
(Lemma 3.1), and layer assignment stays monotone along paths.

DELETE is symmetric: points are removed from leaves, empty leaves are
spliced out (the parent collapses onto the sibling — path compression is
maintained because nodes store absolute prefixes), and affected regions
are re-chunked.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from ..faults.errors import FaultError
from .chunking import MetaNode, chunk_region
from .node import Layer, Node, node_words
from .search import search_batch
from .vexec import invalidate_exec_caches

__all__ = ["insert_batch", "delete_batch"]

_PIM_MERGE_CYCLES_PER_POINT = 10
_PIM_BUILD_CYCLES_PER_POINT = 14
_CPU_GROUP_OPS_PER_KEY = 8
_LINK_WORDS = 2  # one parent->child pointer update
_UNSET = object()


class _BatchState:
    """Bookkeeping shared by one update batch."""

    __slots__ = ("new_nodes", "new_links", "cache_words", "retired")

    def __init__(self) -> None:
        self.new_nodes: set[int] = set()
        self.new_links = 0
        self.cache_words = 0.0
        self.retired: set[Node] = set()


# ======================================================================
# INSERT
# ======================================================================
def insert_batch(tree, points: np.ndarray) -> None:
    """Insert a batch of points into the PIM-zd-tree."""
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    if points.shape[0] == 0:
        return
    if points.shape[1] != tree.dims:
        raise ValueError("dimension mismatch")
    sys = tree.system
    # Write-ahead: journal the batch before any mutation; the COMMIT
    # marker lands only after the batch fully applied, so recovery replays
    # exactly the batches that completed (repro.store).
    journal = tree.journal
    wal_seq = None if journal is None else journal.log_insert(points)
    with sys.phase("insert"):
        results = search_batch(tree, points, phase="insert")

        # ---- Step 2 (CPU): group by target leaf / edge ------------------
        n = len(results)
        sys.charge_cpu(n * _CPU_GROUP_OPS_PER_KEY, span=np.log2(n + 2))
        sys.dram_stream(n * (tree.dims + 1))
        groups: dict[Node, list[int]] = defaultdict(list)
        for res in results:
            target = res.leaf if res.leaf is not None else res.edge[1]
            groups[target].append(res.qid)
            # The batch's auxiliary structures (trace records, grouping
            # tables) occupy the LLC; very large batches evict the shared
            # upper-tree blocks — the Fig. 7 traffic uptick (§7.3).
            sys.touch_cpu_block(
                ("pimzd", "batchaux", tree._batch_counter, res.qid // 4)
            )

        # ---- Step 3e first: exact counts + lazy counters on the paths ----
        # (Counts must be current before new LCA internals copy them.)
        synced = _apply_path_deltas(tree, ((res, +1) for res in results))

        # ---- Step 3a/b: apply structural merges (one round + link round) --
        # Fault atomicity: every fault site in the round (the sends — drop
        # roll plus dead-module check; the merges' charge_pim can only
        # address a module a send already vetted this round) is charged
        # *before* the first merge mutates the tree.  If the round faults,
        # no point was merged, so undoing the step-3e count deltas restores
        # the exact pre-insert logical state and a retry (or a serving-layer
        # compensation) never sees a half-applied batch.  On a fault-free
        # run the charges are identical — only their order within the round
        # changes, which the round close does not observe.
        state = _BatchState()
        try:
            with sys.round():
                staged = []
                for target, qids in groups.items():
                    karr = np.array(
                        [results[q].key for q in qids], dtype=np.uint64
                    )
                    order = np.argsort(karr, kind="stable")
                    keys = karr[order]
                    pts = points[qids][order]
                    if target.layer != Layer.L0 and target.meta is not None:
                        sys.send(
                            target.meta.module, len(keys) * (tree.dims + 1)
                        )
                        # Replica write fan-out shares this batch's round
                        # (write-all) or is deferred under the staleness
                        # bound (primary-async); inert without a ReplicaSet.
                        if tree.replicas is not None:
                            tree.replicas.on_write(
                                target.meta, len(keys) * (tree.dims + 1)
                            )
                    staged.append((target, keys, pts))
                for target, keys, pts in staged:
                    _merge_target(tree, target, keys, pts, state)
        except FaultError:
            with sys.faults_suppressed():
                _apply_path_deltas(tree, ((res, -1) for res in results))
            raise

        if state.new_links:
            with sys.round():
                sys.charge_comm_flat(state.new_links * _LINK_WORDS)

        # ---- Step 3c: refresh shared caching (two rounds) ----------------
        if state.cache_words:
            with sys.round():
                pass
            with sys.round():
                sys.charge_comm_flat(state.cache_words)

        # ---- Step 3d: promotions / demotions (two rounds) -----------------
        _apply_layer_transitions(tree, synced)

        tree.rechunk_stale()
    invalidate_exec_caches(tree)
    # Insert-only residency change: stage the new keys so the route
    # filters' rebuild (inside refresh_residency) can take the cheap
    # in-place path.  A faulted batch never reaches here — its rollback
    # goes through the delete path, which does not stage.
    rf = getattr(tree, "route_filters", None)
    if rf is not None:
        rf.stage_inserts(
            np.array([res.key for res in results], dtype=np.uint64))
    tree.refresh_residency()
    if wal_seq is not None:
        journal.commit(wal_seq)


def _merge_target(tree, target: Node, keys: np.ndarray, pts: np.ndarray,
                  state: _BatchState) -> None:
    """Perform the structural merge for one target leaf or edge."""
    sys = tree.system
    on_module = target.layer != Layer.L0 and target.meta is not None
    mid = target.meta.module if on_module else None

    def charge(cycles: float) -> None:
        if on_module:
            sys.charge_pim(mid, cycles)
        else:
            # Host cores retire roughly 4x the instructions per second of a
            # PIM core per the cost model; fold that into the op count.
            sys.charge_cpu(cycles / 4)

    kb = tree.key_bits
    lo, hi = target.key_range(kb)
    in_range = int(keys[0]) >= lo and int(keys[-1]) < hi
    # The merge may re-parent ``target`` under freshly built internals, so
    # the slot to patch must be captured *before* merging.
    orig_parent = target.parent

    if target.is_leaf and in_range:
        new_node = _merge_leaf(tree, target, keys, pts, state, charge,
                               count_from_path=True)
        if new_node is not target:
            _replace_child(tree, target, new_node, orig_parent)
            _assign_mixed(tree, new_node, orig_parent, state)
        return

    # Edge split (Alg. 2 step 2c): keys diverge inside the compressed edge
    # entering ``target``.
    new_top = _merge_edge(tree, target, keys, pts, state, charge)
    if new_top is not target:
        _replace_child(tree, target, new_top, orig_parent)
        _assign_mixed(tree, new_top, orig_parent, state)


def _merge_leaf(tree, leaf: Node, keys: np.ndarray, pts: np.ndarray,
                state: _BatchState, charge, *, count_from_path: bool) -> Node:
    """Merge sorted keys into a leaf; returns the (possibly new) subtree.

    With ``count_from_path`` the surviving leaf's count was already updated
    by the path-delta pass; otherwise (fresh divergence paths) the count is
    set here.
    """
    merged_keys = np.concatenate([leaf.keys, keys])
    merged_pts = np.vstack([leaf.pts, pts])
    order = np.argsort(merged_keys, kind="stable")
    merged_keys = merged_keys[order]
    merged_pts = merged_pts[order]
    total = len(merged_keys)
    charge(total * _PIM_MERGE_CYCLES_PER_POINT)
    all_equal = int(merged_keys[0]) == int(merged_keys[-1])
    if total <= tree.config.leaf_size or all_equal:
        leaf.keys = merged_keys
        leaf.pts = merged_pts
        if not count_from_path:
            leaf.count = total
            leaf.sc = total
            leaf.delta = 0
        if leaf.meta is not None:
            leaf.meta.payload_words += len(keys) * (tree.dims + 1)
            if leaf.meta.layer == Layer.L1:
                state.cache_words += (
                    len(keys) * (tree.dims + 1) * leaf.meta.replica_count()
                )
        return leaf
    # Leaf split: rebuild the leaf into a fresh subtree.
    charge(total * _PIM_BUILD_CYCLES_PER_POINT * max(1, int(np.log2(total + 1))))
    new_root = _build_fresh(tree, merged_keys, merged_pts, leaf.depth, state)
    _retire_node(tree, leaf, state)
    state.new_links += 1
    return new_root


def _merge_edge(tree, node: Node, keys: np.ndarray, pts: np.ndarray,
                state: _BatchState, charge) -> Node:
    """Merge sorted diverging keys around ``node``'s compressed edge.

    Returns the node that should replace ``node`` in its parent slot.
    """
    if len(keys) == 0:
        return node
    kb = tree.key_bits
    lo, hi = node.key_range(kb)
    i0 = int(np.searchsorted(keys, np.uint64(lo))) if lo > 0 else 0
    i1 = int(np.searchsorted(keys, np.uint64(hi))) if hi < (1 << 64) else len(keys)
    if i0 == 0 and i1 == len(keys):
        # All keys inside node's range.  SEARCH routed diverging keys here,
        # so this only happens for leaves (or for ranges created earlier in
        # this very merge).
        if node.is_leaf:
            return _merge_leaf(tree, node, keys, pts, state, charge,
                               count_from_path=node.nid not in state.new_nodes)
        split_bit = kb - node.depth - 1
        threshold = ((node.prefix << 1) | 1) << split_bit
        mid = int(np.searchsorted(keys, np.uint64(threshold)))
        old = node.left.count + node.right.count
        node.left = _merge_edge(tree, node.left, keys[:mid], pts[:mid], state, charge)
        node.right = _merge_edge(tree, node.right, keys[mid:], pts[mid:], state, charge)
        node.left.parent = node
        node.right.parent = node
        grown = node.left.count + node.right.count - old
        node.count += grown
        node.sc = node.count
        node.delta = 0
        return node

    # True divergence: build the LCA internal node (charging the site).
    span_lo = min(int(keys[0]), lo)
    span_hi = max(int(keys[-1]), hi - 1)
    d = kb - (span_lo ^ span_hi).bit_length()
    prefix = span_lo >> (kb - d)
    split_bit = kb - d - 1
    threshold = ((prefix << 1) | 1) << split_bit
    mid = int(np.searchsorted(keys, np.uint64(threshold)))
    node_on_right = bool((lo >> split_bit) & 1)
    charge(8)
    lca = Node(tree.new_nid(), prefix, d)
    state.new_nodes.add(lca.nid)
    if node_on_right:
        left = _build_fresh(tree, keys[:mid], pts[:mid], d + 1, state, charge)
        right = _merge_edge(tree, node, keys[mid:], pts[mid:], state, charge)
    else:
        left = _merge_edge(tree, node, keys[:mid], pts[:mid], state, charge)
        right = _build_fresh(tree, keys[mid:], pts[mid:], d + 1, state, charge)
    lca.left = left
    lca.right = right
    left.parent = lca
    right.parent = lca
    lca.count = left.count + right.count
    lca.sc = lca.count
    state.new_links += 2
    return lca


def _build_fresh(tree, keys: np.ndarray, pts: np.ndarray, base_depth: int,
                 state: _BatchState, charge=None) -> Node:
    """Build a brand-new subtree and tag every node as new."""
    n = len(keys)
    if charge is not None:
        charge(n * _PIM_BUILD_CYCLES_PER_POINT * max(1, int(np.log2(n + 1))))
    root = tree._build_nodes(keys, pts, base_depth)
    stack = [root]
    while stack:
        nd = stack.pop()
        state.new_nodes.add(nd.nid)
        if not nd.is_leaf:
            stack.append(nd.left)
            stack.append(nd.right)
    return root


def _replace_child(tree, old: Node, new: Node, parent: Node | None = _UNSET) -> None:
    """Patch ``parent``'s child slot from ``old`` to ``new``.

    ``parent`` must be the *pre-merge* parent of ``old`` when the merge may
    have re-parented ``old`` (edge splits nest the old node under a fresh
    LCA); defaulting to ``old.parent`` is only safe otherwise.
    """
    if new is old:
        return
    if parent is _UNSET:
        parent = old.parent
    new.parent = parent
    if parent is None:
        tree.root = new
        return
    if parent.left is old:
        parent.left = new
    elif parent.right is old:
        parent.right = new
    else:  # pragma: no cover - structural corruption guard
        raise RuntimeError("child replacement: old node not found under parent")


def _retire_node(tree, node: Node, state: _BatchState) -> None:
    """Remove one node from chunk bookkeeping (its subtree, if any, stays)."""
    state.retired.add(node)
    meta = node.meta
    if meta is None:
        return
    meta.n_nodes -= 1
    meta.payload_words -= node_words(node, tree.dims)
    if meta.root is node:
        tree.mark_stale(meta)
    node.meta = None


# ----------------------------------------------------------------------
# layer + meta assignment for mixed new/old chains
# ----------------------------------------------------------------------
def _assign_mixed(tree, node: Node, parent: Node | None, state: _BatchState) -> None:
    """Assign layers and meta-nodes to the new nodes reachable from ``node``.

    ``node`` may head a chain mixing fresh nodes (LCA internals, rebuilt
    subtrees) with pre-existing subtrees that keep their chunks; the walk
    stops at old nodes, only fixing their meta-tree parent links.
    """
    if node.nid not in state.new_nodes:
        _fix_old_subtree_links(tree, node, parent)
        return
    raw = tree.layer_from_sc(node.sc)
    node.layer = raw if parent is None else Layer(max(raw, parent.layer))
    if node.layer == Layer.L0:
        node.meta = None
        words = node_words(node, tree.dims)
        if tree.l0_on_cpu:
            tree.system.charge_cpu(words)
        else:
            tree.system.charge_comm_flat(words * tree.system.n_modules)
    else:
        candidate = (
            parent.meta
            if parent is not None and parent.meta is not None and parent.meta in tree.metas
            else None
        )
        joined = False
        if (
            candidate is not None
            and candidate.layer == node.layer
            and node.sc > candidate.root.sc / max(1, tree.config.chunk_factor)
        ):
            node.meta = candidate
            candidate.n_nodes += 1
            candidate.payload_words += node_words(node, tree.dims)
            joined = True
            if candidate.layer == Layer.L1:
                state.cache_words += node_words(node, tree.dims) * candidate.replica_count()
        if not joined:
            meta = MetaNode(node, tree.system.place(("meta", node.nid)))
            node.meta = meta
            meta.n_nodes = 1
            meta.payload_words = node_words(node, tree.dims)
            tree.metas.add(meta)
            tree._meta_built_sc[meta] = max(1, node.sc)
            _relink_meta_parent(tree, meta, candidate)
            if meta.layer == Layer.L1:
                state.cache_words += meta.size_words(tree.config) * meta.replica_count()
    if not node.is_leaf:
        _assign_mixed(tree, node.left, node, state)
        _assign_mixed(tree, node.right, node, state)


def _fix_old_subtree_links(tree, node: Node, parent: Node | None) -> None:
    """Re-point an old subtree's chunk at its (possibly new) meta parent."""
    if node.meta is None or node.meta not in tree.metas:
        return
    desired = None
    if parent is not None and parent.layer != Layer.L0 and parent.meta in tree.metas:
        desired = parent.meta
    if node.meta.root is node:
        if node.meta is not desired:
            _relink_meta_parent(tree, node.meta, desired)
    elif node.meta is not desired:
        # The node is a mid-chunk member now separated from its chunk root:
        # connectivity is broken until the region re-chunks.
        tree.mark_stale(node.meta)


def _relink_meta_parent(tree, child: MetaNode, new_parent: MetaNode | None) -> None:
    if child.parent is new_parent:
        return
    sub_l1 = child.l1_desc_metas + (1 if child.layer == Layer.L1 else 0)
    old = child.parent
    if old is not None:
        if child in old.children:
            old.children.remove(child)
        anc = old
        while anc is not None:
            anc.l1_desc_metas -= sub_l1
            anc = anc.parent
    child.parent = new_parent
    if new_parent is not None:
        new_parent.children.append(child)
        anc = new_parent
        while anc is not None:
            anc.l1_desc_metas += sub_l1
            anc = anc.parent


# ----------------------------------------------------------------------
# counters + transitions
# ----------------------------------------------------------------------
def _apply_path_deltas(tree, results_with_sign) -> list[Node]:
    """Update exact counts and lazy counters along all search paths.

    ``results_with_sign`` yields ``(SearchResult, ±per-key delta)``.
    Returns nodes whose snapshots synced (transition candidates).
    """
    deltas: dict[Node, int] = defaultdict(int)
    for res, sign in results_with_sign:
        # Second pass over the batch's trace records: for batches whose
        # auxiliary structures exceed the LLC this re-read misses — the
        # Fig. 7 large-batch traffic uptick (§7.3).
        tree.system.touch_cpu_block(
            ("pimzd", "batchaux", tree._batch_counter, res.qid // 4)
        )
        for node in res.trace:
            deltas[node] += sign
    tree.system.charge_cpu(len(deltas) * 4)
    synced: list[Node] = []
    for node, d in deltas.items():
        if d == 0:
            continue
        if tree.record_count_change(node, d):
            synced.append(node)
    return synced


def _apply_layer_transitions(tree, synced: list[Node]) -> None:
    """Alg. 2 step 3d: promote/demote nodes whose snapshots crossed θ."""
    if not synced:
        return
    sys = tree.system
    moved_any = False
    for node in sorted(synced, key=lambda n: n.depth):
        if _is_detached(tree, node):
            continue
        new_layer = tree.clamped_layer(node)
        if new_layer == node.layer:
            continue
        old_layer = node.layer
        moved_any = True
        if new_layer == Layer.L0:
            # Promotion into L0: broadcast the node, re-chunk its region.
            if node.meta is not None:
                node.meta.n_nodes -= 1
                node.meta.payload_words -= node_words(node, tree.dims)
                tree.mark_stale(node.meta)
                node.meta = None
            node.layer = Layer.L0
            words = node_words(node, tree.dims)
            if tree.l0_on_cpu:
                sys.charge_cpu(words)
            else:
                sys.charge_comm_flat(words * sys.n_modules)
        elif old_layer == Layer.L0:
            # Leaving L0 demotes any still-L0 descendants too (layer
            # monotonicity): re-layer the subtree before re-chunking it.
            node.layer = new_layer
            tree._assign_layers_subtree(
                node, node.parent.layer if node.parent is not None else None
            )
            _force_rechunk_region_at(tree, node)
        else:
            # L1 <-> L2: re-layer the (θ-sized) subtree, re-chunk its region.
            tree._assign_layers_subtree(
                node, node.parent.layer if node.parent is not None else None
            )
            if node.meta is not None:
                tree.mark_stale(node.meta)
    if moved_any:
        with sys.round():
            pass
        with sys.round():
            pass


def _force_rechunk_region_at(tree, node: Node) -> None:
    """Retire and rebuild the chunks in ``node``'s subtree (locally)."""
    tree.force_rechunk_region(node)


def _is_detached(tree, node: Node) -> bool:
    """Whether ``node`` was spliced/replaced out of the tree this batch."""
    n = node
    while n.parent is not None:
        p = n.parent
        if p.left is not n and p.right is not n:
            return True
        n = p
    return n is not tree.root


# ======================================================================
# DELETE
# ======================================================================
def delete_batch(tree, points: np.ndarray) -> int:
    """Delete all stored points exactly equal to each query point.

    Returns the number of points removed.  The tree must keep ≥ 1 point.
    """
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    if points.shape[0] == 0:
        return 0
    if points.shape[1] != tree.dims:
        raise ValueError("dimension mismatch")
    sys = tree.system
    before = tree.root.count
    # Write-ahead, committed only after the batch applied (see insert).
    journal = tree.journal
    wal_seq = None if journal is None else journal.log_delete(points)
    with sys.phase("delete"):
        results = search_batch(tree, points, phase="delete")
        n = len(results)
        sys.charge_cpu(n * _CPU_GROUP_OPS_PER_KEY, span=np.log2(n + 2))

        groups: dict[Node, list[int]] = defaultdict(list)
        for res in results:
            if res.leaf is not None:
                groups[res.leaf].append(res.qid)
        removal_count: dict[int, int] = {}
        emptied: list[Node] = []

        # ---- Plan pass (CPU-side bookkeeping, no mutation yet): decide
        # which stored points go, so a batch that would empty the tree is
        # rejected *before* any structural change.
        plans: list[tuple[Node, np.ndarray, int]] = []
        total_removed = 0
        vectorized = tree.config.exec_mode == "vectorized"
        if vectorized:
            from .vexec import plan_leaf_deletions
        for leaf, qids in groups.items():
            if vectorized:
                keep = plan_leaf_deletions(leaf, qids, results, points,
                                           removal_count)
            else:
                keep = np.ones(leaf.count, dtype=bool)
                for q in qids:
                    removed_here = 0
                    p = points[q]
                    key = np.uint64(results[q].key)
                    j0 = int(np.searchsorted(leaf.keys, key))
                    j1 = int(np.searchsorted(leaf.keys, key, side="right"))
                    for j in range(j0, j1):
                        if keep[j] and np.array_equal(leaf.pts[j], p):
                            keep[j] = False
                            removed_here += 1
                    removal_count[q] = removed_here
            n_removed = int((~keep).sum())
            total_removed += n_removed
            plans.append((leaf, keep, n_removed))
        if total_removed >= tree.root.count:
            raise ValueError(
                "delete would empty the tree; PIM-zd-tree requires >= 1 point"
            )

        # ---- Apply pass (one round): remove the points on the modules.
        with sys.round():
            for leaf, keep, n_removed in plans:
                qids = groups[leaf]
                if leaf.layer != Layer.L0 and leaf.meta is not None:
                    sys.send(leaf.meta.module, len(qids) * (tree.dims + 1))
                    sys.charge_pim(leaf.meta.module, leaf.count * len(qids) * 2)
                    if tree.replicas is not None:
                        tree.replicas.on_write(
                            leaf.meta, len(qids) * (tree.dims + 1)
                        )
                else:
                    sys.charge_cpu(leaf.count * len(qids))
                if n_removed == 0:
                    continue
                if leaf.meta is not None:
                    leaf.meta.payload_words -= n_removed * (tree.dims + 1)
                if keep.any():
                    leaf.keys = leaf.keys[keep]
                    leaf.pts = leaf.pts[keep]
                else:
                    emptied.append(leaf)

        # Counts first (so splice decisions and transitions see exact sizes).
        def with_signs():
            for res in results:
                removed = removal_count.get(res.qid, 0)
                if removed:
                    yield res, -removed

        synced = _apply_path_deltas(tree, with_signs())

        for leaf in emptied:
            _splice_out_leaf(tree, leaf)

        _apply_layer_transitions(tree, synced)
        tree.rechunk_stale()
    invalidate_exec_caches(tree)
    tree.refresh_residency()
    if tree.root.count == 0:
        raise ValueError("delete emptied the tree; PIM-zd-tree requires >= 1 point")
    if wal_seq is not None:
        journal.commit(wal_seq)
    return before - tree.root.count


def _splice_out_leaf(tree, leaf: Node) -> None:
    """Remove an emptied leaf; collapse its parent onto the sibling."""
    parent = leaf.parent
    if leaf.meta is not None:
        leaf.meta.n_nodes -= 1
        leaf.meta.payload_words -= node_words(leaf, tree.dims)
        if leaf.meta.root is leaf:
            tree.mark_stale(leaf.meta)
        leaf.meta = None
    if parent is None:
        raise ValueError("delete would empty the tree")
    sibling = parent.right if parent.left is leaf else parent.left
    needs_region_fix = True
    if parent.meta is not None:
        parent.meta.n_nodes -= 1
        parent.meta.payload_words -= node_words(parent, tree.dims)
        needs_region_fix = parent.meta.root is parent or sibling.meta is not parent.meta
        if needs_region_fix:
            tree.mark_stale(parent.meta)
        parent.meta = None
    _replace_child(tree, parent, sibling)
    tree.system.charge_comm_flat(_LINK_WORDS)
    if sibling.parent is None:
        # Sibling became the tree root.  When the collapsed parent was a
        # chunk root, its meta is now rootless while survivors under the
        # sibling may still reference it, so the region must be rebuilt
        # immediately — rechunk_stale would otherwise discard the meta
        # (detached root) and leave those references dangling.
        if sibling.layer != Layer.L0:
            if needs_region_fix:
                _force_rechunk_region_at(tree, sibling)
            elif sibling.meta is not None:
                tree.mark_stale(sibling.meta)
        return
    if needs_region_fix and sibling.layer != Layer.L0:
        _force_rechunk_region_at(tree, sibling)
