"""PIM-zd-tree reproduction (PPoPP 2026).

A full reimplementation of *PIM-zd-tree: A Fast Space-Partitioning Index
Leveraging Processing-in-Memory* (Zhao et al., PPoPP'26) on a simulated
PIM system, with the paper's two shared-memory baselines, workload
generators, and an evaluation harness regenerating every table and figure.

Quickstart::

    import numpy as np
    from repro import PIMZdTree, PIMSystem

    pts = np.random.default_rng(0).random((100_000, 3))
    tree = PIMZdTree(pts, system=PIMSystem(64))
    dists, neighbours = tree.knn(pts[:10], k=5)[0]

Package map (see DESIGN.md for the full inventory):

* ``repro.core`` — the PIM-zd-tree and its techniques (§3–§6).
* ``repro.pim`` — the PIM Model simulator + cost models (substrate).
* ``repro.baselines`` — shared-memory zd-tree and Pkd-tree (§7.1).
* ``repro.workloads`` — uniform / Varden / COSMOS-like / OSM-like data,
  plus open-loop arrival processes.
* ``repro.eval`` — experiment harness, metrics and report tables (§7).
* ``repro.serve`` — open-loop serving layer: admission queue, continuous
  batching, virtual-clock scheduler, latency stats, retry/failover.
* ``repro.obs`` — tracing/metrics for the simulator and serve runs.
* ``repro.faults`` — seeded fault injection (crashes, storms, message
  drops) and failover/recovery for the simulated machine.
* ``repro.balance`` — skew-aware online rebalancing: hotness tracking,
  migration planning and charged shard migration.
"""

from .balance import BalanceConfig, OnlineRebalancer
from .baselines import CPUCostMeter, CPUCostModel, PkdTree, ZdTree
from .core import (
    L1,
    L2,
    LINF,
    Box,
    Layer,
    Metric,
    MortonCodec,
    PIMZdTree,
    PIMZdTreeConfig,
    skew_resistant,
    throughput_optimized,
)
from .pim import PIMCostModel, PIMStats, PIMSystem, SimTime, upmem_scaled

__version__ = "1.0.0"

__all__ = [
    "BalanceConfig",
    "Box",
    "CPUCostMeter",
    "OnlineRebalancer",
    "CPUCostModel",
    "L1",
    "L2",
    "LINF",
    "Layer",
    "Metric",
    "MortonCodec",
    "PIMCostModel",
    "PIMStats",
    "PIMSystem",
    "PIMZdTree",
    "PIMZdTreeConfig",
    "PkdTree",
    "SimTime",
    "ZdTree",
    "skew_resistant",
    "throughput_optimized",
    "upmem_scaled",
    "__version__",
]
