"""Shared-memory zd-tree baseline (Blelloch & Dobson, ALENEX'22 [12]).

A zd-tree is a kd-tree whose splitting rule follows the bits of the
z-order (Morton) key: the root covers the whole bounding box and level *i*
splits on bit *i* of the key.  We implement the compressed-radix-tree
variant the paper describes (§2.3): empty leaves are omitted and
single-child paths are merged, so every internal node has exactly two
children and the tree has ``2·#leaves − 1`` nodes.

This is the *CPU baseline*: it executes as ordinary Python, charging an
optional :class:`~repro.baselines.cpu_cost.CPUCostMeter` for work and
cache-block traffic with a pointer-chasing cost profile (one 64-byte block
per internal node plus one for its bounding box, per-leaf allocations) and
the **naive O(bits) z-order encoding** used by prior shared-memory
implementations (§6 notes this; the fast codec is a PIM-zd-tree technique).

Supported operations (all batch): construction, INSERT, DELETE, exact kNN,
BoxCount and BoxFetch — the operation set of §4/§7.
"""

from __future__ import annotations

import heapq
import numpy as np

from ..core.geometry import L2, Box, Metric, dist, dist_point_box
from ..core.morton import MortonCodec
from .cpu_cost import CPUCostMeter

__all__ = ["ZdTree", "NullMeter"]

# Work charge constants (abstract instructions).
_C_NODE_VISIT = 6  # descend one internal node: load, test bit, branch
_C_LEAF_BASE = 4
_C_HEAP_OP = 12
_C_MERGE_PER_KEY = 4
_C_BUILD_PER_KEY = 10  # per key per level during subtree construction


class NullMeter:
    """A meter that ignores all charges (for tests that only check logic)."""

    def work(self, ops: float, span: float = 0.0) -> None:
        pass

    def touch(self, block_id) -> bool:
        return True

    def touch_words(self, obj_id, words: float) -> None:
        pass

    def stream(self, words: float) -> None:
        pass


class _Node:
    __slots__ = ("prefix", "depth", "count", "nid", "box")

    leaf = False

    def __init__(self, prefix: int, depth: int, count: int, nid: int) -> None:
        self.prefix = prefix
        self.depth = depth
        self.count = count
        self.nid = nid
        self.box: Box | None = None


class _Leaf(_Node):
    __slots__ = ("keys", "pts")

    leaf = True

    def __init__(self, prefix, depth, nid, keys: np.ndarray, pts: np.ndarray) -> None:
        super().__init__(prefix, depth, len(keys), nid)
        self.keys = keys
        self.pts = pts


class _Internal(_Node):
    __slots__ = ("left", "right")

    def __init__(self, prefix, depth, count, nid, left, right) -> None:
        super().__init__(prefix, depth, count, nid)
        self.left = left
        self.right = right


class ZdTree:
    """Batch-dynamic shared-memory zd-tree over D-dimensional float points."""

    def __init__(
        self,
        points: np.ndarray,
        *,
        bounds: tuple[np.ndarray, np.ndarray] | None = None,
        bits: int | None = None,
        leaf_size: int = 16,
        meter: CPUCostMeter | NullMeter | None = None,
        naive_zorder: bool = True,
    ) -> None:
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if points.shape[0] == 0:
            raise ValueError("ZdTree requires at least one initial point")
        self.dims = points.shape[1]
        self.leaf_size = int(leaf_size)
        self.meter = meter if meter is not None else NullMeter()
        self.naive_zorder = naive_zorder
        if bounds is not None:
            lo, hi = bounds
            self.codec = MortonCodec(lo, hi, self.dims, bits or _default_bits(self.dims))
        else:
            self.codec = MortonCodec.fit(points, bits)
        self._kb = self.codec.key_bits
        self._next_nid = 0
        keys = self._encode(points)
        order = np.argsort(keys, kind="stable")
        self.meter.work(len(keys) * max(1, int(np.log2(len(keys) + 1))))
        self.meter.stream(len(keys) * (self.dims + 1))
        self.root: _Node = self._build(keys[order], points[order], 0)

    # ------------------------------------------------------------------
    # basic helpers
    # ------------------------------------------------------------------
    def _encode(self, points: np.ndarray) -> np.ndarray:
        # Prior shared-memory implementations interleave bit by bit (O(bits)
        # work per key); the fast O(log bits) codec is a PIM-zd-tree
        # technique (§6) but can be enabled here for experimentation.
        if self.naive_zorder:
            from ..core.morton import morton_encode

            keys = morton_encode(self.codec.quantize(points), self.codec.bits, fast=False)
            self.meter.work(len(points) * self._kb)
        else:
            keys = self.codec.encode(points)
            self.meter.work(
                len(points) * self.dims * max(1, int(np.log2(self.codec.bits)))
            )
        return keys

    def _new_nid(self) -> int:
        self._next_nid += 1
        return self._next_nid

    def _node_box(self, node: _Node) -> Box:
        # The zd-tree stores no boxes: they are decoded on demand from the
        # z-order prefix (registers only — work, not memory traffic).  The
        # Python-side cache on the node is a simulation memoisation.
        if node.box is None:
            lo, hi = self.codec.prefix_box(node.prefix, node.depth)
            node.box = Box(lo, hi)
        self.meter.work(self._box_decode_ops())
        return node.box

    def _touch_node(self, node: _Node) -> None:
        self.meter.touch(("zd", "node", node.nid))

    def _touch_leaf_data(self, leaf: _Leaf, n_points: int | None = None) -> None:
        n = leaf.count if n_points is None else n_points
        self.meter.touch_words(("zd", "leafdata", leaf.nid), n * (self.dims + 1))

    @property
    def size(self) -> int:
        return self.root.count

    def height(self) -> int:
        def h(node: _Node) -> int:
            if node.leaf:
                return 1
            return 1 + max(h(node.left), h(node.right))

        return h(self.root)

    def num_nodes(self) -> int:
        def c(node: _Node) -> int:
            if node.leaf:
                return 1
            return 1 + c(node.left) + c(node.right)

        return c(self.root)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build(self, keys: np.ndarray, pts: np.ndarray, base_depth: int) -> _Node:
        """Build a subtree from keys sorted ascending; all keys share the
        first ``base_depth`` bits."""
        n = len(keys)
        self.meter.work(n * _C_BUILD_PER_KEY)
        first = int(keys[0])
        last = int(keys[-1])
        cp = self._common_depth(first, last)
        if n <= self.leaf_size or cp >= self._kb:
            prefix = first >> (self._kb - base_depth) if base_depth else 0
            return _Leaf(prefix, base_depth, self._new_nid(), keys.copy(), pts.copy())
        # Path compression: the node sits at the first depth where keys
        # actually differ.
        depth = cp
        prefix = first >> (self._kb - depth)
        split_bit = self._kb - depth - 1
        threshold = ((prefix << 1) | 1) << split_bit
        idx = _searchsorted_u64(keys, threshold)
        left = self._build(keys[:idx], pts[:idx], depth + 1)
        right = self._build(keys[idx:], pts[idx:], depth + 1)
        return _Internal(prefix, depth, n, self._new_nid(), left, right)

    def _common_depth(self, a: int, b: int) -> int:
        """Number of leading key bits shared by ``a`` and ``b``."""
        x = a ^ b
        if x == 0:
            return self._kb
        return self._kb - x.bit_length()

    # ------------------------------------------------------------------
    # INSERT
    # ------------------------------------------------------------------
    def insert(self, points: np.ndarray) -> None:
        """Insert a batch of points (duplicates allowed)."""
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if points.shape[0] == 0:
            return
        if points.shape[1] != self.dims:
            raise ValueError("dimension mismatch")
        keys = self._encode(points)
        order = np.argsort(keys, kind="stable")
        n = len(keys)
        self.meter.work(n * max(1, int(np.log2(n + 1))), span=np.log2(n + 2))
        self.meter.stream(n * (self.dims + 1))
        self.root = self._insert_rec(self.root, keys[order], points[order], 0)

    def _insert_rec(
        self, node: _Node, keys: np.ndarray, pts: np.ndarray, base_depth: int
    ) -> _Node:
        """Merge sorted ``keys`` into the subtree rooted at ``node``.

        All keys share the first ``base_depth`` bits with ``node.prefix``
        (the bits consumed by ancestors).  Keys may still diverge inside
        the compressed edge between ``base_depth`` and ``node.depth``.
        """
        if len(keys) == 0:
            return node
        self._touch_node(node)
        self.meter.work(_C_NODE_VISIT + len(keys) * _C_MERGE_PER_KEY)
        kb = self._kb
        lo_key = node.prefix << (kb - node.depth) if node.depth else 0
        hi_key = lo_key + (1 << (kb - node.depth))
        i0 = _searchsorted_u64(keys, lo_key)
        i1 = _searchsorted_u64(keys, hi_key)
        if i0 > 0 or i1 < len(keys):
            return self._split_edge(node, keys, pts, base_depth, lo_key, hi_key)
        # All keys inside node's range.
        if node.leaf:
            return self._merge_leaf(node, keys, pts, base_depth)
        split_bit = kb - node.depth - 1
        threshold = ((node.prefix << 1) | 1) << split_bit
        mid = _searchsorted_u64(keys, threshold)
        node.left = self._insert_rec(node.left, keys[:mid], pts[:mid], node.depth + 1)
        node.right = self._insert_rec(node.right, keys[mid:], pts[mid:], node.depth + 1)
        node.count = node.left.count + node.right.count
        return node

    def _split_edge(
        self,
        node: _Node,
        keys: np.ndarray,
        pts: np.ndarray,
        base_depth: int,
        lo_key: int,
        hi_key: int,
    ) -> _Node:
        """Some keys diverge from ``node`` inside its compressed edge: create
        the internal node at the LCA of the batch and the node's range."""
        kb = self._kb
        span_lo = min(int(keys[0]), lo_key)
        span_hi = max(int(keys[-1]), hi_key - 1)
        d = self._common_depth(span_lo, span_hi)
        # d < node.depth by construction (otherwise no divergence).
        prefix = span_lo >> (kb - d)
        split_bit = kb - d - 1
        threshold = ((prefix << 1) | 1) << split_bit
        mid = _searchsorted_u64(keys, threshold)
        node_on_right = bool((lo_key >> split_bit) & 1)
        self.meter.work(_C_NODE_VISIT)
        if node_on_right:
            left = self._build(keys[:mid], pts[:mid], d + 1)
            right = self._insert_rec(node, keys[mid:], pts[mid:], d + 1)
        else:
            left = self._insert_rec(node, keys[:mid], pts[:mid], d + 1)
            right = self._build(keys[mid:], pts[mid:], d + 1)
        return _Internal(prefix, d, left.count + right.count, self._new_nid(), left, right)

    def _merge_leaf(
        self, leaf: _Leaf, keys: np.ndarray, pts: np.ndarray, base_depth: int
    ) -> _Node:
        self._touch_leaf_data(leaf)
        merged_keys = np.concatenate([leaf.keys, keys])
        merged_pts = np.vstack([leaf.pts, pts])
        order = np.argsort(merged_keys, kind="stable")
        merged_keys = merged_keys[order]
        merged_pts = merged_pts[order]
        self.meter.work(len(merged_keys) * _C_MERGE_PER_KEY)
        total = len(merged_keys)
        all_equal = int(merged_keys[0]) == int(merged_keys[-1])
        if total <= self.leaf_size or all_equal:
            leaf.keys = merged_keys
            leaf.pts = merged_pts
            leaf.count = total
            return leaf
        self.meter.stream(total * (self.dims + 1))
        return self._build(merged_keys, merged_pts, base_depth)

    # ------------------------------------------------------------------
    # DELETE
    # ------------------------------------------------------------------
    def delete(self, points: np.ndarray) -> int:
        """Delete all stored points exactly equal to each query point.

        Returns the number of points removed.  The tree must keep at least
        one point (an empty index is out of the paper's scope).
        """
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if points.shape[0] == 0:
            return 0
        keys = self._encode(points)
        order = np.argsort(keys, kind="stable")
        keys = keys[order]
        points = points[order]
        before = self.root.count
        new_root = self._delete_rec(self.root, keys, points)
        if new_root is None:
            raise ValueError("delete would empty the tree")
        self.root = new_root
        return before - self.root.count

    def _delete_rec(
        self, node: _Node, keys: np.ndarray, pts: np.ndarray
    ) -> _Node | None:
        if len(keys) == 0:
            return node
        self._touch_node(node)
        self.meter.work(_C_NODE_VISIT + len(keys) * _C_MERGE_PER_KEY)
        kb = self._kb
        lo_key = node.prefix << (kb - node.depth) if node.depth else 0
        hi_key = lo_key + (1 << (kb - node.depth))
        i0 = _searchsorted_u64(keys, lo_key)
        i1 = _searchsorted_u64(keys, hi_key)
        keys = keys[i0:i1]
        pts = pts[i0:i1]
        if len(keys) == 0:
            return node
        if node.leaf:
            return self._delete_from_leaf(node, keys, pts)
        split_bit = kb - node.depth - 1
        threshold = ((node.prefix << 1) | 1) << split_bit
        mid = _searchsorted_u64(keys, threshold)
        left = self._delete_rec(node.left, keys[:mid], pts[:mid])
        right = self._delete_rec(node.right, keys[mid:], pts[mid:])
        if left is None and right is None:
            return None
        if left is None:
            return right
        if right is None:
            return left
        node.left = left
        node.right = right
        node.count = left.count + right.count
        return node

    def _delete_from_leaf(
        self, leaf: _Leaf, keys: np.ndarray, pts: np.ndarray
    ) -> _Node | None:
        self._touch_leaf_data(leaf)
        keep = np.ones(leaf.count, dtype=bool)
        for k, p in zip(keys.tolist(), pts):
            j0 = _searchsorted_u64(leaf.keys, int(k))
            j1 = _searchsorted_u64(leaf.keys, int(k) + 1)
            for j in range(j0, j1):
                if keep[j] and np.array_equal(leaf.pts[j], p):
                    keep[j] = False
        self.meter.work(leaf.count * self.dims)
        if keep.all():
            return leaf
        if not keep.any():
            return None
        leaf.keys = leaf.keys[keep]
        leaf.pts = leaf.pts[keep]
        leaf.count = len(leaf.keys)
        return leaf

    # ------------------------------------------------------------------
    # kNN
    # ------------------------------------------------------------------
    def knn(self, q: np.ndarray, k: int, metric: Metric = L2):
        """Exact k nearest neighbours of ``q``.

        Returns ``(dists, points)`` sorted by increasing distance; fewer
        than ``k`` results are returned only if the tree holds fewer points.
        """
        q = np.asarray(q, dtype=np.float64).reshape(self.dims)
        if k < 1:
            raise ValueError("k must be >= 1")
        # Max-heap of the current k best, keyed by negative distance.
        best: list[tuple[float, int, np.ndarray]] = []
        counter = [0]

        def kth_dist() -> float:
            return -best[0][0] if len(best) >= k else np.inf

        def visit(node: _Node) -> None:
            self._touch_node(node)
            self.meter.work(_C_NODE_VISIT)
            if node.leaf:
                self._touch_leaf_data(node)
                d = dist(node.pts, q, metric)
                self.meter.work(node.count * metric.cpu_ops_per_dim * self.dims)
                for dd, p in zip(d, node.pts):
                    if len(best) < k:
                        counter[0] += 1
                        heapq.heappush(best, (-float(dd), counter[0], p))
                        self.meter.work(_C_HEAP_OP)
                    elif dd < -best[0][0]:
                        counter[0] += 1
                        heapq.heapreplace(best, (-float(dd), counter[0], p))
                        self.meter.work(_C_HEAP_OP)
                return
            children = [node.left, node.right]
            dists = [
                dist_point_box(q, self._node_box(c), metric) for c in children
            ]
            self.meter.work(2 * metric.cpu_ops_per_dim * self.dims)
            for dd, child in sorted(zip(dists, children), key=lambda t: t[0]):
                if dd <= kth_dist():
                    visit(child)

        visit(self.root)
        out = sorted(((-negd, p) for negd, _, p in best), key=lambda t: t[0])
        dists = np.array([d for d, _ in out])
        pts = np.array([p for _, p in out]).reshape(len(out), self.dims)
        return dists, pts

    def knn_batch(self, queries: np.ndarray, k: int, metric: Metric = L2):
        """kNN for every query row; returns lists of (dists, points)."""
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        return [self.knn(q, k, metric) for q in queries]

    # ------------------------------------------------------------------
    # orthogonal range queries
    # ------------------------------------------------------------------
    def box_count(self, box: Box, *, box_prune: bool = False) -> int:
        """Number of stored points inside the closed box.

        The published zd-tree [12] is a radix tree over Morton keys built
        for kNN; its natural range primitive is a *z-interval scan*: the
        query box is mapped to the key interval between its corners'
        Morton codes and every leaf overlapping that interval is scanned,
        filtering points against the box.  Without BIGMIN-style interval
        splitting, the z-curve leaves the box and re-enters it many times,
        so the interval covers far more points than the box does — which
        is exactly why the paper measures zd-tree 518×/99× behind
        PIM-zd-tree on Box operations (Fig. 5).  ``box_prune=True``
        switches to geometric pruning (the optimisation PIM-zd-tree and
        Pkd-tree apply), kept for comparison experiments.
        """
        if box_prune:
            return self._box_count_pruned(box)
        zlo, zhi = self._box_key_interval(box)

        def visit(node: _Node) -> int:
            self._touch_node(node)
            self.meter.work(_C_NODE_VISIT)
            nlo, nhi = self._key_range(node)
            if nhi <= zlo or nlo > zhi:
                return 0
            if node.leaf:
                self._touch_leaf_data(node)
                self.meter.work(node.count * 2 * self.dims)
                return int(np.count_nonzero(box.contains_point(node.pts)))
            return visit(node.left) + visit(node.right)

        return visit(self.root)

    def _box_count_pruned(self, box: Box) -> int:
        def visit(node: _Node) -> int:
            self._touch_node(node)
            self.meter.work(_C_NODE_VISIT + self._box_decode_ops())
            nbox = self._node_box(node)
            if not box.intersects(nbox):
                return 0
            if node.leaf:
                self._touch_leaf_data(node)
                self.meter.work(node.count * 2 * self.dims)
                return int(np.count_nonzero(box.contains_point(node.pts)))
            return visit(node.left) + visit(node.right)

        return visit(self.root)

    def _box_key_interval(self, box: Box) -> tuple[int, int]:
        """Closed Morton-key interval spanned by the box corners."""
        corners = np.vstack([box.lo, box.hi])
        keys = self._encode(corners)
        return int(keys[0]), int(keys[1])

    def _key_range(self, node: _Node) -> tuple[int, int]:
        lo = node.prefix << (self._kb - node.depth) if node.depth else 0
        return lo, lo + (1 << (self._kb - node.depth))

    def _box_decode_ops(self) -> int:
        """Work to reconstruct a node's box from its z-order prefix."""
        return 2 * self.dims * max(1, int(np.log2(self.codec.bits)))

    def box_fetch(self, box: Box, *, box_prune: bool = False) -> np.ndarray:
        """All stored points inside the closed box, as an ``(m, D)`` array.

        Default is the z-interval scan of the published implementation
        (see :meth:`box_count`); ``box_prune=True`` applies geometric
        pruning instead.
        """
        chunks: list[np.ndarray] = []
        if box_prune:
            zlo, zhi = 0, (1 << self._kb)  # interval test always passes
        else:
            zlo, zhi = self._box_key_interval(box)

        def visit(node: _Node) -> None:
            self._touch_node(node)
            if box_prune:
                self.meter.work(_C_NODE_VISIT + self._box_decode_ops())
                if not box.intersects(self._node_box(node)):
                    return
            else:
                self.meter.work(_C_NODE_VISIT)
                nlo, nhi = self._key_range(node)
                if nhi <= zlo or nlo > zhi:
                    return
            if node.leaf:
                self._touch_leaf_data(node)
                self.meter.work(node.count * 2 * self.dims)
                mask = box.contains_point(node.pts)
                if mask.any():
                    chunks.append(node.pts[mask])
                return
            visit(node.left)
            visit(node.right)

        visit(self.root)
        if not chunks:
            return np.empty((0, self.dims))
        out = np.vstack(chunks)
        self.meter.stream(len(out) * self.dims)
        return out

    def _collect(self, node: _Node, chunks: list[np.ndarray]) -> None:
        if node.leaf:
            self._touch_leaf_data(node)
            self.meter.work(node.count)
            chunks.append(node.pts)
            return
        self._touch_node(node)
        self.meter.work(_C_NODE_VISIT)
        self._collect(node.left, chunks)
        self._collect(node.right, chunks)

    # ------------------------------------------------------------------
    # invariants (used by tests)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Raise AssertionError if any structural invariant is violated."""
        kb = self._kb

        def rec(node: _Node, lo: int, hi: int) -> int:
            node_lo = node.prefix << (kb - node.depth) if node.depth else 0
            node_hi = node_lo + (1 << (kb - node.depth))
            assert lo <= node_lo < node_hi <= hi, "node range escapes parent range"
            if node.leaf:
                assert node.count == len(node.keys) == len(node.pts)
                assert node.count > 0, "empty leaf present"
                keys = node.keys.astype(object)
                assert all(node_lo <= int(x) < node_hi for x in keys), "leaf key outside range"
                assert all(
                    int(a) <= int(b) for a, b in zip(keys[:-1], keys[1:])
                ), "leaf keys unsorted"
                equal = int(node.keys[0]) == int(node.keys[-1])
                assert node.count <= self.leaf_size or equal, "oversized mixed leaf"
                return node.count
            assert isinstance(node, _Internal)
            nl = rec(node.left, node_lo, node_lo + (node_hi - node_lo) // 2)
            nr = rec(node.right, node_lo + (node_hi - node_lo) // 2, node_hi)
            assert node.count == nl + nr, "count mismatch"
            assert node.left.depth > node.depth and node.right.depth > node.depth
            return node.count

        total = rec(self.root, 0, 1 << kb)
        assert total == self.root.count

    def all_points(self) -> np.ndarray:
        """Every stored point, in z-order (for test oracles)."""
        chunks: list[np.ndarray] = []
        self._collect_silent(self.root, chunks)
        return np.vstack(chunks) if chunks else np.empty((0, self.dims))

    def _collect_silent(self, node: _Node, chunks: list[np.ndarray]) -> None:
        if node.leaf:
            chunks.append(node.pts)
        else:
            self._collect_silent(node.left, chunks)
            self._collect_silent(node.right, chunks)


def _default_bits(dims: int) -> int:
    from ..core.morton import max_bits_per_dim

    return max_bits_per_dim(dims)


def _searchsorted_u64(keys: np.ndarray, bound: int, side: str = "left") -> int:
    """``np.searchsorted`` tolerant of bounds at or beyond 2**64."""
    if bound >= 1 << 64:
        return len(keys)
    if bound < 0:
        return 0
    return int(np.searchsorted(keys, np.uint64(bound), side=side))
