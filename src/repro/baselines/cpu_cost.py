"""Cost model and meter for the shared-memory baseline machine.

The paper evaluates zd-tree and Pkd-tree on a separate two-socket Xeon
E5-2630 v4 machine (2×10 cores @ 2.2 GHz, 2×25 MB LLC, 4 DDR4 channels per
socket, §7.1).  The baselines in this package run as ordinary Python but
charge an abstract meter: work (instructions across threads), span, and
cache-block touches through an LLC model.  :class:`CPUCostModel` converts
the counters to simulated seconds with the roofline rule
``time = max(compute, dram_traffic / bandwidth)`` — index workloads at the
paper's scale are DRAM-bound, which is exactly the memory-wall premise of
the paper (§1).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..pim.cache import LRUCache

__all__ = ["CPUCostModel", "CPUCostMeter", "XEON_BASELINE"]

WORD_BYTES = 8
_WORDS_PER_BLOCK = 8


@dataclass(frozen=True)
class CPUCostModel:
    """Datasheet constants for the baseline Xeon machine of §7.1.

    DRAM bandwidth is split by access pattern: *streaming* transfers
    (sorts, bulk copies, output materialisation) run at the peak channel
    bandwidth, while *random* accesses (dependent pointer chasing through
    tree nodes) are limited by memory-level parallelism — cores × MSHRs ×
    line / latency — which caps sustained random bandwidth at around 15%
    of peak on this class of machine.  Index traversals are exactly this
    pattern; treating them as peak-bandwidth transfers would make the
    baselines unrealistically fast (this is the memory wall the paper is
    about, §1).
    """

    freq_hz: float = 2.2e9
    threads: int = 40
    ipc: float = 1.0
    llc_bytes: int = 50 * 2**20
    dram_bw_bytes_s: float = 60e9
    random_bw_fraction: float = 0.15

    @property
    def random_bw_bytes_s(self) -> float:
        return self.dram_bw_bytes_s * self.random_bw_fraction

    def time_s(self, work_ops: float, random_words: float,
               stream_words: float = 0.0) -> float:
        compute = work_ops / (self.freq_hz * self.threads * self.ipc)
        memory = (
            random_words * WORD_BYTES / self.random_bw_bytes_s
            + stream_words * WORD_BYTES / self.dram_bw_bytes_s
        )
        return max(compute, memory)

    def traffic_bytes(self, dram_words: float) -> float:
        return dram_words * WORD_BYTES

    def scaled(self, factor: float, cache_scale: float = 1.0) -> "CPUCostModel":
        """Jointly scaled machine for scaled-down experiments.

        ``factor`` scales the machine's parallel capacity (threads and
        DRAM bandwidth); ``cache_scale`` scales the LLC with the dataset
        so the cache-to-working-set pressure of the paper's 300M-point
        runs is preserved at simulation scale (see DESIGN.md).
        """
        from dataclasses import replace

        return replace(
            self,
            threads=max(1, self.threads * factor),
            dram_bw_bytes_s=self.dram_bw_bytes_s * factor,
            llc_bytes=max(16 * 2**10, int(self.llc_bytes * cache_scale)),
        )


XEON_BASELINE = CPUCostModel()


@dataclass
class _MeterCounters:
    work: float = 0.0
    span: float = 0.0
    random_words: float = 0.0  # LLC misses on dependent accesses
    stream_words: float = 0.0  # bulk sequential transfers

    @property
    def dram_words(self) -> float:
        return self.random_words + self.stream_words

    def copy(self) -> "_MeterCounters":
        return _MeterCounters(self.work, self.span, self.random_words,
                              self.stream_words)

    def diff(self, earlier: "_MeterCounters") -> "_MeterCounters":
        return _MeterCounters(
            self.work - earlier.work,
            self.span - earlier.span,
            self.random_words - earlier.random_words,
            self.stream_words - earlier.stream_words,
        )


class CPUCostMeter:
    """Charge sink for a baseline index running on the Xeon model."""

    def __init__(self, model: CPUCostModel = XEON_BASELINE) -> None:
        self.model = model
        self.llc = LRUCache(max(1, model.llc_bytes // 64), _WORDS_PER_BLOCK)
        self.counters = _MeterCounters()

    # -- charging -------------------------------------------------------
    def work(self, ops: float, span: float = 0.0) -> None:
        self.counters.work += ops
        self.counters.span += span

    def touch(self, block_id) -> bool:
        """One access to a 64-byte block; random DRAM traffic on miss."""
        hit = self.llc.touch(block_id)
        if not hit:
            self.counters.random_words += _WORDS_PER_BLOCK
        return hit

    def touch_words(self, obj_id, words: float) -> None:
        """Access ``words`` consecutive words belonging to object ``obj_id``."""
        n_blocks = max(1, int(-(-words // _WORDS_PER_BLOCK)))
        for i in range(n_blocks):
            self.touch((obj_id, i))

    def stream(self, words: float) -> None:
        """Streaming access (bulk scan/sort) bypassing the cache."""
        self.llc.streamed_words += int(words)
        self.counters.stream_words += words

    # -- measurement ----------------------------------------------------
    def snapshot(self) -> _MeterCounters:
        return self.counters.copy()

    def measure_since(self, snap: _MeterCounters) -> _MeterCounters:
        return self.counters.diff(snap)

    def time_s(self, counters: _MeterCounters | None = None) -> float:
        c = counters if counters is not None else self.counters
        return self.model.time_s(c.work, c.random_words, c.stream_words)

    def traffic_bytes(self, counters: _MeterCounters | None = None) -> float:
        c = counters if counters is not None else self.counters
        return self.model.traffic_bytes(c.dram_words)
