"""Shared-memory baseline indexes (§7.1) and their CPU cost model.

* :class:`ZdTree` — the zd-tree of Blelloch & Dobson [12].
* :class:`PkdTree` — the Pkd-tree of Men et al. [63].
* :class:`CPUCostMeter` / :class:`CPUCostModel` — the baseline Xeon machine.
"""

from .cpu_cost import XEON_BASELINE, CPUCostMeter, CPUCostModel
from .pkdtree import PkdTree
from .zdtree import NullMeter, ZdTree

__all__ = [
    "CPUCostMeter",
    "CPUCostModel",
    "NullMeter",
    "PkdTree",
    "XEON_BASELINE",
    "ZdTree",
]
