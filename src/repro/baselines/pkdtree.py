"""Pkd-tree baseline (Men, Shen, Gu & Sun, PACMMOD'25 [63]).

A parallel kd-tree with *object-median* partitioning: each internal node
splits its points into two equal halves along the dimension of maximum
spread.  Batch updates follow the Pkd-tree recipe: points are routed down
the tree, leaves absorb or split, and any subtree whose weight balance
drifts past ``alpha`` is rebuilt from its points (BB[α]-style partial
reconstruction, which is what gives Pkd-tree its amortised update bounds).

Cost profile: Pkd-tree is the cache-friendlier baseline — nodes are packed
into flat arrays (two 32-byte node records per 64-byte block) and leaf
points live in contiguous storage, versus the zd-tree baseline's
one-allocation-per-node pointer chasing.  The paper's Fig. 5 shows exactly
this asymmetry (Pkd-tree ≫ zd-tree on range queries).
"""

from __future__ import annotations

import heapq

import numpy as np

from ..core.geometry import L2, Box, Metric, dist, dist_point_box
from .cpu_cost import CPUCostMeter
from .zdtree import NullMeter

__all__ = ["PkdTree"]

_C_NODE_VISIT = 5
_C_HEAP_OP = 12
_C_ROUTE_PER_KEY = 3
_C_BUILD_PER_KEY = 8


class _KdLeaf:
    __slots__ = ("pts", "count", "nid", "box")

    leaf = True

    def __init__(self, pts: np.ndarray, nid: int) -> None:
        self.pts = pts
        self.count = len(pts)
        self.nid = nid
        self.box = Box(pts.min(axis=0), pts.max(axis=0))


class _KdInternal:
    __slots__ = ("axis", "split", "left", "right", "count", "nid", "box")

    leaf = False

    def __init__(self, axis, split, left, right, nid) -> None:
        self.axis = axis
        self.split = split
        self.left = left
        self.right = right
        self.count = left.count + right.count
        self.nid = nid
        self.box = Box(
            np.minimum(left.box.lo, right.box.lo),
            np.maximum(left.box.hi, right.box.hi),
        )


class PkdTree:
    """Batch-dynamic object-median kd-tree over D-dimensional points."""

    def __init__(
        self,
        points: np.ndarray,
        *,
        leaf_size: int = 16,
        alpha: float = 0.7,
        meter: CPUCostMeter | NullMeter | None = None,
    ) -> None:
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if points.shape[0] == 0:
            raise ValueError("PkdTree requires at least one initial point")
        if not 0.5 < alpha < 1.0:
            raise ValueError("alpha must lie in (0.5, 1)")
        self.dims = points.shape[1]
        self.leaf_size = int(leaf_size)
        self.alpha = float(alpha)
        self.meter = meter if meter is not None else NullMeter()
        self._next_nid = 0
        self.root = self._build(points)

    # ------------------------------------------------------------------
    def _new_nid(self) -> int:
        self._next_nid += 1
        return self._next_nid

    def _touch_node(self, node) -> None:
        # Two packed 32-byte records per cache block.
        self.meter.touch(("pkd", "node", node.nid // 2))

    def _touch_leaf_data(self, leaf: _KdLeaf, n_points: int | None = None) -> None:
        n = leaf.count if n_points is None else n_points
        self.meter.touch_words(("pkd", "leafdata", leaf.nid), n * self.dims)

    @property
    def size(self) -> int:
        return self.root.count

    def height(self) -> int:
        def h(node):
            return 1 if node.leaf else 1 + max(h(node.left), h(node.right))

        return h(self.root)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build(self, pts: np.ndarray):
        n = len(pts)
        self.meter.work(n * _C_BUILD_PER_KEY * max(1, int(np.log2(n + 1))))
        self.meter.stream(n * self.dims)
        return self._build_rec(pts)

    def _build_rec(self, pts: np.ndarray):
        n = len(pts)
        if n <= self.leaf_size:
            return _KdLeaf(pts.copy(), self._new_nid())
        spread = pts.max(axis=0) - pts.min(axis=0)
        axis = int(np.argmax(spread))
        if spread[axis] == 0.0:
            # All points identical: keep as an (oversized) leaf.
            return _KdLeaf(pts.copy(), self._new_nid())
        mid = n // 2
        order = np.argpartition(pts[:, axis], mid)
        # Object median: exactly half the points on each side; ties broken
        # by partition position, box pruning keeps queries exact.
        left = self._build_rec(pts[order[:mid]])
        right = self._build_rec(pts[order[mid:]])
        split = float(pts[order[mid], axis])
        return _KdInternal(axis, split, left, right, self._new_nid())

    # ------------------------------------------------------------------
    # INSERT
    # ------------------------------------------------------------------
    def insert(self, points: np.ndarray) -> None:
        """Insert a batch of points (duplicates allowed)."""
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if points.shape[0] == 0:
            return
        if points.shape[1] != self.dims:
            raise ValueError("dimension mismatch")
        n = len(points)
        self.meter.work(n * _C_ROUTE_PER_KEY, span=np.log2(n + 2))
        self.meter.stream(n * self.dims)
        self.root = self._insert_rec(self.root, points)

    def _insert_rec(self, node, pts: np.ndarray):
        if len(pts) == 0:
            return node
        self._touch_node(node)
        self.meter.work(_C_NODE_VISIT + len(pts) * _C_ROUTE_PER_KEY)
        if node.leaf:
            merged = np.vstack([node.pts, pts])
            if len(merged) <= self.leaf_size:
                node.pts = merged
                node.count = len(merged)
                node.box = Box(merged.min(axis=0), merged.max(axis=0))
                self._touch_leaf_data(node)
                return node
            self.meter.work(len(merged) * _C_BUILD_PER_KEY)
            self.meter.stream(len(merged) * self.dims)
            return self._build_rec(merged)
        go_left = pts[:, node.axis] <= node.split
        node.left = self._insert_rec(node.left, pts[go_left])
        node.right = self._insert_rec(node.right, pts[~go_left])
        node.count = node.left.count + node.right.count
        node.box = Box(
            np.minimum(node.left.box.lo, node.right.box.lo),
            np.maximum(node.left.box.hi, node.right.box.hi),
        )
        if self._imbalanced(node):
            return self._rebuild(node)
        return node

    def _imbalanced(self, node) -> bool:
        bigger = max(node.left.count, node.right.count)
        return bigger > self.alpha * node.count

    def _rebuild(self, node):
        pts = self._collect_points(node)
        self.meter.work(len(pts) * _C_BUILD_PER_KEY * max(1, int(np.log2(len(pts) + 1))))
        self.meter.stream(2 * len(pts) * self.dims)
        return self._build_rec(pts)

    def _collect_points(self, node) -> np.ndarray:
        chunks: list[np.ndarray] = []

        def rec(n):
            if n.leaf:
                chunks.append(n.pts)
            else:
                rec(n.left)
                rec(n.right)

        rec(node)
        return np.vstack(chunks)

    # ------------------------------------------------------------------
    # DELETE
    # ------------------------------------------------------------------
    def delete(self, points: np.ndarray) -> int:
        """Delete all stored points exactly equal to each query point."""
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if points.shape[0] == 0:
            return 0
        before = self.root.count
        new_root = self._delete_rec(self.root, points)
        if new_root is None:
            raise ValueError("delete would empty the tree")
        self.root = new_root
        return before - self.root.count

    def _delete_rec(self, node, pts: np.ndarray):
        if len(pts) == 0:
            return node
        self._touch_node(node)
        self.meter.work(_C_NODE_VISIT + len(pts) * _C_ROUTE_PER_KEY)
        inside = node.box.contains_point(pts)
        pts = pts[inside]
        if len(pts) == 0:
            return node
        if node.leaf:
            self._touch_leaf_data(node)
            keep = np.ones(node.count, dtype=bool)
            for p in pts:
                for j in range(node.count):
                    if keep[j] and np.array_equal(node.pts[j], p):
                        keep[j] = False
            self.meter.work(node.count * len(pts) * self.dims)
            if keep.all():
                return node
            if not keep.any():
                return None
            node.pts = node.pts[keep]
            node.count = len(node.pts)
            node.box = Box(node.pts.min(axis=0), node.pts.max(axis=0))
            return node
        # Ties may sit on either side; route by child box containment.
        left = self._delete_rec(node.left, pts)
        right = self._delete_rec(node.right, pts)
        if left is None and right is None:
            return None
        if left is None:
            return right
        if right is None:
            return left
        node.left = left
        node.right = right
        node.count = left.count + right.count
        node.box = Box(
            np.minimum(left.box.lo, right.box.lo),
            np.maximum(left.box.hi, right.box.hi),
        )
        if node.count <= self.leaf_size:
            return _KdLeaf(self._collect_points(node), self._new_nid())
        if self._imbalanced(node):
            return self._rebuild(node)
        return node

    # ------------------------------------------------------------------
    # kNN
    # ------------------------------------------------------------------
    def knn(self, q: np.ndarray, k: int, metric: Metric = L2):
        """Exact k nearest neighbours of ``q``: ``(dists, points)`` ascending."""
        q = np.asarray(q, dtype=np.float64).reshape(self.dims)
        if k < 1:
            raise ValueError("k must be >= 1")
        best: list[tuple[float, int, np.ndarray]] = []
        counter = [0]

        def kth() -> float:
            return -best[0][0] if len(best) >= k else np.inf

        def visit(node) -> None:
            self._touch_node(node)
            self.meter.work(_C_NODE_VISIT)
            if node.leaf:
                self._touch_leaf_data(node)
                d = dist(node.pts, q, metric)
                self.meter.work(node.count * metric.cpu_ops_per_dim * self.dims)
                for dd, p in zip(d, node.pts):
                    if len(best) < k:
                        counter[0] += 1
                        heapq.heappush(best, (-float(dd), counter[0], p))
                        self.meter.work(_C_HEAP_OP)
                    elif dd < -best[0][0]:
                        counter[0] += 1
                        heapq.heapreplace(best, (-float(dd), counter[0], p))
                        self.meter.work(_C_HEAP_OP)
                return
            children = [node.left, node.right]
            dd = [dist_point_box(q, c.box, metric) for c in children]
            self.meter.work(2 * metric.cpu_ops_per_dim * self.dims)
            for d0, child in sorted(zip(dd, children), key=lambda t: t[0]):
                if d0 <= kth():
                    visit(child)

        visit(self.root)
        out = sorted(((-negd, p) for negd, _, p in best), key=lambda t: t[0])
        dists = np.array([d for d, _ in out])
        pts = np.array([p for _, p in out]).reshape(len(out), self.dims)
        return dists, pts

    def knn_batch(self, queries: np.ndarray, k: int, metric: Metric = L2):
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        return [self.knn(q, k, metric) for q in queries]

    # ------------------------------------------------------------------
    # orthogonal range queries
    # ------------------------------------------------------------------
    def box_count(self, box: Box) -> int:
        def visit(node) -> int:
            self._touch_node(node)
            self.meter.work(_C_NODE_VISIT)
            if not box.intersects(node.box):
                return 0
            if box.contains_box(node.box):
                return node.count
            if node.leaf:
                self._touch_leaf_data(node)
                self.meter.work(node.count * 2 * self.dims)
                return int(np.count_nonzero(box.contains_point(node.pts)))
            return visit(node.left) + visit(node.right)

        return visit(self.root)

    def box_fetch(self, box: Box) -> np.ndarray:
        chunks: list[np.ndarray] = []

        def collect(node) -> None:
            if node.leaf:
                self._touch_leaf_data(node)
                self.meter.work(node.count)
                chunks.append(node.pts)
            else:
                self._touch_node(node)
                self.meter.work(_C_NODE_VISIT)
                collect(node.left)
                collect(node.right)

        def visit(node) -> None:
            self._touch_node(node)
            self.meter.work(_C_NODE_VISIT)
            if not box.intersects(node.box):
                return
            if node.leaf:
                self._touch_leaf_data(node)
                self.meter.work(node.count * 2 * self.dims)
                mask = box.contains_point(node.pts)
                if mask.any():
                    chunks.append(node.pts[mask])
                return
            if box.contains_box(node.box):
                collect(node)
                return
            visit(node.left)
            visit(node.right)

        visit(self.root)
        if not chunks:
            return np.empty((0, self.dims))
        out = np.vstack(chunks)
        self.meter.stream(len(out) * self.dims)
        return out

    # ------------------------------------------------------------------
    def all_points(self) -> np.ndarray:
        return self._collect_points(self.root)

    def check_invariants(self) -> None:
        """Raise AssertionError on any structural invariant violation."""

        def rec(node) -> int:
            if node.leaf:
                assert node.count == len(node.pts) > 0
                assert np.all(node.pts >= node.box.lo) and np.all(node.pts <= node.box.hi)
                return node.count
            nl = rec(node.left)
            nr = rec(node.right)
            assert node.count == nl + nr, "count mismatch"
            assert node.box.contains_box(node.left.box)
            assert node.box.contains_box(node.right.box)
            assert max(nl, nr) <= self.alpha * node.count + self.leaf_size, (
                "imbalance beyond alpha persisted"
            )
            return node.count

        rec(self.root)
