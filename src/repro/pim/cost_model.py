"""Cost models converting simulator counters into simulated time and bytes.

The paper evaluates on real silicon; this reproduction counts abstract work
and traffic inside the functional simulator and converts them to seconds
with datasheet-derived constants.  Two machines are modelled:

* :class:`PIMCostModel` — the UPMEM server of §7.1: two Xeon Silver 4216
  (32 threads, 2.1 GHz, 22 MB LLC), 2048 PIM modules at 350 MHz, four DDR4
  channels of plain DRAM, and the mux-switch overhead [54] paid whenever
  control of a PIM rank's memory flips between CPU and PIM cores (once per
  BSP round in each direction).
* :class:`CPUCostModel` (in ``repro.baselines.cpu_cost``) — the baseline
  Xeon machine.

Simulated time composition: a BSP program alternates CPU phases, transfer
phases and PIM phases, so total time is the *sum* of the three components;
within the CPU component, compute and DRAM traffic overlap, so the CPU
component is the *max* of its compute and memory-bound times.  This is the
standard roofline treatment.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .stats import PhaseCounters

__all__ = ["PIMCostModel", "SimTime", "UPMEM_2048", "upmem_scaled"]

WORD_BYTES = 8


@dataclass(frozen=True)
class SimTime:
    """A simulated duration split into its BSP components (seconds)."""

    cpu_s: float
    pim_s: float
    comm_s: float

    @property
    def total_s(self) -> float:
        return self.cpu_s + self.pim_s + self.comm_s

    def __add__(self, other: "SimTime") -> "SimTime":
        return SimTime(
            self.cpu_s + other.cpu_s,
            self.pim_s + other.pim_s,
            self.comm_s + other.comm_s,
        )


@dataclass(frozen=True)
class PIMCostModel:
    """Datasheet constants for an UPMEM-like PIM server.

    Bandwidth figures follow Gómez-Luna et al. [37] and the UPMEM
    datasheet: each module sustains ~628 MB/s to its local bank; host↔PIM
    transfers over the populated channels sustain a far smaller aggregate
    (we use 8 GB/s for 2048 modules, scaled linearly for smaller P); the
    four plain DDR4-2400 channels give ~38 GB/s for host DRAM.
    """

    n_modules: int = 2048
    pim_freq_hz: float = 350e6
    cpu_freq_hz: float = 2.1e9
    cpu_threads: float = 32
    cpu_ipc: float = 1.0
    llc_bytes: int = 22 * 2**20
    dram_bw_bytes_s: float = 38.4e9
    # Host<->PIM transfer bandwidths.
    pim_bus_bw_bytes_s: float = 8e9
    pim_module_link_bw_bytes_s: float = 628e6
    # Per-round fixed overheads (mux switch [54] + driver/API software).
    mux_switch_s: float = 15e-6
    sdk_overhead_per_round_s: float = 20e-6
    direct_api_overhead_per_round_s: float = 6e-6
    # Per-word software cost multiplier of the stock SDK path (§6,
    # *Improved Direct API*): the SDK's intermediate layers copy/translate.
    sdk_word_cost_multiplier: float = 1.08
    # Per-(module, round) DMA setup latency: every module that exchanges
    # data in a round pays a fixed scatter/gather descriptor cost.  This is
    # the term the Direct Interface [50] shrinks by bypassing SDK layers,
    # and the reason large batches amortise better (Fig. 7).
    dma_setup_direct_s: float = 1.5e-7
    dma_setup_sdk_s: float = 3e-7
    direct_api: bool = True

    def scaled(self, n_modules: int) -> "PIMCostModel":
        """The same machine scaled to a different module count.

        Host↔PIM aggregate bandwidth scales with populated ranks
        (modules), and so do the per-round fixed overheads: the mux switch
        is paid per rank and the driver fans transfers out per rank, so a
        machine with 32x fewer ranks switches 32x less silicon.  Scaling
        both keeps per-operation costs comparable across module counts,
        which is what lets the scaled-down simulation reproduce the shape
        of the full-size results (see DESIGN.md).
        """
        factor = n_modules / self.n_modules
        return replace(
            self,
            n_modules=n_modules,
            pim_bus_bw_bytes_s=self.pim_bus_bw_bytes_s * factor,
            mux_switch_s=self.mux_switch_s * factor,
            sdk_overhead_per_round_s=self.sdk_overhead_per_round_s * factor,
            direct_api_overhead_per_round_s=self.direct_api_overhead_per_round_s
            * factor,
            # The host scales with the machine too (joint scaling): the
            # full-size server pairs 32 threads with 2048 modules.
            cpu_threads=max(1.0, self.cpu_threads * factor),
            dram_bw_bytes_s=self.dram_bw_bytes_s * factor,
        )

    def with_direct_api(self, enabled: bool) -> "PIMCostModel":
        return replace(self, direct_api=enabled)

    # ------------------------------------------------------------------
    @property
    def round_overhead_s(self) -> float:
        api = (
            self.direct_api_overhead_per_round_s
            if self.direct_api
            else self.sdk_overhead_per_round_s
        )
        return 2 * self.mux_switch_s + api

    @property
    def word_multiplier(self) -> float:
        return 1.0 if self.direct_api else self.sdk_word_cost_multiplier

    def time(self, c: PhaseCounters) -> SimTime:
        """Convert one phase's counters into simulated seconds."""
        compute_s = c.cpu_ops / (self.cpu_freq_hz * self.cpu_threads * self.cpu_ipc)
        dram_s = c.dram_words * WORD_BYTES / self.dram_bw_bytes_s
        cpu_s = max(compute_s, dram_s)

        pim_s = c.pim_cycles / self.pim_freq_hz

        words = c.comm_words * self.word_multiplier
        max_words = c.comm_max_words * self.word_multiplier
        bus_s = words * WORD_BYTES / self.pim_bus_bw_bytes_s
        link_s = max_words * WORD_BYTES / self.pim_module_link_bw_bytes_s
        dma = self.dma_setup_direct_s if self.direct_api else self.dma_setup_sdk_s
        comm_s = (
            max(bus_s, link_s)
            + c.rounds * self.round_overhead_s
            + c.module_rounds * dma
        )
        return SimTime(cpu_s, pim_s, comm_s)

    def traffic_bytes(self, c: PhaseCounters) -> float:
        """Memory-bus bytes: CPU↔PIM words plus CPU↔DRAM words (§7.1)."""
        return (c.comm_words * self.word_multiplier + c.dram_words) * WORD_BYTES


UPMEM_2048 = PIMCostModel()

# The paper argues its techniques "apply to a wide range of architectures
# beyond UPMEM" (§6).  Two alternative machine points bound the space:
#
# * FUTURE_PIM_2048 — a next-generation BLIMP machine (HBM-class stacking:
#   faster PIM cores, a wider host link, leaner handoff) on which offload
#   is strictly more attractive;
# * CONSERVATIVE_PIM_2048 — an early-generation part (slower cores, a
#   narrower host link, heavier mux switching) that stresses every
#   PIM-side decision.
#
# benchmarks/test_robustness_cost_models.py checks that the paper's
# qualitative conclusions survive both.
FUTURE_PIM_2048 = PIMCostModel(
    pim_freq_hz=1.0e9,
    pim_bus_bw_bytes_s=32e9,
    pim_module_link_bw_bytes_s=2e9,
    mux_switch_s=4e-6,
    direct_api_overhead_per_round_s=2e-6,
    sdk_overhead_per_round_s=8e-6,
    dma_setup_direct_s=5e-8,
    dma_setup_sdk_s=1e-7,
)

CONSERVATIVE_PIM_2048 = PIMCostModel(
    pim_freq_hz=200e6,
    pim_bus_bw_bytes_s=4e9,
    pim_module_link_bw_bytes_s=300e6,
    mux_switch_s=40e-6,
    direct_api_overhead_per_round_s=15e-6,
    sdk_overhead_per_round_s=60e-6,
    dma_setup_direct_s=4e-7,
    dma_setup_sdk_s=1.2e-6,
)


def upmem_scaled(n_modules: int) -> PIMCostModel:
    """The §7.1 UPMEM server scaled down to ``n_modules`` PIM modules."""
    return UPMEM_2048.scaled(n_modules)
