"""A last-level-cache (LLC) model for the host CPU.

UPMEM's host runs programs that overflow the L3, and the paper's memory
traffic metric includes CPU↔DRAM traffic (§2.1, §7.1).  We model the LLC as
a fully-associative LRU over cache blocks; every miss charges one block of
DRAM traffic.  Fully-associative LRU is the standard analytic stand-in for
a hardware set-associative cache and is what cache-oblivious analyses
assume.

Block identifiers are arbitrary hashables; the data structures hand out
stable ids per node / array chunk so re-touching a resident structure is a
hit.  ``stream`` models non-temporal bulk transfers (large scans) that
bypass the cache.
"""

from __future__ import annotations

from collections import OrderedDict

__all__ = ["LRUCache"]


class LRUCache:
    """Fully-associative LRU cache of ``capacity_blocks`` blocks."""

    def __init__(self, capacity_blocks: int, words_per_block: int = 8) -> None:
        if capacity_blocks < 1:
            raise ValueError("capacity must be at least one block")
        self.capacity_blocks = int(capacity_blocks)
        self.words_per_block = int(words_per_block)
        self._blocks: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.streamed_words = 0

    @property
    def dram_words(self) -> int:
        """Total words moved between the cache and DRAM."""
        return self.misses * self.words_per_block + self.streamed_words

    def touch(self, block_id) -> bool:
        """Access one block; returns ``True`` on a hit."""
        blocks = self._blocks
        if block_id in blocks:
            blocks.move_to_end(block_id)
            self.hits += 1
            return True
        self.misses += 1
        blocks[block_id] = None
        if len(blocks) > self.capacity_blocks:
            blocks.popitem(last=False)
        return False

    def touch_range(self, base_id, n_blocks: int) -> int:
        """Access ``n_blocks`` consecutive blocks; returns the miss count."""
        before = self.misses
        for i in range(int(n_blocks)):
            self.touch((base_id, i))
        return self.misses - before

    def stream(self, words: int) -> None:
        """Charge ``words`` of DRAM traffic without polluting the cache."""
        self.streamed_words += int(words)

    def resident(self, block_id) -> bool:
        """Whether the block is currently cached (no access recorded)."""
        return block_id in self._blocks

    def clear(self) -> None:
        self._blocks.clear()

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0
        self.streamed_words = 0
