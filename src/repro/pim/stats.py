"""Execution counters for the PIM Model simulator.

The PIM Model (Kang et al., SPAA'21) measures four quantities: CPU work,
CPU span, total CPU↔PIM communication (in words), and *PIM time* — the sum
over BSP rounds of the maximum per-module work in that round.  This module
defines the counter containers the simulator fills in and the arithmetic
(snapshot / diff) the evaluation harness uses to isolate a measured phase
from warmup.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["PhaseCounters", "PIMStats"]


@dataclass
class PhaseCounters:
    """Counters attributed to one named phase (e.g. ``"search:l1"``)."""

    cpu_ops: float = 0.0
    cpu_span: float = 0.0
    pim_cycles: float = 0.0  # Σ over rounds of max per-module cycles
    comm_words: float = 0.0  # total CPU↔PIM words
    comm_max_words: float = 0.0  # Σ over rounds of max per-module words
    rounds: int = 0
    module_rounds: float = 0.0  # (module, round) pairs that moved data
    dram_words: float = 0.0  # CPU↔DRAM traffic from the LLC model

    def add(self, other: "PhaseCounters") -> None:
        self.cpu_ops += other.cpu_ops
        self.cpu_span += other.cpu_span
        self.pim_cycles += other.pim_cycles
        self.comm_words += other.comm_words
        self.comm_max_words += other.comm_max_words
        self.rounds += other.rounds
        self.module_rounds += other.module_rounds
        self.dram_words += other.dram_words

    def copy(self) -> "PhaseCounters":
        return PhaseCounters(
            self.cpu_ops,
            self.cpu_span,
            self.pim_cycles,
            self.comm_words,
            self.comm_max_words,
            self.rounds,
            self.module_rounds,
            self.dram_words,
        )

    def diff(self, earlier: "PhaseCounters") -> "PhaseCounters":
        return PhaseCounters(
            self.cpu_ops - earlier.cpu_ops,
            self.cpu_span - earlier.cpu_span,
            self.pim_cycles - earlier.pim_cycles,
            self.comm_words - earlier.comm_words,
            self.comm_max_words - earlier.comm_max_words,
            self.rounds - earlier.rounds,
            self.module_rounds - earlier.module_rounds,
            self.dram_words - earlier.dram_words,
        )

    def to_dict(self) -> dict:
        """Plain-dict form (determinism tests, CLI/JSON export)."""
        return {
            "cpu_ops": self.cpu_ops,
            "cpu_span": self.cpu_span,
            "pim_cycles": self.pim_cycles,
            "comm_words": self.comm_words,
            "comm_max_words": self.comm_max_words,
            "rounds": self.rounds,
            "module_rounds": self.module_rounds,
            "dram_words": self.dram_words,
        }


@dataclass
class PIMStats:
    """Aggregate counters for a whole simulated execution.

    ``total`` accumulates everything; ``phases`` splits the same quantities
    by the phase label active when they were charged (used for the Fig. 6
    runtime-breakdown reproduction).
    """

    total: PhaseCounters = field(default_factory=PhaseCounters)
    phases: dict[str, PhaseCounters] = field(default_factory=dict)
    mux_switches: int = 0

    def phase(self, label: str) -> PhaseCounters:
        if label not in self.phases:
            self.phases[label] = PhaseCounters()
        return self.phases[label]

    def snapshot(self) -> "PIMStats":
        snap = PIMStats(total=self.total.copy(), mux_switches=self.mux_switches)
        snap.phases = {k: v.copy() for k, v in self.phases.items()}
        return snap

    def diff(self, earlier: "PIMStats") -> "PIMStats":
        out = PIMStats(
            total=self.total.diff(earlier.total),
            mux_switches=self.mux_switches - earlier.mux_switches,
        )
        labels = set(self.phases) | set(earlier.phases)
        for label in labels:
            a = self.phases.get(label, PhaseCounters())
            b = earlier.phases.get(label, PhaseCounters())
            out.phases[label] = a.diff(b)
        return out

    def to_dict(self) -> dict:
        """Plain-dict form, phases sorted by label (byte-stable for a
        given execution — the determinism tests compare these directly)."""
        return {
            "total": self.total.to_dict(),
            "phases": {k: self.phases[k].to_dict() for k in sorted(self.phases)},
            "mux_switches": self.mux_switches,
        }
