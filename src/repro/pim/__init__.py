"""The PIM Model simulator substrate.

Stands in for the UPMEM server of §7.1: :class:`PIMSystem` executes BSP
rounds over ``P`` modules with exact work/communication accounting, and
:class:`PIMCostModel` converts the counters to simulated seconds and
memory-bus bytes.  See DESIGN.md for the substitution rationale.
"""

from .cache import LRUCache
from .cost_model import (
    CONSERVATIVE_PIM_2048,
    FUTURE_PIM_2048,
    UPMEM_2048,
    PIMCostModel,
    SimTime,
    upmem_scaled,
)
from .model import PIMSystem
from .module import PIMModule
from .stats import PhaseCounters, PIMStats

__all__ = [
    "CONSERVATIVE_PIM_2048",
    "FUTURE_PIM_2048",
    "LRUCache",
    "PIMCostModel",
    "PIMModule",
    "PIMStats",
    "PIMSystem",
    "PhaseCounters",
    "SimTime",
    "UPMEM_2048",
    "upmem_scaled",
]
