"""The PIM Model simulator: host CPU + P modules executing in BSP rounds.

This is the substrate standing in for the UPMEM server (see DESIGN.md).
The simulator is *functional*: the canonical index lives in host memory and
every algorithm runs as ordinary Python, but each step declares where it
would execute (CPU or a specific module) and what it would transfer, and
the simulator accounts for it exactly as the PIM Model defines:

* **CPU work/span** — ``charge_cpu``; CPU↔DRAM traffic flows through an
  LRU LLC model (``touch_cpu_block`` / ``dram_stream``).
* **PIM time** — within a BSP :meth:`round`, ``charge_pim(mid, cycles)``
  accumulates per-module work; at round close the *maximum* over modules
  is added (stragglers determine round completion, §2.1).
* **Communication** — ``send``/``recv``/``broadcast`` inside a round count
  words total and per-module; each round also counts two mux switches
  (CPU→PIM and PIM→CPU handover [54]).

Phases (:meth:`phase`) label charges for the Fig. 6 runtime breakdown;
attribution is decided *at charge time*: work/communication charged while a
phase is active is booked to that phase even when the enclosing BSP round
closes under a different phase, and a round that touched no module charges
nothing (no round, no mux switch).  Placement (:meth:`place`) is the
hash-based randomisation of §3: a salted deterministic hash, so layouts are
reproducible under a fixed seed yet adversary-oblivious.

An optional :class:`repro.obs.TraceCollector` (``tracer=`` /
:meth:`attach_tracer`) observes every charge and round close; with none
attached the per-charge cost is a single ``is None`` test and the counters
are byte-identical to an untraced run.

Two simulator cores implement identical semantics (``sim_mode=``):
``"scalar"`` keeps one :class:`~repro.pim.module.PIMModule` object per
module (the byte-exact oracle), while ``"vector"`` backs all per-module
round state with NumPy arrays (:mod:`repro.pim.vector`) and closes
rounds with a handful of array reductions — the paper-scale (P = 2048)
fast path.  Both modes produce byte-identical :class:`PIMStats`; the
differential suite in ``tests/test_sim_modes.py`` enforces it.  The
array-native entry points (:meth:`charge_pim_array`, :meth:`send_array`,
:meth:`recv_array`) exist in both modes; in scalar mode they degrade to
element-by-element charging.

An optional :class:`repro.faults.FaultPlan` (``fault_plan=`` /
:meth:`attach_faults`) injects seeded faults at the charging sites:
charges addressed to a decommissioned module raise
:class:`~repro.faults.ModuleFailure`, transfers may be dropped
(:class:`~repro.faults.MessageLoss`, raised before the words are
charged), straggler slowdowns multiply ``charge_pim`` cycles, and each
round close advances the plan's crash/storm schedule.  With no plan
attached (and no dead modules) every fault check is a single ``is None``
or empty-set test and the counters are byte-identical to a fault-free
run.
"""

from __future__ import annotations

import hashlib
from contextlib import contextmanager

import numpy as np

from ..faults.errors import MachineKill, MessageLoss, ModuleFailure
from .cache import LRUCache
from .module import PIMModule
from .stats import PIMStats
from .vector import VectorState

__all__ = ["PIMSystem"]

_WORDS_PER_BLOCK = 8  # 64-byte cache blocks


def _canonical_key(key):
    """Reduce a placement key to a NumPy-free canonical form.

    Placement hashes ``repr(key)``, and NumPy ≥ 2.0 changed scalar reprs
    (``repr(np.int64(5))`` became ``"np.int64(5)"``), so a NumPy scalar
    leaking into a key would move the key to a different module than the
    equal Python scalar — making layouts, comm counters and golden stats
    depend on the NumPy version and on which caller's dtype reached the
    key.  Integral and floating scalars are therefore collapsed onto their
    exact Python equivalents, and containers are canonicalised recursively.
    """
    if type(key) in (int, str, bytes, bool):
        return key
    if isinstance(key, (tuple, list)):
        return tuple(_canonical_key(k) for k in key)
    if isinstance(key, np.bool_):
        return bool(key)
    if isinstance(key, (np.integer, int)):
        return int(key)
    if isinstance(key, (np.floating, float)):
        return float(key)
    if isinstance(key, np.str_):
        return str(key)
    if isinstance(key, np.bytes_):
        return bytes(key)
    return key


class PIMSystem:
    """A host CPU plus ``n_modules`` PIM modules (the PIM Model, Fig. 2)."""

    def __init__(
        self,
        n_modules: int,
        *,
        llc_bytes: int = 22 * 2**20,
        module_capacity_words: int | None = None,
        seed: int = 0,
        tracer=None,
        fault_plan=None,
        sim_mode: str = "vector",
    ) -> None:
        if n_modules < 1:
            raise ValueError("need at least one PIM module")
        if sim_mode not in ("scalar", "vector"):
            raise ValueError(
                f"sim_mode must be 'scalar' or 'vector', got {sim_mode!r}"
            )
        self.n_modules = int(n_modules)
        self.sim_mode = sim_mode
        if sim_mode == "vector":
            self._vec = VectorState(self.n_modules, module_capacity_words)
            self.modules = self._vec.views
            if module_capacity_words is not None:
                self._vec.pressure_cb = self._capacity_pressure
        else:
            self._vec = None
            self.modules = [
                PIMModule(mid, module_capacity_words)
                for mid in range(self.n_modules)
            ]
            if module_capacity_words is not None:
                for m in self.modules:
                    m.pressure_cb = self._capacity_pressure
        self.llc = LRUCache(max(1, llc_bytes // 64), words_per_block=_WORDS_PER_BLOCK)
        self.stats = PIMStats()
        self.seed = seed
        self._salt = str(seed).encode()
        self._phase_stack: list[str] = []
        self._pin_depth = 0  # >0: inner phase() calls do not relabel
        self._in_round = False
        self._round_dirty: set[int] = set()
        self._round_entry_phase = "other"
        self._rounds_charged = 0  # non-empty rounds closed so far
        self._trace = tracer
        self._faults = fault_plan
        self._dead: set[int] = set()  # decommissioned module ids
        # Whole-machine kill: set by a "machine_kill" fault event at round
        # close; the *next* round entry raises MachineKill (the last round
        # books normally — its results were already on the wire).
        self._machine_dead = False
        # Outcome of the most recent broadcast: (delivered_mids,
        # dropped_mids) as tuples in module-id order.  Under a drop-prone
        # fault plan the fan-out is atomic per module: every live module
        # is attempted, losses are recorded here (and on the raised
        # MessageLoss), and nothing is left half-attempted.
        self.last_broadcast: tuple[tuple[int, ...], tuple[int, ...]] | None = None
        # Persistent placement overrides (repro.balance migrations): maps
        # the canonical key encoding to a module id.  Consulted by place()
        # before the salted hash; an override whose target died is ignored
        # (the deterministic fault-rehash path takes over), so migration
        # and failover compose.  Empty by default — one truthiness test on
        # the hot path, byte-identical placement when no migration ran.
        self._place_overrides: dict[bytes, int] = {}

    # ------------------------------------------------------------------
    # tracing
    # ------------------------------------------------------------------
    @property
    def tracer(self):
        """The attached :class:`repro.obs.TraceCollector`, or ``None``."""
        return self._trace

    def attach_tracer(self, tracer) -> None:
        """Attach a trace collector (replaces any previous one).

        For exact reconciliation against :attr:`stats`, attach before any
        charge — or diff the stats against a snapshot taken now.
        """
        self._trace = tracer

    def detach_tracer(self):
        """Detach and return the current collector (tracing off)."""
        tracer, self._trace = self._trace, None
        return tracer

    # ------------------------------------------------------------------
    # faults
    # ------------------------------------------------------------------
    @property
    def fault_plan(self):
        """The attached :class:`repro.faults.FaultPlan`, or ``None``."""
        return self._faults

    def attach_faults(self, plan) -> None:
        """Attach a fault plan (replaces any previous one)."""
        self._faults = plan

    def detach_faults(self):
        """Detach and return the current fault plan (faults off)."""
        plan, self._faults = self._faults, None
        return plan

    @property
    def dead_modules(self) -> frozenset[int]:
        """Ids of decommissioned modules."""
        return frozenset(self._dead)

    @property
    def n_live(self) -> int:
        """Number of modules still in service."""
        return self.n_modules - len(self._dead)

    @contextmanager
    def faults_suppressed(self):
        """No new fault injection inside the block (recovery/repair paths).

        Dead-module checks stay in force — a decommissioned module can
        never be charged — but drops, crashes and storms are paused, so
        repair traffic always completes.
        """
        plan = self._faults
        if plan is None:
            yield
            return
        prev = plan.paused
        plan.paused = True
        try:
            yield
        finally:
            plan.paused = prev

    def decommission(self, mid: int) -> None:
        """Mark module ``mid`` dead: it holds nothing and accepts no charge.

        Idempotent.  Placement (:meth:`place`) excludes dead modules from
        here on; residency is zeroed (the master copies are gone — the
        host-resident canonical index is the source for any rebuild).
        """
        mid = int(mid)
        if mid in self._dead:
            return
        if self.n_live <= 1:
            raise RuntimeError("cannot decommission the last live module")
        self._dead.add(mid)
        m = self.modules[mid]
        m.failed = True
        m.master_words = 0.0
        m.cache_words = 0.0

    @property
    def machine_dead(self) -> bool:
        """True once a whole-machine kill landed; rounds now refuse to run."""
        return self._machine_dead

    def kill_machine(self) -> None:
        """Externally kill the whole machine (CLI / tests).

        The next BSP round entry raises
        :class:`~repro.faults.MachineKill`; only the durable tier can
        bring the service back (see :mod:`repro.store`).
        """
        self._machine_dead = True
        if self._trace is not None:
            from ..faults.plan import FaultEvent

            self._notify_fault(
                FaultEvent("machine_kill", -1, self._rounds_charged, 0.0,
                           "manual")
            )

    def kill_module(self, mid: int) -> None:
        """Externally crash module ``mid`` (CLI / tests), recording the event."""
        self.decommission(mid)
        if self._faults is not None:
            ev = self._faults.record_kill(int(mid), self._rounds_charged)
            self._notify_fault(ev)
        elif self._trace is not None:
            from ..faults.plan import FaultEvent

            self._notify_fault(
                FaultEvent("kill", int(mid), self._rounds_charged, 0.0, "manual")
            )

    def _notify_fault(self, event) -> None:
        if self._trace is not None:
            on_fault = getattr(self._trace, "on_fault", None)
            if on_fault is not None:
                on_fault(self.current_phase, event)

    def _check_dead(self, mid: int) -> None:
        if self._dead and mid in self._dead:
            raise ModuleFailure(mid)

    def _check_drop(self, direction: str, mid: int, words: float) -> None:
        ev = self._faults.should_drop(direction, mid, words, self._rounds_charged)
        if ev is not None:
            self._notify_fault(ev)
            raise MessageLoss(mid, direction, words)

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    def place(self, key) -> int:
        """Deterministic salted-hash placement of ``key`` onto a module.

        Keys are canonicalised first (NumPy scalars → Python scalars,
        containers recursively) so placement is independent of the caller's
        dtype and of the installed NumPy version's repr conventions.

        Placement overrides (recorded by ``repro.balance`` migrations via
        :meth:`set_placement_override`) take precedence over the hash while
        their target module is live; a dead target falls through to the
        hash-plus-rehash path below, so an override never routes to a
        decommissioned module and fault recovery composes with migration.

        Dead modules are excluded by deterministic rehashing: attempt 0 is
        the plain salted hash (byte-identical to the fault-free layout),
        and each further attempt mixes an attempt counter into the digest
        until a live module is hit — so failover re-placement is itself a
        pure function of (key, seed, dead set, overrides).
        """
        data = repr(_canonical_key(key)).encode()
        if self._place_overrides:
            mid = self._place_overrides.get(data)
            if mid is not None and mid not in self._dead:
                return mid
        digest = hashlib.blake2b(
            data, key=self._salt[:16], digest_size=8
        ).digest()
        mid = int.from_bytes(digest, "little") % self.n_modules
        if not self._dead:
            return mid
        attempt = 0
        while mid in self._dead:
            attempt += 1
            digest = hashlib.blake2b(
                data + b"#retry%d" % attempt, key=self._salt[:16], digest_size=8
            ).digest()
            mid = int.from_bytes(digest, "little") % self.n_modules
        return mid

    def set_placement_override(self, key, mid: int) -> None:
        """Pin ``key``'s placement to module ``mid`` (migration routing).

        The override persists across rechunks and failovers: any later
        :meth:`place` call with the same (canonicalised) key routes to
        ``mid`` while it is live, and falls back to the deterministic
        rehash once it dies.  Host-side control-plane state: recording an
        override charges nothing.
        """
        mid = int(mid)
        if not 0 <= mid < self.n_modules:
            raise ValueError(f"override target {mid} out of range")
        if mid in self._dead:
            raise ValueError(f"cannot pin placement to dead module {mid}")
        self._place_overrides[repr(_canonical_key(key)).encode()] = mid

    def clear_placement_override(self, key) -> None:
        """Drop ``key``'s override (placement reverts to the salted hash)."""
        self._place_overrides.pop(repr(_canonical_key(key)).encode(), None)

    @property
    def n_placement_overrides(self) -> int:
        return len(self._place_overrides)

    def _capacity_pressure(self, module: PIMModule) -> None:
        """A module allocation crossed ``capacity_words`` — record it.

        Capacity pressure is *recorded*, never booked (like fault events):
        the event reaches an attached ``repro.obs`` collector so dashboards
        and the rebalance planner can see it, but no counter moves, so
        reconciliation stays bit-exact.
        """
        if self._trace is not None:
            on_capacity = getattr(self._trace, "on_capacity", None)
            if on_capacity is not None:
                on_capacity(
                    self.current_phase, module.mid,
                    module.used_words, float(module.capacity_words),
                )

    def over_capacity_modules(self) -> list[int]:
        """Ids of live modules whose residency exceeds ``capacity_words``.

        These are mandatory migration sources for the
        :class:`repro.balance` planner.
        """
        return [
            m.mid for m in self.modules if not m.failed and m.over_capacity()
        ]

    # ------------------------------------------------------------------
    # phases
    # ------------------------------------------------------------------
    @property
    def current_phase(self) -> str:
        return self._phase_stack[-1] if self._phase_stack else "other"

    @contextmanager
    def phase(self, label: str, *, pin: bool = False):
        """Attribute subsequent charges to ``label`` (nested: innermost wins).

        With ``pin=True`` the label also *wins against its descendants*:
        while a pinned phase is active, inner unpinned ``phase()`` calls
        are no-ops, so code that normally books under its own labels
        ("insert", "wal", …) books under the pinned one instead.  Used by
        the durable tier's recovery path, which replays journaled batches
        through the ordinary operation code but must land every charge in
        the "recovery" bucket.
        """
        if self._pin_depth and not pin:
            yield
            return
        self._phase_stack.append(label)
        if pin:
            self._pin_depth += 1
        try:
            yield
        finally:
            self._phase_stack.pop()
            if pin:
                self._pin_depth -= 1

    # ------------------------------------------------------------------
    # CPU side
    # ------------------------------------------------------------------
    def charge_cpu(self, ops: float, span: float = 0.0) -> None:
        """Charge CPU work (instructions across all threads) and span."""
        phase = self.current_phase
        t = self.stats.total
        t.cpu_ops += ops
        t.cpu_span += span
        p = self.stats.phase(phase)
        p.cpu_ops += ops
        p.cpu_span += span
        if self._trace is not None:
            self._trace.on_cpu(phase, ops, span)

    def touch_cpu_block(self, block_id) -> bool:
        """One CPU access to a 64-byte block; charges DRAM traffic on miss."""
        hit = self.llc.touch(block_id)
        if not hit:
            phase = self.current_phase
            self.stats.total.dram_words += _WORDS_PER_BLOCK
            self.stats.phase(phase).dram_words += _WORDS_PER_BLOCK
            if self._trace is not None:
                self._trace.on_dram(phase, _WORDS_PER_BLOCK, streamed=False)
        return hit

    def touch_cpu_range(self, base_id, n_blocks: int) -> None:
        for i in range(int(n_blocks)):
            self.touch_cpu_block((base_id, i))

    def touch_cpu_blocks(self, block_ids) -> None:
        """Sequential CPU accesses to many blocks, charged in one call.

        Equivalent to calling :meth:`touch_cpu_block` on each id in order
        (the LLC sees the identical access sequence, so hit/miss behaviour
        and therefore ``dram_words`` are byte-identical); the stats update
        is aggregated into a single per-phase increment.
        """
        touch = self.llc.touch
        misses = 0
        for b in block_ids:
            if not touch(b):
                misses += 1
        if misses:
            words = misses * _WORDS_PER_BLOCK
            phase = self.current_phase
            self.stats.total.dram_words += words
            self.stats.phase(phase).dram_words += words
            if self._trace is not None:
                self._trace.on_dram(phase, words, streamed=False)

    def dram_stream(self, words: float) -> None:
        """Streaming (non-cached) CPU↔DRAM transfer of ``words`` words."""
        phase = self.current_phase
        self.llc.streamed_words += int(words)
        self.stats.total.dram_words += words
        self.stats.phase(phase).dram_words += words
        if self._trace is not None:
            self._trace.on_dram(phase, words, streamed=True)

    # ------------------------------------------------------------------
    # BSP rounds / PIM side
    # ------------------------------------------------------------------
    @contextmanager
    def round(self):
        """One BSP round: PIM execution + CPU↔PIM transfers.

        At close, the straggler's cycles (max over modules) are added to
        PIM time; communication is totalled and its per-module maximum
        recorded (the channel to one module is the bottleneck link).

        Attribution is decided at charge time: the straggler's cycles and
        every module's words are booked to the phases under which they were
        charged (round-level scalars — the round itself and its DMA module
        rounds — go to the phase active at round *entry*).  A round that
        touched no module is a no-op: no round, no mux switch, no charge.
        """
        if self._in_round:
            raise RuntimeError("BSP rounds cannot nest")
        if self._machine_dead:
            raise MachineKill(self._rounds_charged)
        self._in_round = True
        self._round_dirty.clear()
        self._round_entry_phase = self.current_phase
        try:
            yield
        finally:
            self._in_round = False
            if self._round_dirty or (
                    self._vec is not None and self._vec.dirty.any()):
                self._close_round()

    def _close_round(self) -> None:
        """Book one non-empty BSP round into the stats (and the trace)."""
        if self._vec is None:
            self._book_round_scalar()
        else:
            self._book_round_vector()
        self._rounds_charged += 1

        # Advance the fault schedule: storms decay/start, crashes land.
        # Crash events are applied here (decommission) so the failure is
        # detected on the *next* charge addressed to the dead module.
        if self._faults is not None and not self._faults.paused:
            if self._vec is None:
                live = [m.mid for m in self.modules if not m.failed]
            else:
                live = [int(i) for i in np.flatnonzero(~self._vec.failed)]
            for ev in self._faults.on_round_close(self._rounds_charged - 1, live):
                if ev.kind == "crash":
                    if self.n_live <= 1:
                        continue  # never crash the last live module
                    self.decommission(ev.mid)
                elif ev.kind == "machine_kill":
                    self._machine_dead = True
                self._notify_fault(ev)

    def _book_round_scalar(self) -> None:
        """Round booking over the per-module PIMModule objects (oracle)."""
        dirty = [self.modules[mid] for mid in sorted(self._round_dirty)]
        straggler = dirty[0]
        max_words_module = None
        max_cycles = 0.0
        max_words = 0.0
        total_words = 0.0
        module_rounds = 0
        for m in dirty:
            if m.round_cycles > max_cycles:
                max_cycles = m.round_cycles
                straggler = m
            w = m.round_words
            total_words += w
            if w > 0:
                module_rounds += 1
            if w > max_words:
                max_words = w
                max_words_module = m

        t = self.stats.total
        t.pim_cycles += max_cycles
        t.comm_words += total_words
        t.comm_max_words += max_words
        t.rounds += 1
        t.module_rounds += module_rounds
        # Charge-time attribution: the straggler's cycles split by the
        # phases it was charged under; comm split by each word's phase; the
        # bottleneck-link max by the bottleneck module's phases.  Round
        # scalars go to the entry phase.  Every total increment above is
        # mirrored exactly by the per-phase increments below, so
        # ``total == Σ phases`` holds for every counter.
        for ph, cyc in straggler.round_phase_cycles.items():
            self.stats.phase(ph).pim_cycles += cyc
        for m in dirty:
            for ph, w in m.round_phase_words.items():
                self.stats.phase(ph).comm_words += w
        if max_words_module is not None:
            for ph, w in max_words_module.round_phase_words.items():
                self.stats.phase(ph).comm_max_words += w
        entry = self.stats.phase(self._round_entry_phase)
        entry.rounds += 1
        entry.module_rounds += module_rounds
        self.stats.mux_switches += 2

        if self._trace is not None:
            from ..obs.trace import RoundRecord

            self._trace.on_round(
                RoundRecord(
                    index=self._rounds_charged,
                    entry_phase=self._round_entry_phase,
                    straggler_mid=straggler.mid,
                    max_cycles=max_cycles,
                    total_words=total_words,
                    max_words=max_words,
                    max_words_mid=(
                        max_words_module.mid if max_words_module is not None else -1
                    ),
                    module_rounds=module_rounds,
                    touched=len(dirty),
                    cycles_by_module={m.mid: m.round_cycles for m in dirty},
                    words_by_module={m.mid: m.round_words for m in dirty},
                    pim_cycles_by_phase=dict(straggler.round_phase_cycles),
                    phase_words_by_module={
                        m.mid: dict(m.round_phase_words) for m in dirty
                    },
                    comm_max_words_by_phase=(
                        dict(max_words_module.round_phase_words)
                        if max_words_module is not None
                        else {}
                    ),
                )
            )
        for m in dirty:
            m.begin_round()

    def _book_round_vector(self) -> None:
        """Round booking over the VectorState arrays.

        Byte-identical to :meth:`_book_round_scalar`: the straggler and
        bottleneck-link argmaxes use first-occurrence-over-sorted-mids
        (matching the scalar strict ``>`` scan), per-phase splits are
        guarded against zero so no spurious phase bucket is created, and
        all sums are over integer-valued charges (exact in float64, so
        summation order is irrelevant).
        """
        v = self._vec
        if self._round_dirty:
            # Union in the modules the scalar entry points touched.
            v.dirty[np.fromiter(self._round_dirty, dtype=np.intp,
                                count=len(self._round_dirty))] = True
        mids = np.flatnonzero(v.dirty)  # ascending, like sorted(set)
        mids_list = mids.tolist()
        rc = v.round_cycles[mids]
        rw = v.round_send_words[mids] + v.round_recv_words[mids]
        i_straggler = int(np.argmax(rc))
        straggler_mid = mids_list[i_straggler]
        max_cycles = float(rc[i_straggler])
        i_words = int(np.argmax(rw))
        max_words = float(rw[i_words])
        max_words_mid = mids_list[i_words] if max_words > 0 else None
        if max_words <= 0:
            max_words = 0.0
        total_words = float(rw.sum())
        module_rounds = int(np.count_nonzero(rw > 0))

        t = self.stats.total
        t.pim_cycles += max_cycles
        t.comm_words += total_words
        t.comm_max_words += max_words
        t.rounds += 1
        t.module_rounds += module_rounds
        for ph, arr in v.round_phase_cycles.items():
            c = float(arr[straggler_mid])
            if c != 0.0:
                self.stats.phase(ph).pim_cycles += c
        for ph, arr in v.round_phase_words.items():
            w = float(arr.sum())
            if w != 0.0:
                self.stats.phase(ph).comm_words += w
        if max_words_mid is not None:
            for ph, arr in v.round_phase_words.items():
                w = float(arr[max_words_mid])
                if w != 0.0:
                    self.stats.phase(ph).comm_max_words += w
        entry = self.stats.phase(self._round_entry_phase)
        entry.rounds += 1
        entry.module_rounds += module_rounds
        self.stats.mux_switches += 2

        if self._trace is not None:
            from ..obs.trace import RoundRecord

            self._trace.on_round(
                RoundRecord(
                    index=self._rounds_charged,
                    entry_phase=self._round_entry_phase,
                    straggler_mid=straggler_mid,
                    max_cycles=max_cycles,
                    total_words=total_words,
                    max_words=max_words,
                    max_words_mid=(
                        max_words_mid if max_words_mid is not None else -1
                    ),
                    module_rounds=module_rounds,
                    touched=len(mids_list),
                    cycles_by_module={
                        m: float(v.round_cycles[m]) for m in mids_list
                    },
                    words_by_module={
                        m: float(v.round_send_words[m] + v.round_recv_words[m])
                        for m in mids_list
                    },
                    pim_cycles_by_phase={
                        ph: float(arr[straggler_mid])
                        for ph, arr in v.round_phase_cycles.items()
                        if arr[straggler_mid] != 0.0
                    },
                    phase_words_by_module={
                        m: {
                            ph: float(arr[m])
                            for ph, arr in v.round_phase_words.items()
                            if arr[m] != 0.0
                        }
                        for m in mids_list
                    },
                    comm_max_words_by_phase=(
                        {
                            ph: float(arr[max_words_mid])
                            for ph, arr in v.round_phase_words.items()
                            if arr[max_words_mid] != 0.0
                        }
                        if max_words_mid is not None
                        else {}
                    ),
                )
            )
        v.reset_round(mids)

    def _module_in_round(self, mid: int) -> PIMModule:
        if not self._in_round:
            raise RuntimeError("PIM activity is only legal inside a BSP round")
        if self._dead and mid in self._dead:
            raise ModuleFailure(mid)
        self._round_dirty.add(mid)
        return self.modules[mid]

    def charge_pim(self, mid: int, cycles: float) -> None:
        """Charge PIM-core cycles on module ``mid`` in the current round.

        With a fault plan attached, straggler slowdowns (static and storm)
        multiply the charged cycles — the slow module inflates the round's
        straggler max exactly as §2.1's max-over-modules dictates.

        A zero charge is a complete no-op (matching the bulk/array entry
        points, which skip zero amounts): it does not dirty the module,
        book a round, or consult the fault plan.
        """
        if not cycles:
            return
        phase = self.current_phase
        m = self._module_in_round(mid)
        if self._faults is not None:
            f = self._faults.slow_factor(mid)
            if f != 1.0:
                cycles = cycles * f
        m.charge(cycles, phase)
        if self._trace is not None:
            self._trace.on_pim(phase, mid, cycles)

    def send(self, mid: int, words: float) -> None:
        """CPU → module transfer of ``words`` words in the current round.

        With a fault plan attached the transfer may be dropped
        (:class:`~repro.faults.MessageLoss`), raised *before* the words are
        charged; work already charged in the round stands and books when
        the round closes.

        A zero-word send is a complete no-op (matching the bulk/array
        entry points): no dirty module, no round, no drop roll.
        """
        if not words:
            return
        phase = self.current_phase
        m = self._module_in_round(mid)
        if self._faults is not None:
            self._check_drop("send", mid, words)
        m.add_recv(words, phase)
        if self._trace is not None:
            self._trace.on_send(phase, mid, words)

    def recv(self, mid: int, words: float) -> None:
        """Module → CPU transfer of ``words`` words in the current round.

        A zero-word recv is a complete no-op, like :meth:`send`.
        """
        if not words:
            return
        phase = self.current_phase
        m = self._module_in_round(mid)
        if self._faults is not None:
            self._check_drop("recv", mid, words)
        m.add_send(words, phase)
        if self._trace is not None:
            self._trace.on_recv(phase, mid, words)

    # -- array-native entry points --------------------------------------
    #
    # charge_pim_array / send_array / recv_array accept parallel (mids,
    # amounts) arrays and are available in both sim modes: in scalar mode
    # (or whenever a tracer, dead modules, or drop faults demand exact
    # per-element semantics) they degrade to the element-by-element scalar
    # calls, so they are byte-identical to a hand-written loop by
    # construction.  In vector mode with no such complication they update
    # the VectorState arrays with a handful of NumPy ops — the fast path
    # the vexec kernels and the bulk-build ride at P=2048.

    @staticmethod
    def _as_charge_arrays(mids, amounts):
        """Canonicalise to (intp mids, float64 amounts) with zeros dropped."""
        mids = np.asarray(mids, dtype=np.intp)
        amounts = np.asarray(amounts, dtype=np.float64)
        if amounts.ndim == 0:
            amounts = np.broadcast_to(amounts, mids.shape)
        nz = amounts != 0.0
        if not nz.all():
            mids = mids[nz]
            amounts = amounts[nz]
        return mids, amounts

    def charge_pim_array(self, mids, cycles) -> None:
        """Charge PIM cycles on many modules from parallel arrays.

        Zero entries are skipped (same no-op semantics as the scalar
        path); slowdown factors are applied as a per-module multiplier
        vector.  Byte-identical to calling :meth:`charge_pim` once per
        element in array order.
        """
        mids, cycles = self._as_charge_arrays(mids, cycles)
        if mids.size == 0:
            return
        v = self._vec
        if v is None or self._trace is not None or self._dead:
            for mid, c in zip(mids.tolist(), cycles.tolist()):
                self.charge_pim(mid, c)
            return
        if not self._in_round:
            raise RuntimeError("PIM activity is only legal inside a BSP round")
        if self._faults is not None:
            # x * 1.0 == x exactly, so the all-ones baseline is inert.
            cycles = cycles * self._faults.slow_vector(self.n_modules)[mids]
        v.dirty[mids] = True
        phase_arr = v.phase_cycles(self.current_phase)
        np.add.at(v.round_cycles, mids, cycles)
        np.add.at(v.total_cycles, mids, cycles)
        np.add.at(phase_arr, mids, cycles)

    def _transfer_array(self, direction: str, mids, words) -> None:
        mids, words = self._as_charge_arrays(mids, words)
        if mids.size == 0:
            return
        v = self._vec
        drops_armed = (self._faults is not None
                       and self._faults.drop_rate > 0.0
                       and not self._faults.paused)
        if v is None or self._trace is not None or self._dead or drops_armed:
            # Element-by-element: preserves per-transfer drop-RNG order,
            # exact ModuleFailure raise points, and per-charge tracing.
            scalar = self.send if direction == "send" else self.recv
            for mid, w in zip(mids.tolist(), words.tolist()):
                scalar(mid, w)
            return
        if not self._in_round:
            raise RuntimeError("PIM activity is only legal inside a BSP round")
        v.dirty[mids] = True
        acc = v.round_recv_words if direction == "send" else v.round_send_words
        np.add.at(acc, mids, words)
        np.add.at(v.phase_words(self.current_phase), mids, words)

    def send_array(self, mids, words) -> None:
        """CPU → module transfers from parallel (mids, words) arrays."""
        self._transfer_array("send", mids, words)

    def recv_array(self, mids, words) -> None:
        """Module → CPU transfers from parallel (mids, words) arrays."""
        self._transfer_array("recv", mids, words)

    # -- dict-keyed bulk wrappers ---------------------------------------
    def charge_pim_bulk(self, cycles_by_mid: dict) -> None:
        """Charge PIM cycles on many modules, one call per round.

        ``cycles_by_mid`` maps module id → total cycles; each module's
        round accumulator receives one aggregated increment, which is
        byte-identical to charging the same total element by element
        (integer-valued charges sum exactly in float64).
        """
        n = len(cycles_by_mid)
        if not n:
            return
        self.charge_pim_array(
            np.fromiter(cycles_by_mid.keys(), dtype=np.intp, count=n),
            np.fromiter(cycles_by_mid.values(), dtype=np.float64, count=n),
        )

    def send_bulk(self, words_by_mid: dict) -> None:
        """CPU → module transfers to many modules in the current round."""
        n = len(words_by_mid)
        if not n:
            return
        self.send_array(
            np.fromiter(words_by_mid.keys(), dtype=np.intp, count=n),
            np.fromiter(words_by_mid.values(), dtype=np.float64, count=n),
        )

    def recv_bulk(self, words_by_mid: dict) -> None:
        """Module → CPU transfers from many modules in the current round."""
        n = len(words_by_mid)
        if not n:
            return
        self.recv_array(
            np.fromiter(words_by_mid.keys(), dtype=np.intp, count=n),
            np.fromiter(words_by_mid.values(), dtype=np.float64, count=n),
        )

    def charge_comm_flat(self, words: float) -> None:
        """Charge CPU↔PIM words without binding them to a specific round.

        Used for replication fan-out (lazy-counter syncs, cache refreshes)
        whose destinations are spread across many modules; the per-module
        maximum is approximated as an even spread.  Legal inside or outside
        a round.
        """
        if words <= 0:
            return
        phase = self.current_phase
        max_words = words / self.n_live
        for counters in (self.stats.total, self.stats.phase(phase)):
            counters.comm_words += words
            counters.comm_max_words += max_words
        if self._trace is not None:
            self._trace.on_comm_flat(phase, words, max_words)

    def broadcast(self, words_per_module: float) -> None:
        """CPU → all live modules (replication update); charged per module.

        The fan-out is atomic per module under a fault plan: every live
        module is attempted even when an earlier transfer is dropped, so
        a mid-loop :class:`~repro.faults.MessageLoss` can no longer leave
        later modules silently unsent.  The outcome is recorded in
        :attr:`last_broadcast` as ``(delivered_mids, dropped_mids)`` (both
        in module-id order, so a seeded plan reproduces it exactly); if
        any transfer dropped, the first loss is re-raised after the
        fan-out completes, carrying ``delivered_mids`` / ``dropped_mids``
        attributes for the caller's retry logic.
        """
        plan = self._faults
        if plan is None or plan.drop_rate <= 0.0 or plan.paused:
            live = [mid for mid in range(self.n_modules)
                    if mid not in self._dead]
            self.send_array(np.asarray(live, dtype=np.intp),
                            float(words_per_module))
            self.last_broadcast = (tuple(live), ())
            return
        delivered: list[int] = []
        dropped: list[int] = []
        first_loss: MessageLoss | None = None
        for mid in range(self.n_modules):
            if mid in self._dead:
                continue
            try:
                self.send(mid, words_per_module)
            except MessageLoss as e:
                dropped.append(mid)
                if first_loss is None:
                    first_loss = e
            else:
                delivered.append(mid)
        self.last_broadcast = (tuple(delivered), tuple(dropped))
        if first_loss is not None:
            first_loss.delivered_mids = tuple(delivered)
            first_loss.dropped_mids = tuple(dropped)
            raise first_loss

    # ------------------------------------------------------------------
    # residency / reporting
    # ------------------------------------------------------------------
    def master_words(self) -> float:
        if self._vec is not None:
            return float(self._vec.master_words.sum())
        return sum(m.master_words for m in self.modules)

    def cache_words(self) -> float:
        if self._vec is not None:
            return float(self._vec.cache_words.sum())
        return sum(m.cache_words for m in self.modules)

    def used_words(self) -> float:
        if self._vec is not None:
            return float(self._vec.master_words.sum()
                         + self._vec.cache_words.sum())
        return sum(m.used_words for m in self.modules)

    def module_loads(self) -> np.ndarray:
        """Cumulative PIM cycles per module (load-balance inspection)."""
        if self._vec is not None:
            return self._vec.total_cycles.copy()
        return np.array([m.total_cycles for m in self.modules])

    def residency(self) -> np.ndarray:
        """Words resident per module."""
        if self._vec is not None:
            return self._vec.master_words + self._vec.cache_words
        return np.array([m.used_words for m in self.modules])

    def snapshot(self) -> PIMStats:
        return self.stats.snapshot()

    def reset_measurement(self) -> PIMStats:
        """Snapshot used by the harness to measure a phase: ``end.diff(start)``."""
        return self.snapshot()
