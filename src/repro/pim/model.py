"""The PIM Model simulator: host CPU + P modules executing in BSP rounds.

This is the substrate standing in for the UPMEM server (see DESIGN.md).
The simulator is *functional*: the canonical index lives in host memory and
every algorithm runs as ordinary Python, but each step declares where it
would execute (CPU or a specific module) and what it would transfer, and
the simulator accounts for it exactly as the PIM Model defines:

* **CPU work/span** — ``charge_cpu``; CPU↔DRAM traffic flows through an
  LRU LLC model (``touch_cpu_block`` / ``dram_stream``).
* **PIM time** — within a BSP :meth:`round`, ``charge_pim(mid, cycles)``
  accumulates per-module work; at round close the *maximum* over modules
  is added (stragglers determine round completion, §2.1).
* **Communication** — ``send``/``recv``/``broadcast`` inside a round count
  words total and per-module; each round also counts two mux switches
  (CPU→PIM and PIM→CPU handover [54]).

Phases (:meth:`phase`) label charges for the Fig. 6 runtime breakdown.
Placement (:meth:`place`) is the hash-based randomisation of §3: a salted
deterministic hash, so layouts are reproducible under a fixed seed yet
adversary-oblivious.
"""

from __future__ import annotations

import hashlib
from contextlib import contextmanager

import numpy as np

from .cache import LRUCache
from .module import PIMModule
from .stats import PIMStats

__all__ = ["PIMSystem"]

_WORDS_PER_BLOCK = 8  # 64-byte cache blocks


class PIMSystem:
    """A host CPU plus ``n_modules`` PIM modules (the PIM Model, Fig. 2)."""

    def __init__(
        self,
        n_modules: int,
        *,
        llc_bytes: int = 22 * 2**20,
        module_capacity_words: int | None = None,
        seed: int = 0,
    ) -> None:
        if n_modules < 1:
            raise ValueError("need at least one PIM module")
        self.n_modules = int(n_modules)
        self.modules = [
            PIMModule(mid, module_capacity_words) for mid in range(self.n_modules)
        ]
        self.llc = LRUCache(max(1, llc_bytes // 64), words_per_block=_WORDS_PER_BLOCK)
        self.stats = PIMStats()
        self.seed = seed
        self._salt = str(seed).encode()
        self._phase_stack: list[str] = []
        self._in_round = False
        self._round_dirty: set[int] = set()

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    def place(self, key) -> int:
        """Deterministic salted-hash placement of ``key`` onto a module."""
        digest = hashlib.blake2b(
            repr(key).encode(), key=self._salt[:16], digest_size=8
        ).digest()
        return int.from_bytes(digest, "little") % self.n_modules

    # ------------------------------------------------------------------
    # phases
    # ------------------------------------------------------------------
    @property
    def current_phase(self) -> str:
        return self._phase_stack[-1] if self._phase_stack else "other"

    @contextmanager
    def phase(self, label: str):
        """Attribute subsequent charges to ``label`` (nested: innermost wins)."""
        self._phase_stack.append(label)
        try:
            yield
        finally:
            self._phase_stack.pop()

    # ------------------------------------------------------------------
    # CPU side
    # ------------------------------------------------------------------
    def charge_cpu(self, ops: float, span: float = 0.0) -> None:
        """Charge CPU work (instructions across all threads) and span."""
        t = self.stats.total
        t.cpu_ops += ops
        t.cpu_span += span
        p = self.stats.phase(self.current_phase)
        p.cpu_ops += ops
        p.cpu_span += span

    def touch_cpu_block(self, block_id) -> bool:
        """One CPU access to a 64-byte block; charges DRAM traffic on miss."""
        hit = self.llc.touch(block_id)
        if not hit:
            self.stats.total.dram_words += _WORDS_PER_BLOCK
            self.stats.phase(self.current_phase).dram_words += _WORDS_PER_BLOCK
        return hit

    def touch_cpu_range(self, base_id, n_blocks: int) -> None:
        for i in range(int(n_blocks)):
            self.touch_cpu_block((base_id, i))

    def dram_stream(self, words: float) -> None:
        """Streaming (non-cached) CPU↔DRAM transfer of ``words`` words."""
        self.llc.streamed_words += int(words)
        self.stats.total.dram_words += words
        self.stats.phase(self.current_phase).dram_words += words

    # ------------------------------------------------------------------
    # BSP rounds / PIM side
    # ------------------------------------------------------------------
    @contextmanager
    def round(self):
        """One BSP round: PIM execution + CPU↔PIM transfers.

        At close, the straggler's cycles (max over modules) are added to
        PIM time; communication is totalled and its per-module maximum
        recorded (the channel to one module is the bottleneck link).
        """
        if self._in_round:
            raise RuntimeError("BSP rounds cannot nest")
        self._in_round = True
        self._round_dirty.clear()
        try:
            yield
        finally:
            self._in_round = False
            max_cycles = 0.0
            max_words = 0.0
            total_words = 0.0
            module_rounds = 0
            for mid in self._round_dirty:
                m = self.modules[mid]
                if m.round_cycles > max_cycles:
                    max_cycles = m.round_cycles
                w = m.round_words
                total_words += w
                if w > 0:
                    module_rounds += 1
                if w > max_words:
                    max_words = w
                m.begin_round()
            for counters in (self.stats.total, self.stats.phase(self.current_phase)):
                counters.pim_cycles += max_cycles
                counters.comm_words += total_words
                counters.comm_max_words += max_words
                counters.rounds += 1
                counters.module_rounds += module_rounds
            self.stats.mux_switches += 2

    def _module_in_round(self, mid: int) -> PIMModule:
        if not self._in_round:
            raise RuntimeError("PIM activity is only legal inside a BSP round")
        self._round_dirty.add(mid)
        return self.modules[mid]

    def charge_pim(self, mid: int, cycles: float) -> None:
        """Charge PIM-core cycles on module ``mid`` in the current round."""
        self._module_in_round(mid).charge(cycles)

    def send(self, mid: int, words: float) -> None:
        """CPU → module transfer of ``words`` words in the current round."""
        self._module_in_round(mid).round_recv_words += words

    def recv(self, mid: int, words: float) -> None:
        """Module → CPU transfer of ``words`` words in the current round."""
        self._module_in_round(mid).round_send_words += words

    def charge_comm_flat(self, words: float) -> None:
        """Charge CPU↔PIM words without binding them to a specific round.

        Used for replication fan-out (lazy-counter syncs, cache refreshes)
        whose destinations are spread across many modules; the per-module
        maximum is approximated as an even spread.  Legal inside or outside
        a round.
        """
        if words <= 0:
            return
        for counters in (self.stats.total, self.stats.phase(self.current_phase)):
            counters.comm_words += words
            counters.comm_max_words += words / self.n_modules

    def broadcast(self, words_per_module: float) -> None:
        """CPU → all modules (replication update); charged per module."""
        for mid in range(self.n_modules):
            self.send(mid, words_per_module)

    # ------------------------------------------------------------------
    # residency / reporting
    # ------------------------------------------------------------------
    def master_words(self) -> float:
        return sum(m.master_words for m in self.modules)

    def cache_words(self) -> float:
        return sum(m.cache_words for m in self.modules)

    def used_words(self) -> float:
        return sum(m.used_words for m in self.modules)

    def module_loads(self) -> np.ndarray:
        """Cumulative PIM cycles per module (load-balance inspection)."""
        return np.array([m.total_cycles for m in self.modules])

    def residency(self) -> np.ndarray:
        """Words resident per module."""
        return np.array([m.used_words for m in self.modules])

    def snapshot(self) -> PIMStats:
        return self.stats.snapshot()

    def reset_measurement(self) -> PIMStats:
        """Snapshot used by the harness to measure a phase: ``end.diff(start)``."""
        return self.snapshot()
