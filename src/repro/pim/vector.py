"""Array-backed per-module state: the vector simulator core.

``sim_mode="vector"`` replaces the P ``PIMModule`` objects with a single
:class:`VectorState` holding one NumPy array per counter, indexed by
module id.  Per-round phase attribution keeps the same charge-time
semantics as the scalar path: one lazily created float64 array per phase
label active in the current round (``round_phase_cycles`` /
``round_phase_words``), cleared at round close.

Every charge the simulator books is integer-valued (the contract the
vectorized exec layer already relies on), so float64 array sums are
exact and order-independent — the vector core's round bookings are
byte-identical to the scalar oracle's sequential accumulation.

Call sites outside ``repro.pim`` never see the arrays directly: they
read and mutate residency through ``PIMSystem.modules``, which in vector
mode is a list of :class:`ModuleView` proxies whose attributes are
views onto the shared arrays.  The proxy implements the full
``PIMModule`` surface (residency alloc/free with the same clamp
semantics, capacity pressure, ``failed``, the round accumulators), so
``tree.refresh_residency``, the balance planner, introspection and
decommissioning run unchanged in either mode.
"""

from __future__ import annotations

import numpy as np

from .module import _checked_free

__all__ = ["VectorState", "ModuleView"]


class VectorState:
    """All per-module counters of a ``PIMSystem`` as arrays of length P."""

    __slots__ = (
        "n",
        "capacity_words",
        "pressure_cb",
        "total_cycles",
        "round_cycles",
        "round_send_words",
        "round_recv_words",
        "master_words",
        "cache_words",
        "failed",
        "dirty",
        "round_phase_cycles",
        "round_phase_words",
        "views",
    )

    def __init__(self, n: int, capacity_words: int | None = None) -> None:
        self.n = int(n)
        # Per-module capacity (None = unlimited), a plain list so tests
        # and the planner can override a single module's budget exactly
        # as they would set PIMModule.capacity_words.
        self.capacity_words: list = [capacity_words] * int(n)
        self.pressure_cb = None  # set by the owning PIMSystem
        self.total_cycles = np.zeros(n, dtype=np.float64)
        self.round_cycles = np.zeros(n, dtype=np.float64)
        self.round_send_words = np.zeros(n, dtype=np.float64)
        self.round_recv_words = np.zeros(n, dtype=np.float64)
        self.master_words = np.zeros(n, dtype=np.float64)
        self.cache_words = np.zeros(n, dtype=np.float64)
        self.failed = np.zeros(n, dtype=bool)
        # Modules touched by the *array* entry points this round (the
        # scalar entry points keep using PIMSystem._round_dirty); the
        # round close unions the two.  A mask beats a Python set here:
        # marking 2048 modules is one fancy-index store, not 2048 hashes.
        self.dirty = np.zeros(n, dtype=bool)
        # Charge-time phase attribution for the current round: one array
        # per phase label, created on first charge under that label.
        self.round_phase_cycles: dict[str, np.ndarray] = {}
        self.round_phase_words: dict[str, np.ndarray] = {}
        self.views = [ModuleView(self, mid) for mid in range(self.n)]

    # -- per-round phase arrays ----------------------------------------
    def phase_cycles(self, phase: str) -> np.ndarray:
        arr = self.round_phase_cycles.get(phase)
        if arr is None:
            arr = np.zeros(self.n, dtype=np.float64)
            self.round_phase_cycles[phase] = arr
        return arr

    def phase_words(self, phase: str) -> np.ndarray:
        arr = self.round_phase_words.get(phase)
        if arr is None:
            arr = np.zeros(self.n, dtype=np.float64)
            self.round_phase_words[phase] = arr
        return arr

    def reset_round(self, mids: np.ndarray) -> None:
        """Clear the round accumulators of the modules in ``mids``."""
        self.round_cycles[mids] = 0.0
        self.round_send_words[mids] = 0.0
        self.round_recv_words[mids] = 0.0
        self.dirty[mids] = False
        self.round_phase_cycles.clear()
        self.round_phase_words.clear()


class ModuleView:
    """``PIMModule``-compatible proxy over one slot of a VectorState."""

    __slots__ = ("_v", "mid")

    def __init__(self, state: VectorState, mid: int) -> None:
        self._v = state
        self.mid = mid

    # -- counters -------------------------------------------------------
    @property
    def capacity_words(self):
        return self._v.capacity_words[self.mid]

    @capacity_words.setter
    def capacity_words(self, value) -> None:
        self._v.capacity_words[self.mid] = value

    @property
    def total_cycles(self) -> float:
        return float(self._v.total_cycles[self.mid])

    @total_cycles.setter
    def total_cycles(self, value: float) -> None:
        self._v.total_cycles[self.mid] = value

    @property
    def round_cycles(self) -> float:
        return float(self._v.round_cycles[self.mid])

    @round_cycles.setter
    def round_cycles(self, value: float) -> None:
        self._v.round_cycles[self.mid] = value

    @property
    def round_send_words(self) -> float:
        return float(self._v.round_send_words[self.mid])

    @round_send_words.setter
    def round_send_words(self, value: float) -> None:
        self._v.round_send_words[self.mid] = value

    @property
    def round_recv_words(self) -> float:
        return float(self._v.round_recv_words[self.mid])

    @round_recv_words.setter
    def round_recv_words(self, value: float) -> None:
        self._v.round_recv_words[self.mid] = value

    @property
    def round_words(self) -> float:
        return float(
            self._v.round_send_words[self.mid]
            + self._v.round_recv_words[self.mid]
        )

    @property
    def failed(self) -> bool:
        return bool(self._v.failed[self.mid])

    @failed.setter
    def failed(self, value: bool) -> None:
        self._v.failed[self.mid] = bool(value)

    @property
    def pressure_cb(self):
        return self._v.pressure_cb

    @pressure_cb.setter
    def pressure_cb(self, cb) -> None:
        self._v.pressure_cb = cb

    # -- execution ------------------------------------------------------
    def charge(self, cycles: float, phase: str = "other") -> None:
        v, mid = self._v, self.mid
        v.round_cycles[mid] += cycles
        v.total_cycles[mid] += cycles
        v.phase_cycles(phase)[mid] += cycles

    def add_recv(self, words: float, phase: str = "other") -> None:
        v, mid = self._v, self.mid
        v.round_recv_words[mid] += words
        v.phase_words(phase)[mid] += words

    def add_send(self, words: float, phase: str = "other") -> None:
        v, mid = self._v, self.mid
        v.round_send_words[mid] += words
        v.phase_words(phase)[mid] += words

    # -- memory residency -----------------------------------------------
    @property
    def master_words(self) -> float:
        return float(self._v.master_words[self.mid])

    @master_words.setter
    def master_words(self, value: float) -> None:
        self._v.master_words[self.mid] = value

    @property
    def cache_words(self) -> float:
        return float(self._v.cache_words[self.mid])

    @cache_words.setter
    def cache_words(self, value: float) -> None:
        self._v.cache_words[self.mid] = value

    @property
    def used_words(self) -> float:
        return float(
            self._v.master_words[self.mid] + self._v.cache_words[self.mid]
        )

    def alloc_master(self, words: float) -> None:
        self._v.master_words[self.mid] += words
        if self._v.capacity_words[self.mid] is not None:
            self._check_pressure(words)

    def free_master(self, words: float) -> None:
        self.master_words = _checked_free(
            self.master_words, words, self.mid, "master"
        )

    def alloc_cache(self, words: float) -> None:
        self._v.cache_words[self.mid] += words
        if self._v.capacity_words[self.mid] is not None:
            self._check_pressure(words)

    def free_cache(self, words: float) -> None:
        self.cache_words = _checked_free(
            self.cache_words, words, self.mid, "cache"
        )

    def _check_pressure(self, delta: float) -> None:
        # Same onset semantics as PIMModule._check_pressure: only the
        # allocation that crosses capacity fires the callback.
        v = self._v
        cap = v.capacity_words[self.mid]
        if (v.pressure_cb is not None
                and self.used_words > cap
                and self.used_words - delta <= cap):
            v.pressure_cb(self)

    def over_capacity(self) -> bool:
        cap = self._v.capacity_words[self.mid]
        return cap is not None and self.used_words > cap

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        dead = ", FAILED" if self.failed else ""
        return (
            f"ModuleView(mid={self.mid}, cycles={self.total_cycles:.0f}, "
            f"master={self.master_words:.0f}w, cache={self.cache_words:.0f}w"
            f"{dead})"
        )
