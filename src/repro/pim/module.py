"""Per-module state for the PIM Model simulator.

Each PIM module couples a weak general-purpose core with a private local
memory (§2.1).  The simulator keeps the *canonical* data structure on the
host process (this is a functional simulation); a module object tracks what
the real module would hold and do: resident master/cache words, cycles
executed in the current BSP round, and words exchanged with the CPU in the
current round.
"""

from __future__ import annotations

__all__ = ["PIMModule"]

_FREE_TOLERANCE = 1e-9


def _checked_free(current: float, words: float, mid: int, kind: str) -> float:
    """Residency after freeing ``words``, clamped to exactly 0.0.

    A free is allowed to miss zero by at most ``_FREE_TOLERANCE`` in
    either direction (float drift from repeated fractional alloc/free
    cycles); within the tolerance the residual is snapped to exactly
    0.0 rather than kept, so drift cannot accumulate across many
    migration/failover rounds and poison ``used_words`` or the Gini
    residency signals.  A larger undershoot is a real accounting bug
    and raises.
    """
    remaining = current - words
    if remaining < -_FREE_TOLERANCE:
        raise RuntimeError(f"module {mid}: {kind} residency negative")
    if remaining <= _FREE_TOLERANCE:
        remaining = 0.0
    return remaining


class PIMModule:
    """Accounting state of one PIM module."""

    __slots__ = (
        "mid",
        "capacity_words",
        "total_cycles",
        "round_cycles",
        "round_send_words",
        "round_recv_words",
        "round_phase_cycles",
        "round_phase_words",
        "master_words",
        "cache_words",
        "failed",
        "pressure_cb",
    )

    def __init__(self, mid: int, capacity_words: int | None = None) -> None:
        self.mid = mid
        self.capacity_words = capacity_words
        # Capacity-pressure callback, set by the owning PIMSystem: invoked
        # (with this module) the moment an allocation crosses
        # capacity_words.  None (or capacity_words None) keeps the alloc
        # fast path a single attribute test.
        self.pressure_cb = None
        # Set by PIMSystem.decommission when a fault plan (or a manual
        # kill) crashes this module; a failed module holds nothing and
        # any charge addressed to it raises ModuleFailure.
        self.failed = False
        self.total_cycles = 0.0
        self.round_cycles = 0.0
        self.round_send_words = 0.0
        self.round_recv_words = 0.0
        # Charge-time phase attribution within the current round: the
        # round-close booking splits the straggler max / comm totals by the
        # phase that was active when each charge happened (not the phase at
        # round exit).  Invariants: sum(round_phase_cycles.values()) ==
        # round_cycles and sum(round_phase_words.values()) == round_words.
        self.round_phase_cycles: dict[str, float] = {}
        self.round_phase_words: dict[str, float] = {}
        # Residency: master copies vs cached (shared) copies, in words.
        self.master_words = 0.0
        self.cache_words = 0.0

    # -- execution ------------------------------------------------------
    def charge(self, cycles: float, phase: str = "other") -> None:
        """Execute ``cycles`` of PIM-core work in the current round."""
        self.round_cycles += cycles
        self.total_cycles += cycles
        d = self.round_phase_cycles
        d[phase] = d.get(phase, 0.0) + cycles

    def add_recv(self, words: float, phase: str = "other") -> None:
        """Words arriving CPU → module in the current round."""
        self.round_recv_words += words
        d = self.round_phase_words
        d[phase] = d.get(phase, 0.0) + words

    def add_send(self, words: float, phase: str = "other") -> None:
        """Words leaving module → CPU in the current round."""
        self.round_send_words += words
        d = self.round_phase_words
        d[phase] = d.get(phase, 0.0) + words

    def begin_round(self) -> None:
        self.round_cycles = 0.0
        self.round_send_words = 0.0
        self.round_recv_words = 0.0
        self.round_phase_cycles = {}
        self.round_phase_words = {}

    @property
    def round_words(self) -> float:
        return self.round_send_words + self.round_recv_words

    # -- memory residency -----------------------------------------------
    @property
    def used_words(self) -> float:
        return self.master_words + self.cache_words

    def alloc_master(self, words: float) -> None:
        self.master_words += words
        if self.capacity_words is not None:
            self._check_pressure(words)

    def free_master(self, words: float) -> None:
        self.master_words = _checked_free(
            self.master_words, words, self.mid, "master"
        )

    def alloc_cache(self, words: float) -> None:
        self.cache_words += words
        if self.capacity_words is not None:
            self._check_pressure(words)

    def _check_pressure(self, delta: float) -> None:
        """Fire the capacity-pressure callback on the crossing allocation.

        Only the allocation that pushes ``used_words`` past
        ``capacity_words`` fires (not every later allocation while over),
        so the event stream marks pressure onsets, not a steady drone.
        """
        if (self.pressure_cb is not None
                and self.used_words > self.capacity_words
                and self.used_words - delta <= self.capacity_words):
            self.pressure_cb(self)

    def free_cache(self, words: float) -> None:
        self.cache_words = _checked_free(
            self.cache_words, words, self.mid, "cache"
        )

    def over_capacity(self) -> bool:
        return self.capacity_words is not None and self.used_words > self.capacity_words

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        dead = ", FAILED" if self.failed else ""
        return (
            f"PIMModule(mid={self.mid}, cycles={self.total_cycles:.0f}, "
            f"master={self.master_words:.0f}w, cache={self.cache_words:.0f}w"
            f"{dead})"
        )
