"""Pluggable storage backends for the durable tier.

Both backends expose the same tiny interface — content-addressed blobs,
one manifest slot, and a single append-only WAL byte stream:

* :class:`FileBackend` — a directory: one file per blob, ``MANIFEST.json``,
  and ``wal.log`` appended with ``O_APPEND`` semantics.  The WAL is a
  plain file on purpose: the crash-matrix suite truncates it at arbitrary
  byte offsets to model torn writes.
* :class:`SQLiteBackend` — everything in one stdlib ``sqlite3`` database
  (blobs and WAL segments as BLOB rows).  ``wal_truncate`` rebuilds the
  segment rows from the truncated byte stream so the same torn-write
  tests run against it.

Backends store bytes; framing, checksums and replay semantics live in
:mod:`repro.store.wal` and :mod:`repro.store.snapshot`.
"""

from __future__ import annotations

import os
import sqlite3
from pathlib import Path

__all__ = ["FileBackend", "SQLiteBackend", "open_backend"]


class FileBackend:
    """Directory-of-files backend (the default)."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.blob_dir = self.root / "blobs"
        self.blob_dir.mkdir(parents=True, exist_ok=True)
        self.manifest_path = self.root / "MANIFEST.json"
        self.wal_path = self.root / "wal.log"

    # -- blobs ----------------------------------------------------------
    def put_blob(self, key: str, data: bytes) -> None:
        # Write-then-rename so a crash mid-write never leaves a partial
        # blob under its final (content-addressed) name.
        tmp = self.blob_dir / (key + ".tmp")
        tmp.write_bytes(data)
        os.replace(tmp, self.blob_dir / key)

    def get_blob(self, key: str) -> bytes:
        return (self.blob_dir / key).read_bytes()

    def has_blob(self, key: str) -> bool:
        return (self.blob_dir / key).exists()

    def delete_blob(self, key: str) -> None:
        try:
            os.unlink(self.blob_dir / key)
        except FileNotFoundError:
            pass

    def list_blobs(self) -> list[str]:
        return sorted(p.name for p in self.blob_dir.iterdir()
                      if not p.name.endswith(".tmp"))

    # -- manifest -------------------------------------------------------
    def put_manifest(self, data: bytes) -> None:
        tmp = self.root / "MANIFEST.json.tmp"
        tmp.write_bytes(data)
        os.replace(tmp, self.manifest_path)

    def get_manifest(self) -> bytes | None:
        try:
            return self.manifest_path.read_bytes()
        except FileNotFoundError:
            return None

    # -- WAL ------------------------------------------------------------
    def wal_append(self, data: bytes) -> None:
        with open(self.wal_path, "ab") as f:
            f.write(data)

    def wal_read(self) -> bytes:
        try:
            return self.wal_path.read_bytes()
        except FileNotFoundError:
            return b""

    def wal_reset(self, data: bytes = b"") -> None:
        tmp = self.root / "wal.log.tmp"
        tmp.write_bytes(data)
        os.replace(tmp, self.wal_path)

    def wal_truncate(self, n_bytes: int) -> None:
        """Keep only the first ``n_bytes`` of the WAL (torn-write tests)."""
        self.wal_reset(self.wal_read()[: int(n_bytes)])

    def wal_size(self) -> int:
        try:
            return self.wal_path.stat().st_size
        except FileNotFoundError:
            return 0

    def close(self) -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FileBackend({str(self.root)!r})"


class SQLiteBackend:
    """Single-file stdlib ``sqlite3`` backend."""

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = str(path)
        self._db = sqlite3.connect(self.path)
        self._db.executescript(
            """
            CREATE TABLE IF NOT EXISTS blobs (
                key TEXT PRIMARY KEY, data BLOB NOT NULL);
            CREATE TABLE IF NOT EXISTS manifest (
                id INTEGER PRIMARY KEY CHECK (id = 0), data BLOB NOT NULL);
            CREATE TABLE IF NOT EXISTS wal (
                idx INTEGER PRIMARY KEY AUTOINCREMENT, data BLOB NOT NULL);
            """
        )
        self._db.commit()

    # -- blobs ----------------------------------------------------------
    def put_blob(self, key: str, data: bytes) -> None:
        self._db.execute(
            "INSERT OR REPLACE INTO blobs (key, data) VALUES (?, ?)",
            (key, sqlite3.Binary(data)),
        )
        self._db.commit()

    def get_blob(self, key: str) -> bytes:
        row = self._db.execute(
            "SELECT data FROM blobs WHERE key = ?", (key,)
        ).fetchone()
        if row is None:
            raise KeyError(key)
        return bytes(row[0])

    def has_blob(self, key: str) -> bool:
        return (
            self._db.execute(
                "SELECT 1 FROM blobs WHERE key = ?", (key,)
            ).fetchone()
            is not None
        )

    def delete_blob(self, key: str) -> None:
        self._db.execute("DELETE FROM blobs WHERE key = ?", (key,))
        self._db.commit()

    def list_blobs(self) -> list[str]:
        return sorted(
            r[0] for r in self._db.execute("SELECT key FROM blobs")
        )

    # -- manifest -------------------------------------------------------
    def put_manifest(self, data: bytes) -> None:
        self._db.execute(
            "INSERT OR REPLACE INTO manifest (id, data) VALUES (0, ?)",
            (sqlite3.Binary(data),),
        )
        self._db.commit()

    def get_manifest(self) -> bytes | None:
        row = self._db.execute(
            "SELECT data FROM manifest WHERE id = 0"
        ).fetchone()
        return None if row is None else bytes(row[0])

    # -- WAL ------------------------------------------------------------
    def wal_append(self, data: bytes) -> None:
        self._db.execute(
            "INSERT INTO wal (data) VALUES (?)", (sqlite3.Binary(data),)
        )
        self._db.commit()

    def wal_read(self) -> bytes:
        return b"".join(
            bytes(r[0])
            for r in self._db.execute("SELECT data FROM wal ORDER BY idx")
        )

    def wal_reset(self, data: bytes = b"") -> None:
        self._db.execute("DELETE FROM wal")
        if data:
            self._db.execute(
                "INSERT INTO wal (data) VALUES (?)", (sqlite3.Binary(data),)
            )
        self._db.commit()

    def wal_truncate(self, n_bytes: int) -> None:
        self.wal_reset(self.wal_read()[: int(n_bytes)])

    def wal_size(self) -> int:
        row = self._db.execute(
            "SELECT COALESCE(SUM(LENGTH(data)), 0) FROM wal"
        ).fetchone()
        return int(row[0])

    def close(self) -> None:
        self._db.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SQLiteBackend({self.path!r})"


def open_backend(kind: str, path: str | os.PathLike):
    """Factory: ``kind`` ∈ {"file", "sqlite"}."""
    if kind == "file":
        return FileBackend(path)
    if kind == "sqlite":
        return SQLiteBackend(path)
    raise ValueError(f"unknown backend kind {kind!r}")
