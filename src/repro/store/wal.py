"""Append-only, checksummed update journal (the WAL).

Record framing (little-endian, see DESIGN.md):

    +--------+----------+----------+------------------------+
    | b"WALR"| u32 len  | u32 crc  | body (len bytes)       |
    +--------+----------+----------+------------------------+
    body = u64 seq | u8 kind | payload

``crc`` is ``zlib.crc32`` over the body.  Record kinds:

====== ========= ==========================================================
kind   name      payload
====== ========= ==========================================================
1      INSERT    u32 n, u32 dims, n*dims f64 points
2      DELETE    u32 n, u32 dims, n*dims f64 points
3      COMMIT    u64 target_seq — the batch with that seq completed
4      FAILOVER  u32 mid — module failed over (self-committed)
5      MIGRATE   u32 n, n × (u64 meta_root_nid, u32 dst) (self-committed)
6      REPLICATE u32 n, n × (u64 meta_root_nid, u32 dst) (self-committed)
====== ========= ==========================================================

A REPLICATE record shares MIGRATE's pairs payload but registers ``dst``
as a *secondary copy* of the chunk (mastership unchanged) — written when
the rebalancer clones a hot chunk (``repro.balance``) or a ReplicaSet
installs its initial copies (``repro.replicate``).

**Write-ahead + commit markers.**  ``insert_batch``/``delete_batch``
append their data record *before* mutating the tree and append the
COMMIT marker only after the batch fully applied.  Replay applies a
batch record only if its COMMIT marker is in the valid prefix — so a
machine kill mid-batch leaves an uncommitted tail that replay skips, and
the serving layer's retry on the recovered machine never double-applies.
Control records (FAILOVER, MIGRATE) are appended after the operation
completed and are self-committed.

**Torn-tail vs. corruption.**  A crash can tear only the *last* append:
a short header, a body extending past end-of-file, or a checksum
mismatch on the final record are reported as a torn tail and the valid
prefix replays.  A checksum/framing failure with valid bytes *after* it
cannot be a torn append — :func:`scan_wal` raises
:class:`~repro.store.errors.WALCorruption` and recovery refuses to load.
(A corrupted length field that claims past end-of-file is indistinguishable
from a torn write without a resync scan; it is treated as a torn tail,
which can only drop records — never misapply them.)
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

import numpy as np

from .errors import WALCorruption

__all__ = [
    "INSERT", "DELETE", "COMMIT", "FAILOVER", "MIGRATE", "REPLICATE",
    "WALRecord", "TornTail", "encode_record", "scan_wal", "UpdateJournal",
]

_MAGIC = b"WALR"
_HEADER = struct.Struct("<4sII")   # magic, body length, crc32(body)
_BODY_HEAD = struct.Struct("<QB")  # seq, kind

INSERT = 1
DELETE = 2
COMMIT = 3
FAILOVER = 4
MIGRATE = 5
REPLICATE = 6

_KIND_NAMES = {INSERT: "insert", DELETE: "delete", COMMIT: "commit",
               FAILOVER: "failover", MIGRATE: "migrate",
               REPLICATE: "replicate"}


@dataclass(slots=True)
class WALRecord:
    """One decoded journal record."""

    seq: int
    kind: int
    payload: bytes
    offset: int  # byte offset of the frame start in the stream
    end: int     # byte offset one past the frame

    @property
    def kind_name(self) -> str:
        return _KIND_NAMES.get(self.kind, f"kind{self.kind}")

    # -- payload decoders ----------------------------------------------
    def points(self) -> np.ndarray:
        """Decode an INSERT/DELETE payload into an (n, dims) array."""
        n, dims = struct.unpack_from("<II", self.payload, 0)
        pts = np.frombuffer(self.payload, dtype="<f8", count=n * dims,
                            offset=8)
        return pts.reshape(n, dims).copy()

    def commit_target(self) -> int:
        return struct.unpack_from("<Q", self.payload, 0)[0]

    def failover_mid(self) -> int:
        return struct.unpack_from("<I", self.payload, 0)[0]

    def migrate_pairs(self) -> list[tuple[int, int]]:
        (n,) = struct.unpack_from("<I", self.payload, 0)
        out = []
        off = 4
        for _ in range(n):
            nid, dst = struct.unpack_from("<QI", self.payload, off)
            out.append((int(nid), int(dst)))
            off += 12
        return out

    # REPLICATE shares MIGRATE's pairs payload (nid, secondary dst).
    replicate_pairs = migrate_pairs


@dataclass(slots=True)
class TornTail:
    """Report of an incomplete final append dropped by :func:`scan_wal`."""

    offset: int       # where the torn frame starts
    dropped_bytes: int
    reason: str


def encode_record(seq: int, kind: int, payload: bytes) -> bytes:
    body = _BODY_HEAD.pack(int(seq), int(kind)) + payload
    return _HEADER.pack(_MAGIC, len(body), zlib.crc32(body)) + body


def _points_payload(points: np.ndarray) -> bytes:
    pts = np.ascontiguousarray(points, dtype="<f8")
    n, dims = pts.shape
    return struct.pack("<II", n, dims) + pts.tobytes()


def scan_wal(raw: bytes) -> tuple[list[WALRecord], TornTail | None]:
    """Parse the journal stream into records plus an optional torn tail.

    Raises :class:`WALCorruption` on any mid-file integrity failure; see
    the module docstring for the exact torn-vs-corrupt rules.
    """
    records: list[WALRecord] = []
    off = 0
    total = len(raw)
    while off < total:
        rest = total - off
        if rest < _HEADER.size:
            return records, TornTail(off, rest, "truncated header")
        magic, body_len, crc = _HEADER.unpack_from(raw, off)
        if magic != _MAGIC:
            raise WALCorruption(off, "bad record magic (framing broken)")
        end = off + _HEADER.size + body_len
        if end > total:
            return records, TornTail(off, rest, "truncated body")
        body = raw[off + _HEADER.size : end]
        if zlib.crc32(body) != crc:
            if end == total:
                return records, TornTail(off, rest,
                                         "checksum mismatch at tail")
            raise WALCorruption(
                off, f"checksum mismatch with {total - end} valid bytes after"
            )
        if body_len < _BODY_HEAD.size:
            raise WALCorruption(off, "record body shorter than its header")
        seq, kind = _BODY_HEAD.unpack_from(body, 0)
        records.append(
            WALRecord(int(seq), int(kind), body[_BODY_HEAD.size:], off, end)
        )
        off = end
    return records, None


def committed_seqs(records: list[WALRecord]) -> set[int]:
    """Sequence numbers whose COMMIT marker is in the valid prefix."""
    return {r.commit_target() for r in records if r.kind == COMMIT}


class UpdateJournal:
    """The write-ahead journal attached to one :class:`PIMZdTree`.

    Appends are charged to the simulator under the ``"wal"`` phase
    (host CPU for the copy+checksum plus a DRAM-stream of the record
    words — the stand-in for the stable-storage write), so journaling
    overhead is visible in SimTime and the Fig. 6-style phase breakdown
    like every other cost.
    """

    def __init__(self, backend, *, system=None, start_seq: int = 1) -> None:
        self.backend = backend
        self.system = system
        self.next_seq = int(start_seq)
        # Records appended since the last checkpoint — the snapshot-cadence
        # gate in the serve loop skips checkpoints while this is zero.
        self.pending_records = 0

    # -- internals ------------------------------------------------------
    def _append(self, kind: int, payload: bytes, *, seq: int | None = None
                ) -> int:
        if seq is None:
            seq = self.next_seq
            self.next_seq += 1
        rec = encode_record(seq, kind, payload)
        if self.system is not None:
            words = (len(rec) + 7) // 8
            with self.system.phase("wal"):
                self.system.charge_cpu(2 * words)
                self.system.dram_stream(words)
        self.backend.wal_append(rec)
        self.pending_records += 1
        return seq

    # -- batch records (write-ahead, committed separately) --------------
    def log_insert(self, points: np.ndarray) -> int:
        return self._append(INSERT, _points_payload(points))

    def log_delete(self, points: np.ndarray) -> int:
        return self._append(DELETE, _points_payload(points))

    def commit(self, seq: int) -> None:
        self._append(COMMIT, struct.pack("<Q", int(seq)), seq=seq)

    # -- control records (self-committed) --------------------------------
    def log_failover(self, mid: int) -> int:
        return self._append(FAILOVER, struct.pack("<I", int(mid)))

    def log_migrate(self, pairs: list[tuple[int, int]]) -> int:
        payload = struct.pack("<I", len(pairs)) + b"".join(
            struct.pack("<QI", int(nid), int(dst)) for nid, dst in pairs
        )
        return self._append(MIGRATE, payload)

    def log_replicate(self, pairs: list[tuple[int, int]]) -> int:
        """Secondary-copy installs: (chunk root nid, destination module)."""
        payload = struct.pack("<I", len(pairs)) + b"".join(
            struct.pack("<QI", int(nid), int(dst)) for nid, dst in pairs
        )
        return self._append(REPLICATE, payload)
