"""Copy-on-write snapshots of the host-resident canonical index.

A snapshot is three kinds of artifact in the backend:

* **chunk blobs** — the leaf payloads (keys + points), grouped by the
  meta-node chunk that owns each leaf (plus one pseudo-chunk ``l0`` for
  the meta-less L0 leaves).  Blobs are *content-addressed*: the blob key
  is the blake2b hash of the bytes, so an unchanged chunk hashes to a
  blob that already exists and is simply re-referenced — the tfhfs
  forest/flush idiom of only writing dirty nodes, with the dirty check
  made exact by hashing instead of relying on mutation-site bookkeeping.
* **one topology blob** — every node and meta-node record (structure,
  counters, layers, chunk assignments, children order).  Rewritten each
  snapshot (it is small next to the payloads) and content-addressed like
  the chunks.
* **the manifest** — canonical JSON naming the blob set plus everything
  needed to rebuild the machine: config fields, Morton codec parameters,
  tree counters (``_next_nid``, ``_batch_counter``, route salt), system
  parameters (P, seed, sim_mode, LLC bytes, per-module capacities), the
  dead-module set, placement overrides, and the WAL sequence number the
  snapshot covers.  The manifest carries a CRC32 of its own canonical
  encoding; every blob it references is verified against its hash at
  load time, and recovery re-checks the structural invariants —
  corruption is always loud, never silent.

The encoding is a pure function of the logical tree state (metas sorted
by root nid, preorder node walk, sorted manifest keys), which is what
makes ``encode(decode(encode(t))) == encode(t)`` — the round-trip
identity the property suite locks down — and lets the crash-restart
benchmark assert recovered-vs-oracle equality as byte equality of the
two encodings.
"""

from __future__ import annotations

import hashlib
import json
import struct
import zlib

import numpy as np

from .errors import SnapshotCorruption

__all__ = ["SnapshotImage", "encode_tree", "decode_tree", "SnapshotStore"]

MANIFEST_VERSION = 1

# nid, prefix, depth, flags, layer, count, sc, delta, meta_idx
_NODE = struct.Struct("<QQHBBqqqi")
# root_nid, module, parent_idx, stale, built_sc, n_nodes, payload_words,
# l1_desc_metas, hot_hits, n_children
_META = struct.Struct("<QiiBqIdiQH")
_META_KID = struct.Struct("<i")
_LEAF_HEAD = struct.Struct("<QI")     # leaf nid, n points
_TOPO_HEAD = struct.Struct("<IIQ")    # n_nodes, n_metas, dims

_FLAG_LEAF = 1
_BUILT_SC_NONE = -(1 << 62)


class SnapshotImage:
    """In-memory form of one snapshot: manifest dict + named byte blobs."""

    def __init__(self, manifest: dict, topology: bytes,
                 chunks: dict[str, bytes]) -> None:
        self.manifest = manifest
        self.topology = topology
        self.chunks = chunks  # chunk id ("l0" or "m<root_nid>") -> bytes

    @property
    def total_bytes(self) -> int:
        return len(self.topology) + sum(len(b) for b in self.chunks.values())


def _blob_hash(data: bytes) -> str:
    return hashlib.blake2b(data, digest_size=16).hexdigest()


def _manifest_checksum(doc: dict) -> int:
    body = {k: v for k, v in doc.items() if k != "checksum"}
    data = json.dumps(body, sort_keys=True, separators=(",", ":")).encode()
    return zlib.crc32(data)


# ======================================================================
# encode
# ======================================================================
def encode_tree(tree, *, wal_seq: int = 0) -> SnapshotImage:
    """Serialize ``tree`` (and its system's durable state) canonically."""
    metas = sorted(tree.metas, key=lambda m: m.root.nid)
    meta_idx = {id(m): i for i, m in enumerate(metas)}

    node_records: list[bytes] = []
    chunk_bufs: dict[str, bytearray] = {}

    # Iterative preorder walk (push right then left so left pops first).
    stack = [tree.root]
    while stack:
        node = stack.pop()
        flags = _FLAG_LEAF if node.is_leaf else 0
        midx = meta_idx[id(node.meta)] if node.meta is not None else -1
        node_records.append(
            _NODE.pack(node.nid, node.prefix, node.depth, flags,
                       int(node.layer), node.count, node.sc, node.delta,
                       midx)
        )
        if node.is_leaf:
            cid = "l0" if node.meta is None else f"m{node.meta.root.nid}"
            buf = chunk_bufs.setdefault(cid, bytearray())
            keys = np.ascontiguousarray(node.keys, dtype="<u8")
            pts = np.ascontiguousarray(node.pts, dtype="<f8")
            buf += _LEAF_HEAD.pack(node.nid, len(keys))
            buf += keys.tobytes()
            buf += pts.tobytes()
        else:
            stack.append(node.right)
            stack.append(node.left)

    # Meta table: fixed head + explicit children index list (order matters:
    # `children` is append-ordered and observable through later rebuilds).
    meta_records: list[bytes] = []
    for m in metas:
        parent_idx = (meta_idx[id(m.parent)]
                      if m.parent is not None and id(m.parent) in meta_idx
                      else -1)
        built = tree._meta_built_sc.get(m, _BUILT_SC_NONE)
        stale = 1 if m in tree._stale_metas else 0
        head = _META.pack(
            m.root.nid, int(m.module), parent_idx, stale, int(built),
            int(m.n_nodes), float(m.payload_words), int(m.l1_desc_metas),
            int(m.hot_hits), len(m.children),
        )
        kids = b"".join(
            _META_KID.pack(meta_idx[id(c)]) for c in m.children
        )
        meta_records.append(head + kids)

    topology = (
        _TOPO_HEAD.pack(len(node_records), len(metas), tree.dims)
        + b"".join(node_records)
        + b"".join(meta_records)
    )

    sys = tree.system
    manifest = {
        "version": MANIFEST_VERSION,
        "wal_seq": int(wal_seq),
        "tree": {
            "dims": int(tree.dims),
            "key_bits": int(tree.key_bits),
            "next_nid": int(tree._next_nid),
            "batch_counter": int(tree._batch_counter),
            "l0_route_salt": int(tree._l0_route_salt),
            "l0_on_cpu": bool(tree.l0_on_cpu),
            "size": int(tree.root.count),
        },
        "config": {
            "name": tree.config.name,
            "theta_l0": tree.config.theta_l0,
            "theta_l1": tree.config.theta_l1,
            "chunk_factor": tree.config.chunk_factor,
            "leaf_size": tree.config.leaf_size,
            "pull_imbalance_factor": tree.config.pull_imbalance_factor,
            "lazy_counters": tree.config.lazy_counters,
            "fast_zorder": tree.config.fast_zorder,
            "fast_l2": tree.config.fast_l2,
            "direct_api": tree.config.direct_api,
            "push_pull": tree.config.push_pull,
            "exec_mode": tree.config.exec_mode,
            "sim_mode": tree.config.sim_mode,
        },
        "codec": {
            "lo": [float(x) for x in np.asarray(tree.codec.lo).ravel()],
            "hi": [float(x) for x in np.asarray(tree.codec.hi).ravel()],
            "bits": int(tree.codec.bits),
            "fast": bool(tree.codec.fast),
        },
        "system": {
            "n_modules": int(sys.n_modules),
            "seed": int(sys.seed),
            "sim_mode": sys.sim_mode,
            "llc_bytes": int(sys.llc.capacity_blocks * 64),
            "dead_modules": sorted(int(m) for m in sys.dead_modules),
            "placement_overrides": {
                k.hex(): int(v) for k, v in sys._place_overrides.items()
            },
            "module_capacity_words": [
                None if m.capacity_words is None else float(m.capacity_words)
                for m in sys.modules
            ],
        },
        "topology": {"hash": _blob_hash(topology), "bytes": len(topology)},
        "chunks": {
            cid: {"hash": _blob_hash(bytes(buf)), "bytes": len(buf)}
            for cid, buf in sorted(chunk_bufs.items())
        },
    }
    # Replica registry (repro.replicate): checkpoints truncate the WAL, so
    # the secondary-copy map must ride in the manifest — REPLICATE records
    # only cover copies installed *after* the snapshot.  Key absent when no
    # ReplicaSet is attached, keeping replication-off manifests (and the
    # round-trip byte-identity tests) unchanged.
    reps = getattr(tree, "replicas", None)
    if reps is not None:
        manifest["replicas"] = reps.to_manifest()
    # Membership filters (repro.route): persist only (fpr, seed, enabled)
    # — the bit arrays are a pure function of residency and seed, so
    # recovery rebuilds them bit-identically under its pinned phase.  Key
    # absent when no RouteFilterSet is attached, keeping filters-off
    # manifests byte-identical.
    rf = getattr(tree, "route_filters", None)
    if rf is not None:
        manifest["route_filters"] = rf.to_manifest()
    manifest["checksum"] = _manifest_checksum(manifest)
    return SnapshotImage(
        manifest, topology, {c: bytes(b) for c, b in chunk_bufs.items()}
    )


# ======================================================================
# decode
# ======================================================================
def decode_tree(image: SnapshotImage, system, *, cost_model=None):
    """Rebuild a :class:`PIMZdTree` from a snapshot image onto ``system``.

    Pure host-side reconstruction: no simulator counter moves here (the
    caller charges the load and runs the bulk re-upload).  Raises
    :class:`SnapshotCorruption` if any blob fails its hash or the decoded
    structure is internally inconsistent.
    """
    from ..core.chunking import MetaNode
    from ..core.config import PIMZdTreeConfig
    from ..core.morton import MortonCodec
    from ..core.node import Layer, Node
    from ..core.tree import PIMZdTree

    man = image.manifest
    if man.get("version") != MANIFEST_VERSION:
        raise SnapshotCorruption(
            f"unsupported snapshot version {man.get('version')!r}"
        )
    if _manifest_checksum(man) != man.get("checksum"):
        raise SnapshotCorruption("manifest checksum mismatch")
    if _blob_hash(image.topology) != man["topology"]["hash"]:
        raise SnapshotCorruption("topology blob hash mismatch")
    for cid, ref in man["chunks"].items():
        blob = image.chunks.get(cid)
        if blob is None:
            raise SnapshotCorruption(f"missing chunk blob {cid!r}")
        if _blob_hash(blob) != ref["hash"]:
            raise SnapshotCorruption(f"chunk blob {cid!r} hash mismatch")

    # -- leaf payloads ---------------------------------------------------
    dims = int(man["tree"]["dims"])
    payloads: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    for blob in image.chunks.values():
        off = 0
        while off < len(blob):
            nid, n = _LEAF_HEAD.unpack_from(blob, off)
            off += _LEAF_HEAD.size
            keys = np.frombuffer(blob, dtype="<u8", count=n, offset=off).copy()
            off += 8 * n
            pts = np.frombuffer(
                blob, dtype="<f8", count=n * dims, offset=off
            ).reshape(n, dims).copy()
            off += 8 * n * dims
            payloads[int(nid)] = (keys, pts)

    # -- topology ---------------------------------------------------------
    n_nodes, n_metas, topo_dims = _TOPO_HEAD.unpack_from(image.topology, 0)
    if topo_dims != dims:
        raise SnapshotCorruption("topology/manifest dims mismatch")
    off = _TOPO_HEAD.size
    node_rows = []
    for _ in range(n_nodes):
        node_rows.append(_NODE.unpack_from(image.topology, off))
        off += _NODE.size
    meta_rows = []
    for _ in range(n_metas):
        head = _META.unpack_from(image.topology, off)
        off += _META.size
        n_kids = head[-1]
        kids = [
            _META_KID.unpack_from(image.topology, off + _META_KID.size * j)[0]
            for j in range(n_kids)
        ]
        off += _META_KID.size * n_kids
        meta_rows.append((head, kids))
    if off != len(image.topology):
        raise SnapshotCorruption("trailing bytes after topology records")

    # Rebuild the node tree from the preorder walk (each internal node is
    # followed by its left then right subtrees).  Recursion depth is
    # bounded by key_bits (<= 64) plus the leaf level.
    pos = 0
    decoded: list[tuple[Node, int]] = []  # (node, meta_idx) in preorder

    def build() -> Node:
        nonlocal pos
        nid, prefix, depth, flags, layer, count, sc, delta, midx = \
            node_rows[pos]
        pos += 1
        node = Node(int(nid), int(prefix), int(depth))
        node.count = int(count)
        node.sc = int(sc)
        node.delta = int(delta)
        node.layer = Layer(int(layer))
        decoded.append((node, int(midx)))
        if flags & _FLAG_LEAF:
            try:
                keys, pts = payloads[int(nid)]
            except KeyError:
                raise SnapshotCorruption(
                    f"leaf {nid} has no payload in any chunk blob"
                ) from None
            node.keys = keys
            node.pts = pts
        else:
            node.left = build()
            node.right = build()
            node.left.parent = node
            node.right.parent = node
        return node

    root = build()
    if pos != n_nodes:
        raise SnapshotCorruption("topology walk did not consume all nodes")

    # -- metas ------------------------------------------------------------
    nid_to_node = {n.nid: n for n, _ in decoded}
    metas: list[MetaNode] = []
    for head, _kids in meta_rows:
        m_root = nid_to_node.get(int(head[0]))
        if m_root is None:
            raise SnapshotCorruption(f"meta root nid {head[0]} not in tree")
        metas.append(MetaNode(m_root, int(head[1])))
    for m, (head, kids) in zip(metas, meta_rows):
        (_nid, _module, parent_idx, _stale, _built, n_nodes_m,
         payload_words, l1_desc, hot_hits, _nk) = head
        m.layer = m.root.layer
        m.parent = metas[parent_idx] if parent_idx >= 0 else None
        m.children = [metas[k] for k in kids]
        m.n_nodes = int(n_nodes_m)
        m.payload_words = (
            int(payload_words) if float(payload_words).is_integer()
            else float(payload_words)
        )
        m.l1_desc_metas = int(l1_desc)
        m.hot_hits = int(hot_hits)

    # -- assemble the tree object (bypassing __init__'s build path) -------
    cfg = PIMZdTreeConfig(**man["config"])
    codec = MortonCodec(
        np.asarray(man["codec"]["lo"], dtype=np.float64),
        np.asarray(man["codec"]["hi"], dtype=np.float64),
        dims,
        int(man["codec"]["bits"]),
        fast=bool(man["codec"]["fast"]),
    )
    tree = PIMZdTree.__new__(PIMZdTree)
    tree.dims = dims
    tree.system = system
    tree.config = cfg
    if cost_model is None:
        from ..pim.cost_model import upmem_scaled

        cost_model = upmem_scaled(system.n_modules)
        tree.cost_model = cost_model.with_direct_api(cfg.direct_api)
    else:
        tree.cost_model = cost_model
    tree.codec = codec
    tree.key_bits = codec.key_bits
    tree._next_nid = int(man["tree"]["next_nid"])
    tree._batch_counter = int(man["tree"]["batch_counter"])
    tree._l0_route_salt = int(man["tree"]["l0_route_salt"])
    tree.root = root
    tree.l0_on_cpu = bool(man["tree"]["l0_on_cpu"])
    tree.metas = set(metas)
    tree._stale_metas = {
        m for m, (head, _k) in zip(metas, meta_rows) if head[3]
    }
    tree._meta_built_sc = {
        m: int(head[4])
        for m, (head, _k) in zip(metas, meta_rows)
        if head[4] != _BUILT_SC_NONE
    }
    tree.last_executor = None
    tree.journal = None
    tree.replicas = None  # rebuilt by recovery from the manifest, if any
    tree.route_filters = None  # reattached by recovery from the manifest
    # Re-link nodes to their metas from the recorded assignment.
    for node, midx in decoded:
        node.meta = metas[midx] if midx >= 0 else None
    return tree


# ======================================================================
# the COW flush
# ======================================================================
class SnapshotStore:
    """Writes snapshots into a backend, copy-on-write at chunk granularity."""

    def __init__(self, backend) -> None:
        self.backend = backend

    def flush(self, tree, *, wal_seq: int = 0) -> dict:
        """Snapshot ``tree`` into the backend; returns a flush report.

        Charged under the ``"checkpoint"`` phase: the host scans and
        hashes every chunk (CPU + a DRAM stream of the full image) and
        streams only the *dirty* chunks — those whose content hash is not
        already stored — out to stable storage.  Clean chunks cost their
        scan only, which is what makes frequent snapshots affordable.
        """
        sys = tree.system
        with sys.phase("checkpoint"):
            image = encode_tree(tree, wal_seq=wal_seq)
            total_words = (image.total_bytes + 7) // 8

            blobs = {image.manifest["topology"]["hash"]: image.topology}
            for cid, ref in image.manifest["chunks"].items():
                blobs[ref["hash"]] = image.chunks[cid]
            written = 0
            written_bytes = 0
            for h, data in sorted(blobs.items()):
                if not self.backend.has_blob(h):
                    self.backend.put_blob(h, data)
                    written += 1
                    written_bytes += len(data)
            manifest_bytes = json.dumps(
                image.manifest, sort_keys=True, separators=(",", ":")
            ).encode()
            self.backend.put_manifest(manifest_bytes)
            # Garbage-collect blobs no longer referenced by the manifest.
            live = set(blobs)
            for key in self.backend.list_blobs():
                if key not in live:
                    self.backend.delete_blob(key)

            written_words = (written_bytes + len(manifest_bytes) + 7) // 8
            sys.charge_cpu(2 * total_words)       # scan + hash
            sys.dram_stream(total_words)          # read the image out
            sys.dram_stream(written_words)        # write the dirty set
        return {
            "chunks_total": len(image.chunks),
            "blobs_total": len(blobs),
            "blobs_written": written,
            "blobs_reused": len(blobs) - written,
            "bytes_total": image.total_bytes,
            "bytes_written": written_bytes,
            "wal_seq": int(wal_seq),
        }

    def load_image(self) -> SnapshotImage:
        """Read the latest snapshot back out of the backend (verified)."""
        manifest_bytes = self.backend.get_manifest()
        if manifest_bytes is None:
            raise SnapshotCorruption("no snapshot manifest in backend")
        try:
            manifest = json.loads(manifest_bytes)
        except ValueError as e:
            raise SnapshotCorruption(f"manifest is not valid JSON: {e}") from e
        if _manifest_checksum(manifest) != manifest.get("checksum"):
            raise SnapshotCorruption("manifest checksum mismatch")
        try:
            topology = self.backend.get_blob(manifest["topology"]["hash"])
            chunks = {
                cid: self.backend.get_blob(ref["hash"])
                for cid, ref in manifest["chunks"].items()
            }
        except (KeyError, FileNotFoundError) as e:
            raise SnapshotCorruption(f"referenced blob missing: {e}") from e
        return SnapshotImage(manifest, topology, chunks)
