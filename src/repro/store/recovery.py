"""Crash recovery: snapshot load + WAL replay, fully charged.

The UPMEM benchmarking studies are emphatic that CPU↔PIM (re)load cost
dominates restart paths, so recovery is *booked*, never hand-waved.  The
whole path runs under a **pinned** ``"recovery"`` phase
(``system.phase("recovery", pin=True)``): the snapshot read charges host
CPU + a DRAM stream of the image, the shards go back to the modules
through the tree's normal bulk-upload entry point (``_upload`` — the
same ``send_bulk`` + L0 broadcast as a cold build), and each journaled
batch replays through the ordinary ``insert``/``delete`` code so its
per-module rounds, straggler maxima and comm words are exactly what the
original batch paid.  Pinning means the inner phases those code paths
open ("insert", "delete", "wal", …) do not relabel the charges — the
entire restart cost lands in the "recovery" bucket of the Fig. 6-style
breakdown and reconciles bit-exactly in the obs timeline.

Replay applies only *committed* batches (see :mod:`repro.store.wal`):
a batch whose COMMIT marker is missing from the valid prefix was still
in flight when the machine died, so the serving layer will retry it on
the recovered machine — skipping it here is what makes the retry
exactly-once.  Control records (failover, migration) are self-committed
and re-executed in log order, which — because placement is a pure
function of (key, seed, dead set, overrides) and ``_batch_counter`` is
restored from the manifest — reproduces the pre-crash layout exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import WALCorruption
from .snapshot import SnapshotStore, decode_tree
from .wal import (
    COMMIT,
    DELETE,
    FAILOVER,
    INSERT,
    MIGRATE,
    REPLICATE,
    TornTail,
    committed_seqs,
    scan_wal,
)

__all__ = ["RecoveryResult", "recover"]

# Mirrors repro.balance.migrate: host-side re-placement bookkeeping per
# moved chunk and streaming pack/unpack cycles per word.
_MIGRATE_CPU_OPS = 24
_PACK_CYCLES_PER_WORD = 1


@dataclass
class RecoveryResult:
    """What a :func:`recover` call rebuilt and what it cost to replay."""

    tree: object
    system: object
    snapshot_seq: int          # WAL seq the snapshot covered
    max_seq: int               # highest seq seen anywhere (snapshot or WAL)
    wal_records: int           # valid records in the journal
    replayed: int              # records re-applied to the tree
    skipped_uncommitted: int   # batch records without a COMMIT marker
    torn_tail: TornTail | None # incomplete final append, if any
    snapshot_words: int        # image size charged on load
    events: list[dict] = field(default_factory=list)


def _replay_migrate(tree, pairs: list[tuple[int, int]]) -> None:
    """Re-execute a journaled migration (same charges as execute_plan)."""
    sys = tree.system
    by_nid = {m.root.nid: m for m in tree.metas}
    moves = []
    for nid, dst in pairs:
        meta = by_nid.get(nid)
        # The chunk may have been retired by a later replayed batch's
        # rechunk before we get here only if the log order were violated —
        # it never is — but a chunk whose module already matches (replayed
        # override during rechunk) still re-records its override.
        if meta is not None:
            moves.append((meta, meta.module, int(dst)))
    if not moves:
        return
    from ..core.node import Layer

    sys.charge_cpu(len(moves) * _MIGRATE_CPU_OPS)
    with sys.round():
        for meta, src, dst in moves:
            words = meta.size_words(tree.config)
            replicas = meta.replica_count() if meta.layer == Layer.L1 else 0
            total = words * (1 + replicas)
            sys.charge_pim(src, words * _PACK_CYCLES_PER_WORD)
            sys.recv(src, words)
            sys.charge_pim(dst, words * _PACK_CYCLES_PER_WORD)
            sys.send(dst, total)
            meta.module = dst
            sys.set_placement_override(("meta", meta.root.nid), dst)
    tree.refresh_residency()


def _replay_replicate(tree, pairs: list[tuple[int, int]]) -> None:
    """Re-register (and re-charge) journaled secondary-copy installs."""
    sys = tree.system
    reps = tree.replicas
    by_nid = {m.root.nid: m for m in tree.metas}
    installs = []
    for nid, dst in pairs:
        meta = by_nid.get(nid)
        if meta is None or int(dst) in sys.dead_modules:
            continue
        installs.append((meta, int(dst)))
    if not installs:
        return
    if reps is None:
        # A REPLICATE record without a manifest registry can only come
        # from clones journaled before the first checkpoint: rebuild an
        # implicit registry so the copies exist after restart too.
        from ..replicate import ReplicaSet

        reps = ReplicaSet(tree)
    sys.charge_cpu(len(installs) * _MIGRATE_CPU_OPS)
    with sys.round():
        for meta, dst in installs:
            words = meta.size_words(tree.config)
            sys.charge_pim(meta.module, words * _PACK_CYCLES_PER_WORD)
            sys.recv(meta.module, words)
            sys.charge_pim(dst, words * _PACK_CYCLES_PER_WORD)
            sys.send(dst, words)
            reps.register(meta.root.nid, dst)
    tree.refresh_residency()


def recover(backend, *, tracer=None, cost_model=None, validate=True
            ) -> RecoveryResult:
    """Rebuild the index from ``backend``'s snapshot + journal (charged).

    Builds a *fresh* :class:`~repro.pim.model.PIMSystem` from the
    manifest's recorded parameters, so every counter on the returned
    system is restart cost — the harness converts ``stats.total``
    straight into the time-to-first-query number.

    Raises :class:`~repro.store.errors.SnapshotCorruption` /
    :class:`~repro.store.errors.WALCorruption` rather than ever loading a
    silently corrupt index; a torn final WAL append is tolerated and
    reported in the result.
    """
    from ..pim.model import PIMSystem

    image = SnapshotStore(backend).load_image()
    man = image.manifest
    sysman = man["system"]

    caps = sysman["module_capacity_words"]
    cap0 = next((c for c in caps if c is not None), None)
    system = PIMSystem(
        int(sysman["n_modules"]),
        llc_bytes=int(sysman["llc_bytes"]),
        module_capacity_words=cap0,
        seed=int(sysman["seed"]),
        tracer=tracer,
        sim_mode=sysman["sim_mode"],
    )
    if cap0 is not None:
        # Restore per-module capacities exactly (init wired pressure_cb).
        for m, c in zip(system.modules, caps):
            m.capacity_words = c

    # Journal scan happens before any charge: a corrupt WAL must refuse
    # recovery outright, not after half a restart was booked.
    records, torn = scan_wal(backend.wal_read())
    snapshot_seq = int(man["wal_seq"])
    committed = committed_seqs(records)

    events: list[dict] = []
    replayed = 0
    skipped = 0
    max_seq = snapshot_seq
    with system.phase("recovery", pin=True):
        # Read the image off stable storage: scan + verify on the CPU,
        # stream the bytes through DRAM.
        snapshot_words = (image.total_bytes + 7) // 8
        system.charge_cpu(2 * snapshot_words)
        system.dram_stream(snapshot_words)
        tree = decode_tree(image, system, cost_model=cost_model)

        # Restore control-plane state recorded at snapshot time *before*
        # the upload, so shards are placed (and charged) on live modules.
        for mid in sysman["dead_modules"]:
            system.decommission(int(mid))
        for key_hex, mid in sysman["placement_overrides"].items():
            system._place_overrides[bytes.fromhex(key_hex)] = int(mid)

        # Re-upload the shards through the normal bulk entry point: the
        # same send_bulk fan-out + L0 broadcast a cold build pays.
        tree._upload()

        # Reinstall the replica registry recorded at snapshot time
        # (repro.replicate): secondaries on modules that died are dropped
        # (the copy is lost; the rebalancer may re-clone later), the rest
        # are re-uploaded with the same bulk fan-out the primaries paid.
        if "replicas" in man:
            from ..replicate import ReplicaSet

            reps = ReplicaSet.from_manifest(tree, man["replicas"])
            dead = system.dead_modules
            by_nid = {m.root.nid: m for m in tree.metas}
            send_by: dict[int, float] = {}
            for nid in sorted(reps._secondaries):
                meta = by_nid.get(nid)
                if meta is None:
                    del reps._secondaries[nid]
                    continue
                live = tuple(m for m in reps._secondaries[nid]
                             if m not in dead)
                if not live:
                    del reps._secondaries[nid]
                    continue
                reps._secondaries[nid] = live
                words = meta.size_words(tree.config)
                for mid in live:
                    send_by[mid] = send_by.get(mid, 0.0) + words
            if send_by:
                with system.round():
                    system.send_bulk(send_by)
        tree.refresh_residency()

        # Reattach the membership filters (repro.route) recorded at
        # snapshot time *before* replay: the bit arrays rebuild from the
        # restored residency (a pure function of keys + seed, so they
        # match the pre-crash filters bit-for-bit) and the replayed
        # batches then maintain them exactly as the originals did.  The
        # rebuild charges land in the pinned "recovery" phase.
        if "route_filters" in man:
            from ..route import RouteFilterSet

            RouteFilterSet.from_manifest(tree, man["route_filters"])

        # Replay the journal suffix in log order.
        for r in records:
            max_seq = max(max_seq, r.seq)
            if r.seq <= snapshot_seq or r.kind == COMMIT:
                continue
            if r.kind == INSERT:
                if r.seq in committed:
                    tree.insert(r.points())
                    replayed += 1
                else:
                    skipped += 1
                    events.append({"kind": "skip_uncommitted", "seq": r.seq,
                                   "record": "insert"})
            elif r.kind == DELETE:
                if r.seq in committed:
                    tree.delete(r.points())
                    replayed += 1
                else:
                    skipped += 1
                    events.append({"kind": "skip_uncommitted", "seq": r.seq,
                                   "record": "delete"})
            elif r.kind == FAILOVER:
                mid = r.failover_mid()
                if mid not in system.dead_modules:
                    tree.fail_over(mid)
                replayed += 1
            elif r.kind == MIGRATE:
                _replay_migrate(tree, r.migrate_pairs())
                replayed += 1
            elif r.kind == REPLICATE:
                _replay_replicate(tree, r.replicate_pairs())
                replayed += 1
            else:
                raise WALCorruption(
                    r.offset, f"unknown record kind {r.kind}"
                )

    if validate:
        tree.check_invariants()
    return RecoveryResult(
        tree=tree,
        system=system,
        snapshot_seq=snapshot_seq,
        max_seq=max_seq,
        wal_records=len(records),
        replayed=replayed,
        skipped_uncommitted=skipped,
        torn_tail=torn,
        snapshot_words=snapshot_words,
        events=events,
    )
