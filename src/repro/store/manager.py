"""The durable tier's front door: one object owning snapshot + journal.

:class:`DurableStore` ties the pieces together the way the serve loop
consumes them: ``attach`` hooks the write-ahead journal into a live tree
(so ``insert``/``delete`` append before mutating) and takes the initial
snapshot; ``checkpoint`` flushes a copy-on-write snapshot and truncates
the journal it now covers; ``recover`` rebuilds tree + system from disk
after a machine kill and re-attaches a journal that continues the
sequence numbering.  Snapshot cadence is the caller's business — the
serve loop gates ``checkpoint`` by a budget fraction exactly like
rebalancing, using :attr:`dirty_records` to skip no-op flushes.
"""

from __future__ import annotations

from .recovery import RecoveryResult, recover
from .snapshot import SnapshotStore
from .wal import UpdateJournal

__all__ = ["DurableStore"]


class DurableStore:
    """Checkpoint + WAL lifecycle for one tree over one backend."""

    def __init__(self, backend, *, budget_fraction: float = 0.05) -> None:
        if not 0.0 <= budget_fraction <= 1.0:
            raise ValueError("budget_fraction must be within [0, 1]")
        self.backend = backend
        self.budget_fraction = float(budget_fraction)
        self.snapshots = SnapshotStore(backend)
        self.journal: UpdateJournal | None = None
        self.checkpoints = 0
        self.events: list[dict] = []

    # ------------------------------------------------------------------
    @property
    def dirty_records(self) -> int:
        """Journal records not yet covered by a snapshot."""
        return 0 if self.journal is None else self.journal.pending_records

    def attach(self, tree, *, checkpoint: bool = True) -> UpdateJournal:
        """Wire the WAL into ``tree`` and (by default) snapshot it now.

        After this, every ``insert_batch``/``delete_batch`` appends its
        record before mutating and its COMMIT marker after, and failover/
        migration append their control records — all charged under the
        ``"wal"`` phase.
        """
        self.journal = UpdateJournal(self.backend, system=tree.system)
        tree.journal = self.journal
        if checkpoint:
            self.checkpoint(tree)
        return self.journal

    def checkpoint(self, tree) -> dict:
        """COW-flush a snapshot and truncate the journal it covers."""
        wal_seq = 0 if self.journal is None else self.journal.next_seq - 1
        report = self.snapshots.flush(tree, wal_seq=wal_seq)
        # The snapshot covers every journaled record: drop them.  Sequence
        # numbers keep counting up, so any record appended from here on is
        # unambiguously after this snapshot.
        self.backend.wal_reset(b"")
        if self.journal is not None:
            self.journal.pending_records = 0
        self.checkpoints += 1
        self.events.append({"kind": "checkpoint", **report})
        return report

    def recover(self, *, tracer=None, cost_model=None, validate=True
                ) -> RecoveryResult:
        """Rebuild from disk after a crash and re-attach the journal.

        The journal continues from ``max_seq + 1``; the on-disk WAL still
        holds the replayed records (they are not yet covered by any
        snapshot), so ``dirty_records`` reflects them and the next
        checkpoint truncates the lot.
        """
        res = recover(self.backend, tracer=tracer, cost_model=cost_model,
                      validate=validate)
        self.journal = UpdateJournal(
            self.backend, system=res.system, start_seq=res.max_seq + 1
        )
        self.journal.pending_records = res.wal_records
        res.tree.journal = self.journal
        self.events.append({
            "kind": "recover",
            "snapshot_seq": res.snapshot_seq,
            "replayed": res.replayed,
            "skipped_uncommitted": res.skipped_uncommitted,
            "torn_tail": res.torn_tail is not None,
        })
        return res
