"""repro.store — the durable tier: COW snapshots + WAL + charged recovery.

Every reliability result before this subsystem assumed the host-resident
canonical index survives; a real deployment does not get that assumption.
The durable tier closes the gap with three cooperating pieces:

* **snapshots** (:mod:`.snapshot`) — periodic copy-on-write images of the
  host index, content-addressed per chunk so clean chunks are never
  rewritten;
* **the WAL** (:mod:`.wal`) — an append-only checksummed journal that
  ``insert_batch``/``delete_batch`` write ahead of mutation;
* **recovery** (:mod:`.recovery`) — snapshot load + committed-prefix
  replay + bulk re-upload, all charged under a pinned ``"recovery"``
  phase so PIMStats book the true restart cost.

:class:`DurableStore` is the lifecycle front door the serve loop uses;
:func:`open_backend` picks between the file and sqlite backends.
"""

from .backend import FileBackend, SQLiteBackend, open_backend
from .errors import SnapshotCorruption, StoreError, WALCorruption
from .manager import DurableStore
from .recovery import RecoveryResult, recover
from .snapshot import SnapshotImage, SnapshotStore, decode_tree, encode_tree
from .wal import TornTail, UpdateJournal, WALRecord, committed_seqs, scan_wal

__all__ = [
    "FileBackend",
    "SQLiteBackend",
    "open_backend",
    "StoreError",
    "WALCorruption",
    "SnapshotCorruption",
    "DurableStore",
    "RecoveryResult",
    "recover",
    "SnapshotImage",
    "SnapshotStore",
    "encode_tree",
    "decode_tree",
    "WALRecord",
    "TornTail",
    "UpdateJournal",
    "scan_wal",
    "committed_seqs",
]
