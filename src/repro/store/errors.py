"""Typed errors of the durable storage tier.

Leaf module (no intra-repo imports) so both the backends and the
recovery path can raise them without import cycles.  The contract the
crash-matrix suite enforces: recovery either replays a valid WAL prefix
exactly, or raises one of these — it never loads a silently corrupt
index.
"""

from __future__ import annotations

__all__ = ["StoreError", "WALCorruption", "SnapshotCorruption"]


class StoreError(RuntimeError):
    """Base class for durable-tier failures."""


class WALCorruption(StoreError):
    """The journal is corrupt *mid-file* (not a torn tail).

    A checksum mismatch or broken framing with valid bytes following it
    cannot be explained by a crash during the last append, so replaying
    any prefix would risk silently losing acknowledged updates — the
    loader refuses loudly instead.
    """

    def __init__(self, offset: int, reason: str) -> None:
        super().__init__(f"WAL corrupt at byte {offset}: {reason}")
        self.offset = int(offset)
        self.reason = reason


class SnapshotCorruption(StoreError):
    """A snapshot blob or its manifest failed integrity verification."""
