"""Failover: rebuild a dead module's shard from the host-resident index.

The simulator is functional — the canonical tree always lives in host
memory — so a module crash loses *placement*, not data: every meta-node
mastered on the dead module must be re-placed (salted hash with the dead
set excluded, see :meth:`repro.pim.PIMSystem.place`) and its shard
re-uploaded from the host copy.  The rebuild is charged through the
simulator under the ``"recovery"`` phase, so recovery cost is visible in
SimTime and in the Fig. 6-style phase attribution exactly like any other
work:

* one CPU re-placement hash per moved meta-node;
* a host-DRAM read of each shard (the canonical index is streamed out);
* one BSP round sending each shard (master copy plus its L1 replica
  fan-out) to its new module.

Fault injection is suppressed for the duration (the repair path runs
over a reliable control channel), which also guarantees recovery
terminates even under high drop rates.
"""

from __future__ import annotations

__all__ = ["fail_over"]

# Host-side salted-hash + bookkeeping work per re-placed meta-node.
_REPLACE_CPU_OPS = 24


def fail_over(tree, dead_mid: int) -> dict:
    """Decommission ``dead_mid`` and rebuild its shard on live modules.

    Returns a summary dict: the dead module id, how many meta-nodes were
    re-placed and the total words re-uploaded.  Idempotent: failing over
    an already-dead module with no resident meta-nodes is a cheap no-op.
    """
    from ..balance.planner import choose_destination
    from ..core.chunking import MetaNode  # noqa: F401 (documentation import)
    from ..core.node import Layer

    sys = tree.system
    reps = getattr(tree, "replicas", None)
    with sys.phase("recovery"), sys.faults_suppressed():
        sys.decommission(dead_mid)
        # Replica-aware fast path (repro.replicate): chunks mastered on
        # the dead module whose ReplicaSet holds a live secondary are
        # *promoted* — a control-plane pointer swap plus a placement
        # override, no shard re-upload; the copy is already resident.
        promotions = reps.on_module_dead(dead_mid) if reps is not None else {}
        moved = sorted(
            (m for m in tree.metas if m.module == dead_mid),
            key=lambda m: m.root.nid,
        )
        words_moved = 0.0
        promoted = 0
        rebuilt = []
        if moved:
            sys.charge_cpu(len(moved) * _REPLACE_CPU_OPS)
            with sys.round():
                for meta in moved:
                    new_mid = promotions.get(meta.root.nid)
                    if new_mid is not None:
                        meta.module = new_mid
                        sys.set_placement_override(
                            ("meta", meta.root.nid), new_mid
                        )
                        # Only the mastership hand-off control message.
                        sys.send(new_mid, 2)
                        promoted += 1
                        continue
                    rebuilt.append(meta)
                    words = meta.size_words(tree.config)
                    # Capacity-aware re-placement: identical to the plain
                    # salted-hash place() unless the hashed module's
                    # capacity budget would be violated (repro.balance).
                    meta.module = choose_destination(
                        sys, ("meta", meta.root.nid), words=words
                    )
                    replicas = (meta.replica_count()
                                if meta.layer == Layer.L1 else 0)
                    total = words * (1 + replicas)
                    sys.dram_stream(words)
                    sys.send(meta.module, total)
                    words_moved += total
        tree.refresh_residency()
    # Journal the failover (self-committed control record) so a crash
    # after this point replays the same re-placement from the snapshot.
    journal = getattr(tree, "journal", None)
    if journal is not None:
        journal.log_failover(dead_mid)
    return {
        "module": int(dead_mid),
        "metas_moved": len(moved),
        "words_moved": float(words_moved),
        "promoted": promoted,
    }
