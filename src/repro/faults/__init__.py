"""Seeded fault injection and recovery for the PIM stack (``repro.faults``).

The paper's BSP model makes round time the *maximum* over modules, so one
failed or straggling module stalls the whole machine.  This package gives
the simulator a deterministic fault vocabulary and the index a recovery
path:

* :class:`FaultPlan` — a seeded schedule of module crashes, straggler
  storms and transient CPU↔PIM message drops, consulted by
  :class:`~repro.pim.PIMSystem` at ``charge_pim``/``send``/``recv`` and
  at round close; every injected event is recorded (and forwarded to an
  attached ``repro.obs`` collector);
* :class:`ModuleFailure` / :class:`MessageLoss` — typed errors raised at
  the charging sites (:class:`FaultError` is the common base);
* :func:`fail_over` — rebuilds a dead module's shard from the
  host-resident canonical index onto live modules (salted-hash placement
  with the dead set excluded), charged under the ``"recovery"`` phase.

The serving layer (``repro.serve``) catches :class:`FaultError`, retries
with exponential backoff, triggers failover on :class:`ModuleFailure`,
and degrades gracefully when retries are exhausted; see
``ServeLoop``.  Driven from the CLI via ``python -m repro.cli faults``.
"""

from .errors import FaultError, MachineKill, MessageLoss, ModuleFailure
from .plan import FaultEvent, FaultPlan
from .recovery import fail_over

__all__ = [
    "FaultError",
    "FaultEvent",
    "FaultPlan",
    "MachineKill",
    "MessageLoss",
    "ModuleFailure",
    "fail_over",
]
