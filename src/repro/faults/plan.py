"""Seeded, deterministic fault schedules for the PIM simulator.

A :class:`FaultPlan` is a pure function of its construction arguments and
its own private RNG stream: two runs with the same plan arguments against
the same workload consume the RNG in the same order and therefore inject
byte-identical faults — the determinism the fault tests rely on.

The plan models the failure modes the UPMEM benchmarking studies report
on real hardware (per-DPU variance, transient faults, modules dropping
out mid-run):

* **module crashes** — scheduled explicitly (``crash_at``) or drawn per
  (module, round) at ``crash_rate``; a crashed module is decommissioned
  by the :class:`~repro.pim.PIMSystem` and every later charge addressed
  to it raises :class:`~repro.faults.ModuleFailure`;
* **straggler storms** — a static per-module ``slow_factors`` map plus
  transient storms (probability ``storm_rate`` per round) that multiply
  one module's PIM cycles by ``storm_factor`` for ``storm_rounds``
  rounds, inflating the BSP round's straggler max;
* **message drops** — each CPU↔PIM transfer is lost with probability
  ``drop_rate``, raising :class:`~repro.faults.MessageLoss` before the
  words are charged (the work already done in the round stands — wasted
  work is the cost of the retry).

Every injected event is recorded in :attr:`FaultPlan.events` and
forwarded by the simulator to an attached ``repro.obs`` collector.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FaultEvent", "FaultPlan"]


@dataclass(slots=True)
class FaultEvent:
    """One injected fault, stamped with the BSP round it happened in."""

    kind: str  # "crash" | "drop" | "storm" | "kill" | "machine_kill"
    mid: int  # module concerned
    round_index: int  # charged-round counter at injection time
    value: float  # words lost / slowdown factor / 0.0
    note: str = ""

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "mid": self.mid,
            "round": self.round_index,
            "value": float(self.value),
            "note": self.note,
        }


class FaultPlan:
    """Deterministic schedule of module crashes, storms and message drops."""

    def __init__(
        self,
        *,
        seed: int = 0,
        crash_at: dict[int, int] | None = None,
        crash_rate: float = 0.0,
        max_crashes: int | None = None,
        drop_rate: float = 0.0,
        slow_factors: dict[int, float] | None = None,
        storm_rate: float = 0.0,
        storm_factor: float = 8.0,
        storm_rounds: int = 4,
        machine_kill_at: int | None = None,
    ) -> None:
        for name, rate in (("crash_rate", crash_rate), ("drop_rate", drop_rate),
                           ("storm_rate", storm_rate)):
            if not 0.0 <= rate < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {rate}")
        if storm_factor < 1.0:
            raise ValueError("storm_factor must be >= 1")
        if storm_rounds < 1:
            raise ValueError("storm_rounds must be >= 1")
        if slow_factors and any(f < 1.0 for f in slow_factors.values()):
            raise ValueError("slow_factors entries must be >= 1")
        if machine_kill_at is not None and machine_kill_at < 0:
            raise ValueError("machine_kill_at must be a round index >= 0")
        self.seed = int(seed)
        self.crash_at = {int(m): int(r) for m, r in (crash_at or {}).items()}
        self.crash_rate = float(crash_rate)
        self.max_crashes = None if max_crashes is None else int(max_crashes)
        self.drop_rate = float(drop_rate)
        self.slow_factors = {int(m): float(f) for m, f in (slow_factors or {}).items()}
        self.storm_rate = float(storm_rate)
        self.storm_factor = float(storm_factor)
        self.storm_rounds = int(storm_rounds)
        # Whole-machine kill: fires once when this many rounds have been
        # charged, tearing down host + modules (see MachineKill).  The
        # fired flag survives re-attachment to the recovered system, so a
        # restart does not immediately re-kill itself.
        self.machine_kill_at = (
            None if machine_kill_at is None else int(machine_kill_at)
        )
        self.machine_killed = False

        self._rng = np.random.default_rng(self.seed)
        self._storms: dict[int, int] = {}  # mid -> rounds of storm left
        # Cached per-module slowdown multiplier vector (see slow_vector);
        # invalidated whenever the storm set changes.
        self._slow_vec: np.ndarray | None = None
        self.crashed: set[int] = set()
        self.events: list[FaultEvent] = []
        # While paused (recovery / compensation paths) no new faults are
        # injected — the repair traffic runs over a reliable control path,
        # and pausing guarantees recovery terminates.
        self.paused = False

    # ------------------------------------------------------------------
    # hooks consulted by PIMSystem
    # ------------------------------------------------------------------
    def slow_factor(self, mid: int) -> float:
        """Cycle multiplier currently in force on module ``mid``."""
        f = self.slow_factors.get(mid, 1.0)
        if self._storms and mid in self._storms:
            f *= self.storm_factor
        return f

    def slow_vector(self, n: int) -> np.ndarray:
        """Length-``n`` cycle-multiplier vector (``slow_factor`` per mid).

        ``vec[mid]`` is computed exactly as :meth:`slow_factor` computes
        it (static factor, then ``*= storm_factor`` while stormed), so
        multiplying a charge vector by this is byte-identical to the
        per-element path — including the inert ``* 1.0`` baseline.  The
        vector is cached and rebuilt only when the storm set changes
        (storms mutate only at round close), keeping the vectorized
        charge path allocation-free between fault events.
        """
        vec = self._slow_vec
        if vec is None or vec.shape[0] != n:
            vec = np.ones(n, dtype=np.float64)
            for mid, f in self.slow_factors.items():
                if 0 <= mid < n:
                    vec[mid] = f
            for mid in self._storms:
                if 0 <= mid < n:
                    vec[mid] = (self.slow_factors.get(mid, 1.0)
                                * self.storm_factor)
            self._slow_vec = vec
        return vec

    def should_drop(self, direction: str, mid: int, words: float,
                    round_index: int) -> FaultEvent | None:
        """Roll for a transient message loss; records and returns the event."""
        if self.paused or self.drop_rate <= 0.0:
            return None
        if self._rng.random() >= self.drop_rate:
            return None
        ev = FaultEvent("drop", mid, round_index, float(words), direction)
        self.events.append(ev)
        return ev

    def on_round_close(self, round_index: int,
                       live_mids: list[int]) -> list[FaultEvent]:
        """Advance the schedule after one charged BSP round.

        Returns the newly injected events; ``"crash"`` events must be
        applied by the caller (``PIMSystem.decommission``).
        """
        if self.paused:
            return []
        out: list[FaultEvent] = []
        # Storm decay.
        for mid in sorted(self._storms):
            left = self._storms[mid] - 1
            if left <= 0:
                del self._storms[mid]
                self._slow_vec = None
            else:
                self._storms[mid] = left
        # Scheduled crashes.
        for mid in sorted(self.crash_at):
            if (self.crash_at[mid] <= round_index and mid in live_mids
                    and mid not in self.crashed):
                out.append(self._crash(mid, round_index, "scheduled"))
        # Random crashes (bounded by max_crashes).
        if self.crash_rate > 0.0:
            for mid in live_mids:
                if mid in self.crashed:
                    continue
                if (self.max_crashes is not None
                        and len(self.crashed) >= self.max_crashes):
                    break
                if self._rng.random() < self.crash_rate:
                    out.append(self._crash(mid, round_index, "random"))
        # Whole-machine kill (fires once).
        if (self.machine_kill_at is not None and not self.machine_killed
                and round_index >= self.machine_kill_at):
            self.machine_killed = True
            out.append(FaultEvent("machine_kill", -1, round_index, 0.0,
                                  "scheduled"))
        # Straggler storms.
        if self.storm_rate > 0.0 and self._rng.random() < self.storm_rate:
            candidates = [m for m in live_mids if m not in self.crashed]
            if candidates:
                mid = candidates[int(self._rng.integers(len(candidates)))]
                self._storms[mid] = self.storm_rounds
                self._slow_vec = None
                out.append(FaultEvent("storm", mid, round_index,
                                      self.storm_factor,
                                      f"{self.storm_rounds} rounds"))
        self.events.extend(out)
        return out

    def record_kill(self, mid: int, round_index: int) -> FaultEvent:
        """Record an externally requested kill (CLI / tests)."""
        ev = FaultEvent("kill", mid, round_index, 0.0, "manual")
        self.crashed.add(mid)
        self.events.append(ev)
        return ev

    # ------------------------------------------------------------------
    def _crash(self, mid: int, round_index: int, note: str) -> FaultEvent:
        self.crashed.add(mid)
        return FaultEvent("crash", mid, round_index, 0.0, note)

    def summary(self) -> dict[str, int]:
        """Event counts by kind (for CLI / benchmark reporting)."""
        out: dict[str, int] = {}
        for ev in self.events:
            out[ev.kind] = out.get(ev.kind, 0) + 1
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultPlan(seed={self.seed}, crashes={sorted(self.crashed)}, "
            f"events={len(self.events)})"
        )
