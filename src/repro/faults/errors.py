"""Typed fault errors raised by the PIM simulator under a fault plan.

These live in their own leaf module (no intra-repo imports) so that
``repro.pim.model`` can raise them without creating an import cycle:
``pim → faults.errors`` is the only edge from the simulator into the
fault package, and ``faults.plan`` / ``faults.recovery`` depend on the
simulator only lazily.
"""

from __future__ import annotations

__all__ = ["FaultError", "ModuleFailure", "MessageLoss", "MachineKill"]


class FaultError(RuntimeError):
    """Base class for injected faults.

    The harness adapter attaches the partial :class:`~repro.eval.metrics.
    OpMeasurement` of the failed attempt as ``measurement`` before
    re-raising, so callers (the serving loop) can charge the wasted work
    to the virtual clock even though the operation produced no result.
    """

    measurement = None  # filled in by the adapter's measure() wrapper


class ModuleFailure(FaultError):
    """A PIM module crashed; any charge addressed to it fails."""

    def __init__(self, mid: int) -> None:
        super().__init__(f"PIM module {mid} has failed")
        self.mid = int(mid)


class MessageLoss(FaultError):
    """A transient CPU↔PIM transfer was dropped (retryable)."""

    def __init__(self, mid: int, direction: str, words: float) -> None:
        super().__init__(
            f"lost {direction} message of {words:g} words to/from module {mid}"
        )
        self.mid = int(mid)
        self.direction = direction
        self.words = float(words)


class MachineKill(FaultError):
    """The whole machine (host + all modules) went down.

    Raised at the next BSP round entry after a ``machine_kill`` fault
    event landed: in-memory state — the host-resident canonical index and
    every module's shard — is gone, and only the durable tier
    (``repro.store``) can bring the service back.  The serving loop
    catches this above :class:`ModuleFailure` and restarts from disk.
    """

    def __init__(self, round_index: int) -> None:
        super().__init__(
            f"machine killed (detected at BSP round {round_index})"
        )
        self.round_index = int(round_index)
