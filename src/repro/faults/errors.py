"""Typed fault errors raised by the PIM simulator under a fault plan.

These live in their own leaf module (no intra-repo imports) so that
``repro.pim.model`` can raise them without creating an import cycle:
``pim → faults.errors`` is the only edge from the simulator into the
fault package, and ``faults.plan`` / ``faults.recovery`` depend on the
simulator only lazily.
"""

from __future__ import annotations

__all__ = ["FaultError", "ModuleFailure", "MessageLoss"]


class FaultError(RuntimeError):
    """Base class for injected faults.

    The harness adapter attaches the partial :class:`~repro.eval.metrics.
    OpMeasurement` of the failed attempt as ``measurement`` before
    re-raising, so callers (the serving loop) can charge the wasted work
    to the virtual clock even though the operation produced no result.
    """

    measurement = None  # filled in by the adapter's measure() wrapper


class ModuleFailure(FaultError):
    """A PIM module crashed; any charge addressed to it fails."""

    def __init__(self, mid: int) -> None:
        super().__init__(f"PIM module {mid} has failed")
        self.mid = int(mid)


class MessageLoss(FaultError):
    """A transient CPU↔PIM transfer was dropped (retryable)."""

    def __init__(self, mid: int, direction: str, words: float) -> None:
        super().__init__(
            f"lost {direction} message of {words:g} words to/from module {mid}"
        )
        self.mid = int(mid)
        self.direction = direction
        self.words = float(words)
