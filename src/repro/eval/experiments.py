"""Programmatic definitions of every §7 experiment.

Each ``run_*`` function reproduces one table or figure of the paper and
returns a structured :class:`ExperimentResult` (rows + column names +
paper reference), so the experiments can be driven from scripts, notebooks
or the CLI (``python -m repro.cli``) as well as from the pytest benchmark
suite.  Parameters default to the scaled-down sizes of DESIGN.md and can
be raised toward paper scale on bigger machines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..core import throughput_optimized
from ..workloads import (
    cosmos_like_points,
    osm_like_points,
    uniform_points,
    varden_points,
    zipf_mix_queries,
)
from .harness import (
    FIG5_OPS,
    PIMZdTreeAdapter,
    calibrate_box_side,
    make_adapter,
    run_op,
    run_suite,
)
from .metrics import OpMeasurement, percentile
from .report import bar_chart, format_table

__all__ = [
    "ExperimentResult",
    "DATASETS",
    "run_fig5",
    "run_latency",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_table2",
    "run_table3",
    "ALL_EXPERIMENTS",
]

DATASETS: dict[str, Callable] = {
    "uniform": uniform_points,
    "cosmos": cosmos_like_points,
    "osm": osm_like_points,
    "varden": varden_points,
}


@dataclass
class ExperimentResult:
    """One regenerated table/figure."""

    name: str
    paper_ref: str
    headers: list[str]
    rows: list[list]
    notes: str = ""
    raw: dict = field(default_factory=dict)

    def table(self) -> str:
        return format_table(self.headers, self.rows)

    def __str__(self) -> str:  # pragma: no cover - convenience
        out = f"=== {self.name} ({self.paper_ref}) ===\n{self.table()}"
        if self.notes:
            out += f"\n{self.notes}"
        return out


def _dataset(name: str, n: int, seed: int) -> np.ndarray:
    try:
        gen = DATASETS[name]
    except KeyError:
        raise ValueError(f"unknown dataset {name!r}; choose from {sorted(DATASETS)}")
    return gen(n, 3, seed=seed)


# ======================================================================
# Fig. 5 — the end-to-end comparison
# ======================================================================
def run_fig5(
    dataset: str = "uniform",
    *,
    n: int = 40_000,
    batch: int = 512,
    n_modules: int = 64,
    seed: int = 7,
    ops: Sequence[str] = FIG5_OPS,
    indexes: Sequence[str] = ("pim", "pkd", "zd"),
) -> ExperimentResult:
    """Throughput + per-element traffic for all operations and indexes."""
    data = _dataset(dataset, n, seed)
    gen = DATASETS[dataset]
    counter = {"i": 0}

    def fresh(m: int) -> np.ndarray:
        counter["i"] += 1
        return gen(m, 3, seed=seed * 1000 + counter["i"])

    targets = sorted({int(o.split("-")[1]) for o in ops if o.startswith(("bc-", "bf-"))})
    sides = {t: calibrate_box_side(data, t, seed=seed) for t in targets}

    results: dict[str, list[OpMeasurement]] = {}
    for kind in indexes:
        adapter = make_adapter(kind, data, n_modules=n_modules)
        results[adapter.name] = run_suite(
            adapter, data=data, ops=ops, batch=batch, seed=seed,
            fresh_points=fresh, box_sides=sides,
        )

    headers = ["op"]
    names = list(results)
    for name in names:
        headers += [f"{name} MOp/s", f"{name} B/elem"]
    rows = []
    for i, op in enumerate(ops):
        row = [op]
        for name in names:
            m = results[name][i]
            row += [round(m.throughput / 1e6, 4), round(m.traffic_per_element, 1)]
        rows.append(row)
    # A terminal rendition of the Fig. 5 bars for one representative op.
    bar_op = ops[-1]
    idx = list(ops).index(bar_op)
    chart = bar_chart(
        names,
        [results[nm][idx].throughput / 1e6 for nm in names],
        unit=" MOp/s",
        log=True,
    )
    return ExperimentResult(
        name=f"fig5-{dataset}",
        paper_ref="Fig. 5",
        headers=headers,
        rows=rows,
        notes=f"throughput, {bar_op} (log-scale bars):\n{chart}",
        raw={k: [m.row() for m in v] for k, v in results.items()},
    )


# ======================================================================
# §7.2 latency
# ======================================================================
def run_latency(
    dataset: str = "osm",
    *,
    n: int = 40_000,
    batch: int = 96,
    n_batches: int = 24,
    n_modules: int = 64,
    seed: int = 7,
    k: int = 1,
) -> ExperimentResult:
    """P50/P99 per-batch kNN latency for the three indexes."""
    data = _dataset(dataset, n, seed)
    rows = []
    for kind in ("pim", "pkd", "zd"):
        adapter = make_adapter(kind, data, n_modules=n_modules)
        rng = np.random.default_rng(seed + 1)
        lats = []
        for _ in range(n_batches):
            q = data[rng.integers(0, len(data), batch)]
            lats.append(adapter.measure(lambda: adapter.knn(q, k)).sim_time_s)
        rows.append(
            [adapter.name, round(percentile(lats, 50) * 1e3, 3),
             round(percentile(lats, 99) * 1e3, 3)]
        )
    return ExperimentResult(
        name=f"latency-{dataset}",
        paper_ref="§7.2 latency",
        headers=["index", "P50 ms", "P99 ms"],
        rows=rows,
        notes="paper (absolute, full scale): pim 32.5 ms, pkd 44.9 ms, zd 210 ms",
    )


# ======================================================================
# Fig. 6 — runtime breakdown
# ======================================================================
def run_fig6(
    *,
    n: int = 40_000,
    batch: int = 512,
    n_modules: int = 64,
    seed: int = 7,
    ops: Sequence[str] = ("insert", "bc-1", "bc-100", "bf-100", "100-nn"),
) -> ExperimentResult:
    data = _dataset("uniform", n, seed)
    adapter = make_adapter("pim", data, n_modules=n_modules)
    sides = {t: calibrate_box_side(data, t, seed=seed) for t in (1, 100)}
    counter = {"i": 0}

    def fresh(m: int) -> np.ndarray:
        counter["i"] += 1
        return uniform_points(m, 3, seed=seed * 31 + counter["i"])

    rows = []
    for op in ops:
        m = run_op(
            adapter, op, data=data, batch=batch, seed=seed,
            box_sides=sides, fresh_points=fresh,
        )
        f = m.breakdown_fractions()
        rows.append([op, round(f["cpu"], 3), round(f["pim"], 3), round(f["comm"], 3)])
    return ExperimentResult(
        name="fig6",
        paper_ref="Fig. 6",
        headers=["op", "cpu", "pim", "comm"],
        rows=rows,
    )


# ======================================================================
# Fig. 7 — batch-size sensitivity
# ======================================================================
def run_fig7(
    *,
    n: int = 40_000,
    batch_sizes: Sequence[int] = (128, 256, 512, 1024, 2048, 4096),
    n_modules: int = 64,
    seed: int = 7,
) -> ExperimentResult:
    data = _dataset("uniform", n, seed)
    rows = []
    for batch in batch_sizes:
        adapter = make_adapter("pim", data, n_modules=n_modules)
        fresh = uniform_points(batch, 3, seed=seed * 31 + batch)
        m = adapter.measure(lambda: adapter.insert(fresh))
        rows.append(
            [batch, round(m.throughput / 1e6, 4), round(m.traffic_bytes / batch, 1)]
        )
    return ExperimentResult(
        name="fig7",
        paper_ref="Fig. 7",
        headers=["batch", "MOp/s", "traffic B/op"],
        rows=rows,
    )


# ======================================================================
# Fig. 8 — dataset-size sensitivity
# ======================================================================
def run_fig8(
    *,
    sizes: Sequence[int] = (10_000, 20_000, 40_000, 80_000),
    batch: int = 384,
    n_modules: int = 64,
    seed: int = 7,
) -> ExperimentResult:
    rows = []
    for kind in ("pim", "pkd", "zd"):
        row = [kind]
        for n in sizes:
            data = uniform_points(n, 3, seed=seed)
            adapter = make_adapter(kind, data, n_modules=n_modules)
            rng = np.random.default_rng(seed + n)
            q = data[rng.integers(0, n, batch)]
            m = adapter.measure(lambda: adapter.knn(q, 1))
            row.append(round(m.throughput / 1e6, 4))
        rows.append(row)
    return ExperimentResult(
        name="fig8",
        paper_ref="Fig. 8",
        headers=["index"] + [f"n={n}" for n in sizes],
        rows=rows,
        notes="paper: PIM stable; Pkd degrades 1.4x, zd 1.6x over a 15x sweep",
    )


# ======================================================================
# Fig. 9 — skew resistance
# ======================================================================
def run_fig9(
    *,
    n: int = 40_000,
    batch: int = 768,
    fractions: Sequence[float] = (0.0, 0.002, 0.02, 0.2, 1.0),
    n_modules: int = 64,
    seed: int = 7,
) -> ExperimentResult:
    data = _dataset("uniform", n, seed)
    rows = []
    for variant in ("pim", "pim-skew"):
        adapter = make_adapter(variant, data, n_modules=n_modules)
        row = [adapter.variant]
        for i, frac in enumerate(fractions):
            q = zipf_mix_queries(data, batch, frac, seed=seed * 100 + i)
            m = adapter.measure(lambda: adapter.knn(q, 1))
            row.append(round(m.throughput / 1e6, 4))
        rows.append(row)
    return ExperimentResult(
        name="fig9",
        paper_ref="Fig. 9",
        headers=["variant"] + [f"varden={f:g}" for f in fractions],
        rows=rows,
        notes="paper: skew-resistant fluctuates <= 4.1%; throughput-optimized "
              "degrades 10.66x at 2% Varden",
    )


# ======================================================================
# Table 2 — configuration properties
# ======================================================================
def run_table2(
    *,
    n: int = 40_000,
    batch: int = 512,
    n_modules: int = 64,
    seed: int = 7,
) -> ExperimentResult:
    data = _dataset("uniform", n, seed)
    rng = np.random.default_rng(seed)
    rows = []
    for variant in ("pim", "pim-skew"):
        adapter = make_adapter(variant, data, n_modules=n_modules)
        space = adapter.tree.space_words()["total"]
        point_words = len(data) * (adapter.tree.dims + 1)
        q = data[rng.integers(0, len(data), batch)]
        snap = adapter.system.snapshot()
        adapter.tree.search(q)
        d = adapter.system.stats.diff(snap).total
        rows.append(
            [
                adapter.variant,
                round(space / point_words, 2),
                round(d.comm_words / batch, 1),
                d.rounds,
            ]
        )
    return ExperimentResult(
        name="table2",
        paper_ref="Table 2",
        headers=["config", "space/points", "search words/op", "search rounds"],
        rows=rows,
    )


# ======================================================================
# Table 3 — implementation-technique ablations
# ======================================================================
def run_table3(
    *,
    n: int = 40_000,
    batch: int = 256,
    n_modules: int = 64,
    seed: int = 7,
    ops: Sequence[str] = ("insert", "bc-10", "bf-10", "10-nn"),
) -> ExperimentResult:
    data = _dataset("uniform", n, seed)
    sides = {10: calibrate_box_side(data, 10, seed=seed)}
    counter = {"i": 0}

    def fresh(m: int) -> np.ndarray:
        counter["i"] += 1
        return uniform_points(m, 3, seed=seed * 77 + counter["i"])

    def suite(**cfg_over) -> dict[str, float]:
        cfg = throughput_optimized(len(data), n_modules, **cfg_over)
        adapter = PIMZdTreeAdapter(data, n_modules=n_modules, config=cfg)
        out = {}
        for op in ops:
            m = run_op(
                adapter, op, data=data, batch=batch, seed=seed,
                box_sides=sides, fresh_points=fresh,
            )
            out[op] = m.sim_time_s / max(1, m.elements)
        return out

    base = suite()
    ablations = {
        "lazy-counter": {"lazy_counters": False},
        "fast-zorder": {"fast_zorder": False},
        "fast-l2": {"fast_l2": False},
        "direct-api": {"direct_api": False},
    }
    rows = []
    for name, over in ablations.items():
        abl = suite(**over)
        rows.append([name] + [round(abl[op] / base[op], 3) for op in ops])
    return ExperimentResult(
        name="table3",
        paper_ref="Table 3",
        headers=["technique removed"] + list(ops),
        rows=rows,
        notes="paper: lazy 1.49x insert; fast z-order 1.99/1.58/1.31/1.67x; "
              "fast l2 1.58x knn; direct API 1.06-1.09x",
    )


ALL_EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "fig5": run_fig5,
    "latency": run_latency,
    "fig6": run_fig6,
    "fig7": run_fig7,
    "fig8": run_fig8,
    "fig9": run_fig9,
    "table2": run_table2,
    "table3": run_table3,
}
