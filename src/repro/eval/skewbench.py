"""Adversarial hot-shard workloads and the rebalance throughput timeline.

The rebalancing experiments need a workload where mastership placement —
not algorithmic work — is the bottleneck: several popular chunks whose
placement hashes collide on one module, so every batch's BSP round is
gated by that module's straggler cycles.  Under the throughput-optimized
configuration the L1 pull threshold is ≈ θ_L0 queries per chunk, far
above any realistic per-chunk share of a batch, so push-pull cannot
rescue the round (PIM-tree's observation) and migration is the only fix.

:func:`hottest_colocated_metas` finds the module with the most resident
chunks (weighted by subtree size); :func:`boxes_under_metas` builds a
range-count stream scanning those chunks evenly (heavy PIM work, one
result word — the straggler-bound regime) and :func:`queries_under_metas`
the kNN equivalent — real points under each chunk root with a small
jitter so traversals stay inside the chunk region.
:func:`throughput_timeline` then runs a closed-loop batch-at-a-time
serving schedule on the virtual clock, optionally stepping an
:class:`repro.balance.OnlineRebalancer` after each batch, and reports
per-step throughput so recovery after migration is visible.

Everything is seeded and runs on simulated time: two identical calls
produce byte-identical timelines.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

__all__ = [
    "hottest_colocated_metas",
    "queries_under_metas",
    "boxes_under_metas",
    "throughput_timeline",
    "steady_state_throughput",
]


def hottest_colocated_metas(tree, *, max_metas: int = 4):
    """The module with the most colocated chunk mass, and its chunks.

    Returns ``(mid, metas)`` where ``metas`` are the module's resident
    meta-nodes, largest subtree first (deterministic: ties by root nid).
    Hash placement colocates several chunks on one module with high
    probability once the chunk count passes the module count (birthday
    bound) — that module is the built-in straggler this workload attacks.
    """
    by_module: dict[int, list] = defaultdict(list)
    for meta in tree.metas:
        by_module[meta.module].append(meta)
    mid = max(
        sorted(by_module),
        key=lambda m: (
            sum(x.root.count for x in by_module[m]),
            len(by_module[m]),
            -m,
        ),
    )
    metas = sorted(by_module[mid], key=lambda m: (-m.root.count, m.root.nid))
    return mid, metas[:max_metas]


def _points_under(node, cap: int = 8192) -> np.ndarray:
    """Up to ``cap`` points stored in leaves under ``node`` (DFS order)."""
    chunks: list[np.ndarray] = []
    got = 0
    stack = [node]
    while stack and got < cap:
        n = stack.pop()
        if n.is_leaf:
            chunks.append(n.pts)
            got += len(n.pts)
        else:
            stack.append(n.right)
            stack.append(n.left)
    pts = np.vstack(chunks)
    return pts[:cap]


def queries_under_metas(tree, metas, n_queries: int, *,
                        seed: int = 0, jitter: float = 1e-6) -> np.ndarray:
    """A query stream striking ``metas`` evenly (round-robin).

    Queries are real points under each chunk root plus a tiny jitter, so
    the kNN frontier lands inside the chunk; even striking keeps the
    chunks' per-batch work comparable, which is what makes spreading them
    across modules pay off linearly.
    """
    if not metas:
        raise ValueError("need at least one target meta-node")
    rng = np.random.default_rng(seed)
    pools = [_points_under(m.root) for m in metas]
    dims = pools[0].shape[1]
    out = np.empty((n_queries, dims), dtype=np.float64)
    for i in range(n_queries):
        pool = pools[i % len(pools)]
        out[i] = pool[int(rng.integers(0, len(pool)))]
    out += rng.normal(scale=jitter, size=out.shape)
    return out


def boxes_under_metas(tree, metas, n_boxes: int, *,
                      seed: int = 0, extent: float = 0.9) -> list:
    """Range boxes striking ``metas`` evenly (round-robin).

    Each box is centred on a real point under one chunk root and spans
    ``extent`` of that chunk's bounding extent (clipped to it), so a
    ``box_count`` scans most of the chunk on its master module while
    returning a single count word.  That work shape — heavy PIM scan,
    near-zero transfer — is the regime where the straggler module, not
    the shared host↔PIM bus, gates the round, which is what makes
    mastership migration pay off (kNN batches at small module counts are
    bus-bound and placement-insensitive).
    """
    from ..core import Box

    if not metas:
        raise ValueError("need at least one target meta-node")
    rng = np.random.default_rng(seed)
    pools = [_points_under(m.root) for m in metas]
    boxes = []
    for i in range(n_boxes):
        pool = pools[i % len(pools)]
        lo_p, hi_p = pool.min(axis=0), pool.max(axis=0)
        half = (hi_p - lo_p) * extent / 2.0
        c = pool[int(rng.integers(0, len(pool)))]
        boxes.append(Box(np.maximum(c - half, lo_p), np.minimum(c + half, hi_p)))
    return boxes


def throughput_timeline(adapter, queries, *, steps: int,
                        batch: int, k: int = 10, kind: str = "bc",
                        rebalancer=None) -> list[dict]:
    """Closed-loop serving: ``steps`` query batches, optional rebalance steps.

    ``kind`` selects the request shape: ``"bc"`` (default) treats
    ``queries`` as a list of :class:`~repro.core.Box` served via
    ``box_count``; ``"knn"`` treats it as a point array served via
    ``knn(..., k)``.  Each step measures one batch of ``batch`` requests
    (rotating through ``queries``) and, when a rebalancer is given, one
    measured rebalance step — both on simulated time, both billed to the
    step's wall.  Returns one row per step: service/rebalance seconds,
    throughput (requests per simulated second, including the rebalance
    tax) and the cumulative chunk migrations so far.
    """
    if kind not in ("bc", "knn"):
        raise ValueError(f"unknown workload kind {kind!r}")
    nq = len(queries)
    rows: list[dict] = []
    for s in range(steps):
        if kind == "bc":
            b = [queries[(j + s * batch) % nq] for j in range(batch)]
            m = adapter.measure(lambda: adapter.box_count(b))
        else:
            idx = (np.arange(batch) + s * batch) % nq
            q = queries[idx]
            m = adapter.measure(lambda: adapter.knn(q, k))
        reb_s = 0.0
        if rebalancer is not None:
            mr = adapter.measure(
                lambda: 0 if rebalancer.step() is None else 1
            )
            reb_s = mr.sim_time_s
        total_s = m.sim_time_s + reb_s
        rows.append({
            "step": s,
            "service_s": float(m.sim_time_s),
            "rebalance_s": float(reb_s),
            "throughput": float(batch / total_s) if total_s > 0 else 0.0,
            "migrations": (rebalancer.migrations
                           if rebalancer is not None else 0),
        })
    return rows


def steady_state_throughput(rows: list[dict], *, tail: float = 0.5) -> float:
    """Mean throughput over the trailing ``tail`` fraction of the timeline."""
    if not rows:
        return 0.0
    start = int(len(rows) * (1.0 - tail))
    tail_rows = rows[start:] or rows
    return float(np.mean([r["throughput"] for r in tail_rows]))
