"""Measurement containers for the §7 evaluation.

The paper's two metrics (§7.1):

* **Throughput** — returned elements per second: operations/s for point
  operations (INSERT, BoxCount), output elements/s for range operations
  (BoxFetch, kNN).
* **Per-element memory traffic** — memory-bus bytes (CPU↔DRAM plus
  CPU↔PIM) per returned element.

Both are computed from simulator counters through the machine cost models;
:class:`OpMeasurement` carries them together with the Fig. 6 style
CPU/PIM/communication breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["OpMeasurement", "percentile"]


@dataclass
class OpMeasurement:
    """One operation batch's simulated outcome."""

    index: str  # "pim-zd-tree" | "pkd-tree" | "zd-tree"
    op: str  # "insert" | "bc-10" | "bf-100" | "10-nn" | ...
    ops: int  # operations executed
    elements: int  # elements returned (== ops for point operations)
    sim_time_s: float
    traffic_bytes: float
    cpu_s: float = 0.0
    pim_s: float = 0.0
    comm_s: float = 0.0
    batch_times_s: list[float] = field(default_factory=list)
    extra: dict = field(default_factory=dict)
    # Per-phase time breakdown (charge-time attribution): phase label →
    # {"cpu_s", "pim_s", "comm_s"}.  Filled by the PIM adapter; empty for
    # the CPU baselines.  Each phase's seconds come from running the cost
    # model on that phase's own counters, so (the roofline max being
    # nonlinear) the sum over phases can slightly exceed the totals above.
    phases: dict[str, dict[str, float]] = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """Returned elements per simulated second (§7.1)."""
        if self.sim_time_s <= 0:
            return float("inf")
        return self.elements / self.sim_time_s

    @property
    def traffic_per_element(self) -> float:
        """Memory-bus bytes per returned element (§7.1)."""
        if self.elements <= 0:
            return float("inf")
        return self.traffic_bytes / self.elements

    def merge_phases(self, other: "OpMeasurement") -> None:
        """Accumulate ``other``'s per-phase seconds into this measurement."""
        for label, parts in other.phases.items():
            acc = self.phases.setdefault(
                label, {"cpu_s": 0.0, "pim_s": 0.0, "comm_s": 0.0}
            )
            for key, v in parts.items():
                acc[key] = acc.get(key, 0.0) + v

    def phase_fractions(self) -> dict[str, float]:
        """Share of the summed per-phase time attributed to each phase."""
        totals = {ph: sum(parts.values()) for ph, parts in self.phases.items()}
        denom = sum(totals.values())
        if denom <= 0:
            return {ph: 0.0 for ph in totals}
        return {ph: t / denom for ph, t in totals.items()}

    def breakdown_fractions(self) -> dict[str, float]:
        total = self.cpu_s + self.pim_s + self.comm_s
        if total <= 0:
            return {"cpu": 0.0, "pim": 0.0, "comm": 0.0}
        return {
            "cpu": self.cpu_s / total,
            "pim": self.pim_s / total,
            "comm": self.comm_s / total,
        }

    def row(self) -> dict:
        return {
            "index": self.index,
            "op": self.op,
            "throughput_mops": self.throughput / 1e6,
            "traffic_B_per_elem": self.traffic_per_element,
            "sim_time_s": self.sim_time_s,
            "elements": self.elements,
        }


def percentile(values, q: float) -> float:
    """Nearest-rank percentile (used for the §7.2 P99 latency numbers)."""
    vals = sorted(values)
    if not vals:
        return float("nan")
    import math

    rank = max(1, math.ceil(q / 100.0 * len(vals)))
    return float(vals[rank - 1])
