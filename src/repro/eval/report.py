"""Plain-text table rendering for the benchmark reports.

Each benchmark module prints the rows the corresponding paper table or
figure reports (throughput bars + traffic scatter of Fig. 5, breakdown of
Fig. 6, …) so the reproduction can be eyeballed against the paper, and
EXPERIMENTS.md records the paper-vs-measured comparison.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .metrics import OpMeasurement

__all__ = [
    "format_table",
    "fig5_table",
    "phase_breakdown_table",
    "speedup_summary",
    "geomean",
    "bar_chart",
]


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    rows = [[_fmt(c) for c in r] for r in rows]
    widths = [len(h) for h in headers]
    for r in rows:
        for i, c in enumerate(r):
            widths[i] = max(widths[i], len(c))
    def line(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths))
    sep = "  ".join("-" * w for w in widths)
    return "\n".join([line(headers), sep] + [line(r) for r in rows])


def _fmt(v) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000 or abs(v) < 0.01:
            return f"{v:.3g}"
        return f"{v:.3f}"
    return str(v)


def fig5_table(measurements: dict[str, list[OpMeasurement]]) -> str:
    """Render a Fig. 5 style table: one row per op, one column pair per index."""
    indexes = list(measurements)
    ops = [m.op for m in measurements[indexes[0]]]
    headers = ["op"]
    for ix in indexes:
        headers += [f"{ix} MOp/s", f"{ix} B/elem"]
    rows = []
    for i, op in enumerate(ops):
        row = [op]
        for ix in indexes:
            m = measurements[ix][i]
            row += [m.throughput / 1e6, m.traffic_per_element]
        rows.append(row)
    return format_table(headers, rows)


def phase_breakdown_table(measurements: Iterable[OpMeasurement]) -> str:
    """Per-op × per-phase time shares (the fine-grained Fig. 6 view).

    Each cell is the fraction of the op's summed per-phase time attributed
    to that phase at charge time (``OpMeasurement.phases``); phases an op
    never touched render as 0.
    """
    ms = list(measurements)
    labels = sorted({ph for m in ms for ph in m.phases})
    headers = ["op"] + labels
    rows = []
    for m in ms:
        frac = m.phase_fractions()
        rows.append([m.op] + [frac.get(label, 0.0) for label in labels])
    return format_table(headers, rows)


def geomean(values: Iterable[float]) -> float:
    import math

    vals = [v for v in values if v > 0 and math.isfinite(v)]
    if not vals:
        return float("nan")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def speedup_summary(measurements: dict[str, list[OpMeasurement]],
                    subject: str = "pim-zd-tree") -> str:
    """Geometric-mean speedups of ``subject`` over every other index, by
    operation family (matching the §7.2 headline numbers)."""
    families = {
        "insert": lambda op: op == "insert",
        "boxcount": lambda op: op.startswith("bc-"),
        "boxfetch": lambda op: op.startswith("bf-"),
        "knn": lambda op: op.endswith("-nn"),
    }
    lines = []
    subj = {m.op: m for m in measurements[subject]}
    for other, ms in measurements.items():
        if other == subject:
            continue
        oth = {m.op: m for m in ms}
        for fam, pred in families.items():
            ratios = [
                subj[op].throughput / oth[op].throughput
                for op in subj
                if pred(op) and op in oth and oth[op].throughput > 0
            ]
            traffic = [
                oth[op].traffic_per_element / subj[op].traffic_per_element
                for op in subj
                if pred(op) and op in oth and subj[op].traffic_per_element > 0
            ]
            if ratios:
                lines.append(
                    f"{subject} vs {other:9s} {fam:9s}: "
                    f"speedup x{geomean(ratios):7.2f}   "
                    f"traffic reduction x{geomean(traffic):6.2f}"
                )
    return "\n".join(lines)


def bar_chart(labels: Sequence[str], values: Sequence[float], *, width: int = 44,
              unit: str = "", log: bool = False) -> str:
    """Terminal bar chart (the Fig. 5 bars, rendered in ASCII).

    With ``log=True`` bar lengths follow log10 of the values — useful when
    series span orders of magnitude (e.g. zd-tree vs PIM-zd-tree box ops).
    """
    import math

    vals = [float(v) for v in values]
    if not vals:
        return ""
    if log:
        floor = min(v for v in vals if v > 0) / 10 if any(v > 0 for v in vals) else 1.0
        scaled = [math.log10(max(v, floor) / floor) for v in vals]
    else:
        scaled = vals
    top = max(scaled) or 1.0
    label_w = max(len(str(l)) for l in labels)
    lines = []
    for label, v, sv in zip(labels, vals, scaled):
        n = int(round(sv / top * width))
        lines.append(f"{str(label).ljust(label_w)}  {'█' * max(n, 0):<{width}}  "
                     f"{v:.4g}{unit}")
    return "\n".join(lines)
