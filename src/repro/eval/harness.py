"""Experiment harness: index adapters, box calibration, operation suites.

The harness abstracts the three indexes behind one interface so every
benchmark (one per paper table/figure) runs the identical workload script:

* :class:`PIMZdTreeAdapter` — measures through the PIM simulator's
  counters and the UPMEM cost model;
* :class:`ZdTreeAdapter` / :class:`PkdTreeAdapter` — measure through the
  baseline CPU meter and the Xeon cost model.

Operation naming follows Fig. 5: ``insert``, ``bc-K`` (BoxCount covering
on average K points), ``bf-K`` (BoxFetch), ``K-nn``.  Query boxes are
centred on sampled data points with sides calibrated per dataset so the
average result size matches K, as in §7.2.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..baselines import CPUCostMeter, PkdTree, ZdTree
from ..baselines.cpu_cost import XEON_BASELINE
from ..core import Box, PIMZdTree, throughput_optimized, skew_resistant
from ..faults.errors import FaultError
from ..pim import PIMSystem
from .metrics import OpMeasurement

__all__ = [
    "PIMZdTreeAdapter",
    "ZdTreeAdapter",
    "PkdTreeAdapter",
    "calibrate_box_side",
    "make_boxes",
    "run_suite",
    "FIG5_OPS",
    "make_adapter",
]

# Joint machine scaling (see DESIGN.md): the paper runs 2048 modules and
# 300M-point warmups; the simulation runs P modules and n points.  Both
# machines are scaled by f = P/2048 (threads, bandwidths, per-round
# overheads) and both LLCs by the dataset ratio so the cache-to-working-set
# pressure — the memory wall the paper is about — is preserved.
PAPER_WARMUP_N = 300_000_000
PAPER_MODULES = 2048
_CACHE_PRESSURE_C = 4
_LLC_FLOOR_BYTES = 32 * 2**10


def machine_scale(n_modules: int) -> float:
    return n_modules / PAPER_MODULES


def scaled_llc_bytes(machine_llc_bytes: int, n_points: int) -> int:
    scale = n_points / PAPER_WARMUP_N * _CACHE_PRESSURE_C
    return max(_LLC_FLOOR_BYTES, int(machine_llc_bytes * scale))


FIG5_OPS = (
    "insert",
    "bc-1",
    "bc-10",
    "bc-100",
    "bf-1",
    "bf-10",
    "bf-100",
    "1-nn",
    "10-nn",
    "100-nn",
)


# ======================================================================
# adapters
# ======================================================================
class PIMZdTreeAdapter:
    """PIM-zd-tree under the UPMEM-like cost model."""

    def __init__(
        self,
        points: np.ndarray,
        *,
        n_modules: int = 64,
        variant: str = "throughput",
        seed: int = 0,
        config=None,
        bounds=None,
        llc_bytes: int | None = None,
        cost_model=None,
        tracer=None,
        exec_mode: str | None = None,
        sim_mode: str | None = None,
        fault_plan=None,
    ) -> None:
        if llc_bytes is None:
            llc_bytes = scaled_llc_bytes(22 * 2**20, len(points))
        if config is None:
            if variant == "throughput":
                config = throughput_optimized(len(points), n_modules)
            elif variant == "skew":
                config = skew_resistant(n_modules)
            else:
                raise ValueError(f"unknown variant {variant!r}")
        overrides = {}
        if exec_mode is not None:
            overrides["exec_mode"] = exec_mode
        if sim_mode is not None:
            overrides["sim_mode"] = sim_mode
        if overrides:
            config = config.with_overrides(**overrides)
        # The fault plan is attached only after construction: the machine
        # is healthy at load time, and the build/upload charges stay
        # byte-identical to a fault-free adapter's.
        self.system = PIMSystem(n_modules, seed=seed, llc_bytes=llc_bytes,
                                tracer=tracer, sim_mode=config.sim_mode)
        if cost_model is not None:
            cost_model = cost_model.scaled(n_modules)
        self.tree = PIMZdTree(points, config=config, system=self.system,
                              bounds=bounds, cost_model=cost_model)
        if fault_plan is not None:
            self.system.attach_faults(fault_plan)
        self.name = "pim-zd-tree"
        self.variant = config.name

    @property
    def size(self) -> int:
        return self.tree.size

    def measure(self, fn: Callable[[], int]) -> OpMeasurement:
        """Run ``fn`` and convert the counter delta to simulated metrics.

        ``fn`` returns the number of elements produced.  Besides the
        aggregate CPU/PIM/comm split, the per-phase counters (charge-time
        attribution, see ``repro.pim.model``) are converted to seconds and
        carried in :attr:`OpMeasurement.phases` for the Fig. 6 breakdown.

        If ``fn`` hits an injected fault, the work charged *up to* the
        fault is measured and attached to the raised
        :class:`~repro.faults.FaultError` as ``e.measurement`` — a failed
        attempt still spent simulated time, and the serving layer bills it
        to the retry.
        """
        start = self.system.snapshot()
        try:
            elements = fn()
        except FaultError as e:
            e.measurement = self._measurement_since(start, 0)
            raise
        return self._measurement_since(start, elements)

    def _measurement_since(self, start, elements: int) -> OpMeasurement:
        delta_stats = self.system.stats.diff(start)
        delta = delta_stats.total
        t = self.tree.cost_model.time(delta)
        phases: dict[str, dict[str, float]] = {}
        for label, c in delta_stats.phases.items():
            pt = self.tree.cost_model.time(c)
            if pt.total_s > 0:
                phases[label] = {
                    "cpu_s": pt.cpu_s, "pim_s": pt.pim_s, "comm_s": pt.comm_s,
                }
        return OpMeasurement(
            index=self.name,
            op="",
            ops=0,
            elements=elements,
            sim_time_s=t.total_s,
            traffic_bytes=self.tree.cost_model.traffic_bytes(delta),
            cpu_s=t.cpu_s,
            pim_s=t.pim_s,
            comm_s=t.comm_s,
            phases=phases,
        )

    # -- operation surface ------------------------------------------------
    def insert(self, pts: np.ndarray) -> int:
        self.tree.insert(pts)
        return len(pts)

    def delete(self, pts: np.ndarray) -> int:
        return self.tree.delete(pts)

    def knn(self, queries: np.ndarray, k: int) -> int:
        out = self.tree.knn(queries, k)
        return sum(len(d) for d, _ in out)

    def box_count(self, boxes: Sequence[Box]) -> int:
        self.tree.box_count(boxes)
        return len(boxes)

    def box_fetch(self, boxes: Sequence[Box]) -> int:
        out = self.tree.box_fetch(boxes)
        return sum(len(a) for a in out)

    def fail_over(self, mid: int) -> int:
        """Rebuild module ``mid``'s shard on live modules (see
        :func:`repro.faults.fail_over`); returns meta-nodes moved."""
        return self.tree.fail_over(mid)["metas_moved"]

    def crash_restart(self, store, *, tracer=None) -> tuple[float, dict]:
        """Restart from the durable tier after a whole-machine kill.

        Recovers tree + system from ``store`` (a
        :class:`repro.store.DurableStore`), swaps them into the adapter,
        and re-attaches the old system's fault plan (its fired
        ``machine_killed`` flag prevents an immediate re-kill).  Returns
        ``(restart seconds, recovery info)``: the recovered system is
        fresh, so *every* counter on it is restart cost — converting its
        stats through the cost model gives the time-to-first-query
        denominator directly.
        """
        plan = self.system.fault_plan
        res = store.recover(tracer=tracer, cost_model=self.tree.cost_model)
        self.system = res.system
        self.tree = res.tree
        if plan is not None:
            self.system.attach_faults(plan)
        t = self.tree.cost_model.time(self.system.stats.total)
        info = {
            "replayed": res.replayed,
            "skipped_uncommitted": res.skipped_uncommitted,
            "wal_records": res.wal_records,
            "snapshot_words": res.snapshot_words,
            "torn_tail": res.torn_tail is not None,
        }
        return t.total_s, info


class _BaselineAdapter:
    """Common measurement plumbing for the shared-memory baselines."""

    def __init__(self, n_points: int, scale_to_modules: int) -> None:
        f = machine_scale(scale_to_modules)
        cache_scale = scaled_llc_bytes(XEON_BASELINE.llc_bytes, n_points) / (
            XEON_BASELINE.llc_bytes
        )
        self.meter = CPUCostMeter(XEON_BASELINE.scaled(f, cache_scale))
        self.tree = None
        self.name = "baseline"

    @property
    def size(self) -> int:
        return self.tree.size

    def measure(self, fn: Callable[[], int]) -> OpMeasurement:
        start = self.meter.snapshot()
        elements = fn()
        delta = self.meter.measure_since(start)
        t = self.meter.time_s(delta)
        return OpMeasurement(
            index=self.name,
            op="",
            ops=0,
            elements=elements,
            sim_time_s=t,
            traffic_bytes=self.meter.traffic_bytes(delta),
            cpu_s=t,
        )

    def insert(self, pts: np.ndarray) -> int:
        self.tree.insert(pts)
        return len(pts)

    def delete(self, pts: np.ndarray) -> int:
        return self.tree.delete(pts)

    def knn(self, queries: np.ndarray, k: int) -> int:
        out = self.tree.knn_batch(queries, k)
        return sum(len(d) for d, _ in out)

    def box_count(self, boxes: Sequence[Box]) -> int:
        for b in boxes:
            self.tree.box_count(b)
        return len(boxes)

    def box_fetch(self, boxes: Sequence[Box]) -> int:
        return sum(len(self.tree.box_fetch(b)) for b in boxes)


class ZdTreeAdapter(_BaselineAdapter):
    """Shared-memory zd-tree baseline [12]."""

    def __init__(self, points: np.ndarray, *, bounds=None,
                 scale_to_modules: int = 64, **kw) -> None:
        super().__init__(len(points), scale_to_modules)
        self.tree = ZdTree(points, meter=self.meter, bounds=bounds, **kw)
        self.name = "zd-tree"


class PkdTreeAdapter(_BaselineAdapter):
    """Pkd-tree baseline [63]."""

    def __init__(self, points: np.ndarray, *, bounds=None,
                 scale_to_modules: int = 64, **kw) -> None:
        super().__init__(len(points), scale_to_modules)
        self.tree = PkdTree(points, meter=self.meter, **kw)
        self.name = "pkd-tree"


# Kwargs only meaningful for the PIM adapter.  The baselines ignore them so
# one sweep dict can drive all four kinds through :func:`make_adapter`.
_PIM_ONLY_KWARGS = ("seed", "exec_mode", "sim_mode", "cost_model", "tracer",
                    "llc_bytes", "config", "variant", "fault_plan")


def make_adapter(kind: str, points: np.ndarray, **kw):
    """Factory: ``kind`` ∈ {"pim", "pim-skew", "zd", "pkd"}.

    Accepts one shared kwargs dict for every kind: PIM-only knobs
    (``cost_model=``, ``tracer=``, ``llc_bytes=``, ``config=``, ...) are
    dropped for the CPU baselines instead of raising ``TypeError``.
    """
    if kind == "pim":
        return PIMZdTreeAdapter(points, variant="throughput", **kw)
    if kind == "pim-skew":
        return PIMZdTreeAdapter(points, variant="skew", **kw)
    if kind == "zd":
        nm = kw.pop("n_modules", 64)
        for name in _PIM_ONLY_KWARGS:
            kw.pop(name, None)
        return ZdTreeAdapter(points, scale_to_modules=nm, **kw)
    if kind == "pkd":
        nm = kw.pop("n_modules", 64)
        kw.pop("bounds", None)
        for name in _PIM_ONLY_KWARGS:
            kw.pop(name, None)
        return PkdTreeAdapter(points, scale_to_modules=nm, **kw)
    raise ValueError(f"unknown adapter kind {kind!r}")


# ======================================================================
# query-box calibration (§7.2: boxes covering on average 1/10/100 points)
# ======================================================================
def calibrate_box_side(points: np.ndarray, target: float, *, n_probe: int = 48,
                       seed: int = 0, tol: float = 0.15) -> float:
    """Binary-search a box side so boxes centred on data points cover
    ``target`` points on average.

    Raises :class:`ValueError` on degenerate inputs (zero extent along
    every axis — e.g. all-duplicate points — which would otherwise
    silently calibrate a zero-sided box); warns if the search has not
    converged to within ``tol`` after 40 bisections and returns the
    midpoint of the final bracket.
    """
    rng = np.random.default_rng(seed)
    points = np.asarray(points, dtype=np.float64)
    n, dims = points.shape
    centers = points[rng.integers(0, n, size=n_probe)]

    def avg_count(side: float) -> float:
        half = side / 2.0
        total = 0
        for c in centers:
            inside = np.all(np.abs(points - c) <= half, axis=1)
            total += int(inside.sum())
        return total / n_probe

    lo_s, hi_s = 0.0, float(np.ptp(points, axis=0).max()) * 2.0
    if hi_s <= 0.0:
        raise ValueError(
            "calibrate_box_side: degenerate point set (zero extent on every "
            "axis); cannot calibrate a query-box side"
        )
    for _ in range(40):
        mid = (lo_s + hi_s) / 2.0
        got = avg_count(mid)
        if abs(got - target) <= tol * target:
            return mid
        if got < target:
            lo_s = mid
        else:
            hi_s = mid
    import warnings

    warnings.warn(
        f"calibrate_box_side: no convergence to target={target} within 40 "
        f"bisections (bracket [{lo_s:.3g}, {hi_s:.3g}]); returning midpoint",
        RuntimeWarning,
        stacklevel=2,
    )
    return (lo_s + hi_s) / 2.0


def make_boxes(points: np.ndarray, side: float, m: int, seed: int = 0) -> list[Box]:
    """``m`` axis-aligned cubes of the given side centred on data samples."""
    rng = np.random.default_rng(seed)
    points = np.asarray(points, dtype=np.float64)
    centers = points[rng.integers(0, len(points), size=m)]
    half = side / 2.0
    return [Box(c - half, c + half) for c in centers]


# ======================================================================
# operation suites
# ======================================================================
def run_op(adapter, op: str, *, data: np.ndarray, batch: int, seed: int = 0,
           box_sides: dict[int, float] | None = None,
           fresh_points: Callable[[int], np.ndarray] | None = None,
           n_batches: int = 1) -> OpMeasurement:
    """Run ``n_batches`` batches of one Fig. 5 operation; aggregate metrics."""
    rng = np.random.default_rng(seed)
    agg: OpMeasurement | None = None
    for b in range(n_batches):
        if op == "insert":
            assert fresh_points is not None, "insert needs a point source"
            pts = fresh_points(batch)
            m = adapter.measure(lambda: adapter.insert(pts))
        elif op.endswith("-nn"):
            k = int(op.split("-")[0])
            q = data[rng.integers(0, len(data), size=batch)]
            q = q + rng.normal(scale=1e-4, size=q.shape)
            m = adapter.measure(lambda: adapter.knn(q, k))
        elif op.startswith("bc-") or op.startswith("bf-"):
            target = int(op.split("-")[1])
            assert box_sides is not None and target in box_sides
            boxes = make_boxes(data, box_sides[target], batch, seed=seed * 997 + b)
            if op.startswith("bc-"):
                m = adapter.measure(lambda: adapter.box_count(boxes))
            else:
                m = adapter.measure(lambda: adapter.box_fetch(boxes))
        else:
            raise ValueError(f"unknown op {op!r}")
        m.op = op
        m.ops = batch
        if agg is None:
            agg = m
            agg.batch_times_s = [m.sim_time_s]
        else:
            agg.elements += m.elements
            agg.sim_time_s += m.sim_time_s
            agg.traffic_bytes += m.traffic_bytes
            agg.cpu_s += m.cpu_s
            agg.pim_s += m.pim_s
            agg.comm_s += m.comm_s
            agg.ops += batch
            agg.batch_times_s.append(m.sim_time_s)
            agg.merge_phases(m)
    return agg


def run_suite(adapter, *, data: np.ndarray, ops: Sequence[str] = FIG5_OPS,
              batch: int = 1000, seed: int = 0,
              fresh_points: Callable[[int], np.ndarray] | None = None,
              box_sides: dict[int, float] | None = None,
              n_batches: int = 1) -> list[OpMeasurement]:
    """Run the full Fig. 5 operation suite on one index."""
    if box_sides is None and any(o.startswith(("bc-", "bf-")) for o in ops):
        targets = sorted({int(o.split("-")[1]) for o in ops if o.startswith(("bc-", "bf-"))})
        box_sides = {t: calibrate_box_side(data, t, seed=seed) for t in targets}
    out = []
    for op in ops:
        out.append(
            run_op(
                adapter, op, data=data, batch=batch, seed=seed,
                box_sides=box_sides, fresh_points=fresh_points,
                n_batches=n_batches,
            )
        )
    return out
