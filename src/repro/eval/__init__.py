"""Evaluation harness: adapters, metrics, experiments, report tables (§7)."""

from .experiments import (
    ALL_EXPERIMENTS,
    ExperimentResult,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig9,
    run_latency,
    run_table2,
    run_table3,
)
from .harness import (
    FIG5_OPS,
    PIMZdTreeAdapter,
    PkdTreeAdapter,
    ZdTreeAdapter,
    calibrate_box_side,
    make_adapter,
    make_boxes,
    run_op,
    run_suite,
)
from .metrics import OpMeasurement, percentile
from .report import (
    bar_chart,
    fig5_table,
    format_table,
    geomean,
    phase_breakdown_table,
    speedup_summary,
)

__all__ = [
    "FIG5_OPS",
    "OpMeasurement",
    "PIMZdTreeAdapter",
    "PkdTreeAdapter",
    "ZdTreeAdapter",
    "calibrate_box_side",
    "fig5_table",
    "format_table",
    "geomean",
    "make_adapter",
    "make_boxes",
    "percentile",
    "phase_breakdown_table",
    "run_op",
    "run_suite",
    "speedup_summary",
]
