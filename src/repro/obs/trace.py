"""Typed trace events, per-round records and the ring-buffered collector.

Design contract with :class:`repro.pim.PIMSystem`:

* the simulator calls the ``on_*`` hooks *after* booking the identical
  amounts into its own :class:`~repro.pim.PIMStats`, passing the phase
  that was active at charge time;
* the collector never feeds back into the simulator — attaching a
  collector must leave every counter byte-identical to the untraced run;
* raw per-charge events (``pim``/``send``/``recv``) describe what modules
  actually did and live only in the ring buffer and the per-module
  aggregates; the per-phase aggregates are driven exclusively by the
  *booked* events (``cpu``/``dram``/``comm_flat`` and the round-close
  :class:`RoundRecord`), which is what makes
  :meth:`~repro.obs.timeline.Timeline.reconcile` exact.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from .timeline import Timeline

__all__ = ["EventKind", "RoundRecord", "TraceCollector", "TraceEvent"]


class EventKind:
    """String constants naming every trace-event type."""

    CPU = "cpu"  # value = ops, aux = span
    DRAM = "dram"  # value = words, aux = 1.0 if streamed else 0.0
    COMM_FLAT = "comm_flat"  # value = words (round-less replication traffic)
    PIM = "pim"  # value = cycles on module `mid` (raw)
    SEND = "send"  # value = words CPU → module `mid` (raw)
    RECV = "recv"  # value = words module `mid` → CPU (raw)
    ROUND = "round"  # value = straggler cycles; aux = total words
    FAULT = "fault"  # value = words lost / slow factor (injected fault)
    CAPACITY = "capacity"  # value = used words; aux = capacity_words

    ALL = (CPU, DRAM, COMM_FLAT, PIM, SEND, RECV, ROUND, FAULT, CAPACITY)


@dataclass(slots=True)
class TraceEvent:
    """One simulator charge, tagged with its charge-time phase."""

    seq: int  # monotone event number (gaps ⇒ ring dropped events)
    kind: str  # one of EventKind.ALL
    phase: str  # phase active when the charge happened
    mid: int  # module id, or -1 for host-side events
    round_index: int  # BSP round the event belongs to, -1 outside rounds
    value: float
    aux: float = 0.0

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "kind": self.kind,
            "phase": self.phase,
            "mid": self.mid,
            "round": self.round_index,
            "value": float(self.value),
            "aux": float(self.aux),
        }


@dataclass(slots=True)
class RoundRecord:
    """Everything booked when one (non-empty) BSP round closed."""

    index: int  # 0-based charged-round number
    entry_phase: str  # phase active when the round was opened
    straggler_mid: int  # module whose cycles set the round's PIM time
    max_cycles: float  # the straggler's cycles (what PIM time grew by)
    total_words: float  # Σ words over modules
    max_words: float  # bottleneck module's words
    max_words_mid: int  # which module that was (-1 if no words moved)
    module_rounds: int  # modules that moved data
    touched: int  # modules charged at all
    cycles_by_module: dict[int, float] = field(default_factory=dict)
    words_by_module: dict[int, float] = field(default_factory=dict)
    # Booked per-phase quantities (charge-time attribution).  Word bookings
    # are kept at (module, phase) granularity so the collector can replay
    # them in the exact order the simulator booked them — float addition is
    # not associative, and replaying coarser merges would cost bit-exact
    # reconciliation.
    pim_cycles_by_phase: dict[str, float] = field(default_factory=dict)
    phase_words_by_module: dict[int, dict[str, float]] = field(default_factory=dict)
    comm_max_words_by_phase: dict[str, float] = field(default_factory=dict)

    @property
    def comm_words_by_phase(self) -> dict[str, float]:
        """Merged per-phase word totals (derived view for export)."""
        out: dict[str, float] = {}
        for d in self.phase_words_by_module.values():
            for ph, w in d.items():
                out[ph] = out.get(ph, 0.0) + w
        return out

    def to_dict(self) -> dict:
        def f(d: dict) -> dict:
            return {str(k): float(v) for k, v in d.items()}

        return {
            "index": self.index,
            "entry_phase": self.entry_phase,
            "straggler_mid": self.straggler_mid,
            "max_cycles": float(self.max_cycles),
            "total_words": float(self.total_words),
            "max_words": float(self.max_words),
            "max_words_mid": self.max_words_mid,
            "module_rounds": self.module_rounds,
            "touched": self.touched,
            "cycles_by_module": f(self.cycles_by_module),
            "words_by_module": f(self.words_by_module),
            "pim_cycles_by_phase": f(self.pim_cycles_by_phase),
            "comm_words_by_phase": f(self.comm_words_by_phase),
            "comm_max_words_by_phase": f(self.comm_max_words_by_phase),
        }


class TraceCollector:
    """Ring-buffered event sink plus running timeline aggregation.

    Parameters
    ----------
    capacity:
        Maximum raw events retained (oldest dropped first; ``dropped``
        counts casualties).  The timeline aggregates are *not* affected by
        ring wraparound — they are running sums over every event observed.
    keep_rounds:
        Maximum :class:`RoundRecord` objects retained (same ring policy).
    """

    def __init__(self, capacity: int = 65536, *, keep_rounds: int = 8192) -> None:
        if capacity < 1 or keep_rounds < 1:
            raise ValueError("ring capacities must be >= 1")
        self.capacity = int(capacity)
        self._events: deque[TraceEvent] = deque(maxlen=self.capacity)
        self._rounds: deque[RoundRecord] = deque(maxlen=int(keep_rounds))
        self.timeline = Timeline()
        self.seq = 0  # events emitted (including dropped)
        self.rounds_seen = 0
        # Injected fault events (repro.faults.FaultEvent), never dropped:
        # faults are rare and each one explains an anomaly in the rounds.
        self.fault_events: list = []
        # Capacity-pressure onsets (dicts), never dropped: rare by
        # construction (only the crossing allocation fires) and each one
        # marks a module the balance planner must drain.
        self.capacity_events: list[dict] = []

    # -- ring -----------------------------------------------------------
    @property
    def dropped(self) -> int:
        return self.seq - len(self._events)

    def events(self) -> list[TraceEvent]:
        """Retained raw events, oldest first."""
        return list(self._events)

    def rounds(self) -> list[RoundRecord]:
        """Retained round records, oldest first."""
        return list(self._rounds)

    def _emit(self, kind: str, phase: str, mid: int, round_index: int,
              value: float, aux: float = 0.0) -> None:
        self._events.append(
            TraceEvent(self.seq, kind, phase, mid, round_index, value, aux)
        )
        self.seq += 1

    # -- hooks called by PIMSystem (booked host-side charges) ------------
    def on_cpu(self, phase: str, ops: float, span: float) -> None:
        self._emit(EventKind.CPU, phase, -1, -1, ops, span)
        p = self.timeline.phase(phase)
        p.cpu_ops += ops
        p.cpu_span += span
        t = self.timeline.total
        t.cpu_ops += ops
        t.cpu_span += span

    def on_dram(self, phase: str, words: float, *, streamed: bool) -> None:
        self._emit(EventKind.DRAM, phase, -1, -1, words, 1.0 if streamed else 0.0)
        self.timeline.phase(phase).dram_words += words
        self.timeline.total.dram_words += words

    def on_comm_flat(self, phase: str, words: float, max_words: float) -> None:
        self._emit(EventKind.COMM_FLAT, phase, -1, -1, words, max_words)
        p = self.timeline.phase(phase)
        p.comm_words += words
        p.comm_max_words += max_words
        t = self.timeline.total
        t.comm_words += words
        t.comm_max_words += max_words

    # -- hooks called by PIMSystem (raw in-round activity) ----------------
    def on_pim(self, phase: str, mid: int, cycles: float) -> None:
        self._emit(EventKind.PIM, phase, mid, self.rounds_seen, cycles)
        self.timeline.module(mid).cycles += cycles

    def on_send(self, phase: str, mid: int, words: float) -> None:
        self._emit(EventKind.SEND, phase, mid, self.rounds_seen, words)
        self.timeline.module(mid).recv_words += words

    def on_recv(self, phase: str, mid: int, words: float) -> None:
        self._emit(EventKind.RECV, phase, mid, self.rounds_seen, words)
        self.timeline.module(mid).send_words += words

    # -- fault injection ---------------------------------------------------
    def on_fault(self, phase: str, event) -> None:
        """Record one injected fault (a :class:`repro.faults.FaultEvent`).

        Faults are *recorded*, never booked: injection does not change any
        counter by itself (the retry/recovery work it triggers is charged
        through the ordinary hooks), so reconciliation stays exact.
        """
        self._emit(EventKind.FAULT, phase, event.mid, event.round_index,
                   event.value)
        self.fault_events.append(event)

    # -- capacity pressure -------------------------------------------------
    def on_capacity(self, phase: str, mid: int, used: float,
                    capacity: float) -> None:
        """Record one capacity-pressure onset (module crossed its budget).

        Like faults, capacity events are *recorded*, never booked: no
        counter moves, so reconciliation stays exact.  The planner in
        ``repro.balance`` reads :attr:`capacity_events` to treat
        over-budget modules as mandatory migration sources.
        """
        self._emit(EventKind.CAPACITY, phase, mid, self.rounds_seen,
                   used, capacity)
        self.capacity_events.append(
            {"phase": phase, "mid": int(mid), "round": self.rounds_seen,
             "used_words": float(used), "capacity_words": float(capacity)}
        )

    # -- round close ------------------------------------------------------
    def on_round(self, rec: RoundRecord) -> None:
        """Book one closed round exactly as the simulator booked it."""
        self._emit(
            EventKind.ROUND, rec.entry_phase, rec.straggler_mid, rec.index,
            rec.max_cycles, rec.total_words,
        )
        self._rounds.append(rec)
        self.rounds_seen = rec.index + 1

        tl = self.timeline
        t = tl.total
        t.pim_cycles += rec.max_cycles
        t.comm_words += rec.total_words
        t.comm_max_words += rec.max_words
        t.rounds += 1
        t.module_rounds += rec.module_rounds
        for ph, cyc in rec.pim_cycles_by_phase.items():
            tl.phase(ph).pim_cycles += cyc
        # Replay word bookings at (module, phase) granularity, in module
        # order — the same order the simulator used — for bit-exactness.
        for d in rec.phase_words_by_module.values():
            for ph, w in d.items():
                tl.phase(ph).comm_words += w
        for ph, w in rec.comm_max_words_by_phase.items():
            tl.phase(ph).comm_max_words += w
        entry = tl.phase(rec.entry_phase)
        entry.rounds += 1
        entry.module_rounds += rec.module_rounds
        tl.mux_switches += 2

        for mid in rec.cycles_by_module:
            tl.module(mid).active_rounds += 1
        for mid in rec.words_by_module:
            if mid not in rec.cycles_by_module:
                tl.module(mid).active_rounds += 1
        tl.module(rec.straggler_mid).straggler_rounds += 1
