"""JSON / CSV serialisation of a collected trace.

The JSON document is self-describing and self-checking: it embeds the
per-phase/per-module timeline, the retained round records and raw events,
and — when the producing :class:`~repro.pim.PIMSystem`'s stats are passed
in — the reconciliation verdict, so a consumer can tell whether the trace
accounts for every charged unit without re-running the simulator.
"""

from __future__ import annotations

import io
import json
import math
from pathlib import Path

from .trace import TraceCollector

__all__ = [
    "timeline_csv",
    "timeline_json",
    "load_summary",
    "write_trace",
    "latency_json",
    "latency_csv",
    "write_latency",
    "sanitize_json",
]

_PHASE_COLUMNS = (
    "cpu_ops",
    "cpu_span",
    "pim_cycles",
    "comm_words",
    "comm_max_words",
    "rounds",
    "module_rounds",
    "dram_words",
)


def load_summary(collector: TraceCollector, *, residency=None) -> dict:
    """Per-module load-distribution statistics of a collected trace.

    Summarises the distribution of cumulative PIM cycles over the traced
    modules — and, when the caller passes the system's per-module
    ``residency()`` vector, of resident words — through the shared
    :func:`repro.workloads.imbalance_summary` (max/mean straggler factor
    + Gini), the same definition ``repro.balance`` and introspect use.
    """
    import numpy as np

    from ..workloads.skew import imbalance_summary

    mods = collector.timeline.modules
    cycles = np.array(
        [mods[mid].cycles for mid in sorted(mods)], dtype=np.float64
    )
    doc = {"n_modules": len(cycles), "cycles": imbalance_summary(cycles)}
    if residency is not None:
        doc["resident_words"] = imbalance_summary(
            np.asarray(residency, dtype=np.float64)
        )
    return doc


def timeline_json(collector: TraceCollector, *, stats=None,
                  include_events: bool = True, residency=None) -> dict:
    """Build the JSON-serialisable trace document."""
    doc: dict = {
        "format": "repro.obs/1",
        "timeline": collector.timeline.to_dict(),
        "rounds": [r.to_dict() for r in collector.rounds()],
        "load": load_summary(collector, residency=residency),
        "ring": {
            "capacity": collector.capacity,
            "emitted": collector.seq,
            "retained": len(collector.events()),
            "dropped": collector.dropped,
        },
    }
    if include_events:
        doc["events"] = [e.to_dict() for e in collector.events()]
    if collector.fault_events:
        doc["faults"] = [ev.to_dict() for ev in collector.fault_events]
    if collector.capacity_events:
        doc["capacity_events"] = list(collector.capacity_events)
    if stats is not None:
        problems = collector.timeline.reconcile(stats)
        doc["reconciliation"] = {"exact": not problems, "problems": problems}
    return doc


def timeline_csv(collector: TraceCollector) -> str:
    """Per-phase counter table as CSV (one row per phase plus ``total``)."""
    tl = collector.timeline
    buf = io.StringIO()
    buf.write("phase," + ",".join(_PHASE_COLUMNS) + "\n")

    def row(label: str, c) -> None:
        cells = ",".join(repr(float(getattr(c, f))) for f in _PHASE_COLUMNS)
        buf.write(f"{label},{cells}\n")

    for label in sorted(tl.phases):
        row(label, tl.phases[label])
    row("total", tl.total)
    return buf.getvalue()


def write_trace(collector: TraceCollector, json_path=None, csv_path=None, *,
                stats=None, include_events: bool = True,
                residency=None) -> dict:
    """Write the JSON and/or CSV exports; returns the JSON document."""
    doc = timeline_json(collector, stats=stats, include_events=include_events,
                        residency=residency)
    if json_path is not None:
        Path(json_path).write_text(json.dumps(doc, indent=2))
    if csv_path is not None:
        Path(csv_path).write_text(timeline_csv(collector))
    return doc


# ======================================================================
# serving-layer latency exports (repro.serve)
# ======================================================================
def sanitize_json(value):
    """Replace non-finite floats with ``None``, recursively.

    Strict JSON has no NaN/Infinity literals; exporters sanitise before
    dumping with ``allow_nan=False`` so every document parses everywhere.
    """
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, dict):
        return {k: sanitize_json(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [sanitize_json(v) for v in value]
    return value


def latency_json(stats, *, batches=None, faults=None,
                 store_events=None, restarts=None, config=None) -> dict:
    """JSON document for a serve run's :class:`~repro.serve.LatencyStats`.

    ``batches`` (the run's :class:`~repro.serve.BatchRecord` list) and
    ``faults`` (injected :class:`~repro.faults.FaultEvent` list) are
    embedded when given, so the batch-size/amortisation trajectory and the
    fault schedule can be analysed offline.  ``store_events`` (a
    :class:`repro.store.DurableStore`'s checkpoint/recover log) and
    ``restarts`` (the serve loop's machine-restart records) are embedded
    the same way for durability runs, and ``config`` (the tuning audit
    block: resolved knobs, batch-policy snapshot, online-controller
    history) for tuned runs; all five keys are omitted entirely when not
    given, so pre-existing documents are byte-unchanged.
    Non-finite floats are serialised as ``null`` (strict JSON).
    """
    doc: dict = {"format": "repro.obs/serve-1", "stats": stats.to_dict()}
    if config is not None:
        doc["config"] = dict(config)
    if batches is not None:
        doc["batches"] = [b.to_dict() for b in batches]
    if faults is not None:
        doc["faults"] = [ev.to_dict() for ev in faults]
    if store_events is not None:
        doc["store_events"] = list(store_events)
    if restarts is not None:
        doc["restarts"] = list(restarts)
    return sanitize_json(doc)


def _flatten(prefix: str, value, rows: list) -> None:
    if isinstance(value, dict):
        for k in sorted(value):
            _flatten(f"{prefix}.{k}" if prefix else str(k), value[k], rows)
    else:
        rows.append((prefix, value))


def latency_csv(stats) -> str:
    """Flat ``metric,value`` CSV of a serve run's latency stats."""
    rows: list = []
    _flatten("", stats.to_dict(), rows)
    buf = io.StringIO()
    buf.write("metric,value\n")
    for key, value in rows:
        buf.write(f"{key},{value!r}\n" if isinstance(value, float)
                  else f"{key},{value}\n")
    return buf.getvalue()


def write_latency(stats, json_path=None, csv_path=None, *, batches=None,
                  faults=None, store_events=None, restarts=None,
                  config=None) -> dict:
    """Write the serve-latency JSON and/or CSV; returns the JSON document."""
    doc = latency_json(stats, batches=batches, faults=faults,
                       store_events=store_events, restarts=restarts,
                       config=config)
    if json_path is not None:
        Path(json_path).write_text(
            json.dumps(doc, indent=2, sort_keys=True, allow_nan=False)
        )
    if csv_path is not None:
        Path(csv_path).write_text(latency_csv(stats))
    return doc
