"""Structured tracing and metrics for the PIM Model simulator (``repro.obs``).

The simulator's counters (:class:`repro.pim.PIMStats`) are the ground truth
every reproduced figure is computed from, so this package makes them
*observable*: when a :class:`TraceCollector` is attached to a
:class:`repro.pim.PIMSystem`, every charge — CPU work, DRAM traffic, PIM
cycles, CPU↔PIM words — emits a typed :class:`TraceEvent` tagged with the
phase that was active *at charge time*, and every BSP round closes with a
:class:`RoundRecord` (straggler module, per-module cycle histogram, booked
per-phase quantities).

Two views are maintained:

* a bounded **ring buffer** of raw events (recent history for inspection;
  old events are dropped, with a drop count, once capacity is reached);
* a running :class:`Timeline` of per-phase and per-module **aggregates**
  that is updated with exactly the same increments, in exactly the same
  order, as the simulator's own counters — so
  :meth:`Timeline.reconcile` can check bit-exact agreement with
  :class:`~repro.pim.PIMStats` at any point.

With no collector attached the simulator pays a single ``is None`` check
per charge and the counters are byte-identical to the untraced run.

Driven from the CLI via ``python -m repro.cli trace`` (JSON/CSV export).
"""

from .export import (
    latency_csv,
    latency_json,
    load_summary,
    sanitize_json,
    timeline_csv,
    timeline_json,
    write_latency,
    write_trace,
)
from .timeline import ModuleTimeline, Timeline
from .trace import EventKind, RoundRecord, TraceCollector, TraceEvent

__all__ = [
    "EventKind",
    "ModuleTimeline",
    "RoundRecord",
    "Timeline",
    "TraceCollector",
    "TraceEvent",
    "latency_csv",
    "latency_json",
    "load_summary",
    "sanitize_json",
    "timeline_csv",
    "timeline_json",
    "write_latency",
    "write_trace",
]
