"""Per-phase / per-module aggregation of trace events.

The :class:`Timeline` mirrors :class:`repro.pim.PIMStats` field-for-field:
its per-phase counters are updated by the collector with the *same* float
increments, in the *same* order, as the simulator books into its own stats,
so agreement is bit-exact (no tolerance needed) — :meth:`Timeline.reconcile`
returns the empty list iff the trace accounts for every charged unit.

Per-module aggregates are the *raw* view (what each module actually
executed and transferred), deliberately different from the per-phase view,
which holds the *booked* quantities (straggler max per round, etc.): the
gap between the two is exactly the load imbalance the Fig. 9 experiments
study.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..pim.stats import PhaseCounters, PIMStats

__all__ = ["ModuleTimeline", "Timeline"]

_COUNTER_FIELDS = (
    "cpu_ops",
    "cpu_span",
    "pim_cycles",
    "comm_words",
    "comm_max_words",
    "rounds",
    "module_rounds",
    "dram_words",
)


@dataclass
class ModuleTimeline:
    """Raw activity of one PIM module (sums over all rounds)."""

    mid: int
    cycles: float = 0.0  # Σ cycles this module executed (not straggler max)
    send_words: float = 0.0  # module → CPU
    recv_words: float = 0.0  # CPU → module
    active_rounds: int = 0  # rounds in which the module was touched
    straggler_rounds: int = 0  # rounds in which it was the straggler

    def to_dict(self) -> dict:
        return {
            "mid": self.mid,
            "cycles": float(self.cycles),
            "send_words": float(self.send_words),
            "recv_words": float(self.recv_words),
            "active_rounds": self.active_rounds,
            "straggler_rounds": self.straggler_rounds,
        }


class Timeline:
    """Running per-phase (booked) and per-module (raw) aggregates."""

    def __init__(self) -> None:
        self.total = PhaseCounters()
        self.phases: dict[str, PhaseCounters] = {}
        self.mux_switches = 0
        self.modules: dict[int, ModuleTimeline] = {}

    # -- accumulation (called by the collector) -------------------------
    def phase(self, label: str) -> PhaseCounters:
        if label not in self.phases:
            self.phases[label] = PhaseCounters()
        return self.phases[label]

    def module(self, mid: int) -> ModuleTimeline:
        if mid not in self.modules:
            self.modules[mid] = ModuleTimeline(mid)
        return self.modules[mid]

    # -- reconciliation -------------------------------------------------
    def phase_sums(self) -> PhaseCounters:
        """Sum of the per-phase counters (must equal ``total``)."""
        out = PhaseCounters()
        for c in self.phases.values():
            out.add(c)
        return out

    def reconcile(self, stats: PIMStats) -> list[str]:
        """Compare against simulator stats; returns mismatch descriptions.

        Empty list ⇔ the trace accounts for every charged unit, exactly.
        ``stats`` should cover the same window the collector observed
        (attach the collector at system construction, or diff the stats
        against a snapshot taken at attach time).
        """
        problems: list[str] = []
        for f in _COUNTER_FIELDS:
            a, b = getattr(self.total, f), getattr(stats.total, f)
            if a != b:
                problems.append(f"total.{f}: trace={a!r} stats={b!r}")
        if self.mux_switches != stats.mux_switches:
            problems.append(
                f"mux_switches: trace={self.mux_switches} stats={stats.mux_switches}"
            )
        labels = set(self.phases) | set(stats.phases)
        for label in sorted(labels):
            a_c = self.phases.get(label, PhaseCounters())
            b_c = stats.phases.get(label, PhaseCounters())
            for f in _COUNTER_FIELDS:
                a, b = getattr(a_c, f), getattr(b_c, f)
                if a != b:
                    problems.append(f"phase[{label}].{f}: trace={a!r} stats={b!r}")
        return problems

    # -- serialisation --------------------------------------------------
    def to_dict(self) -> dict:
        def counters(c: PhaseCounters) -> dict:
            # float() strips NumPy scalars so the document JSON-serialises.
            return {f: float(getattr(c, f)) for f in _COUNTER_FIELDS}

        return {
            "total": counters(self.total),
            "mux_switches": self.mux_switches,
            "phases": {k: counters(v) for k, v in sorted(self.phases.items())},
            "modules": {
                str(mid): m.to_dict() for mid, m in sorted(self.modules.items())
            },
        }
