"""Unit tests for the Pkd-tree baseline (object-median kd-tree)."""

import numpy as np
import pytest

from repro.baselines import CPUCostMeter, PkdTree
from repro.core.geometry import L1, L2, Box

from conftest import (
    assert_same_points,
    brute_box_count,
    brute_box_points,
    brute_knn,
)


@pytest.fixture
def tree(pts3d):
    return PkdTree(pts3d)


class TestConstruction:
    def test_invariants(self, tree):
        tree.check_invariants()

    def test_size_and_points(self, tree, pts3d):
        assert tree.size == len(pts3d)
        assert_same_points(tree.all_points(), pts3d)

    def test_object_median_balance(self, rng):
        pts = rng.random((4096, 3))
        t = PkdTree(pts, leaf_size=16)
        # Perfect object-median build: height ≈ log2(n/leaf) + 1.
        assert t.height() <= int(np.log2(4096 / 16)) + 3

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            PkdTree(np.empty((0, 2)))

    def test_alpha_validation(self, pts3d):
        with pytest.raises(ValueError):
            PkdTree(pts3d, alpha=0.4)
        with pytest.raises(ValueError):
            PkdTree(pts3d, alpha=1.0)

    def test_identical_points_leaf(self):
        pts = np.tile([[0.5, 0.5, 0.5]], (64, 1))
        t = PkdTree(pts, leaf_size=8)
        assert t.size == 64  # degenerate spread → one oversized leaf


class TestInsert:
    def test_insert_then_valid(self, rng):
        pts = rng.random((2000, 3))
        t = PkdTree(pts[:800])
        t.insert(pts[800:])
        t.check_invariants()
        assert_same_points(t.all_points(), pts)

    def test_rebalance_on_skewed_inserts(self, rng):
        """Heavy one-sided inserts must trigger partial rebuilds."""
        t = PkdTree(rng.random((512, 2)), alpha=0.7)
        corner = rng.random((2048, 2)) * 0.05
        t.insert(corner)
        t.check_invariants()  # includes the alpha-balance assertion
        assert t.height() <= 4 * int(np.log2(t.size))

    def test_empty_batch(self, tree):
        n = tree.size
        tree.insert(np.empty((0, 3)))
        assert tree.size == n

    def test_dimension_mismatch(self, tree):
        with pytest.raises(ValueError):
            tree.insert(np.zeros((1, 2)))


class TestDelete:
    def test_delete_exact(self, rng):
        pts = rng.random((1500, 3))
        t = PkdTree(pts)
        assert t.delete(pts[:500]) == 500
        t.check_invariants()
        assert_same_points(t.all_points(), pts[500:])

    def test_delete_missing(self, tree):
        assert tree.delete(np.array([[5.0, 5.0, 5.0]])) == 0

    def test_delete_duplicates(self, rng):
        dup = np.full((4, 3), 0.25)
        pts = np.vstack([dup, rng.random((100, 3))])
        t = PkdTree(pts)
        assert t.delete(dup[:1]) == 4

    def test_delete_cannot_empty(self, rng):
        pts = rng.random((8, 3))
        t = PkdTree(pts)
        with pytest.raises(ValueError):
            t.delete(pts)

    def test_underflow_collapses_to_leaf(self, rng):
        pts = rng.random((64, 2))
        t = PkdTree(pts, leaf_size=16)
        t.delete(pts[:52])
        t.check_invariants()
        assert t.size == 12
        assert t.root.leaf  # 12 ≤ leaf_size → a single leaf remains


class TestKnn:
    @pytest.mark.parametrize("k", [1, 8, 25])
    def test_exact(self, tree, pts3d, k, rng):
        for q in pts3d[rng.integers(0, len(pts3d), 8)]:
            d, _ = tree.knn(q, k)
            np.testing.assert_allclose(d, brute_knn(pts3d, q, k))

    def test_l1(self, tree, pts3d):
        q = pts3d[11]
        d, _ = tree.knn(q, 5, metric=L1)
        np.testing.assert_allclose(d, brute_knn(pts3d, q, 5, metric=L1))

    def test_after_updates(self, rng):
        pts = rng.random((1200, 3))
        t = PkdTree(pts[:600])
        t.insert(pts[600:])
        t.delete(pts[:300])
        live = pts[300:]
        q = pts[700]
        d, _ = t.knn(q, 9)
        np.testing.assert_allclose(d, brute_knn(live, q, 9))

    def test_invalid_k(self, tree):
        with pytest.raises(ValueError):
            tree.knn(np.zeros(3), -1)


class TestBoxQueries:
    def test_count(self, tree, pts3d, rng):
        for _ in range(10):
            c = rng.random(3)
            w = rng.random(3) * 0.25
            box = Box(np.maximum(c - w, 0), np.minimum(c + w, 1))
            assert tree.box_count(box) == brute_box_count(pts3d, box)

    def test_fetch(self, tree, pts3d, rng):
        c = rng.random(3)
        box = Box(np.maximum(c - 0.15, 0), np.minimum(c + 0.15, 1))
        assert_same_points(tree.box_fetch(box), brute_box_points(pts3d, box))

    def test_disjoint_box(self, tree):
        box = Box(np.full(3, -2.0), np.full(3, -1.0))
        assert tree.box_count(box) == 0
        assert len(tree.box_fetch(box)) == 0

    def test_box_after_updates(self, rng):
        pts = rng.random((1000, 2))
        t = PkdTree(pts[:500])
        t.insert(pts[500:])
        t.delete(pts[250:400])
        live = np.vstack([pts[:250], pts[400:]])
        box = Box(np.array([0.2, 0.2]), np.array([0.7, 0.8]))
        assert t.box_count(box) == brute_box_count(live, box)


class TestCostProfile:
    def test_pkd_cheaper_than_zd_on_box_ops(self, pts3d):
        """Packed-node Pkd-tree must beat the zd-interval scan (Fig. 5)."""
        from repro.baselines import ZdTree

        m_pkd = CPUCostMeter()
        t_pkd = PkdTree(pts3d, meter=m_pkd)
        m_zd = CPUCostMeter()
        t_zd = ZdTree(pts3d, meter=m_zd)
        box = Box(np.full(3, 0.4), np.full(3, 0.6))
        s = m_pkd.snapshot()
        t_pkd.box_count(box)
        pkd_time = m_pkd.time_s(m_pkd.measure_since(s))
        s = m_zd.snapshot()
        t_zd.box_count(box)
        zd_time = m_zd.time_s(m_zd.measure_since(s))
        assert zd_time > pkd_time
