"""Property-based differential oracle: vectorized vs. reference execution.

The vectorized group kernels (``repro.core.vexec``) must be *counter-exact*
drop-in replacements for the scalar per-task handlers: for any workload, both
``exec_mode="vectorized"`` and ``exec_mode="reference"`` must produce

* identical operation results (search traces, kNN neighbour sets, range
  counts, fetched point sets, delete counts), and
* byte-identical :class:`repro.pim.stats.PIMStats` — every counter in the
  aggregate *and* in every per-phase bucket.

Hypothesis drives the op mix through both modes across dims 2/3/5, both
config variants, duplicate points, and adversarially skewed query/update
batches (everything concentrated in one corner so a single module absorbs
the whole batch, exercising the pull paths and emission ordering).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, example, given, settings
from hypothesis import strategies as st

from repro.core import Box
from repro.eval.harness import PIMZdTreeAdapter, make_boxes

DIMS = st.sampled_from([2, 3, 5])
VARIANTS = st.sampled_from(["throughput", "skew"])


def _build_inputs(dims: int, seed: int, dup: bool, skew: bool):
    """One deterministic workload: data, queries, boxes, updates."""
    rng = np.random.default_rng(seed)
    n = 700
    pts = rng.random((n, dims))
    if dup:
        # Exact duplicate rows (identical Morton keys share a leaf slot).
        pts[n // 2 :] = pts[: n - n // 2]
    if skew:
        # Adversarial concentration: queries and updates all live in one
        # tiny corner cell, so one meta-node/module sees the whole batch.
        anchor = pts[0]
        q = anchor + rng.random((48, dims)) * 1e-3
        fresh = anchor + rng.random((120, dims)) * 1e-3
    else:
        q = pts[rng.integers(0, n, size=48)] + rng.random((48, dims)) * 1e-4
        fresh = rng.random((120, dims))
    q = np.clip(q, 0.0, 1.0)
    fresh = np.clip(fresh, 0.0, 1.0)
    boxes = make_boxes(pts, 0.07 if skew else 0.18, 24, seed=seed + 1)
    if skew:
        side = np.full(dims, 2e-3)
        boxes = boxes[:12] + [Box(anchor - side, anchor + side)] * 12
    dele = np.vstack([pts[rng.integers(0, n, size=80)], fresh[:40]])
    return pts, q, boxes, fresh, dele


def _run_mode(mode: str, variant: str, pts, q, boxes, fresh, dele, k: int,
              sim_mode: str | None = None):
    """The full op mix in one exec mode; returns comparable results + stats."""
    ad = PIMZdTreeAdapter(pts, n_modules=8, variant=variant, seed=3,
                          exec_mode=mode, sim_mode=sim_mode)
    tree = ad.tree
    out = {}
    out["search"] = [
        (r.qid, r.key, r.leaf.nid, tuple(n.nid for n in r.trace))
        for r in tree.search(pts[:32])
    ]
    out["knn"] = tree.knn(q, k)
    out["bc"] = tree.box_count(boxes)
    out["bf"] = tree.box_fetch(boxes)
    tree.insert(fresh)
    out["bc2"] = tree.box_count(boxes)
    out["ndel"] = tree.delete(dele)
    out["knn2"] = tree.knn(q, k)
    out["bf2"] = tree.box_fetch(boxes)
    tree.check_invariants()
    return out, ad.system.stats


def _assert_equal(a, b, label: str) -> None:
    if isinstance(a, np.ndarray):
        assert isinstance(b, np.ndarray) and a.shape == b.shape, label
        assert np.array_equal(a, b), f"{label}: arrays differ"
    elif isinstance(a, (list, tuple)):
        assert len(a) == len(b), f"{label}: len {len(a)} vs {len(b)}"
        for i, (x, y) in enumerate(zip(a, b)):
            _assert_equal(x, y, f"{label}[{i}]")
    else:
        assert a == b, f"{label}: {a!r} vs {b!r}"


def assert_stats_identical(ref, vec) -> None:
    """PIMStats equality with a per-phase diff in the failure message."""
    if ref == vec:
        return
    lines = []
    if ref.total != vec.total:
        lines.append(f"total:\n  ref={ref.total}\n  vec={vec.total}")
    if ref.mux_switches != vec.mux_switches:
        lines.append(
            f"mux_switches: ref={ref.mux_switches} vec={vec.mux_switches}"
        )
    for lab in sorted(set(ref.phases) | set(vec.phases)):
        pa, pb = ref.phases.get(lab), vec.phases.get(lab)
        if pa != pb:
            lines.append(f"phase {lab}:\n  ref={pa}\n  vec={pb}")
    raise AssertionError("PIMStats diverge:\n" + "\n".join(lines))


@settings(
    max_examples=12,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    dims=DIMS,
    seed=st.integers(0, 2**16 - 1),
    dup=st.booleans(),
    skew=st.booleans(),
    variant=VARIANTS,
    k=st.sampled_from([1, 5, 16]),
)
@example(dims=2, seed=0, dup=True, skew=True, variant="skew", k=5)
@example(dims=3, seed=1, dup=False, skew=True, variant="throughput", k=1)
@example(dims=5, seed=2, dup=True, skew=False, variant="throughput", k=16)
def test_exec_modes_are_differentially_identical(dims, seed, dup, skew,
                                                 variant, k):
    pts, q, boxes, fresh, dele = _build_inputs(dims, seed, dup, skew)
    ref_out, ref_stats = _run_mode("reference", variant, pts.copy(), q, boxes,
                                   fresh, dele, k)
    vec_out, vec_stats = _run_mode("vectorized", variant, pts.copy(), q, boxes,
                                   fresh, dele, k)
    for key in ref_out:
        _assert_equal(ref_out[key], vec_out[key], key)
    assert_stats_identical(ref_stats, vec_stats)


@settings(
    max_examples=8,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    dims=DIMS,
    seed=st.integers(0, 2**16 - 1),
    dup=st.booleans(),
    skew=st.booleans(),
    variant=VARIANTS,
    k=st.sampled_from([1, 5, 16]),
)
@example(dims=2, seed=0, dup=True, skew=True, variant="skew", k=5)
@example(dims=3, seed=1, dup=False, skew=True, variant="throughput", k=1)
def test_sim_modes_are_differentially_identical(dims, seed, dup, skew,
                                                variant, k):
    """Both simulator cores under the full index workload.

    The fully scalar oracle (reference exec + scalar sim) and the fully
    vectorized stack (vectorized exec + vector sim) must agree on every
    result and every PIMStats counter — the two orthogonal fast layers
    compose without breaking counter-exactness.
    """
    pts, q, boxes, fresh, dele = _build_inputs(dims, seed, dup, skew)
    ref_out, ref_stats = _run_mode("reference", variant, pts.copy(), q, boxes,
                                   fresh, dele, k, sim_mode="scalar")
    vec_out, vec_stats = _run_mode("vectorized", variant, pts.copy(), q, boxes,
                                   fresh, dele, k, sim_mode="vector")
    for key in ref_out:
        _assert_equal(ref_out[key], vec_out[key], key)
    assert_stats_identical(ref_stats, vec_stats)


@pytest.mark.parametrize("variant", ["throughput", "skew"])
def test_reference_mode_disables_group_kernels(variant):
    """The scalar oracle must not silently route through the kernels."""
    rng = np.random.default_rng(0)
    pts = rng.random((400, 3))
    ad = PIMZdTreeAdapter(pts, n_modules=4, variant=variant, seed=1,
                          exec_mode="reference")
    assert ad.tree.config.exec_mode == "reference"
    ad.tree.knn(pts[:8], 3)
    # Reference mode never builds vectorized region tables for queries.
    assert not getattr(ad.tree, "_region_tables", {})
