"""Tests for K-way chunk replication (``repro.replicate``).

Covers the registry end to end: deterministic secondary placement that
composes with placement overrides, the charged ``replicate_all`` install,
read-any routing (least-loaded live copy, read-your-writes under
``primary-async``), both write policies and the staleness accounting,
failover promotion (pointer swap, no re-upload), the planner's ``clone``
move and its charged executor, durability (manifest round-trip + WAL
``REPLICATE`` replay), serve-loop integration, and the inert guarantees:
``k=1`` replication and replication-off runs stay byte-identical, and
scalar/vector simulator cores agree with replication on.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np
import pytest

from repro.balance import (
    BalanceConfig,
    HotnessTracker,
    MigrationPlanner,
    execute_plan,
)
from repro.core import PIMZdTree
from repro.eval.harness import PIMZdTreeAdapter
from repro.pim import PIMSystem
from repro.replicate import ReplicaSet, ReplicationConfig, WRITE_POLICIES
from repro.serve import AdmissionQueue, make_requests, serve
from repro.store import DurableStore, encode_tree, open_backend
from repro.workloads import poisson_arrivals, uniform_points

P = 8
SEED = 3


def make_tree(n=600, p=P, seed=SEED, capacity=None):
    data = uniform_points(n, 3, seed=seed)
    system = PIMSystem(p, seed=seed, module_capacity_words=capacity)
    return PIMZdTree(data, system=system)


def registry_of(tree) -> dict[int, tuple[int, ...]]:
    return dict(tree.replicas._secondaries)


# ----------------------------------------------------------------------
# config validation
# ----------------------------------------------------------------------
class TestReplicationConfig:
    def test_defaults(self):
        cfg = ReplicationConfig()
        assert cfg.k == 2 and cfg.write_policy == "write-all"
        assert cfg.staleness_bound_s == 1e-3
        assert cfg.write_policy in WRITE_POLICIES

    def test_validation(self):
        with pytest.raises(ValueError):
            ReplicationConfig(k=0)
        with pytest.raises(ValueError):
            ReplicationConfig(write_policy="quorum")
        with pytest.raises(ValueError):
            ReplicationConfig(staleness_bound_s=-1.0)


# ----------------------------------------------------------------------
# placement + charged install
# ----------------------------------------------------------------------
class TestPlacementAndInstall:
    def test_replicate_all_reaches_k_copies(self):
        tree = make_tree()
        reps = ReplicaSet(tree, ReplicationConfig(k=3))
        out = reps.replicate_all()
        assert out["installed"] == 2 * len(tree.metas)
        assert out["words"] > 0
        for meta in tree.metas:
            secs = reps.secondaries(meta)
            assert len(secs) == 2
            assert reps.copy_count(meta) == 3
            # A secondary is never the primary, never duplicated.
            assert meta.module not in secs
            assert len(set(secs)) == len(secs)
            assert secs == tuple(sorted(secs))

    def test_placement_is_deterministic(self):
        regs = []
        for _ in range(2):
            tree = make_tree()
            ReplicaSet(tree, ReplicationConfig(k=2)).replicate_all()
            regs.append(registry_of(tree))
        assert regs[0] == regs[1] and regs[0]

    def test_placement_composes_with_overrides(self):
        tree = make_tree()
        reps = ReplicaSet(tree, ReplicationConfig(k=2))
        meta = min(tree.metas, key=lambda m: m.root.nid)
        nid = meta.root.nid
        natural = reps.place_secondary(meta, 0)
        # Re-route the first replica key; place_secondary must follow the
        # override exactly like any other placement key.
        target = next(m for m in range(tree.system.n_modules)
                      if m not in (meta.module, natural))
        tree.system.set_placement_override(("replica", nid, 0, 0), target)
        assert reps.place_secondary(meta, 0) == target

    def test_placement_skips_dead_modules(self):
        tree = make_tree()
        dead = 2
        tree.fail_over(dead)  # decommission + re-place its primaries
        reps = ReplicaSet(tree, ReplicationConfig(k=2))
        reps.replicate_all()
        for secs in registry_of(tree).values():
            assert dead not in secs

    def test_install_is_charged_under_replicate_phase(self):
        tree = make_tree()
        before = tree.system.stats.snapshot()
        ReplicaSet(tree, ReplicationConfig(k=2)).replicate_all()
        d = tree.system.stats.diff(before)
        assert "replicate" in d.phases
        ph = d.phases["replicate"]
        assert ph.comm_words > 0 and ph.pim_cycles > 0 and ph.rounds >= 1

    def test_k1_is_a_noop_shell(self):
        tree = make_tree()
        before = tree.system.stats.snapshot()
        reps = ReplicaSet(tree, ReplicationConfig(k=1))
        out = reps.replicate_all()
        assert out == {"installed": 0, "words": 0.0}
        assert registry_of(tree) == {}
        d = tree.system.stats.diff(before)
        assert d.total.to_dict() == before.diff(before).total.to_dict()

    def test_k_capped_by_live_modules(self):
        tree = make_tree(n=60, p=2)
        reps = ReplicaSet(tree, ReplicationConfig(k=5))
        reps.replicate_all()
        for meta in tree.metas:
            # Only 2 live modules exist: one primary + one secondary.
            assert reps.copy_count(meta) == 2

    def test_summary_counts(self):
        tree = make_tree()
        reps = ReplicaSet(tree, ReplicationConfig(k=2))
        reps.replicate_all()
        s = reps.summary()
        assert s["k"] == 2
        assert s["chunks_replicated"] == len(tree.metas)
        assert s["total_copies"] == len(tree.metas)
        assert s["promotions"] == 0 and s["flushes"] == 0


# ----------------------------------------------------------------------
# read routing
# ----------------------------------------------------------------------
class TestReadRouting:
    def _one_chunk(self, tree):
        return min(tree.metas, key=lambda m: m.root.nid)

    def test_read_any_balances_over_copies(self):
        tree = make_tree()
        reps = ReplicaSet(tree, ReplicationConfig(k=2))
        reps.replicate_all()
        meta = self._one_chunk(tree)
        copies = {meta.module, *reps.secondaries(meta)}
        picks = [reps.read_module(meta) for _ in range(6)]
        assert set(picks) == copies
        # Equal weights alternate: no copy is ever 2 ahead of another.
        for i in range(2, 7, 2):
            counts = [picks[:i].count(m) for m in copies]
            assert max(counts) - min(counts) == 0

    def test_routing_respects_weight(self):
        tree = make_tree()
        reps = ReplicaSet(tree, ReplicationConfig(k=2))
        reps.replicate_all()
        meta = self._one_chunk(tree)
        first = reps.read_module(meta, weight=100.0)
        # The heavy read parks 100 units on ``first``; the next several
        # unit reads all land on the other copy.
        others = {reps.read_module(meta, weight=1.0) for _ in range(3)}
        assert first not in others and len(others) == 1

    def test_dead_secondary_not_routed(self):
        tree = make_tree()
        reps = ReplicaSet(tree, ReplicationConfig(k=2))
        reps.replicate_all()
        meta = self._one_chunk(tree)
        (sec,) = reps.secondaries(meta)
        tree.system.decommission(sec)
        assert reps.live_secondaries(meta) == ()
        assert all(reps.read_module(meta) == meta.module for _ in range(4))

    def test_primary_async_pins_reads_while_pending(self):
        tree = make_tree()
        reps = ReplicaSet(tree, ReplicationConfig(
            k=2, write_policy="primary-async", staleness_bound_s=1e-3))
        reps.replicate_all()
        meta = self._one_chunk(tree)
        reps.on_write(meta, 64.0)
        # Read-your-writes: unflushed chunk reads from the primary only.
        assert all(reps.read_module(meta) == meta.module for _ in range(4))
        reps.flush(now=1.0)
        reps._routed.clear()
        assert {reps.read_module(meta) for _ in range(2)} \
            == {meta.module, *reps.secondaries(meta)}


# ----------------------------------------------------------------------
# write policies
# ----------------------------------------------------------------------
class TestWritePolicies:
    def test_write_all_fans_out_inside_callers_round(self):
        tree = make_tree()
        reps = ReplicaSet(tree, ReplicationConfig(k=3))
        reps.replicate_all()
        meta = min(tree.metas, key=lambda m: m.root.nid)
        sys = tree.system
        before = sys.stats.snapshot()
        with sys.round():
            reps.on_write(meta, 50.0)
        d = sys.stats.diff(before)
        assert d.total.comm_words == 2 * 50.0  # one send per secondary
        assert reps.writes_fanned == 1 and reps.words_fanned == 100.0

    def test_write_all_insert_costs_more_than_unreplicated(self):
        def run(k):
            tree = make_tree()
            if k > 1:
                ReplicaSet(tree, ReplicationConfig(k=k)).replicate_all()
            before = tree.system.stats.snapshot()
            tree.insert(uniform_points(40, 3, seed=SEED + 9))
            return tree.system.stats.diff(before).total.comm_words

        assert run(2) > run(1)

    def test_primary_async_accumulates_then_flushes(self):
        tree = make_tree()
        reps = ReplicaSet(tree, ReplicationConfig(
            k=2, write_policy="primary-async", staleness_bound_s=0.5))
        reps.replicate_all()
        meta = min(tree.metas, key=lambda m: m.root.nid)
        sys = tree.system
        before = sys.stats.snapshot()
        reps.clock = 1.0
        reps.on_write(meta, 30.0)
        reps.on_write(meta, 20.0)  # coalesces into the same pending entry
        # Nothing shipped yet, and nothing charged.
        d = sys.stats.diff(before)
        assert d.total.comm_words == 0.0
        assert reps._pending[meta.root.nid][0] == 50.0
        assert not reps.flush_due(1.2)          # age 0.2 < bound 0.5
        assert reps.flush_due(1.6)              # age 0.6 >= bound
        assert reps.oldest_pending_s(1.6) == pytest.approx(0.6)
        out = reps.flush(now=1.6)
        assert out["flushed"] == 1 and out["words"] == 50.0
        assert reps._pending == {} and reps.flushes == 1
        assert reps.staleness_samples == [pytest.approx(0.6)]
        d = sys.stats.diff(before)
        assert "replicate" in d.phases and d.total.comm_words == 50.0
        s = reps.summary()["staleness"]
        assert s["n"] == 1 and s["max_s"] == pytest.approx(0.6)

    def test_no_secondaries_means_no_fanout(self):
        tree = make_tree()
        reps = ReplicaSet(tree, ReplicationConfig(k=2))
        # No replicate_all: registry empty, both policies are no-ops.
        meta = min(tree.metas, key=lambda m: m.root.nid)
        before = tree.system.stats.snapshot()
        reps.on_write(meta, 10.0)
        assert reps.writes_fanned == 0 and reps._pending == {}
        d = tree.system.stats.diff(before)
        assert d.total.to_dict() == before.diff(before).total.to_dict()


# ----------------------------------------------------------------------
# failover promotion
# ----------------------------------------------------------------------
class TestFailoverPromotion:
    def test_promotion_avoids_reupload(self):
        tree = make_tree()
        reps = ReplicaSet(tree, ReplicationConfig(k=2))
        reps.replicate_all()
        dead = max(set(m.module for m in tree.metas),
                   key=lambda mid: sum(1 for m in tree.metas
                                       if m.module == mid))
        expected = {
            m.root.nid: reps.live_secondaries(m)[0]
            for m in tree.metas if m.module == dead
        }
        assert expected, "the busiest module must master at least one chunk"
        out = tree.fail_over(dead)
        # Every chunk had a live secondary: all promoted, zero words moved.
        assert out["promoted"] == out["metas_moved"] == len(expected)
        assert out["words_moved"] == 0.0
        for nid, new_mid in expected.items():
            meta = next(m for m in tree.metas if m.root.nid == nid)
            assert meta.module == new_mid
            # The override makes later place() calls agree.
            assert tree.system.place(("meta", nid)) == new_mid
            # The promoted copy is no longer listed as a secondary.
            assert new_mid not in reps.secondaries(meta)
        # The dead module is gone from the registry everywhere.
        assert all(dead not in secs for secs in registry_of(tree).values())
        assert reps.promotions == len(expected)
        assert reps.summary()["promotions"] == len(expected)

    def test_promoted_tree_answers_match_unreplicated_failover(self):
        data = uniform_points(500, 3, seed=SEED)
        queries = data[:24] + 1e-5

        def run(with_reps):
            tree = PIMZdTree(data, system=PIMSystem(P, seed=SEED))
            if with_reps:
                ReplicaSet(tree, ReplicationConfig(k=2)).replicate_all()
            tree.fail_over(1)
            tree.check_invariants()
            return tree.knn(queries, 5)

        for (d1, p1), (d2, p2) in zip(run(True), run(False)):
            assert np.array_equal(d1, d2) and np.array_equal(p1, p2)

    def test_promotion_cheaper_than_rebuild(self):
        def failover_words(with_reps):
            tree = make_tree()
            if with_reps:
                ReplicaSet(tree, ReplicationConfig(k=2)).replicate_all()
            return tree.fail_over(1)["words_moved"]

        assert failover_words(True) < failover_words(False)


# ----------------------------------------------------------------------
# planner clone moves + charged executor
# ----------------------------------------------------------------------
class TestCloneMoves:
    def _hot_setup(self, *, with_reps=True):
        tree = make_tree()
        reps = None
        if with_reps:
            reps = ReplicaSet(tree, ReplicationConfig(k=2))
        tracker = HotnessTracker(tree.system)
        # Concentrate all heat on one module, all of it on one chunk.
        src = min(tree.metas, key=lambda m: m.root.nid).module
        hot = max((m for m in tree.metas if m.module == src),
                  key=lambda m: m.root.nid)
        for m in tree.metas:
            m.hot_hits = 0
        hot.hot_hits = 1000
        tracker.hotness[:] = 0.0
        tracker.hotness[src] = 1e6
        return tree, reps, tracker, src, hot

    def test_planner_emits_clone_for_pinned_hot_chunk(self):
        tree, reps, tracker, src, hot = self._hot_setup()
        planner = MigrationPlanner(tree, BalanceConfig(max_moves=1))
        plan = planner.plan(tracker)
        assert len(plan.moves) == 1
        mv = plan.moves[0]
        assert mv.kind == "clone"
        assert mv.meta is hot and mv.src == src
        assert mv.dst not in {hot.module, *reps.secondaries(hot)}
        # Read-any splits heat over copies+1: half moves on the first clone.
        assert mv.heat == pytest.approx(1e6 / 2)
        assert mv.to_dict()["kind"] == "clone"

    def test_without_replicas_planner_never_clones(self):
        tree, _, tracker, _, _ = self._hot_setup(with_reps=False)
        plan = MigrationPlanner(tree, BalanceConfig(max_moves=4)).plan(tracker)
        assert all(mv.kind == "migrate" for mv in plan.moves)

    def test_clone_respects_k_budget(self):
        tree, reps, tracker, src, hot = self._hot_setup()
        reps.replicate_all()  # already at k=2 everywhere
        plan = MigrationPlanner(tree, BalanceConfig(max_moves=1)).plan(tracker)
        assert all(mv.kind != "clone" for mv in plan.moves)

    def test_executor_installs_clone_charged(self):
        tree, reps, tracker, src, hot = self._hot_setup()
        plan = MigrationPlanner(tree, BalanceConfig(max_moves=1)).plan(tracker)
        before = tree.system.stats.snapshot()
        out = execute_plan(tree, plan)
        assert out["clones"] == 1 and out["moves"] == 1
        d = tree.system.stats.diff(before)
        assert "rebalance" in d.phases
        assert d.phases["rebalance"].comm_words > 0
        # Mastership did not move; a secondary now exists on dst.
        assert hot.module == src
        assert plan.moves[0].dst in reps.secondaries(hot)
        # No placement override: the master copy never moved.
        assert tree.system.n_placement_overrides == 0


# ----------------------------------------------------------------------
# durability: manifest round-trip + WAL REPLICATE replay
# ----------------------------------------------------------------------
class TestDurability:
    def test_manifest_absent_without_replicas(self):
        tree = make_tree(n=80, p=4)
        assert "replicas" not in encode_tree(tree, wal_seq=0).manifest

    def test_manifest_roundtrip_via_checkpoint(self):
        data = uniform_points(200, 3, seed=SEED)
        queries = data[:16] + 1e-5
        with tempfile.TemporaryDirectory() as tmp:
            backend = open_backend("file", Path(tmp) / "s")
            try:
                tree = PIMZdTree(data, system=PIMSystem(4, seed=SEED))
                store = DurableStore(backend)
                store.attach(tree)
                reps = ReplicaSet(tree, ReplicationConfig(
                    k=2, write_policy="primary-async",
                    staleness_bound_s=0.25))
                reps.replicate_all()
                store.checkpoint(tree)
                want = registry_of(tree)
                want_knn = tree.knn(queries, 5)

                res = store.recover()
                got = res.tree.replicas
                assert got is not None
                assert registry_of(res.tree) == want and want
                assert got.config == reps.config
                for (d1, p1), (d2, p2) in zip(want_knn,
                                              res.tree.knn(queries, 5)):
                    assert np.array_equal(d1, d2)
                    assert np.array_equal(p1, p2)
            finally:
                backend.close()

    def test_wal_replicate_replay_before_first_checkpoint(self):
        """Clones journaled after the attach-time checkpoint replay into
        an implicit registry even though no manifest recorded one."""
        data = uniform_points(200, 3, seed=SEED)
        with tempfile.TemporaryDirectory() as tmp:
            backend = open_backend("file", Path(tmp) / "s")
            try:
                tree = PIMZdTree(data, system=PIMSystem(4, seed=SEED))
                store = DurableStore(backend)
                store.attach(tree)  # checkpoint has no "replicas" key
                reps = ReplicaSet(tree, ReplicationConfig(k=2))
                reps.replicate_all()  # journaled as REPLICATE records
                want = registry_of(tree)

                res = store.recover()
                assert res.replayed >= 1
                assert res.tree.replicas is not None
                assert registry_of(res.tree) == want and want
            finally:
                backend.close()

    def test_recovery_drops_secondaries_on_dead_modules(self):
        data = uniform_points(200, 3, seed=SEED)
        with tempfile.TemporaryDirectory() as tmp:
            backend = open_backend("file", Path(tmp) / "s")
            try:
                tree = PIMZdTree(data, system=PIMSystem(4, seed=SEED))
                store = DurableStore(backend)
                store.attach(tree)
                reps = ReplicaSet(tree, ReplicationConfig(k=2))
                reps.replicate_all()
                # Kill a module that holds at least one secondary, then
                # checkpoint the post-failover state.
                dead = registry_of(tree)[min(registry_of(tree))][0]
                tree.fail_over(dead)
                store.checkpoint(tree)

                res = store.recover()
                for secs in registry_of(res.tree).values():
                    assert dead not in secs
                res.tree.check_invariants()
            finally:
                backend.close()


# ----------------------------------------------------------------------
# serve-loop integration
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def rep_data():
    return uniform_points(1200, 3, seed=11)


def _serve(data, **kw):
    adapter = PIMZdTreeAdapter(data, n_modules=P, seed=SEED)
    arrivals = poisson_arrivals(40_000.0, 120, seed=21)
    tenants = kw.pop("req_tenants", None)
    reqs = make_requests(
        data, arrivals,
        mix={"knn": 0.7, "bc": 0.15, "insert": 0.15},
        k=5, seed=22, tenants=tenants,
    )
    return serve(adapter, reqs, queue_depth=64, **kw)


class TestServeIntegration:
    def test_replication_summary_in_stats(self, rep_data):
        res = _serve(rep_data, replication=ReplicationConfig(k=2))
        rep = res.stats.replication
        assert rep is not None and rep["k"] == 2
        assert rep["chunks_replicated"] > 0
        assert rep["writes_fanned"] > 0  # the insert mix fanned out
        assert "replication" in res.stats.to_dict()
        assert res.stats.n_done == 120

    def test_stats_omit_replication_when_off(self, rep_data):
        res = _serve(rep_data)
        assert res.stats.replication is None
        assert "replication" not in res.stats.to_dict()
        assert "by_tenant" not in res.stats.to_dict()

    def test_primary_async_flushes_during_serve(self, rep_data):
        res = _serve(rep_data, replication=ReplicationConfig(
            k=2, write_policy="primary-async", staleness_bound_s=1e-4))
        rep = res.stats.replication
        assert rep["flushes"] >= 1
        assert rep["staleness"]["n"] >= 1
        assert rep["staleness"]["max_s"] >= 0.0

    def test_per_tenant_breakdown(self, rep_data):
        weights = {"gold": 4.0, "bronze": 1.0}
        res = _serve(rep_data, req_tenants=weights, tenants=weights)
        bt = res.stats.by_tenant
        assert set(bt) == {"gold", "bronze"}
        assert sum(t["n_offered"] for t in bt.values()) \
            == res.stats.n_offered
        assert sum(t["n_done"] for t in bt.values()) == res.stats.n_done
        assert "by_tenant" in res.stats.to_dict()

    def test_tenant_tagging_keeps_payloads_identical(self, rep_data):
        arrivals = poisson_arrivals(40_000.0, 50, seed=21)
        plain = make_requests(rep_data, arrivals, mix={"knn": 1.0},
                              k=5, seed=22)
        tagged = make_requests(rep_data, arrivals, mix={"knn": 1.0},
                               k=5, seed=22, tenants={"a": 1.0, "b": 1.0})
        assert {r.tenant for r in tagged} == {"a", "b"}
        for a, b in zip(plain, tagged):
            assert np.array_equal(a.payload, b.payload)
            assert a.kind == b.kind and a.arrival_s == b.arrival_s


# ----------------------------------------------------------------------
# inert guarantees + sim-mode identity
# ----------------------------------------------------------------------
class TestByteIdentity:
    def _workload(self, tree, data):
        tree.knn(data[:32] + 1e-5, 5)
        tree.insert(uniform_points(30, 3, seed=SEED + 5))
        tree.knn(data[32:64] + 1e-5, 5)

    def test_k1_replicaset_is_byte_identical_to_none(self):
        data = uniform_points(500, 3, seed=SEED)

        def run(attach):
            tree = PIMZdTree(data, system=PIMSystem(P, seed=SEED))
            if attach:
                ReplicaSet(tree, ReplicationConfig(k=1)).replicate_all()
            self._workload(tree, data)
            return tree.system.stats.to_dict()

        assert run(False) == run(True)

    def test_scalar_vector_identical_with_replication_on(self):
        data = uniform_points(500, 3, seed=SEED)

        def run(sim_mode):
            ad = PIMZdTreeAdapter(data, n_modules=P, seed=SEED,
                                  sim_mode=sim_mode)
            ReplicaSet(ad.tree, ReplicationConfig(k=2)).replicate_all()
            self._workload(ad.tree, data)
            ad.tree.fail_over(1)
            return ad.system.stats.to_dict(), registry_of(ad.tree)

        s_stats, s_reg = run("scalar")
        v_stats, v_reg = run("vector")
        assert s_stats == v_stats
        assert s_reg == v_reg
