"""Correctness tests for PIM-zd-tree operations (§4) against oracles."""

import numpy as np
import pytest

from repro.core import L1, L2, Box, PIMZdTree, skew_resistant, throughput_optimized
from repro.pim import PIMSystem

from conftest import (
    assert_same_points,
    brute_box_count,
    brute_box_points,
    brute_knn,
)


def make_tree(points, variant="throughput", n_modules=16, seed=1, **cfg_over):
    system = PIMSystem(n_modules, seed=seed)
    if variant == "throughput":
        cfg = throughput_optimized(len(points), n_modules, **cfg_over)
    else:
        cfg = skew_resistant(n_modules, **cfg_over)
    return PIMZdTree(points, config=cfg, system=system)


VARIANTS = ["throughput", "skew"]


class TestSearch:
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_search_finds_containing_leaf(self, rng, variant):
        pts = rng.random((2000, 3))
        tree = make_tree(pts, variant)
        results = tree.search(pts[:100])
        for res in results:
            assert res.leaf is not None
            lo, hi = res.leaf.key_range(tree.key_bits)
            assert lo <= res.key < hi
            assert res.trace, "trace must be recorded"
            assert res.trace[-1] is res.leaf

    def test_search_reports_edge_divergence(self, rng):
        # A cluster far from a lone outlier guarantees compressed edges.
        pts = np.vstack([rng.random((500, 2)) * 0.01, [[0.9, 0.9]]])
        tree = make_tree(pts, "skew", n_modules=4)
        probe = np.array([[0.5, 0.1]])
        res = tree.search(probe)[0]
        assert (res.leaf is None) != (res.edge is None)

    def test_trace_is_root_path(self, rng):
        pts = rng.random((1500, 3))
        tree = make_tree(pts, "skew")
        res = tree.search(pts[:5])
        for r in res:
            assert r.trace[0] is tree.root
            for a, b in zip(r.trace, r.trace[1:]):
                assert b.parent is a


class TestInsert:
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_insert_preserves_multiset(self, rng, variant):
        pts = rng.random((3000, 3))
        tree = make_tree(pts[:1500], variant)
        tree.insert(pts[1500:])
        tree.check_invariants()
        assert tree.size == 3000
        assert_same_points(tree.all_points(), pts)

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_many_small_batches(self, rng, variant):
        pts = rng.random((2400, 3))
        tree = make_tree(pts[:800], variant, n_modules=8)
        for i in range(800, 2400, 200):
            tree.insert(pts[i : i + 200])
            tree.check_invariants()
        assert_same_points(tree.all_points(), pts)

    def test_insert_duplicates(self, rng):
        pts = rng.random((500, 3))
        tree = make_tree(pts, "skew")
        tree.insert(pts[:100])
        tree.check_invariants()
        assert tree.size == 600

    def test_insert_identical_point_flood(self, rng):
        """Many copies of one point: oversized single-key leaf allowed."""
        pts = rng.random((400, 3))
        tree = make_tree(pts, "skew")
        flood = np.tile(pts[0], (200, 1))
        tree.insert(flood)
        tree.check_invariants()
        assert tree.size == 600

    def test_insert_empty(self, rng):
        tree = make_tree(rng.random((300, 3)))
        tree.insert(np.empty((0, 3)))
        assert tree.size == 300

    def test_insert_dimension_mismatch(self, rng):
        tree = make_tree(rng.random((300, 3)))
        with pytest.raises(ValueError):
            tree.insert(np.zeros((1, 2)))

    def test_edge_splits_from_sparse_clusters(self, rng):
        """Inserts landing in empty space split compressed edges."""
        cluster = rng.random((800, 2)) * 0.01 + 0.99
        tree = make_tree(cluster, "skew", n_modules=4)
        spread = rng.random((400, 2)) * 0.5
        tree.insert(spread)
        tree.check_invariants()
        assert_same_points(tree.all_points(), np.vstack([cluster, spread]))

    def test_growth_triggers_promotions(self, rng):
        """Doubling the data must move the L0 border downward (step 3d)."""
        pts = rng.random((2000, 3))
        tree = make_tree(pts, "throughput", n_modules=8)
        n_l0_before = len(tree.l0_nodes())
        extra = rng.random((4000, 3))
        for i in range(0, 4000, 500):
            tree.insert(extra[i : i + 500])
        tree.check_invariants()
        assert len(tree.l0_nodes()) > n_l0_before


class TestDelete:
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_delete_exact(self, rng, variant):
        pts = rng.random((2000, 3))
        tree = make_tree(pts, variant)
        removed = tree.delete(pts[:700])
        assert removed == 700
        tree.check_invariants()
        assert_same_points(tree.all_points(), pts[700:])

    def test_delete_missing_points(self, rng):
        pts = rng.random((500, 3))
        tree = make_tree(pts, "skew")
        assert tree.delete(rng.random((50, 3)) + 5.0) == 0

    def test_delete_duplicates_all_copies(self, rng):
        dup = np.full((6, 3), 0.3)
        pts = np.vstack([dup, rng.random((300, 3))])
        tree = make_tree(pts, "skew")
        assert tree.delete(dup[:1]) == 6
        tree.check_invariants()

    def test_delete_then_insert_roundtrip(self, rng):
        pts = rng.random((1200, 3))
        tree = make_tree(pts, "skew", n_modules=8)
        tree.delete(pts[:400])
        tree.insert(pts[:400])
        tree.check_invariants()
        assert_same_points(tree.all_points(), pts)

    def test_delete_cannot_empty(self, rng):
        pts = rng.random((20, 3))
        tree = make_tree(pts, "throughput", n_modules=2)
        with pytest.raises(ValueError):
            tree.delete(pts)

    def test_heavy_delete_triggers_demotions(self, rng):
        pts = rng.random((4000, 3))
        tree = make_tree(pts, "skew", n_modules=8)
        tree.delete(pts[:3000])
        tree.check_invariants()
        assert tree.size == 1000


class TestKnn:
    @pytest.mark.parametrize("variant", VARIANTS)
    @pytest.mark.parametrize("k", [1, 10, 40])
    def test_exact_vs_brute(self, rng, variant, k):
        pts = rng.random((2500, 3))
        tree = make_tree(pts, variant)
        queries = pts[rng.integers(0, len(pts), 12)] + rng.normal(
            scale=1e-3, size=(12, 3)
        )
        out = tree.knn(queries, k)
        for q, (d, nn) in zip(queries, out):
            np.testing.assert_allclose(d, brute_knn(pts, q, k), atol=1e-12)

    def test_l1_metric_exact(self, rng):
        pts = rng.random((1500, 3))
        tree = make_tree(pts, "skew")
        q = pts[7]
        d, _ = tree.knn(q, 9, metric=L1)[0]
        np.testing.assert_allclose(d, brute_knn(pts, q, 9, metric=L1))

    def test_fast_l2_off_still_exact(self, rng):
        pts = rng.random((1500, 3))
        tree = make_tree(pts, "skew", fast_l2=False)
        q = pts[3]
        d, _ = tree.knn(q, 15)[0]
        np.testing.assert_allclose(d, brute_knn(pts, q, 15))

    def test_k_exceeds_tree_size(self, rng):
        pts = rng.random((30, 3))
        tree = make_tree(pts, "throughput", n_modules=2)
        d, nn = tree.knn(pts[:1], 100)[0]
        assert len(d) == 30

    def test_far_query(self, rng):
        pts = rng.random((1000, 3))
        tree = make_tree(pts, "skew")
        q = np.array([5.0, 5.0, 5.0])
        d, _ = tree.knn(q.reshape(1, -1), 4)[0]
        np.testing.assert_allclose(d, brute_knn(pts, q, 4))

    def test_2d_exact(self, rng):
        pts = rng.random((1500, 2))
        tree = make_tree(pts, "throughput")
        q = pts[42]
        d, _ = tree.knn(q, 6)[0]
        np.testing.assert_allclose(d, brute_knn(pts, q, 6))

    def test_after_updates(self, rng):
        pts = rng.random((2000, 3))
        tree = make_tree(pts[:1200], "skew", n_modules=8)
        tree.insert(pts[1200:])
        tree.delete(pts[:500])
        live = pts[500:]
        q = pts[1500]
        d, _ = tree.knn(q, 8)[0]
        np.testing.assert_allclose(d, brute_knn(live, q, 8))

    def test_invalid_k(self, rng):
        tree = make_tree(rng.random((100, 3)))
        with pytest.raises(ValueError):
            tree.knn(np.zeros((1, 3)), 0)

    def test_duplicate_points_returned(self, rng):
        dup = np.full((5, 3), 0.4)
        pts = np.vstack([dup, rng.random((500, 3))])
        tree = make_tree(pts, "skew")
        d, nn = tree.knn(np.full((1, 3), 0.4), 5)[0]
        np.testing.assert_allclose(d, np.zeros(5), atol=1e-12)


class TestBoxQueries:
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_count_exact(self, rng, variant):
        pts = rng.random((2500, 3))
        tree = make_tree(pts, variant)
        boxes = []
        for _ in range(15):
            c = rng.random(3)
            w = rng.random(3) * 0.3
            boxes.append(Box(np.maximum(c - w, 0), np.minimum(c + w, 1)))
        counts = tree.box_count(boxes)
        for box, got in zip(boxes, counts):
            assert got == brute_box_count(pts, box)

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_fetch_exact(self, rng, variant):
        pts = rng.random((2000, 3))
        tree = make_tree(pts, variant)
        c = rng.random(3)
        box = Box(np.maximum(c - 0.2, 0), np.minimum(c + 0.2, 1))
        got = tree.box_fetch([box])[0]
        assert_same_points(got, brute_box_points(pts, box))

    def test_whole_domain(self, rng):
        pts = rng.random((1500, 3))
        tree = make_tree(pts, "skew")
        box = Box(np.full(3, -1.0), np.full(3, 2.0))
        assert tree.box_count([box])[0] == 1500
        assert len(tree.box_fetch([box])[0]) == 1500

    def test_empty_boxes(self, rng):
        pts = rng.random((800, 3))
        tree = make_tree(pts, "throughput")
        box = Box(np.full(3, 5.0), np.full(3, 6.0))
        assert tree.box_count([box])[0] == 0
        assert len(tree.box_fetch([box])[0]) == 0

    def test_box_count_exact_after_updates(self, rng):
        """BoxCount must stay exact even while lazy counters are stale."""
        pts = rng.random((2000, 3))
        tree = make_tree(pts[:1500], "skew", n_modules=8)
        tree.insert(pts[1500:])
        tree.delete(pts[:300])
        live = pts[300:]
        box = Box(np.full(3, 0.25), np.full(3, 0.75))
        assert tree.box_count([box])[0] == brute_box_count(live, box)

    def test_tuple_boxes_accepted(self, rng):
        pts = rng.random((500, 2))
        tree = make_tree(pts, "throughput")
        got = tree.box_count([(np.zeros(2), np.ones(2))])
        assert got[0] == 500

    def test_dimension_mismatch(self, rng):
        tree = make_tree(rng.random((100, 3)))
        with pytest.raises(ValueError):
            tree.box_count([Box(np.zeros(2), np.ones(2))])


class TestMixedWorkload:
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_long_interleaving_matches_oracle(self, rng, variant):
        pts = rng.random((3000, 3))
        tree = make_tree(pts[:1000], variant, n_modules=8)
        live = pts[:1000]
        # insert / delete / query rounds
        tree.insert(pts[1000:1800])
        live = np.vstack([live, pts[1000:1800]])
        tree.delete(pts[300:600])
        live = np.vstack([live[:300], live[600:]])
        tree.insert(pts[1800:2600])
        live = np.vstack([live, pts[1800:2600]])
        tree.check_invariants()
        assert_same_points(tree.all_points(), live)
        # queries
        q = pts[2000]
        d, _ = tree.knn(q, 11)[0]
        np.testing.assert_allclose(d, brute_knn(live, q, 11))
        box = Box(np.full(3, 0.1), np.full(3, 0.6))
        assert tree.box_count([box])[0] == brute_box_count(live, box)
