"""Property-based tests (hypothesis) for the admission queue.

The per-``(tenant, group)`` deque rewrite of :class:`AdmissionQueue`
claims two things: (1) single-tenant FIFO behaviour is *observably
identical* to the old flat-list implementation — same admit/evict/take/
expire sequences, same stamps — and (2) under weighted-fair tenancy the
queue still conserves requests (every offer ends in exactly one terminal
or queued state), stays FIFO within a tenant, and serves backlogged
tenants in proportion to their weights.  Hypothesis drives random op
sequences with a nondecreasing clock against a naive list reference
model for (1) and against invariant checks for (2).
"""

from __future__ import annotations

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.serve import AdmissionQueue, Request, TenantPolicy

SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

GROUPS = [("knn", 10), ("bc", 0), ("insert", 0)]
TENANTS = ["a", "b", "c"]


def mk_req(rid: int, group: tuple, tenant: str, t: float) -> Request:
    kind, k = group
    return Request(rid=rid, kind=kind, payload=None, arrival_s=t, k=k,
                   tenant=tenant)


# ----------------------------------------------------------------------
# naive flat-list reference model (the old implementation's semantics)
# ----------------------------------------------------------------------
class ListQueue:
    """O(n²) reference: one list, scans and ``pop(0)`` everywhere."""

    def __init__(self, depth: int, overflow: str) -> None:
        self.depth = depth
        self.overflow = overflow
        self.items: list[Request] = []
        self.rejected: list[Request] = []
        self.shed: list[Request] = []
        self.timed_out: list[Request] = []

    def __len__(self) -> int:
        return len(self.items)

    def offer(self, req: Request, now: float) -> bool:
        req.enqueue_s = now
        if len(self.items) >= self.depth:
            if self.overflow == "reject":
                req.status = "rejected"
                self.rejected.append(req)
                return False
            victim = self.items.pop(0)
            victim.status = "shed"
            self.shed.append(victim)
        req.status = "queued"
        self.items.append(req)
        return True

    def head_group(self) -> tuple:
        return self.items[0].group

    def backlog(self, group: tuple) -> int:
        return sum(1 for r in self.items if r.group == group)

    def take(self, group: tuple, limit: int) -> list[Request]:
        out = []
        keep = []
        for r in self.items:
            if r.group == group and len(out) < limit:
                out.append(r)
            else:
                keep.append(r)
        self.items = keep
        return out

    def expire(self, now: float, timeout_s: float) -> list[Request]:
        out = [r for r in self.items if now - r.enqueue_s > timeout_s]
        self.items = [r for r in self.items if now - r.enqueue_s <= timeout_s]
        for r in out:
            r.status = "timed_out"
            r.complete_s = r.enqueue_s + timeout_s
            self.timed_out.append(r)
        return out


# ----------------------------------------------------------------------
# op-sequence strategies
# ----------------------------------------------------------------------
ops_st = st.lists(
    st.one_of(
        st.tuples(st.just("offer"), st.integers(0, len(GROUPS) - 1),
                  st.integers(0, len(TENANTS) - 1),
                  st.floats(0.0, 2.0)),
        st.tuples(st.just("take"), st.integers(0, len(GROUPS) - 1),
                  st.integers(1, 5)),
        st.tuples(st.just("expire"), st.floats(0.5, 3.0)),
        st.just(("head",)),
    ),
    min_size=1, max_size=80,
)


def drive(q, model, ops, *, tenants: bool):
    """Run one op sequence against ``q`` (and ``model`` when given)."""
    offered_q: list[Request] = []
    offered_m: list[Request] = []
    taken_q: list[Request] = []
    now = 0.0
    rid = 0
    for op in ops:
        if op[0] == "offer":
            _, g, t, dt = op
            now += dt
            tenant = TENANTS[t] if tenants else "default"
            rq = mk_req(rid, GROUPS[g], tenant, now)
            offered_q.append(rq)
            admitted = q.offer(rq, now)
            if model is not None:
                rm = mk_req(rid, GROUPS[g], tenant, now)
                offered_m.append(rm)
                assert model.offer(rm, now) == admitted
            rid += 1
        elif op[0] == "take":
            _, g, limit = op
            got = q.take(GROUPS[g], limit)
            taken_q.extend(got)
            if model is not None:
                want = model.take(GROUPS[g], limit)
                assert [r.rid for r in got] == [r.rid for r in want]
        elif op[0] == "expire":
            _, timeout = op
            got = q.expire(now, timeout)
            if model is not None:
                want = model.expire(now, timeout)
                assert [r.rid for r in got] == [r.rid for r in want]
                for a, b in zip(got, want):
                    assert a.complete_s == b.complete_s
        else:  # head
            if len(q) == 0:
                with pytest.raises(LookupError):
                    q.head_group()
            elif model is not None:
                assert q.head_group() == model.head_group()
            else:
                q.head_group()  # must not raise or mutate
    return offered_q, taken_q, now


def check_conservation(q, offered, taken):
    """Every offered request is in exactly one place, with the matching
    status — the nothing-is-ever-silently-dropped contract."""
    taken_rids = {r.rid for r in taken}
    # take() leaves status "queued" — the serve loop marks terminal
    # states after dispatch — so "still queued" excludes taken rids.
    queued = [r for r in offered
              if r.status == "queued" and r.rid not in taken_rids]
    assert len(q) == len(queued)
    assert (len(queued) + len(taken) + len(q.rejected) + len(q.shed)
            + len(q.timed_out)) == len(offered)
    for r in q.rejected:
        assert r.status == "rejected"
    for r in q.shed:
        assert r.status == "shed"
    for r in q.timed_out:
        assert r.status == "timed_out"
        assert r.complete_s >= r.enqueue_s and not math.isnan(r.complete_s)


# ----------------------------------------------------------------------
# FIFO mode ≡ the flat-list reference model
# ----------------------------------------------------------------------
@SETTINGS
@given(ops=ops_st, depth=st.integers(1, 12),
       overflow=st.sampled_from(["reject", "shed-oldest"]))
def test_fifo_mode_matches_list_model(ops, depth, overflow):
    q = AdmissionQueue(depth, overflow=overflow)
    model = ListQueue(depth, overflow)
    offered, taken, _ = drive(q, model, ops, tenants=False)
    check_conservation(q, offered, taken)
    # Residual queue contents agree item-for-item.
    left = []
    while len(q):
        left.extend(q.take(q.head_group(), 1))
    assert [r.rid for r in left] == [r.rid for r in model.items]


# ----------------------------------------------------------------------
# WFQ mode invariants
# ----------------------------------------------------------------------
@SETTINGS
@given(ops=ops_st, depth=st.integers(1, 12),
       overflow=st.sampled_from(["reject", "shed-oldest"]))
def test_wfq_mode_invariants(ops, depth, overflow):
    q = AdmissionQueue(depth, overflow=overflow,
                       tenants={"a": 4.0, "b": 2.0, "c": 1.0})
    offered, taken, _ = drive(q, None, ops, tenants=True)
    check_conservation(q, offered, taken)
    # Within one (tenant, group) the dequeue order is FIFO by admission.
    by_sub: dict[tuple, list[int]] = {}
    for r in taken:
        by_sub.setdefault((r.tenant, r.group), []).append(r.rid)
    for rids in by_sub.values():
        assert rids == sorted(rids)
    # head_group() is consistent with take(): the announced group yields
    # a request when dequeued.
    if len(q):
        g = q.head_group()
        assert len(q.take(g, 1)) == 1


def test_wfq_serves_backlog_in_weight_proportion():
    """Full backlogs from two tenants drain in their weight ratio."""
    q = AdmissionQueue(200, tenants=TenantPolicy(weights={"a": 3.0,
                                                          "b": 1.0}))
    g = GROUPS[0]
    rid = 0
    for i in range(60):
        for t in ("a", "b"):
            q.offer(mk_req(rid, g, t, 0.0), 0.0)
            rid += 1
    got = q.take(g, 40)
    counts = {t: sum(1 for r in got if r.tenant == t) for t in ("a", "b")}
    assert counts["a"] == 30 and counts["b"] == 10
    # Within each tenant the order stayed FIFO.
    for t in ("a", "b"):
        rids = [r.rid for r in got if r.tenant == t]
        assert rids == sorted(rids)


def test_wfq_head_group_is_pure_peek():
    q = AdmissionQueue(16, tenants={"a": 2.0, "b": 1.0})
    q.offer(mk_req(0, GROUPS[0], "a", 0.0), 0.0)
    q.offer(mk_req(1, GROUPS[1], "b", 0.0), 0.0)
    assert q.head_group() == q.head_group() == q.head_group()
    vft_before = dict(q._vft)
    q.head_group()
    assert q._vft == vft_before  # the virtual clock only moves on take()
