"""Unit tests for boxes, metrics, and the ℓ1/ℓ2 anchoring bound (§6)."""

import math

import numpy as np
import pytest

from repro.core.geometry import (
    L1,
    L2,
    LINF,
    Box,
    dist,
    dist_point_box,
    l1_radius_bound,
)


class TestBox:
    def test_contains_point_closed(self):
        b = Box(np.zeros(2), np.ones(2))
        assert b.contains_point(np.array([0.0, 1.0]))
        assert b.contains_point(np.array([0.5, 0.5]))
        assert not b.contains_point(np.array([1.0001, 0.5]))

    def test_contains_point_vectorized(self, rng):
        b = Box(np.array([0.2, 0.2]), np.array([0.8, 0.8]))
        pts = rng.random((100, 2))
        mask = b.contains_point(pts)
        want = ((pts >= b.lo) & (pts <= b.hi)).all(axis=1)
        assert np.array_equal(mask, want)

    def test_contains_box(self):
        outer = Box(np.zeros(3), np.ones(3))
        inner = Box(np.full(3, 0.25), np.full(3, 0.5))
        assert outer.contains_box(inner)
        assert not inner.contains_box(outer)
        assert outer.contains_box(outer)

    def test_intersects(self):
        a = Box(np.zeros(2), np.ones(2))
        b = Box(np.array([0.5, 0.5]), np.array([1.5, 1.5]))
        c = Box(np.array([2.0, 2.0]), np.array([3.0, 3.0]))
        assert a.intersects(b) and b.intersects(a)
        assert not a.intersects(c)
        # Shared boundary counts as intersecting (closed boxes).
        d = Box(np.array([1.0, 0.0]), np.array([2.0, 1.0]))
        assert a.intersects(d)

    def test_contains_sphere(self):
        b = Box(np.zeros(2), np.ones(2))
        assert b.contains_sphere(np.array([0.5, 0.5]), 0.4)
        assert not b.contains_sphere(np.array([0.5, 0.5]), 0.6)
        assert not b.contains_sphere(np.array([0.05, 0.5]), 0.1)

    def test_volume_and_clip(self):
        a = Box(np.zeros(2), np.array([2.0, 3.0]))
        assert a.volume() == pytest.approx(6.0)
        b = Box(np.array([1.0, 1.0]), np.array([5.0, 2.0]))
        c = a.clip(b)
        assert np.array_equal(c.lo, [1.0, 1.0])
        assert np.array_equal(c.hi, [2.0, 2.0])

    def test_mismatched_shapes_raise(self):
        with pytest.raises(ValueError):
            Box(np.zeros(2), np.ones(3))


class TestDist:
    def test_l2_matches_numpy(self, rng):
        a = rng.random((50, 4))
        b = rng.random(4)
        np.testing.assert_allclose(dist(a, b, L2), np.linalg.norm(a - b, axis=1))

    def test_l1_matches_numpy(self, rng):
        a = rng.random((50, 3))
        b = rng.random(3)
        np.testing.assert_allclose(dist(a, b, L1), np.abs(a - b).sum(axis=1))

    def test_linf_matches_numpy(self, rng):
        a = rng.random((50, 3))
        b = rng.random(3)
        np.testing.assert_allclose(dist(a, b, LINF), np.abs(a - b).max(axis=1))

    def test_zero_distance(self):
        p = np.array([1.0, 2.0, 3.0])
        for m in (L1, L2, LINF):
            assert dist(p, p, m) == 0.0

    def test_metric_callable(self):
        assert L2(np.zeros(2), np.array([3.0, 4.0])) == pytest.approx(5.0)

    def test_unknown_metric_raises(self):
        from repro.core.geometry import Metric

        bogus = Metric("hamming", 1, 1)
        with pytest.raises(ValueError):
            dist(np.zeros(2), np.ones(2), bogus)


class TestDistPointBox:
    def test_inside_is_zero(self):
        b = Box(np.zeros(3), np.ones(3))
        assert dist_point_box(np.full(3, 0.5), b, L2) == 0.0
        assert dist_point_box(np.full(3, 0.5), b, L1) == 0.0

    def test_outside_single_axis(self):
        b = Box(np.zeros(2), np.ones(2))
        p = np.array([2.0, 0.5])
        for m in (L1, L2, LINF):
            assert dist_point_box(p, b, m) == pytest.approx(1.0)

    def test_corner_l2(self):
        b = Box(np.zeros(2), np.ones(2))
        p = np.array([2.0, 2.0])
        assert dist_point_box(p, b, L2) == pytest.approx(math.sqrt(2.0))
        assert dist_point_box(p, b, L1) == pytest.approx(2.0)
        assert dist_point_box(p, b, LINF) == pytest.approx(1.0)

    def test_lower_bounds_point_distances(self, rng):
        """min-dist to box ≤ distance to any point inside the box."""
        b = Box(np.array([0.3, 0.3, 0.3]), np.array([0.6, 0.7, 0.8]))
        inside = b.lo + rng.random((200, 3)) * (b.hi - b.lo)
        q = rng.random(3) * 3 - 1
        for m in (L1, L2, LINF):
            lb = dist_point_box(q, b, m)
            assert np.all(dist(inside, q, m) >= lb - 1e-12)


class TestAnchoring:
    def test_norm_ordering(self, rng):
        """‖x‖∞ ≤ ‖x‖₂ ≤ ‖x‖₁ ≤ √D·‖x‖₂ ≤ D·‖x‖∞."""
        for dims in (1, 2, 3, 5, 8):
            x = rng.normal(size=(200, dims))
            z = np.zeros(dims)
            l1 = dist(x, z, L1)
            l2 = dist(x, z, L2)
            li = dist(x, z, LINF)
            assert np.all(li <= l2 + 1e-12)
            assert np.all(l2 <= l1 + 1e-12)
            assert np.all(l1 <= math.sqrt(dims) * l2 + 1e-12)

    def test_l1_radius_bound_covers_l2_knn(self, rng):
        """Fetching ℓ1 ≤ √D·x (x = ℓ1 k-th dist) covers the true ℓ2 kNN."""
        pts = rng.random((500, 3))
        q = rng.random(3)
        k = 10
        l1_d = np.sort(dist(pts, q, L1))
        x = l1_d[k - 1]
        bound = l1_radius_bound(x, 3)
        l2_d = dist(pts, q, L2)
        true_knn_idx = np.argsort(l2_d)[:k]
        cand_mask = dist(pts, q, L1) <= bound + 1e-12
        assert cand_mask[true_knn_idx].all()

    def test_pim_cost_profile(self):
        # ℓ2 carries the 32-cycle multiply penalty; ℓ1/ℓ∞ do not (§6).
        assert L2.pim_cycles_per_dim > 10 * L1.pim_cycles_per_dim
        assert LINF.pim_cycles_per_dim == L1.pim_cycles_per_dim


class TestScalarReturnType:
    """Single-point (1-D) inputs must yield a true Python float.

    The old code returned a 0-d NumPy array from the ``axis=-1`` reduction,
    which callers on the kNN heap path then compared against Python floats
    (works, but silently allocates) and which breaks ``float``-typed
    consumers like sort keys and JSON export.
    """

    @pytest.mark.parametrize("metric", [L1, L2, LINF])
    def test_dist_scalar_is_float(self, metric):
        d = dist(np.array([0.1, 0.2, 0.3]), np.array([0.4, 0.0, 0.3]), metric)
        assert type(d) is float
        # Batched inputs keep returning arrays.
        dd = dist(np.tile([0.1, 0.2, 0.3], (4, 1)), np.zeros(3), metric)
        assert isinstance(dd, np.ndarray) and dd.shape == (4,)

    @pytest.mark.parametrize("metric", [L1, L2, LINF])
    def test_dist_point_box_scalar_is_float(self, metric):
        box = Box(np.zeros(3), np.ones(3))
        d = dist_point_box(np.array([1.5, 0.5, -0.25]), box, metric)
        assert type(d) is float
        dd = dist_point_box(np.array([[1.5, 0.5, 0.0], [0.1, 0.1, 0.1]]),
                            box, metric)
        assert isinstance(dd, np.ndarray) and dd.shape == (2,)

    def test_scalar_value_matches_array_path(self, rng):
        p = rng.random(5)
        q = rng.random(5)
        box = Box(np.sort(rng.random(5)) * 0.3, 0.5 + np.sort(rng.random(5)) * 0.5)
        for metric in (L1, L2, LINF):
            assert dist(p, q, metric) == float(dist(p[None, :], q, metric)[0])
            assert dist_point_box(p, box, metric) == float(
                dist_point_box(p[None, :], box, metric)[0]
            )
