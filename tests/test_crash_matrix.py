"""The crash matrix: truncate the WAL everywhere; recovery never lies.

For a journal of B records, every byte prefix of the on-disk WAL is a
possible crash state.  The matrix replays recovery from *every record
boundary and several mid-record offsets* and demands one of exactly two
outcomes: the valid committed prefix is applied bit-exactly (the
recovered index encodes to the same bytes as an oracle that applied only
those batches), or — for mid-file integrity damage that truncation alone
cannot produce — recovery refuses loudly with ``WALCorruption``.  There
is no third outcome; a silently wrong index is the one unacceptable
state for a durability tier.

Also covered: checksum/magic tampering (torn-tail vs corruption rules),
snapshot blob/manifest tampering (``SnapshotCorruption``), and the
composition with the fault-injection layer — a module crash (whose
failover lands in the WAL as a control record) followed by a whole-
machine kill mid-serve, with a checkpoint racing both.
"""

import numpy as np
import pytest

from repro.core import PIMZdTree
from repro.eval import make_adapter
from repro.faults import FaultPlan
from repro.pim import PIMSystem
from repro.serve import (
    AdmissionQueue,
    FixedBatchPolicy,
    ServeLoop,
    make_requests,
)
from repro.store import (
    DurableStore,
    SnapshotCorruption,
    WALCorruption,
    committed_seqs,
    encode_tree,
    open_backend,
    recover,
    scan_wal,
)
from repro.workloads import uniform_points

N = 240
N_MODULES = 4
SEED = 11
_HEADER_SIZE = 12  # b"WALR" + u32 len + u32 crc


def _images_equal(a, b) -> bool:
    return (a.manifest == b.manifest and a.topology == b.topology
            and a.chunks == b.chunks)


def _ops(seed=SEED):
    """The update history journaled on top of the initial snapshot."""
    return [
        ("insert", uniform_points(10, 3, seed=seed + 1)),
        ("insert", uniform_points(7, 3, seed=seed + 2)),
        ("delete", uniform_points(N, 3, seed=seed)[:5]),
        ("failover", 1),
        ("insert", uniform_points(12, 3, seed=seed + 3)),
    ]


def _apply(tree, op) -> None:
    kind, arg = op
    if kind == "insert":
        tree.insert(arg)
    elif kind == "delete":
        tree.delete(arg)
    else:
        tree.fail_over(arg)


@pytest.fixture(scope="module")
def journaled_store(tmp_path_factory):
    """A store holding a snapshot + the `_ops` history, plus oracles.

    ``oracles[j]`` is the byte-exact encoding of an index that applied
    exactly the first ``j`` operations — what recovery from a prefix of
    the WAL must reproduce.
    """
    base = uniform_points(N, 3, seed=SEED)
    tree = PIMZdTree(base, system=PIMSystem(N_MODULES, seed=SEED))
    backend = open_backend("file", tmp_path_factory.mktemp("wal-matrix"))
    DurableStore(backend).attach(tree)
    oracle = PIMZdTree(base, system=PIMSystem(N_MODULES, seed=SEED))
    oracles = [encode_tree(oracle, wal_seq=0)]
    for op in _ops():
        _apply(tree, op)
        _apply(oracle, op)
        oracles.append(encode_tree(oracle, wal_seq=0))
    raw = backend.wal_read()
    yield backend, bytes(raw), oracles
    backend.close()


def _truncation_points(raw: bytes) -> list[int]:
    records, torn = scan_wal(raw)
    assert torn is None and len(records) >= 8
    points = {0, len(raw)}
    for r in records:
        points.update({
            r.end,                       # clean boundary after the record
            r.offset + 1,                # inside the magic
            r.offset + _HEADER_SIZE - 1,  # header cut short
            r.offset + _HEADER_SIZE,     # body entirely missing
            (r.offset + r.end) // 2,     # mid-body
            r.end - 1,                   # one byte short
        })
    return sorted(p for p in points if 0 <= p <= len(raw))


def _expected_applied(raw: bytes, t: int) -> int:
    """How many of `_ops` a crash at byte ``t`` must leave applied."""
    records, _torn = scan_wal(raw[:t])
    committed = committed_seqs(records)
    return sum(
        1 for r in records
        if (r.kind_name in ("insert", "delete") and r.seq in committed)
        or r.kind_name in ("failover", "migrate")
    )


def test_crash_matrix_every_truncation_point(journaled_store):
    """Every WAL prefix recovers to exactly its committed-prefix oracle."""
    backend, raw, oracles = journaled_store
    points = _truncation_points(raw)
    assert len(points) > 20
    seen_torn = seen_partial = 0
    for t in points:
        backend.wal_reset(raw[:t])
        res = recover(backend)
        j = _expected_applied(raw, t)
        assert _images_equal(encode_tree(res.tree, wal_seq=0), oracles[j]), (
            f"truncation at byte {t}: recovered state is not the "
            f"{j}-op oracle"
        )
        res.tree.check_invariants()
        if res.torn_tail is not None:
            seen_torn += 1
        if 0 < j < len(oracles) - 1:
            seen_partial += 1
        # The uncommitted tail is dropped, never half-applied.
        assert res.replayed == j
    # The matrix genuinely exercised torn tails and partial replays.
    assert seen_torn > 0 and seen_partial > 0
    backend.wal_reset(raw)  # restore for any later reader


def test_mid_file_bitflip_refuses_loudly(journaled_store):
    backend, raw, oracles = journaled_store
    records, _ = scan_wal(raw)
    victim = records[1]
    flipped = bytearray(raw)
    flipped[victim.offset + _HEADER_SIZE + 2] ^= 0x40
    backend.wal_reset(bytes(flipped))
    with pytest.raises(WALCorruption) as exc:
        recover(backend)
    assert exc.value.offset == victim.offset
    assert "checksum" in exc.value.reason
    backend.wal_reset(raw)


def test_bad_magic_mid_file_refuses_loudly(journaled_store):
    backend, raw, oracles = journaled_store
    records, _ = scan_wal(raw)
    victim = records[2]
    broken = bytearray(raw)
    broken[victim.offset] = ord("X")
    backend.wal_reset(bytes(broken))
    with pytest.raises(WALCorruption) as exc:
        recover(backend)
    assert "magic" in exc.value.reason
    backend.wal_reset(raw)


def test_tail_bitflip_is_a_torn_tail_not_corruption(journaled_store):
    """Damage confined to the final append replays the valid prefix."""
    backend, raw, oracles = journaled_store
    records, _ = scan_wal(raw)
    last = records[-1]
    flipped = bytearray(raw)
    flipped[last.offset + _HEADER_SIZE + 1] ^= 0x01
    backend.wal_reset(bytes(flipped))
    res = recover(backend)
    assert res.torn_tail is not None
    assert "checksum" in res.torn_tail.reason
    j = _expected_applied(raw, last.offset)
    assert _images_equal(encode_tree(res.tree, wal_seq=0), oracles[j])
    backend.wal_reset(raw)


@pytest.mark.parametrize("backend_kind", ["file", "sqlite"])
def test_torn_tail_on_both_backends(tmp_path, backend_kind):
    path = (tmp_path / "s.db" if backend_kind == "sqlite"
            else tmp_path / "s")
    tree = PIMZdTree(uniform_points(80, 3, seed=SEED),
                     system=PIMSystem(N_MODULES, seed=SEED))
    backend = open_backend(backend_kind, path)
    DurableStore(backend).attach(tree)
    tree.insert(uniform_points(6, 3, seed=SEED + 1))
    oracle_img = encode_tree(tree, wal_seq=0)
    raw = backend.wal_read()

    # Tear 3 bytes off the final append (the COMMIT marker): the batch
    # becomes uncommitted and recovery rolls back to the snapshot.
    backend.wal_truncate(len(raw) - 3)
    res = recover(backend)
    assert res.torn_tail is not None and res.replayed == 0
    assert res.skipped_uncommitted == 1
    assert not _images_equal(encode_tree(res.tree, wal_seq=0), oracle_img)

    # With the full journal back, the same store recovers the full state.
    backend.wal_reset(raw)
    res2 = recover(backend)
    assert res2.torn_tail is None and res2.replayed == 1
    assert _images_equal(encode_tree(res2.tree, wal_seq=0), oracle_img)
    backend.close()


def test_snapshot_blob_tamper_refuses(tmp_path):
    tree = PIMZdTree(uniform_points(80, 3, seed=SEED),
                     system=PIMSystem(N_MODULES, seed=SEED))
    backend = open_backend("file", tmp_path / "s")
    DurableStore(backend).attach(tree)
    key = sorted(backend.list_blobs())[0]
    backend.put_blob(key, b"not the original payload")
    with pytest.raises(SnapshotCorruption):
        recover(backend)
    backend.close()


def test_snapshot_manifest_tamper_refuses(tmp_path):
    tree = PIMZdTree(uniform_points(80, 3, seed=SEED),
                     system=PIMSystem(N_MODULES, seed=SEED))
    backend = open_backend("file", tmp_path / "s")
    DurableStore(backend).attach(tree)
    import json

    man = json.loads(backend.get_manifest())
    man["tree"]["size"] = man["tree"]["size"] + 1
    backend.put_manifest(json.dumps(man).encode())
    with pytest.raises(SnapshotCorruption):
        recover(backend)
    backend.close()


def test_module_crash_then_machine_kill_composes(tmp_path):
    """PR 4 fault plans compose: failover record + kill + checkpoint race.

    A module crash mid-serve triggers failover (journaled as a control
    record); a later whole-machine kill restarts from disk, which must
    restore the dead-module set, replay the failover, and keep serving —
    while budget-gated checkpoints interleave with both.
    """
    data = uniform_points(2_000, 3, seed=SEED)
    requests = make_requests(data, np.zeros(480), mix={"insert": 1.0},
                             seed=SEED + 2)
    plan = FaultPlan(seed=SEED, crash_at={2: 6}, machine_kill_at=24)
    adapter = make_adapter("pim", data, n_modules=8, seed=SEED,
                           fault_plan=plan)
    store = DurableStore(open_backend("file", tmp_path / "s"),
                         budget_fraction=1.0)
    store.attach(adapter.tree)
    loop = ServeLoop(adapter, AdmissionQueue(480), FixedBatchPolicy(24),
                     store=store)
    result = loop.run(requests)

    assert 2 in plan.crashed
    assert len(loop.restarts) == 1
    assert result.stats.n_done == 480
    assert adapter.system.dead_modules == frozenset({2})
    assert all(m.module != 2 for m in adapter.tree.metas)
    adapter.tree.check_invariants()

    # The on-disk store survives one more cold restart with the same
    # dead-module view and a clean integrity scan.
    res = recover(store.backend, cost_model=adapter.tree.cost_model)
    assert res.system.dead_modules == frozenset({2})
    assert _images_equal(encode_tree(res.tree, wal_seq=0),
                         encode_tree(adapter.tree, wal_seq=0))
    store.backend.close()
