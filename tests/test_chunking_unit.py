"""Unit tests for meta-node chunking mechanics (§3.2, §6)."""

import numpy as np
import pytest

from repro.core import PIMZdTree, skew_resistant
from repro.core.chunking import MetaNode, chunk_region, extend_meta, iter_meta_subtree
from repro.core.config import PIMZdTreeConfig
from repro.core.node import Layer, Node, node_words
from repro.pim import PIMSystem


def build_manual_tree(counts):
    """A hand-built right-spine tree with the given leaf subtree sizes."""
    nid = [0]

    def make(prefix, depth):
        nid[0] += 1
        return Node(nid[0], prefix, depth)

    root = make(0, 0)
    node = root
    total = sum(counts)
    node.count = node.sc = total
    for i, c in enumerate(counts[:-1]):
        leaf = make(node.prefix << 1, node.depth + 1)
        leaf.keys = np.zeros(c, dtype=np.uint64)
        leaf.pts = np.zeros((c, 2))
        leaf.count = leaf.sc = c
        rest = make((node.prefix << 1) | 1, node.depth + 1)
        rest.count = rest.sc = sum(counts[i + 1:])
        node.left = leaf
        node.right = rest
        leaf.parent = node
        rest.parent = node
        node = rest
    node.keys = np.zeros(counts[-1], dtype=np.uint64)
    node.pts = np.zeros((counts[-1], 2))
    node.count = node.sc = counts[-1]
    return root


def assign_layers(root, theta_l0, theta_l1):
    stack = [(root, Layer.L0)]
    while stack:
        n, clamp = stack.pop()
        if n.sc >= theta_l0:
            raw = Layer.L0
        elif n.sc >= theta_l1:
            raw = Layer.L1
        else:
            raw = Layer.L2
        n.layer = Layer(max(raw, clamp))
        if not n.is_leaf:
            stack.append((n.left, n.layer))
            stack.append((n.right, n.layer))


CFG = PIMZdTreeConfig("t", theta_l0=10**9, theta_l1=4, chunk_factor=4)


class TestChunkRegion:
    def test_members_follow_size_rule(self):
        root = build_manual_tree([1, 1, 1, 64, 1, 1])
        assign_layers(root, 10**9, 4)
        metas = chunk_region(root, CFG, 2, lambda key: 0)
        # Root chunk: members are descendants with sc > root.sc/B.
        top = metas[0]
        threshold = root.sc / CFG.chunk_factor
        stack = [root]
        while stack:
            n = stack.pop()
            if n.meta is top and n is not root:
                assert n.sc > threshold and n.layer == top.layer
            if not n.is_leaf:
                stack.extend((n.left, n.right))

    def test_all_nodes_assigned(self):
        root = build_manual_tree([3, 5, 2, 9, 1, 7])
        assign_layers(root, 10**9, 4)
        metas = chunk_region(root, CFG, 2, lambda key: hash(key) % 4)
        stack = [root]
        while stack:
            n = stack.pop()
            assert n.meta is not None
            assert n.meta in metas
            if not n.is_leaf:
                stack.extend((n.left, n.right))

    def test_counts_and_payload(self):
        root = build_manual_tree([3, 5, 2])
        assign_layers(root, 10**9, 4)
        metas = chunk_region(root, CFG, 2, lambda key: 0)
        total_nodes = sum(m.n_nodes for m in metas)
        total_payload = sum(m.payload_words for m in metas)
        count = [0]
        words = [0]

        def rec(n):
            count[0] += 1
            words[0] += node_words(n, 2)
            if not n.is_leaf:
                rec(n.left)
                rec(n.right)

        rec(root)
        assert total_nodes == count[0]
        assert total_payload == words[0]

    def test_l0_region_rejected(self):
        root = build_manual_tree([3, 3])
        assign_layers(root, 2, 1)  # root becomes L0
        with pytest.raises(ValueError):
            chunk_region(root, CFG, 2, lambda key: 0)

    def test_layer_boundary_starts_new_chunk(self):
        root = build_manual_tree([1, 1, 30, 1])
        assign_layers(root, 10**9, 4)  # leaves of size 1 are L2
        metas = chunk_region(root, CFG, 2, lambda key: 0)
        for m in metas:
            stack = [m.root]
            # all members share the meta's layer
            seen = []
            while stack:
                n = stack.pop()
                if n.meta is m:
                    seen.append(n.layer)
                if not n.is_leaf:
                    stack.extend((n.left, n.right))
            assert all(l == m.layer for l in seen)

    def test_b_equal_one_singletons(self):
        cfg = PIMZdTreeConfig("t", theta_l0=10**9, theta_l1=1, chunk_factor=1)
        root = build_manual_tree([2, 2, 2])
        assign_layers(root, 10**9, 1)
        metas = chunk_region(root, cfg, 2, lambda key: 0)
        assert all(m.n_nodes == 1 for m in metas)

    def test_iter_meta_subtree_preorder(self):
        root = build_manual_tree([1, 1, 1, 1, 1])
        assign_layers(root, 10**9, 4)
        metas = chunk_region(root, CFG, 2, lambda key: 0)
        listed = list(iter_meta_subtree(metas[0]))
        assert set(listed) == set(metas)
        assert listed[0] is metas[0]


class TestSparseDenseModes:
    def test_mode_threshold(self):
        cfg = PIMZdTreeConfig("t", theta_l0=10**9, theta_l1=1, chunk_factor=16)
        m = MetaNode.__new__(MetaNode)
        m.n_nodes = 3
        m.payload_words = 30
        assert not m.dense(cfg)  # < B/4 = 4 nodes
        m.n_nodes = 4
        assert m.dense(cfg)

    def test_size_includes_index(self):
        cfg = PIMZdTreeConfig("t", theta_l0=10**9, theta_l1=1, chunk_factor=16)
        m = MetaNode.__new__(MetaNode)
        m.payload_words = 100
        m.n_nodes = 2  # sparse: two B/4 arrays
        assert m.size_words(cfg) == 100 + 2 * 4
        m.n_nodes = 10  # dense: B pointer slots
        assert m.size_words(cfg) == 100 + 16

    def test_dense_cheaper_per_node(self):
        cfg = PIMZdTreeConfig("t", theta_l0=10**9, theta_l1=1, chunk_factor=16)
        sparse = MetaNode.__new__(MetaNode)
        sparse.n_nodes = 2
        dense = MetaNode.__new__(MetaNode)
        dense.n_nodes = 8
        assert dense.cycles_per_node(cfg) < sparse.cycles_per_node(cfg)


class TestExtendMeta:
    def test_new_subtree_joins_when_rule_holds(self, rng):
        pts = rng.random((3000, 3))
        tree = PIMZdTree(
            pts, config=skew_resistant(8), system=PIMSystem(8, seed=2)
        )
        # Find a large L1 meta and extend it with a fake new node that
        # trivially satisfies the rule.
        meta = max(
            (m for m in tree.metas if m.layer == Layer.L1),
            key=lambda m: m.root.sc,
        )
        n_before = meta.n_nodes
        fresh = Node(tree.new_nid(), 0, 40)
        fresh.keys = np.zeros(1, dtype=np.uint64)
        fresh.pts = np.zeros((1, 3))
        fresh.count = fresh.sc = meta.root.sc  # same size → joins
        fresh.layer = Layer.L1
        created = extend_meta(meta, fresh, tree.config, tree.dims, tree.system.place)
        assert created == []
        assert fresh.meta is meta
        assert meta.n_nodes == n_before + 1

    def test_new_subtree_chunks_when_rule_fails(self, rng):
        pts = rng.random((3000, 3))
        tree = PIMZdTree(
            pts, config=skew_resistant(8), system=PIMSystem(8, seed=2)
        )
        meta = max(
            (m for m in tree.metas if m.layer == Layer.L1),
            key=lambda m: m.root.sc,
        )
        fresh = Node(tree.new_nid(), 0, 40)
        fresh.keys = np.zeros(1, dtype=np.uint64)
        fresh.pts = np.zeros((1, 3))
        fresh.count = fresh.sc = 1
        fresh.layer = Layer.L2  # wrong layer → new chunk
        created = extend_meta(meta, fresh, tree.config, tree.dims, tree.system.place)
        assert len(created) == 1
        assert fresh.meta is created[0]
        assert created[0].parent is meta
        assert created[0] in meta.children


class TestReplicaCounting:
    def test_chain_replicas(self, rng):
        """An L1 meta chain of length d gives each meta d-1 copies."""
        pts = rng.random((6000, 3))
        tree = PIMZdTree(
            pts, config=skew_resistant(8), system=PIMSystem(8, seed=4)
        )
        for m in tree.metas:
            if m.layer != Layer.L1:
                continue
            anc = len(m.l1_ancestors())
            assert m.replica_count() == anc + m.l1_desc_metas
            # Ancestors are L1 and form a chain up to the L0 border.
            up = m.parent
            walked = 0
            while up is not None and up.layer == Layer.L1:
                walked += 1
                up = up.parent
            assert walked == anc
