"""Property-based tests (hypothesis) on core invariants.

Each property drives one of the paper's correctness claims on arbitrary
inputs: Morton codecs are bijective and order-compatible, the indexes are
exact multiset containers under batched updates, kNN and box queries equal
brute force, and the lazy counters respect Lemma 3.1 after any update
sequence.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.baselines import PkdTree, ZdTree
from repro.core import Box, PIMZdTree, skew_resistant, throughput_optimized
from repro.core.morton import max_bits_per_dim, morton_decode, morton_encode
from repro.pim import PIMSystem

from conftest import assert_same_points, brute_box_count, brute_knn

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def points_strategy(min_n=4, max_n=120, dims=2):
    return hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(
            st.integers(min_n, max_n), st.just(dims)
        ),
        elements=st.floats(0.0, 1.0, allow_nan=False, width=32),
    )


# ----------------------------------------------------------------------
# Morton codec properties
# ----------------------------------------------------------------------
@SETTINGS
@given(
    dims=st.integers(1, 6),
    data=st.data(),
)
def test_morton_roundtrip_property(dims, data):
    bits = max_bits_per_dim(dims)
    grid = data.draw(
        hnp.arrays(
            dtype=np.uint64,
            shape=st.tuples(st.integers(1, 64), st.just(dims)),
            elements=st.integers(0, 2**bits - 1),
        )
    )
    keys = morton_encode(grid, bits)
    assert np.array_equal(morton_decode(keys, dims, bits), grid)


@SETTINGS
@given(
    a=st.integers(0, 2**21 - 1),
    b=st.integers(0, 2**21 - 1),
    c=st.integers(0, 2**21 - 1),
)
def test_morton_prefix_property(a, b, c):
    """Keys agreeing on high coordinate bits share high key bits."""
    g = np.array([[a, b, c]], dtype=np.uint64)
    key = int(morton_encode(g, 21)[0])
    # Flipping the lowest coordinate bit changes only the low 3 key bits.
    g2 = g.copy()
    g2[0, 0] ^= 1
    key2 = int(morton_encode(g2, 21)[0])
    assert key >> 3 == key2 >> 3


# ----------------------------------------------------------------------
# container properties (all three indexes)
# ----------------------------------------------------------------------
@SETTINGS
@given(pts=points_strategy(), extra=points_strategy(max_n=60))
def test_zdtree_multiset_property(pts, extra):
    t = ZdTree(pts)
    t.insert(extra)
    t.check_invariants()
    assert_same_points(t.all_points(), np.vstack([pts, extra]))


@SETTINGS
@given(pts=points_strategy(), extra=points_strategy(max_n=60))
def test_pkdtree_multiset_property(pts, extra):
    t = PkdTree(pts)
    t.insert(extra)
    t.check_invariants()
    assert_same_points(t.all_points(), np.vstack([pts, extra]))


@SETTINGS
@given(pts=points_strategy(min_n=8), extra=points_strategy(max_n=60))
def test_pimzdtree_multiset_property(pts, extra):
    tree = PIMZdTree(
        pts,
        config=skew_resistant(4),
        system=PIMSystem(4, seed=0),
        bounds=(np.zeros(2), np.ones(2)),
    )
    tree.insert(extra)
    tree.check_invariants()
    assert_same_points(tree.all_points(), np.vstack([pts, extra]))


@SETTINGS
@given(pts=points_strategy(min_n=20, max_n=100), data=st.data())
def test_pimzdtree_delete_property(pts, data):
    n_del = data.draw(st.integers(0, len(pts) - 1))
    tree = PIMZdTree(
        pts,
        config=skew_resistant(4),
        system=PIMSystem(4, seed=0),
        bounds=(np.zeros(2), np.ones(2)),
    )
    try:
        removed = tree.delete(pts[:n_del])
    except ValueError:
        # Duplicate-heavy inputs: removing all copies would empty the tree,
        # which the index refuses by contract.
        return
    assert removed >= n_del  # duplicates may remove extra copies
    tree.check_invariants()
    assert tree.size == len(pts) - removed


# ----------------------------------------------------------------------
# query properties
# ----------------------------------------------------------------------
@SETTINGS
@given(pts=points_strategy(min_n=10, max_n=150), data=st.data())
def test_pimzdtree_knn_matches_brute(pts, data):
    k = data.draw(st.integers(1, 8))
    q = np.array(
        [data.draw(st.floats(0, 1, width=32)), data.draw(st.floats(0, 1, width=32))]
    )
    tree = PIMZdTree(
        pts,
        config=throughput_optimized(len(pts), 4),
        system=PIMSystem(4, seed=0),
        bounds=(np.zeros(2), np.ones(2)),
    )
    d, nn = tree.knn(q.reshape(1, -1), k)[0]
    np.testing.assert_allclose(d, brute_knn(pts, q, k), atol=1e-9)


@SETTINGS
@given(pts=points_strategy(min_n=10, max_n=150), data=st.data())
def test_pimzdtree_box_count_matches_brute(pts, data):
    lo = np.array([data.draw(st.floats(0, 1, width=32)) for _ in range(2)])
    hi = np.array([data.draw(st.floats(0, 1, width=32)) for _ in range(2)])
    box = Box(np.minimum(lo, hi), np.maximum(lo, hi))
    tree = PIMZdTree(
        pts,
        config=skew_resistant(4),
        system=PIMSystem(4, seed=0),
        bounds=(np.zeros(2), np.ones(2)),
    )
    assert tree.box_count([box])[0] == brute_box_count(pts, box)


@SETTINGS
@given(pts=points_strategy(min_n=10, max_n=120), data=st.data())
def test_zdtree_knn_matches_brute(pts, data):
    k = data.draw(st.integers(1, 6))
    q = np.array(
        [data.draw(st.floats(0, 1, width=32)), data.draw(st.floats(0, 1, width=32))]
    )
    t = ZdTree(pts)
    d, _ = t.knn(q, k)
    np.testing.assert_allclose(d, brute_knn(pts, q, k), atol=1e-9)


@SETTINGS
@given(pts=points_strategy(min_n=10, max_n=120), data=st.data())
def test_zdtree_interval_box_count_matches_brute(pts, data):
    lo = np.array([data.draw(st.floats(0, 1, width=32)) for _ in range(2)])
    hi = np.array([data.draw(st.floats(0, 1, width=32)) for _ in range(2)])
    box = Box(np.minimum(lo, hi), np.maximum(lo, hi))
    t = ZdTree(pts)
    assert t.box_count(box) == brute_box_count(pts, box)
    assert t.box_count(box, box_prune=True) == brute_box_count(pts, box)


# ----------------------------------------------------------------------
# Lemma 3.1 under arbitrary update sequences
# ----------------------------------------------------------------------
@SETTINGS
@given(
    pts=points_strategy(min_n=40, max_n=120),
    batches=st.lists(
        st.tuples(st.sampled_from(["ins", "del"]), st.integers(1, 25)),
        min_size=1,
        max_size=5,
    ),
    seed=st.integers(0, 1000),
)
def test_lemma31_under_random_updates(pts, batches, seed):
    rng = np.random.default_rng(seed)
    tree = PIMZdTree(
        pts,
        config=skew_resistant(4),
        system=PIMSystem(4, seed=0),
        bounds=(np.zeros(2), np.ones(2)),
    )
    for kind, m in batches:
        if kind == "ins":
            tree.insert(rng.random((m, 2)))
        else:
            live = tree.all_points()
            if len(live) > m:
                idx = rng.integers(0, len(live), size=m)
                try:
                    tree.delete(live[idx])
                except ValueError:
                    pass  # would empty the tree
        stack = [tree.root]
        while stack:
            n = stack.pop()
            if n.count > 0:
                assert n.count / 2 <= n.sc <= 2 * n.count
            if not n.is_leaf:
                stack.extend((n.left, n.right))
    tree.check_invariants()
