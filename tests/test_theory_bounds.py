"""Empirical checks of the §5 theory on the simulator's exact counters.

Each test anchors one stated bound (Lemma 2.1, Lemma 3.1, Lemma 5.2,
Theorems 5.1 and 5.3–5.5) against measured work/communication, using
generous constant factors — the point is the *growth shape*, not the
constants.  docs/THEORY.md maps each statement to its test.
"""

import math

import numpy as np
import pytest

from repro.core import PIMZdTree, skew_resistant, throughput_optimized
from repro.pim import PIMSystem


def make_tree(points, variant="skew", n_modules=16, seed=1):
    system = PIMSystem(n_modules, seed=seed)
    cfg = (
        throughput_optimized(len(points), n_modules)
        if variant == "throughput"
        else skew_resistant(n_modules)
    )
    return PIMZdTree(points, config=cfg, system=system)


class TestLemma21ZdTreeProperties:
    """Lemma 2.1: height O(log n); build O(n) work; kNN O(k log k) work."""

    def test_height_logarithmic(self, rng):
        for n in (1024, 4096, 16384):
            tree = make_tree(rng.random((n, 3)))
            assert tree.height() <= 4 * math.log2(n)

    def test_build_work_linearithmic(self, rng):
        """Build work grows ~linearly (one log-factor allowed for the sort)."""
        works = []
        for n in (4000, 16000):
            tree = make_tree(rng.random((n, 3)))
            works.append(tree.system.stats.phases["build"].cpu_ops)
        ratio = works[1] / works[0]
        assert 3.0 < ratio < 8.0  # 4x the points → ~4-5x the work

    def test_node_count_linear(self, rng):
        """Compressed tree: 2·#leaves − 1 nodes, #leaves ≤ n."""
        n = 8000
        tree = make_tree(rng.random((n, 3)))
        assert tree.num_nodes() < 2 * n

    def test_knn_work_scales_with_k(self, rng):
        pts = rng.random((16000, 3))
        tree = make_tree(pts, "throughput")
        q = pts[rng.integers(0, len(pts), 64)]

        def work(k):
            snap = tree.system.snapshot()
            tree.knn(q, k)
            d = tree.system.stats.diff(snap).total
            return d.pim_cycles + d.cpu_ops

        w1, w16 = work(1), work(16)
        # O(k) growth with slack: 16x k must cost < 64x, > 2x.
        assert 2 < w16 / w1 < 64


class TestTheorem51Space:
    """Space O(n + n/θ_L0 · P + n/θ_L1 · log_B(θ_L0/θ_L1))."""

    def test_space_formula_bound(self, rng):
        for n_modules in (8, 32):
            n = 12000
            tree = make_tree(rng.random((n, 3)), "skew", n_modules=n_modules)
            cfg = tree.config
            b = max(2, cfg.chunk_factor)
            bound_words = 4 * (
                n * (tree.dims + 1)
                + (n / cfg.theta_l0) * n_modules * 8
                + (n / cfg.theta_l1)
                * max(1.0, math.log(cfg.theta_l0 / cfg.theta_l1, b))
                * 8
            )
            assert tree.space_words()["total"] < bound_words


class TestTheorem53Search:
    """SEARCH: O(log_B θ_L0) rounds, O(S log_B θ_L1) comm, O(S log n) PIM."""

    def test_round_bound(self, rng):
        tree = make_tree(rng.random((16000, 3)), "skew")
        cfg = tree.config
        snap = tree.system.snapshot()
        tree.search(rng.random((512, 3)))
        rounds = tree.system.stats.diff(snap).total.rounds
        bound = 3 * math.log(cfg.theta_l0, max(2, cfg.chunk_factor)) + 4
        assert rounds <= bound

    def test_pim_work_log_n(self, rng):
        works = []
        sizes = (2000, 32000)
        for n in sizes:
            tree = make_tree(rng.random((n, 3)), "throughput")
            snap = tree.system.snapshot()
            tree.search(rng.random((256, 3)))
            works.append(tree.system.stats.diff(snap).total.pim_cycles / 256)
        # 16x the points: work grows like log(n) — well under 3x.
        assert works[1] / works[0] < 3.0

    def test_comm_independent_of_n(self, rng):
        comms = []
        for n in (2000, 32000):
            tree = make_tree(rng.random((n, 3)), "throughput")
            snap = tree.system.snapshot()
            tree.search(rng.random((256, 3)))
            comms.append(tree.system.stats.diff(snap).total.comm_words / 256)
        assert comms[1] <= comms[0] * 1.5 + 2


class TestTheorem54Insert:
    """INSERT: communication amortises to O(1)-ish per op in the
    throughput-optimized configuration."""

    def test_insert_comm_bounded(self, rng):
        tree = make_tree(rng.random((16000, 3)), "throughput")
        total = 0.0
        ops = 0
        for i in range(6):
            batch = rng.random((500, 3))
            snap = tree.system.snapshot()
            tree.insert(batch)
            total += tree.system.stats.diff(snap).total.comm_words
            ops += 500
        assert total / ops < 60  # small constant: points + traces + links

    def test_insert_comm_stable_across_n(self, rng):
        per_op = []
        for n in (4000, 32000):
            tree = make_tree(rng.random((n, 3)), "throughput")
            snap = tree.system.snapshot()
            tree.insert(rng.random((500, 3)))
            per_op.append(tree.system.stats.diff(snap).total.comm_words / 500)
        assert per_op[1] < 2.5 * per_op[0]


class TestTheorem55Knn:
    """kNN: expected O(k + log_B θ_L1) communication per query."""

    def test_comm_linear_in_k(self, rng):
        pts = rng.random((16000, 3))
        tree = make_tree(pts, "throughput")
        q = pts[rng.integers(0, len(pts), 64)]

        def comm(k):
            snap = tree.system.snapshot()
            tree.knn(q, k)
            return tree.system.stats.diff(snap).total.comm_words / 64

        c2, c32 = comm(2), comm(32)
        # 16x k: communication grows at most ~16x plus a constant.
        assert c32 < 16 * c2 + 64
        assert c32 > c2  # and it does grow with the output size


class TestLemma52Balance:
    """Balls into bins: uniform batches load modules within O(1) of mean."""

    def test_coarse_balls_throughput_config(self, rng):
        """The throughput-optimized layout throws ~1.5P region-sized balls
        into P bins — Lemma 5.2's weight precondition w_i ≤ W/(P log P)
        does not hold at that granularity, so only a constant-factor
        imbalance is expected (and observed)."""
        tree = make_tree(rng.random((32000, 3)), "throughput", n_modules=32, seed=7)
        base = tree.system.module_loads().copy()
        tree.search(rng.random((8192, 3)))
        loads = tree.system.module_loads() - base
        mean = loads.mean()
        assert mean > 0
        assert loads.max() < 8 * mean
        assert (loads > 0).sum() >= 0.5 * tree.system.n_modules

    def test_fine_balls_skew_config(self, rng):
        """The skew-resistant layout's finer chunks satisfy the lemma's
        weight condition: loads concentrate tightly around the mean."""
        tree = make_tree(rng.random((32000, 3)), "skew", n_modules=32, seed=7)
        base = tree.system.module_loads().copy()
        tree.search(rng.random((8192, 3)))
        loads = tree.system.module_loads() - base
        mean = loads.mean()
        assert mean > 0
        assert loads.max() < 4 * mean
        assert (loads > 0).sum() >= 0.9 * tree.system.n_modules
