"""End-to-end integration on the paper's (synthetic) real-world datasets.

These tests run the full §7.2 workflow — warmup build, mixed update and
query batches — on COSMOS-like and OSM-like data with both Table 2
configurations, checking exactness against brute force and the structural
invariants throughout.  They are the closest thing to the paper's
real-dataset runs at test scale.
"""

import numpy as np
import pytest

from repro.core import Box, PIMZdTree, skew_resistant, throughput_optimized
from repro.pim import PIMSystem
from repro.workloads import cosmos_like_points, osm_like_points

from conftest import (
    assert_same_points,
    brute_box_count,
    brute_knn,
)


DATASETS = {
    "cosmos": cosmos_like_points,
    "osm": osm_like_points,
}


@pytest.mark.parametrize("dataset", ["cosmos", "osm"])
@pytest.mark.parametrize("variant", ["throughput", "skew"])
class TestRealWorldLike:
    def _tree(self, data, variant, n_modules=8):
        system = PIMSystem(n_modules, seed=2)
        cfg = (
            throughput_optimized(len(data), n_modules)
            if variant == "throughput"
            else skew_resistant(n_modules)
        )
        return PIMZdTree(data, config=cfg, system=system)

    def test_warmup_then_query_mix(self, dataset, variant):
        gen = DATASETS[dataset]
        data = gen(6000, 3, seed=5)
        warm, test = data[:4800], data[4800:]  # the paper's 80/20 split
        tree = self._tree(warm, variant)
        tree.check_invariants()

        # Batch insert of the held-out 20%.
        tree.insert(test)
        tree.check_invariants()
        assert tree.size == 6000
        assert_same_points(tree.all_points(), data)

        # kNN at data-driven query points is exact even under skew.
        rng = np.random.default_rng(9)
        queries = data[rng.integers(0, len(data), 6)]
        for q, (d, _) in zip(queries, tree.knn(queries, 10)):
            np.testing.assert_allclose(d, brute_knn(data, q, 10), atol=1e-12)

        # Data-centred boxes.
        for q in queries[:3]:
            box = Box(np.maximum(q - 0.05, 0), np.minimum(q + 0.05, 1))
            assert tree.box_count([box])[0] == brute_box_count(data, box)

    def test_churn_preserves_exactness(self, dataset, variant):
        gen = DATASETS[dataset]
        data = gen(5000, 3, seed=11)
        tree = self._tree(data[:3500], variant)
        live = data[:3500]
        tree.insert(data[3500:])
        live = data
        removed = tree.delete(data[:1200])
        live = data[1200:] if removed == 1200 else None
        tree.check_invariants()
        if live is not None:
            assert_same_points(tree.all_points(), live)
            q = data[2000]
            d, _ = tree.knn(q.reshape(1, -1), 7)[0]
            np.testing.assert_allclose(d, brute_knn(live, q, 7), atol=1e-12)

    def test_load_stays_bounded_under_dataset_skew(self, dataset, variant):
        """Hash placement + push-pull keep modules from melting even on
        heavily skewed data distributions."""
        gen = DATASETS[dataset]
        data = gen(8000, 3, seed=3)
        tree = self._tree(data, variant, n_modules=16)
        base = tree.system.module_loads().copy()
        rng = np.random.default_rng(4)
        q = data[rng.integers(0, len(data), 1024)]
        tree.search(q)
        loads = tree.system.module_loads() - base
        if loads.max() > 0:
            # Generous bound: the straggler must not dominate by orders of
            # magnitude (range partitioning without hashing would).
            assert loads.max() <= 20 * max(loads.mean(), 1e-9)
