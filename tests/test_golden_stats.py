"""Golden-file snapshots of full PIMStats for three canned workloads.

Every counter the simulator produces (aggregate and per-phase) is pinned
to a checked-in JSON file, and both execution modes must reproduce it
exactly — counters are sums of integer-valued per-element charges, so
float64 equality is well-defined and platform-stable.  Any change to
charging, round structure, phase attribution, routing, or the group
kernels shows up here as a precise per-phase diff.

Regenerating after an *intentional* cost-model change:

    REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_stats.py

(then review and commit the updated ``tests/golden/*.json``).  The files
are regenerated from ``exec_mode="reference"`` — the scalar oracle — and
the test asserts that both modes match them.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib

import numpy as np
import pytest

from repro.core.geometry import Box
from repro.eval.harness import PIMZdTreeAdapter

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"
REGEN = bool(os.environ.get("REGEN_GOLDEN"))


# ----------------------------------------------------------------------
# canned workloads (deterministic; rng.random/rng.integers only, whose
# streams are stable across numpy versions)
# ----------------------------------------------------------------------
def _boxes(centers: np.ndarray, side: float) -> list[Box]:
    return [Box(c - side / 2, c + side / 2) for c in centers]


def workload_uniform3d_queries(exec_mode: str) -> PIMZdTreeAdapter:
    """Read-mostly: kNN + range over a static uniform 3-D cloud."""
    rng = np.random.default_rng(1001)
    pts = rng.random((1500, 3))
    ad = PIMZdTreeAdapter(pts, n_modules=8, seed=3, exec_mode=exec_mode)
    q = pts[rng.integers(0, len(pts), size=64)] + rng.random((64, 3)) * 1e-4
    ad.tree.knn(np.clip(q, 0.0, 1.0), 8)
    boxes = _boxes(pts[rng.integers(0, len(pts), size=24)], 0.2)
    ad.tree.box_count(boxes)
    ad.tree.box_fetch(boxes)
    return ad


def workload_updates2d(exec_mode: str) -> PIMZdTreeAdapter:
    """Update-heavy: interleaved insert/delete/search on a 2-D cloud."""
    rng = np.random.default_rng(2002)
    pts = rng.random((1200, 2))
    ad = PIMZdTreeAdapter(pts, n_modules=8, variant="throughput", seed=4,
                          exec_mode=exec_mode)
    ad.tree.insert(rng.random((300, 2)))
    ad.tree.search(pts[:100])
    ad.tree.delete(pts[rng.integers(0, len(pts), size=200)])
    ad.tree.knn(pts[rng.integers(0, len(pts), size=32)], 4)
    return ad


def workload_skewed5d(exec_mode: str) -> PIMZdTreeAdapter:
    """Adversarial: all queries and updates in one tiny 5-D corner."""
    rng = np.random.default_rng(3003)
    pts = rng.random((900, 5))
    ad = PIMZdTreeAdapter(pts, n_modules=8, variant="skew", seed=5,
                          exec_mode=exec_mode)
    anchor = pts[0]
    q = np.clip(anchor + rng.random((48, 5)) * 1e-3, 0.0, 1.0)
    ad.tree.knn(q, 6)
    ad.tree.box_fetch(_boxes(np.tile(anchor, (12, 1)), 4e-3))
    ad.tree.insert(np.clip(anchor + rng.random((150, 5)) * 1e-3, 0.0, 1.0))
    ad.tree.box_count(_boxes(np.tile(anchor, (12, 1)), 4e-3))
    return ad


WORKLOADS = {
    "uniform3d-queries": workload_uniform3d_queries,
    "updates2d": workload_updates2d,
    "skewed5d": workload_skewed5d,
}


# ----------------------------------------------------------------------
def stats_to_jsonable(stats) -> dict:
    def counters(c) -> dict:
        return {k: float(v) if not isinstance(v, int) else v
                for k, v in dataclasses.asdict(c).items()}

    return {
        "total": counters(stats.total),
        "phases": {lab: counters(c) for lab, c in sorted(stats.phases.items())},
        "mux_switches": stats.mux_switches,
    }


def run_workload(name: str, exec_mode: str) -> dict:
    ad = WORKLOADS[name](exec_mode)
    return stats_to_jsonable(ad.system.stats)


@pytest.mark.parametrize("name", sorted(WORKLOADS))
@pytest.mark.parametrize("exec_mode", ["reference", "vectorized"])
def test_golden_stats(name: str, exec_mode: str):
    path = GOLDEN_DIR / f"{name}.json"
    got = run_workload(name, exec_mode)
    if REGEN:
        if exec_mode == "reference":  # golden files come from the oracle
            GOLDEN_DIR.mkdir(exist_ok=True)
            path.write_text(json.dumps(got, indent=2, sort_keys=True) + "\n")
        return
    assert path.exists(), (
        f"missing golden file {path}; regenerate with "
        "REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_stats.py"
    )
    want = json.loads(path.read_text())
    if got != want:
        lines = [f"{name} [{exec_mode}] diverges from {path.name}:"]
        for lab in sorted(set(got["phases"]) | set(want["phases"])):
            a, b = want["phases"].get(lab), got["phases"].get(lab)
            if a != b:
                lines.append(f"  phase {lab}:\n    want={a}\n    got ={b}")
        if got["total"] != want["total"]:
            lines.append(f"  total:\n    want={want['total']}\n"
                         f"    got ={got['total']}")
        raise AssertionError("\n".join(lines))
