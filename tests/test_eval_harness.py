"""Tests for the evaluation harness, metrics and report rendering."""

import numpy as np
import pytest

from repro.eval import (
    FIG5_OPS,
    bar_chart,
    OpMeasurement,
    calibrate_box_side,
    fig5_table,
    format_table,
    geomean,
    make_adapter,
    make_boxes,
    percentile,
    run_op,
    run_suite,
    speedup_summary,
)
from repro.eval.harness import machine_scale, scaled_llc_bytes
from repro.workloads import uniform_points


@pytest.fixture(scope="module")
def data():
    return uniform_points(8000, 3, seed=11)


class TestScaling:
    def test_machine_scale(self):
        assert machine_scale(2048) == 1.0
        assert machine_scale(64) == pytest.approx(1 / 32)

    def test_llc_scaling_floor(self):
        assert scaled_llc_bytes(22 * 2**20, 100) == 32 * 2**10

    def test_llc_scaling_monotone(self):
        a = scaled_llc_bytes(50 * 2**20, 10_000_000)
        b = scaled_llc_bytes(50 * 2**20, 100_000_000)
        assert b > a


class TestBoxCalibration:
    @pytest.mark.parametrize("target", [1, 10, 100])
    def test_side_hits_target_coverage(self, data, target):
        side = calibrate_box_side(data, target, seed=3)
        boxes = make_boxes(data, side, 64, seed=4)
        counts = [
            int(((data >= b.lo) & (data <= b.hi)).all(axis=1).sum()) for b in boxes
        ]
        avg = float(np.mean(counts))
        assert target / 3 <= avg <= target * 3

    def test_larger_target_larger_side(self, data):
        s1 = calibrate_box_side(data, 1, seed=1)
        s100 = calibrate_box_side(data, 100, seed=1)
        assert s100 > s1

    def test_make_boxes_shape(self, data):
        boxes = make_boxes(data, 0.1, 7, seed=0)
        assert len(boxes) == 7
        for b in boxes:
            np.testing.assert_allclose(b.hi - b.lo, 0.1)

    def test_degenerate_points_raise(self):
        # All-duplicate points have zero extent on every axis; before the
        # guard this silently calibrated a zero-sided box.
        dup = np.ones((200, 3))
        with pytest.raises(ValueError, match="degenerate"):
            calibrate_box_side(dup, 10)

    def test_nonconvergence_warns(self, data):
        # avg coverage can never drop below 1 (each box is centred on a
        # data point), so a target far under 1 is unreachable within tol
        # and must warn instead of silently returning the midpoint.
        with pytest.warns(RuntimeWarning, match="no convergence"):
            calibrate_box_side(data, 0.2, seed=3)


class TestAdapters:
    @pytest.mark.parametrize("kind", ["pim", "pim-skew", "zd", "pkd"])
    def test_adapter_measures_positive_time(self, data, kind):
        a = make_adapter(kind, data, n_modules=8)
        q = data[:64]
        m = a.measure(lambda: a.knn(q, 5))
        assert m.elements == 64 * 5
        assert m.sim_time_s > 0
        assert m.traffic_bytes > 0

    def test_unknown_kind(self, data):
        with pytest.raises(ValueError):
            make_adapter("btree", data)

    def test_one_shared_kwargs_dict_drives_all_kinds(self, data):
        # One sweep dict — including PIM-only knobs — must construct every
        # kind without TypeError (baselines drop what they don't take).
        from repro.obs import TraceCollector
        from repro.pim.cost_model import upmem_scaled

        shared = dict(
            n_modules=8,
            seed=3,
            exec_mode="vectorized",
            llc_bytes=1 << 20,
            cost_model=upmem_scaled(2048),
            tracer=TraceCollector(capacity=1024),
        )
        names = set()
        for kind in ("pim", "pim-skew", "zd", "pkd"):
            a = make_adapter(kind, data, **dict(shared))
            names.add(a.name)
            m = a.measure(lambda: a.knn(data[:8], 3))
            assert m.sim_time_s > 0
        assert names == {"pim-zd-tree", "zd-tree", "pkd-tree"}

    def test_shared_kwargs_reach_the_pim_adapter(self, data):
        from repro.obs import TraceCollector

        tracer = TraceCollector(capacity=1024)
        a = make_adapter("pim", data, n_modules=8, tracer=tracer,
                         llc_bytes=1 << 20)
        assert a.system.tracer is tracer
        b = make_adapter("zd", data, n_modules=8, tracer=tracer,
                         llc_bytes=1 << 20)
        assert not hasattr(b, "system")

    def test_pim_adapter_breakdown_components(self, data):
        a = make_adapter("pim", data, n_modules=8)
        m = a.measure(lambda: a.knn(data[:32], 3))
        assert m.sim_time_s == pytest.approx(m.cpu_s + m.pim_s + m.comm_s)
        assert m.pim_s > 0 and m.comm_s > 0

    def test_insert_and_delete_roundtrip(self, data):
        a = make_adapter("pim", data, n_modules=8)
        extra = uniform_points(200, 3, seed=99)
        assert a.insert(extra) == 200
        assert a.delete(extra) == 200

    def test_variants(self, data):
        t = make_adapter("pim", data, n_modules=8)
        s = make_adapter("pim-skew", data, n_modules=8)
        assert t.variant == "throughput-optimized"
        assert s.variant == "skew-resistant"


class TestRunOp:
    def test_insert_op(self, data):
        a = make_adapter("pim", data, n_modules=8)
        m = run_op(
            a, "insert", data=data, batch=128, seed=1,
            fresh_points=lambda n: uniform_points(n, 3, seed=5),
        )
        assert m.op == "insert"
        assert m.elements == 128
        assert m.throughput > 0

    def test_knn_op(self, data):
        a = make_adapter("pkd", data)
        m = run_op(a, "10-nn", data=data, batch=32, seed=1)
        assert m.elements == 320

    def test_box_ops(self, data):
        a = make_adapter("pkd", data)
        side = calibrate_box_side(data, 10, seed=1)
        m = run_op(a, "bc-10", data=data, batch=32, seed=1, box_sides={10: side})
        assert m.elements == 32
        m = run_op(a, "bf-10", data=data, batch=32, seed=1, box_sides={10: side})
        assert m.elements > 32  # ~10 points per box

    def test_multi_batch_aggregates(self, data):
        a = make_adapter("pkd", data)
        m = run_op(a, "1-nn", data=data, batch=16, seed=1, n_batches=3)
        assert m.ops == 48
        assert len(m.batch_times_s) == 3

    def test_unknown_op(self, data):
        a = make_adapter("pkd", data)
        with pytest.raises(ValueError):
            run_op(a, "scan", data=data, batch=4)


class TestSuiteAndReport:
    def test_run_suite_subset(self, data):
        a = make_adapter("pim", data, n_modules=8)
        ms = run_suite(
            a, data=data, ops=("insert", "bc-10", "1-nn"), batch=32, seed=2,
            fresh_points=lambda n: uniform_points(n, 3, seed=3),
        )
        assert [m.op for m in ms] == ["insert", "bc-10", "1-nn"]

    def test_fig5_ops_list(self):
        assert len(FIG5_OPS) == 10  # the ten Fig. 5 operation types

    def test_fig5_table_renders(self):
        m = OpMeasurement("x", "insert", 10, 10, 1e-3, 100.0)
        table = fig5_table({"x": [m]})
        assert "insert" in table and "x MOp/s" in table

    def test_speedup_summary(self):
        fast = OpMeasurement("a", "insert", 10, 10, 1e-4, 50.0)
        slow = OpMeasurement("b", "insert", 10, 10, 1e-3, 500.0)
        out = speedup_summary({"a": [fast], "b": [slow]}, subject="a")
        assert "x  10.00" in out or "10.0" in out

    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], [10, 0.001]])
        lines = out.splitlines()
        assert len(lines) == 4


class TestMetrics:
    def test_throughput_and_traffic(self):
        m = OpMeasurement("x", "op", 100, 200, 2.0, 800.0)
        assert m.throughput == 100.0
        assert m.traffic_per_element == 4.0

    def test_zero_time_guard(self):
        m = OpMeasurement("x", "op", 1, 1, 0.0, 1.0)
        assert m.throughput == float("inf")

    def test_breakdown_fractions(self):
        m = OpMeasurement("x", "op", 1, 1, 4.0, 1.0, cpu_s=1.0, pim_s=1.0, comm_s=2.0)
        frac = m.breakdown_fractions()
        assert frac["comm"] == pytest.approx(0.5)
        assert sum(frac.values()) == pytest.approx(1.0)

    def test_percentile_nearest_rank(self):
        vals = list(range(1, 101))
        assert percentile(vals, 99) == 99
        assert percentile(vals, 50) == 50
        assert percentile([], 99) != percentile([], 99)  # NaN

    def test_geomean(self):
        assert geomean([1, 100]) == pytest.approx(10.0)
        assert np.isnan(geomean([]))

    def test_bar_chart_linear(self):
        out = bar_chart(["a", "bb"], [2.0, 1.0], width=10)
        lines = out.splitlines()
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5
        assert "2" in lines[0]

    def test_bar_chart_log(self):
        out = bar_chart(["x", "y"], [1000.0, 1.0], width=40, log=True)
        lines = out.splitlines()
        # Log scale keeps the small bar visible.
        assert lines[1].count("█") > 5

    def test_bar_chart_empty(self):
        assert bar_chart([], []) == ""
