"""Property-based tests (hypothesis) for the durable tier.

The snapshot codec's contract is *canonical bytes*: encoding a tree,
decoding it into a fresh system, and re-encoding must reproduce the
identical manifest, topology walk and chunk payloads — for any
dimensionality, under heavy duplicate keys, and on Varden extreme skew.
On top of that, a crash-recovered index must be indistinguishable from
the never-crashed oracle (same bytes, same query answers), with every
restart charge booked under the ``"recovery"`` phase and the attached
obs trace reconciling bit-exactly.
"""

import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import PIMZdTree
from repro.obs import TraceCollector
from repro.pim import PIMSystem
from repro.store import (
    DurableStore,
    SnapshotStore,
    decode_tree,
    encode_tree,
    open_backend,
    recover,
)
from repro.workloads import uniform_points, varden_points

SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
N_MODULES = 4
COUNTERS = ("cpu_ops", "pim_cycles", "comm_words", "dram_words",
            "comm_max_words", "rounds")


def _points(kind: str, n: int, dims: int, seed: int) -> np.ndarray:
    if kind == "varden":
        return varden_points(n, dims, seed=seed)
    if kind == "duplicates":
        # A tiny value grid: most rows collide on their Morton key.
        rng = np.random.default_rng(seed)
        return rng.integers(0, 3, size=(n, dims)).astype(np.float64) / 4.0
    return uniform_points(n, dims, seed=seed)


def _assert_images_equal(a, b) -> None:
    assert a.manifest == b.manifest
    assert a.topology == b.topology
    assert set(a.chunks) == set(b.chunks)
    for cid in a.chunks:
        assert a.chunks[cid] == b.chunks[cid], f"chunk {cid} diverged"


def _assert_same_answers(t1, t2, queries: np.ndarray, k: int) -> None:
    for (d1, p1), (d2, p2) in zip(t1.knn(queries, k), t2.knn(queries, k)):
        assert np.array_equal(d1, d2) and np.array_equal(p1, p2)
    boxes = np.stack([queries - 0.1, queries + 0.1], axis=1)
    assert np.array_equal(t1.box_count(boxes), t2.box_count(boxes))


# ----------------------------------------------------------------------
# encode → decode → encode is the identity on bytes
# ----------------------------------------------------------------------
@SETTINGS
@given(
    dims=st.integers(1, 4),
    kind=st.sampled_from(["uniform", "varden", "duplicates"]),
    n=st.integers(8, 160),
    seed=st.integers(0, 2**16),
)
def test_snapshot_encode_decode_identity(dims, kind, n, seed):
    tree = PIMZdTree(_points(kind, n, dims, seed),
                     system=PIMSystem(N_MODULES, seed=3))
    img = encode_tree(tree, wal_seq=7)

    tree2 = decode_tree(img, PIMSystem(N_MODULES, seed=3),
                        cost_model=tree.cost_model)
    img2 = encode_tree(tree2, wal_seq=7)
    _assert_images_equal(img, img2)

    # The decoded host structure is a working index, not just equal bytes.
    tree2._upload()
    tree2.refresh_residency()
    tree2.check_invariants()
    queries = _points(kind, min(n, 16), dims, seed + 1)
    _assert_same_answers(tree, tree2, queries, k=min(3, n))


# ----------------------------------------------------------------------
# flush → load round-trips through both backends verbatim
# ----------------------------------------------------------------------
@SETTINGS
@given(
    backend_kind=st.sampled_from(["file", "sqlite"]),
    kind=st.sampled_from(["uniform", "varden", "duplicates"]),
    n=st.integers(8, 120),
    seed=st.integers(0, 2**16),
)
def test_snapshot_store_roundtrip(backend_kind, kind, n, seed):
    tree = PIMZdTree(_points(kind, n, 3, seed),
                     system=PIMSystem(N_MODULES, seed=3))
    with tempfile.TemporaryDirectory() as tmp:
        path = (Path(tmp) / "s.db" if backend_kind == "sqlite"
                else Path(tmp) / "s")
        backend = open_backend(backend_kind, path)
        try:
            store = SnapshotStore(backend)
            img = encode_tree(tree, wal_seq=2)
            store.flush(tree, wal_seq=2)
            _assert_images_equal(img, store.load_image())

            # A second flush after a mutation accounts for every blob
            # (clean ones re-referenced, dirty ones rewritten) and still
            # loads back the new tree verbatim.
            tree.insert(uniform_points(5, 3, seed=seed + 1))
            report = store.flush(tree, wal_seq=3)
            assert (report["blobs_reused"] + report["blobs_written"]
                    == report["blobs_total"])
            assert report["blobs_written"] >= 1  # topology always moves
            _assert_images_equal(encode_tree(tree, wal_seq=3),
                                 store.load_image())
        finally:
            backend.close()


# ----------------------------------------------------------------------
# crash-recovery == never-crashed oracle, charges booked + reconciled
# ----------------------------------------------------------------------
@SETTINGS
@given(data=st.data())
def test_recovery_matches_never_crashed_oracle(data):
    dims = data.draw(st.integers(1, 4), label="dims")
    kind = data.draw(st.sampled_from(["uniform", "varden", "duplicates"]),
                     label="kind")
    n = data.draw(st.integers(16, 120), label="n")
    seed = data.draw(st.integers(0, 2**16), label="seed")
    backend_kind = data.draw(st.sampled_from(["file", "sqlite"]),
                             label="backend")

    base = _points(kind, n, dims, seed)
    tree = PIMZdTree(base, system=PIMSystem(N_MODULES, seed=3))
    with tempfile.TemporaryDirectory() as tmp:
        path = (Path(tmp) / "s.db" if backend_kind == "sqlite"
                else Path(tmp) / "s")
        store = DurableStore(open_backend(backend_kind, path))
        store.attach(tree)

        # An arbitrary committed update history on top of the snapshot.
        # Deletes only on duplicate-free kinds: on the collision grid a
        # single row can match (and remove) every copy, and emptying the
        # tree is rejected mid-batch.
        n_batches = data.draw(st.integers(1, 4), label="batches")
        for b in range(n_batches):
            if (kind == "duplicates"
                    or data.draw(st.booleans(), label=f"is_insert_{b}")):
                m = data.draw(st.integers(1, 20), label=f"ins_n_{b}")
                tree.insert(_points(kind, m, dims, seed + 10 + b))
            else:
                m = data.draw(st.integers(1, max(1, n // 4)),
                              label=f"del_n_{b}")
                tree.delete(base[:m])

        oracle_img = encode_tree(tree, wal_seq=0)
        tracer = TraceCollector()
        res = recover(store.backend, tracer=tracer,
                      cost_model=tree.cost_model)
        store.backend.close()

    assert res.replayed == n_batches and res.skipped_uncommitted == 0
    _assert_images_equal(oracle_img, encode_tree(res.tree, wal_seq=0))

    # Bit-exact books, checked BEFORE serving queries (which would add
    # their own phases): the fresh system's one and only phase is
    # "recovery", it owns the entire total, and the trace agrees.
    stats = res.system.stats
    assert sorted(stats.phases) == ["recovery"]
    for name in COUNTERS:
        assert getattr(stats.total, name) == \
            getattr(stats.phases["recovery"], name), name
    problems = tracer.timeline.reconcile(stats)
    assert not problems, problems

    queries = _points(kind, 8, dims, seed + 2)
    k = min(3, res.tree.root.count)
    _assert_same_answers(tree, res.tree, queries, k=k)
