"""Tests for the fault-injection & reliability subsystem (``repro.faults``).

Covers: :class:`FaultPlan` argument validation and RNG determinism,
byte-identity of no-fault runs with and without an attached (all-zero)
plan, fault-aware placement (attempt-0 hash unchanged, dead modules
excluded), crash/drop/slowdown injection at the charging sites, the
kill-1-of-P failover scenario with post-recovery query results checked
byte-identically against a fault-free oracle, recovery-cost phase
attribution, exact trace reconciliation under faults, serving-layer
terminal-state accounting and run-to-run determinism, and the satellite
fixes (NaN→null JSON, ``head_group`` on an empty queue, queue expiry).
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.eval import make_adapter
from repro.faults import FaultError, FaultEvent, FaultPlan, MessageLoss, ModuleFailure
from repro.obs import EventKind, TraceCollector, timeline_json
from repro.pim import PhaseCounters, PIMSystem
from repro.serve import AdmissionQueue, LatencyStats, Request, make_requests, serve
from repro.workloads import poisson_arrivals, uniform_points

TERMINAL = {"done", "rejected", "shed", "failed", "timed_out", "degraded"}


# ----------------------------------------------------------------------
# FaultPlan: validation and determinism
# ----------------------------------------------------------------------
class TestFaultPlan:
    @pytest.mark.parametrize("kw", [
        {"crash_rate": 1.0},
        {"crash_rate": -0.1},
        {"drop_rate": 1.5},
        {"storm_rate": -0.01},
        {"storm_factor": 0.5},
        {"storm_rounds": 0},
        {"slow_factors": {0: 0.25}},
    ])
    def test_bad_arguments_rejected(self, kw):
        with pytest.raises(ValueError):
            FaultPlan(**kw)

    def _drive(self, plan, rounds=200):
        """Consume the plan's hooks in a fixed order; return event dicts."""
        live = list(range(8))
        for r in range(rounds):
            for mid in live:
                plan.should_drop("send", mid, 100.0, r)
            for ev in plan.on_round_close(r, live):
                if ev.kind == "crash":
                    live = [m for m in live if m != ev.mid]
        return [ev.to_dict() for ev in plan.events]

    def test_identical_plans_inject_identical_events(self):
        kw = dict(seed=13, drop_rate=0.03, crash_rate=0.002, max_crashes=2,
                  storm_rate=0.05, storm_factor=4.0, storm_rounds=3)
        a = self._drive(FaultPlan(**kw))
        b = self._drive(FaultPlan(**kw))
        assert a == b
        assert len(a) > 0  # the schedule actually fired

    def test_different_seeds_diverge(self):
        kw = dict(drop_rate=0.05)
        a = self._drive(FaultPlan(seed=1, **kw))
        b = self._drive(FaultPlan(seed=2, **kw))
        assert a != b

    def test_paused_plan_is_inert_and_preserves_the_stream(self):
        # While paused no events fire AND no RNG is consumed, so a
        # pause/resume cycle leaves the future schedule unchanged.
        a = FaultPlan(seed=5, drop_rate=0.2)
        b = FaultPlan(seed=5, drop_rate=0.2)
        b.paused = True
        for _ in range(50):
            assert b.should_drop("send", 0, 10.0, 0) is None
        assert b.on_round_close(0, [0, 1]) == []
        assert b.events == []
        b.paused = False
        rolls_a = [a.should_drop("send", 0, 10.0, 0) is None for _ in range(100)]
        rolls_b = [b.should_drop("send", 0, 10.0, 0) is None for _ in range(100)]
        assert rolls_a == rolls_b

    def test_max_crashes_bounds_random_crashes(self):
        plan = FaultPlan(seed=3, crash_rate=0.5, max_crashes=2)
        self._drive(plan, rounds=50)
        assert len(plan.crashed) == 2

    def test_storm_inflates_then_decays(self):
        plan = FaultPlan(seed=0, storm_rate=0.999, storm_factor=6.0,
                         storm_rounds=2)
        live = [0, 1, 2, 3]
        events = plan.on_round_close(0, live)
        storms = [ev for ev in events if ev.kind == "storm"]
        assert len(storms) == 1
        mid = storms[0].mid
        assert plan.slow_factor(mid) == 6.0
        # Static slow factors compose multiplicatively with storms.
        plan.slow_factors[mid] = 2.0
        assert plan.slow_factor(mid) == 12.0
        del plan.slow_factors[mid]
        # Decay after storm_rounds closes (further storms may start; the
        # original one must be gone once its rounds are spent).
        plan.storm_rate = 0.0
        plan.on_round_close(1, live)
        plan.on_round_close(2, live)
        assert plan.slow_factor(mid) == 1.0


# ----------------------------------------------------------------------
# PIMSystem: injection sites, placement, decommissioning
# ----------------------------------------------------------------------
class TestSystemFaults:
    def test_attach_detach(self):
        sys = PIMSystem(4)
        assert sys.fault_plan is None
        plan = FaultPlan(seed=0)
        sys.attach_faults(plan)
        assert sys.fault_plan is plan
        assert sys.detach_faults() is plan
        assert sys.fault_plan is None

    def test_placement_attempt0_unchanged_and_dead_excluded(self):
        keys = [("meta", i) for i in range(256)]
        ref = PIMSystem(8, seed=0)
        before = {k: ref.place(k) for k in keys}

        sys = PIMSystem(8, seed=0)
        sys.kill_module(3)
        assert sys.dead_modules == frozenset({3})
        assert sys.n_live == 7
        for k in keys:
            after = sys.place(k)
            assert after != 3
            if before[k] != 3:
                # Keys not mapped to the dead module keep the attempt-0
                # hash — the fault-free layout is undisturbed.
                assert after == before[k]

    def test_cannot_kill_last_live_module(self):
        sys = PIMSystem(3)
        sys.kill_module(0)
        sys.kill_module(1)
        with pytest.raises(RuntimeError):
            sys.decommission(2)
        assert sys.n_live == 1

    def test_charge_to_dead_module_raises_module_failure(self):
        sys = PIMSystem(4)
        sys.kill_module(2)
        with pytest.raises(ModuleFailure) as ei:
            with sys.round():
                sys.send(2, 100.0)
        assert ei.value.mid == 2
        # Live modules still work.
        with sys.round():
            sys.send(1, 100.0)

    def test_drop_raises_message_loss_before_charging(self):
        sys = PIMSystem(4)
        sys.attach_faults(FaultPlan(seed=1, drop_rate=0.999999))
        with pytest.raises(MessageLoss) as ei:
            with sys.round():
                sys.send(0, 50.0)
        assert ei.value.words == 50.0
        assert ei.value.direction == "send"
        ev = sys.fault_plan.events[-1]
        assert (ev.kind, ev.mid, ev.value) == ("drop", 0, 50.0)
        # The loss was raised *before* the words were charged.
        assert sys.stats.total.comm_words == 0.0

    def test_slowdown_inflates_pim_cycles(self):
        base = PIMSystem(2)
        with base.round():
            base.charge_pim(0, 1000.0)
        slow = PIMSystem(2)
        slow.attach_faults(FaultPlan(seed=0, slow_factors={0: 3.0}))
        with slow.round():
            slow.charge_pim(0, 1000.0)
        assert slow.stats.total.pim_cycles == 3.0 * base.stats.total.pim_cycles

    def test_scheduled_crash_lands_at_round_close(self):
        sys = PIMSystem(4)
        sys.attach_faults(FaultPlan(crash_at={1: 2}))
        for _ in range(3):
            with sys.round():
                sys.charge_pim(0, 10.0)
        assert sys.dead_modules == frozenset({1})
        kinds = [ev.kind for ev in sys.fault_plan.events]
        assert kinds == ["crash"]

    def test_no_fault_run_is_byte_identical_with_inert_plan(self):
        def workload(sys):
            for r in range(10):
                with sys.round():
                    for mid in range(sys.n_modules):
                        sys.charge_pim(mid, 100.0 + mid)
                        sys.send(mid, 64.0)
                        sys.recv(mid, 32.0)
                sys.charge_cpu(50.0)
                sys.charge_comm_flat(128.0)
            return sys.stats.to_dict()

        bare = workload(PIMSystem(8, seed=0))
        inert = PIMSystem(8, seed=0)
        inert.attach_faults(FaultPlan(seed=99))  # all rates zero
        assert workload(inert) == bare
        assert inert.fault_plan.events == []


# ----------------------------------------------------------------------
# Failover: kill 1 of P, recover, match the fault-free oracle
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def fo_data():
    return uniform_points(2000, 3, seed=42)


class TestFailover:
    DEAD = 3

    def _queries(self, data, n=96, seed=7):
        rng = np.random.default_rng(seed)
        q = data[rng.integers(0, len(data), size=n)]
        return q + rng.normal(scale=1e-4, size=q.shape)

    def test_kill_one_of_p_recovers_byte_identical(self, fo_data):
        q = self._queries(fo_data)
        oracle = make_adapter("pim", fo_data, n_modules=8, seed=3)
        want = oracle.tree.knn(q, 10)

        adapter = make_adapter("pim", fo_data, n_modules=8, seed=3,
                               fault_plan=FaultPlan(seed=0))
        adapter.tree.knn(q, 10)          # healthy warm-up
        adapter.system.kill_module(self.DEAD)
        # Detection: the next dispatch touching the dead module faults.
        with pytest.raises(ModuleFailure) as ei:
            adapter.measure(lambda: adapter.knn(q, 10))
        assert ei.value.mid == self.DEAD
        assert ei.value.measurement is not None  # wasted work is billed

        moved = adapter.fail_over(self.DEAD)
        assert moved > 0
        assert all(m.module != self.DEAD for m in adapter.tree.metas)
        assert adapter.system.n_live == 7

        got = adapter.tree.knn(q, 10)
        assert len(got) == len(want)
        for (dg, ig), (dw, iw) in zip(got, want):
            np.testing.assert_array_equal(dg, dw)
            np.testing.assert_array_equal(ig, iw)

    def test_recovery_cost_charged_under_recovery_phase(self, fo_data):
        adapter = make_adapter("pim", fo_data, n_modules=8, seed=3,
                               fault_plan=FaultPlan(seed=0))
        assert "recovery" not in adapter.system.stats.phases
        adapter.system.kill_module(self.DEAD)
        m = adapter.measure(lambda: adapter.fail_over(self.DEAD))
        rec = adapter.system.stats.phases["recovery"]
        assert rec.cpu_ops > 0 and rec.comm_words > 0
        assert m.sim_time_s > 0
        assert "recovery" in m.phases  # visible in the Fig. 6 breakdown
        # Phase attribution invariant survives the failover.
        summed = PhaseCounters()
        for c in adapter.system.stats.phases.values():
            summed.add(c)
        assert summed.to_dict() == adapter.system.stats.total.to_dict()

    def test_fail_over_is_idempotent(self, fo_data):
        adapter = make_adapter("pim", fo_data, n_modules=8, seed=3)
        adapter.system.kill_module(self.DEAD)
        assert adapter.fail_over(self.DEAD) > 0
        assert adapter.fail_over(self.DEAD) == 0  # nothing left to move

    def test_trace_reconciles_exactly_under_kill_and_failover(self, fo_data):
        tracer = TraceCollector()
        adapter = make_adapter("pim", fo_data, n_modules=8, seed=3,
                               tracer=tracer, fault_plan=FaultPlan(seed=0))
        q = self._queries(fo_data, n=48)
        adapter.tree.knn(q, 8)
        adapter.system.kill_module(self.DEAD)
        adapter.fail_over(self.DEAD)
        adapter.tree.knn(q, 8)
        # Fault events are recorded but never booked: the timeline still
        # reconciles bit-exactly with the PIMStats totals.
        assert tracer.timeline.reconcile(adapter.system.stats) == []
        kills = [ev for ev in tracer.fault_events if ev.kind == "kill"]
        assert [ev.mid for ev in kills] == [self.DEAD]
        fault_trace = [e for e in tracer.events() if e.kind == EventKind.FAULT]
        assert len(fault_trace) == len(tracer.fault_events)
        doc = timeline_json(tracer, stats=adapter.system.stats)
        assert doc["faults"] == [ev.to_dict() for ev in tracer.fault_events]


# ----------------------------------------------------------------------
# Serving layer under faults
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def serve_data():
    return uniform_points(1500, 3, seed=11)


def _faulty_serve(data, *, drop_rate=0.0, crash_at=None, timeout_s=None,
                  overflow="reject", n_req=120, rate=30_000.0,
                  failover=True, mix=None):
    plan = FaultPlan(seed=17, drop_rate=drop_rate, crash_at=crash_at)
    adapter = make_adapter("pim", data, n_modules=8, seed=3, fault_plan=plan)
    arrivals = poisson_arrivals(rate, n_req, seed=21)
    reqs = make_requests(data, arrivals, k=10, deadline_s=5e-3, seed=9,
                         mix=mix)
    res = serve(adapter, reqs, queue_depth=64, overflow=overflow,
                backoff_s=1e-5, timeout_s=timeout_s, failover=failover)
    return res, adapter, plan


class TestServeUnderFaults:
    def test_every_request_in_exactly_one_terminal_state(self, serve_data):
        res, _, plan = _faulty_serve(serve_data, drop_rate=0.05,
                                     crash_at={2: 20}, timeout_s=4e-3)
        assert len(plan.events) > 0
        s = res.stats
        for r in res.requests:
            assert r.status in TERMINAL
        assert (s.n_done + s.n_rejected + s.n_shed + s.n_failed
                + s.n_timed_out + s.n_degraded) == s.n_offered
        assert 0.0 <= s.availability <= 1.0
        # Exhausted batches surface in the batch log too.
        statuses = {b.status for b in res.batches}
        assert statuses <= {"done", "failed", "degraded"}
        assert any(b.retries > 0 for b in res.batches)

    def test_fault_run_is_byte_identical_across_repeats(self, serve_data):
        kw = dict(drop_rate=0.04, crash_at={5: 15}, timeout_s=5e-3)
        res1, a1, p1 = _faulty_serve(serve_data, **kw)
        res2, a2, p2 = _faulty_serve(serve_data, **kw)
        assert res1.stats.to_json() == res2.stats.to_json()
        assert a1.system.stats.to_dict() == a2.system.stats.to_dict()
        assert ([e.to_dict() for e in p1.events]
                == [e.to_dict() for e in p2.events])

    def test_no_fault_serve_unchanged_by_inert_plan(self, serve_data):
        res_plain, a_plain, _ = _faulty_serve(serve_data)
        res_inert, a_inert, plan = _faulty_serve(serve_data, drop_rate=0.0)
        assert plan.events == []
        assert res_plain.stats.to_json() == res_inert.stats.to_json()
        assert (a_plain.system.stats.to_dict()
                == a_inert.system.stats.to_dict())
        s = res_plain.stats
        assert s.n_failed == s.n_timed_out == s.n_degraded == 0
        assert s.availability == 1.0

    def test_failed_inserts_are_rolled_back(self, serve_data):
        # Insert-only workload under heavy drops: whatever ends DONE is
        # in the index, whatever ends FAILED was compensated away — the
        # logical point set must equal base + successfully-inserted.
        res, adapter, _ = _faulty_serve(serve_data, drop_rate=0.10,
                                        mix={"insert": 1.0}, n_req=60)
        done_pts = [r.payload for r in res.requests if r.status == "done"]
        expect = len(serve_data) + len(done_pts)
        assert adapter.tree.size == expect
        failed = [r for r in res.requests if r.status == "failed"]
        if failed:  # inserts never end DEGRADED
            assert all(r.kind == "insert" for r in failed)
        assert not any(r.status == "degraded" for r in res.requests)

    def test_failover_restores_query_oracle_mid_serve(self, serve_data):
        res, adapter, plan = _faulty_serve(serve_data, crash_at={4: 10},
                                           mix={"knn": 1.0})
        assert 4 in plan.crashed
        assert adapter.system.dead_modules == frozenset({4})
        # After the in-loop failover the surviving index answers queries
        # byte-identically to a never-faulted oracle.
        oracle = make_adapter("pim", serve_data, n_modules=8, seed=3)
        rng = np.random.default_rng(3)
        q = serve_data[rng.integers(0, len(serve_data), size=64)]
        for (dg, ig), (dw, iw) in zip(adapter.tree.knn(q, 10),
                                      oracle.tree.knn(q, 10)):
            np.testing.assert_array_equal(dg, dw)
            np.testing.assert_array_equal(ig, iw)


# ----------------------------------------------------------------------
# Satellites: JSON NaN handling, queue guards, expiry
# ----------------------------------------------------------------------
class TestSatelliteFixes:
    def test_empty_stats_serialise_to_strict_json(self):
        s = LatencyStats.compute([], [])
        assert math.isnan(s.latency["p50"])
        text = s.to_json()
        assert "NaN" not in text and "Infinity" not in text
        doc = json.loads(text, parse_constant=lambda c: pytest.fail(
            f"non-strict JSON constant {c!r} leaked into to_json()"))
        assert doc["latency_s"]["p50"] is None

    def test_head_group_on_empty_queue_raises(self):
        q = AdmissionQueue(8)
        with pytest.raises(LookupError):
            q.head_group()

    def test_expire_stamps_timed_out(self):
        q = AdmissionQueue(8)
        reqs = [Request(rid=i, kind="knn", payload=None, arrival_s=0.1 * i,
                        k=10) for i in range(4)]
        for r in reqs:
            q.offer(r, r.arrival_s)
        expired = q.expire(now=0.35, timeout_s=0.2)
        assert [r.rid for r in expired] == [0, 1]
        for r in expired:
            assert r.status == "timed_out"
            assert r.complete_s == pytest.approx(r.arrival_s + 0.2)
        assert len(q) == 2
        with pytest.raises(ValueError):
            q.expire(0.0, timeout_s=0.0)

    def test_fault_event_round_trips_to_dict(self):
        ev = FaultEvent("drop", 3, 17, 128.0, "send")
        assert ev.to_dict() == {"kind": "drop", "mid": 3, "round": 17,
                                "value": 128.0, "note": "send"}

    def test_fault_error_types(self):
        assert issubclass(ModuleFailure, FaultError)
        assert issubclass(MessageLoss, FaultError)
        assert FaultError("x").measurement is None
