"""Extended coverage: higher dimensions, alternate metrics, L0 modes,
demotions, and configuration corner cases."""

import numpy as np
import pytest

from repro.core import (
    LINF,
    Box,
    PIMZdTree,
    PIMZdTreeConfig,
    skew_resistant,
    throughput_optimized,
)
from repro.core.node import Layer
from repro.pim import PIMSystem

from conftest import assert_same_points, brute_box_count, brute_knn


class TestHigherDimensions:
    @pytest.mark.parametrize("dims", [4, 6])
    def test_full_pipeline(self, rng, dims):
        pts = rng.random((1500, dims))
        tree = PIMZdTree(
            pts, config=skew_resistant(8), system=PIMSystem(8, seed=1)
        )
        tree.check_invariants()
        tree.insert(rng.random((300, dims)))
        tree.check_invariants()
        allp = tree.all_points()
        q = pts[17]
        d, _ = tree.knn(q.reshape(1, -1), 6)[0]
        np.testing.assert_allclose(d, brute_knn(allp, q, 6), atol=1e-9)
        box = Box(np.full(dims, 0.2), np.full(dims, 0.8))
        assert tree.box_count([box])[0] == brute_box_count(allp, box)

    def test_1d(self, rng):
        pts = rng.random((800, 1))
        tree = PIMZdTree(
            pts, config=throughput_optimized(800, 4), system=PIMSystem(4, seed=1)
        )
        d, _ = tree.knn(pts[:1], 3)[0]
        np.testing.assert_allclose(d, brute_knn(pts, pts[0], 3), atol=1e-12)


class TestAlternateMetrics:
    def test_linf_knn_exact(self, rng):
        pts = rng.random((1200, 3))
        tree = PIMZdTree(
            pts, config=skew_resistant(8), system=PIMSystem(8, seed=2)
        )
        q = pts[5]
        d, _ = tree.knn(q.reshape(1, -1), 9, metric=LINF)[0]
        np.testing.assert_allclose(d, brute_knn(pts, q, 9, metric=LINF), atol=1e-12)

    def test_linf_cheap_on_pim(self, rng):
        """ℓ∞ queries skip the anchored two-stage path (already PIM-cheap)."""
        pts = rng.random((2000, 3))
        tree = PIMZdTree(
            pts, config=throughput_optimized(2000, 8), system=PIMSystem(8, seed=2)
        )
        snap = tree.system.snapshot()
        tree.knn(pts[:50], 5, metric=LINF)
        d = tree.system.stats.diff(snap).total
        assert d.pim_cycles > 0


class TestL0ReplicatedMode:
    @pytest.fixture
    def tiny_cache_tree(self, rng):
        pts = rng.random((4000, 3))
        system = PIMSystem(8, seed=1, llc_bytes=2048)
        return PIMZdTree(pts, config=skew_resistant(8), system=system), pts

    def test_updates_in_replicated_mode(self, tiny_cache_tree, rng):
        tree, pts = tiny_cache_tree
        assert not tree.l0_on_cpu
        extra = rng.random((800, 3))
        tree.insert(extra)
        tree.check_invariants()
        assert_same_points(tree.all_points(), np.vstack([pts, extra]))

    def test_l0_sync_broadcasts(self, tiny_cache_tree, rng):
        """L0 counter syncs must broadcast to all replicas (comm charge)."""
        tree, pts = tiny_cache_tree
        node = tree.root
        assert node.layer == Layer.L0
        before = tree.system.stats.total.comm_words
        _, dmax = tree.config.lazy_delta_bounds(0)
        tree.record_count_change(node, int(dmax))
        after = tree.system.stats.total.comm_words
        assert after - before >= 2 * tree.system.n_modules
        tree.record_count_change(node, -int(dmax))  # restore

    def test_queries_exact_in_replicated_mode(self, tiny_cache_tree):
        tree, pts = tiny_cache_tree
        q = pts[123]
        d, _ = tree.knn(q.reshape(1, -1), 5)[0]
        np.testing.assert_allclose(d, brute_knn(pts, q, 5), atol=1e-12)


class TestDemotions:
    def test_mass_delete_demotes_from_l0(self, rng):
        pts = rng.random((6000, 3))
        tree = PIMZdTree(
            pts, config=skew_resistant(8), system=PIMSystem(8, seed=1)
        )
        n_l0_before = len(tree.l0_nodes())
        # Delete ~85% — the L0 border must retreat upward.
        for i in range(0, 5000, 500):
            tree.delete(pts[i : i + 500])
            tree.check_invariants()
        assert len(tree.l0_nodes()) < n_l0_before
        # Remaining structure still answers exactly.
        live = pts[5000:]
        q = live[7]
        d, _ = tree.knn(q.reshape(1, -1), 5)[0]
        np.testing.assert_allclose(d, brute_knn(live, q, 5), atol=1e-12)

    def test_delete_then_regrow(self, rng):
        pts = rng.random((4000, 3))
        tree = PIMZdTree(
            pts, config=skew_resistant(8), system=PIMSystem(8, seed=1)
        )
        tree.delete(pts[:3000])
        tree.insert(pts[:3000])
        tree.check_invariants()
        assert_same_points(tree.all_points(), pts)


class TestConfigCorners:
    def test_custom_config(self, rng):
        pts = rng.random((2000, 3))
        cfg = PIMZdTreeConfig(
            "custom", theta_l0=200, theta_l1=20, chunk_factor=8, leaf_size=8
        )
        tree = PIMZdTree(pts, config=cfg, system=PIMSystem(8, seed=1))
        tree.check_invariants()
        q = pts[0]
        d, _ = tree.knn(q.reshape(1, -1), 4)[0]
        np.testing.assert_allclose(d, brute_knn(pts, q, 4), atol=1e-12)

    def test_explicit_bits(self, rng):
        pts = rng.random((1000, 3))
        tree = PIMZdTree(
            pts, config=throughput_optimized(1000, 4),
            system=PIMSystem(4, seed=1), bits=10,
        )
        assert tree.key_bits == 30
        tree.check_invariants()

    def test_leaf_size_one(self, rng):
        pts = rng.random((300, 2))
        cfg = PIMZdTreeConfig("tiny", theta_l0=100, theta_l1=4, chunk_factor=4,
                              leaf_size=1)
        tree = PIMZdTree(pts, config=cfg, system=PIMSystem(4, seed=1))
        tree.check_invariants()
        assert tree.size == 300

    def test_single_module(self, rng):
        pts = rng.random((1000, 3))
        tree = PIMZdTree(
            pts, config=throughput_optimized(1000, 1), system=PIMSystem(1, seed=1)
        )
        tree.insert(rng.random((200, 3)))
        tree.check_invariants()
        q = pts[3]
        d, _ = tree.knn(q.reshape(1, -1), 5)[0]
        np.testing.assert_allclose(
            d, brute_knn(tree.all_points(), q, 5), atol=1e-12
        )


class TestBaselineModes:
    def test_zd_fast_zorder_mode(self, rng):
        from repro.baselines import ZdTree

        pts = rng.random((1000, 3))
        t = ZdTree(pts, naive_zorder=False)
        t.check_invariants()
        t.insert(rng.random((200, 3)))
        t.check_invariants()
        q = pts[0]
        d, _ = t.knn(q, 5)
        np.testing.assert_allclose(d, brute_knn(t.all_points(), q, 5), atol=1e-12)
