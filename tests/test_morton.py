"""Unit tests for the Morton (z-order) codecs (§6 fast z-order)."""

import numpy as np
import pytest

from repro.core.morton import (
    MortonCodec,
    compact_by_2,
    compact_by_3,
    compact_bits_lut,
    compact_bits_naive,
    max_bits_per_dim,
    morton_decode,
    morton_encode,
    morton_encode_naive,
    split_by_2,
    split_by_3,
    split_bits_lut,
    split_bits_naive,
)


class TestMaxBits:
    def test_common_dims(self):
        assert max_bits_per_dim(1) == 32
        assert max_bits_per_dim(2) == 32
        assert max_bits_per_dim(3) == 21
        assert max_bits_per_dim(4) == 16
        assert max_bits_per_dim(8) == 8

    def test_rejects_zero_dims(self):
        with pytest.raises(ValueError):
            max_bits_per_dim(0)


class TestSplitMagic:
    """The unrolled magic-constant paths must equal the per-bit reference."""

    @pytest.mark.parametrize("value", [0, 1, 0x155, 0xFFFFFFFF, 0xDEADBEEF])
    def test_split2_matches_naive(self, value):
        got = split_by_2(np.array([value], dtype=np.uint64))[0]
        want = split_bits_naive(np.array([value], dtype=np.uint64), 2, 32)[0]
        assert got == want

    @pytest.mark.parametrize("value", [0, 1, 0x1FFFFF, 0xABCDE, 0x155555])
    def test_split3_matches_naive(self, value):
        got = split_by_3(np.array([value], dtype=np.uint64))[0]
        want = split_bits_naive(np.array([value], dtype=np.uint64), 3, 21)[0]
        assert got == want

    def test_split2_roundtrip_bulk(self, rng):
        x = rng.integers(0, 2**32, size=500, dtype=np.uint64)
        assert np.array_equal(compact_by_2(split_by_2(x)), x)

    def test_split3_roundtrip_bulk(self, rng):
        x = rng.integers(0, 2**21, size=500, dtype=np.uint64)
        assert np.array_equal(compact_by_3(split_by_3(x)), x)

    def test_split3_masks_top_bits(self):
        # Bits above the 21 supported ones must be discarded.
        x = np.array([0xFFFFFFFFFFFFFFFF], dtype=np.uint64)
        assert split_by_3(x)[0] == split_by_3(np.array([0x1FFFFF], dtype=np.uint64))[0]


class TestGeneralDims:
    @pytest.mark.parametrize("dims", [1, 2, 3, 4, 5, 6, 7, 8])
    def test_lut_matches_naive(self, dims, rng):
        bits = max_bits_per_dim(dims)
        x = rng.integers(0, 2**bits, size=200, dtype=np.uint64)
        assert np.array_equal(
            split_bits_lut(x, dims, bits), split_bits_naive(x, dims, bits)
        )

    @pytest.mark.parametrize("dims", [1, 2, 3, 4, 5, 6, 8])
    def test_compact_inverts_split(self, dims, rng):
        bits = max_bits_per_dim(dims)
        x = rng.integers(0, 2**bits, size=200, dtype=np.uint64)
        assert np.array_equal(compact_bits_lut(split_bits_lut(x, dims, bits), dims, bits), x)
        assert np.array_equal(
            compact_bits_naive(split_bits_naive(x, dims, bits), dims, bits), x
        )


class TestEncodeDecode:
    @pytest.mark.parametrize("dims", [1, 2, 3, 4, 6])
    def test_roundtrip(self, dims, rng):
        bits = max_bits_per_dim(dims)
        g = rng.integers(0, 2**bits, size=(300, dims), dtype=np.uint64)
        keys = morton_encode(g, bits)
        assert np.array_equal(morton_decode(keys, dims, bits), g)

    @pytest.mark.parametrize("dims", [2, 3, 5])
    def test_fast_equals_naive(self, dims, rng):
        bits = max_bits_per_dim(dims)
        g = rng.integers(0, 2**bits, size=(300, dims), dtype=np.uint64)
        assert np.array_equal(morton_encode(g, bits), morton_encode_naive(g, bits))

    def test_order_is_lexicographic_on_interleaved_bits(self):
        # The highest set bit across dimensions decides the order; within
        # one bit level, dimension 0 is the more significant one.
        g = np.array([[0, 7], [4, 0], [4, 1], [5, 0]], dtype=np.uint64)
        keys = morton_encode(g, 3).astype(np.int64)
        assert keys[1] > keys[0]  # dim0 bit2 outranks dim1 bits below it
        assert keys[3] > keys[2]  # dim0 bit0 outranks dim1 bit0

    def test_key_too_wide_raises(self):
        with pytest.raises(ValueError):
            morton_encode(np.zeros((1, 3), dtype=np.uint64), 22)

    def test_negative_coords_rejected(self):
        with pytest.raises(ValueError):
            morton_encode(np.array([[-1, 2]], dtype=np.int64), 8)


class TestFloatCoordValidation:
    """Regression: the uint64 cast used to wrap negative / fractional
    floats silently (split_by_2([-1.0]) came back as a huge key)."""

    def test_negative_float_rejected(self):
        with pytest.raises(ValueError):
            split_by_2(np.array([-1.0]))

    def test_non_integral_float_rejected(self):
        with pytest.raises(ValueError):
            split_by_2(np.array([1.5]))
        with pytest.raises(ValueError):
            morton_encode(np.array([[0.25, 2.0]]), 8)

    def test_non_finite_rejected(self):
        for bad in (np.nan, np.inf, -np.inf):
            with pytest.raises(ValueError):
                split_by_2(np.array([bad]))

    def test_integral_floats_encode_like_ints(self):
        f = np.array([[3.0, 7.0], [0.0, 255.0]])
        i = f.astype(np.uint64)
        assert np.array_equal(morton_encode(f, 8), morton_encode(i, 8))
        assert np.array_equal(
            split_by_2(np.array([12.0])), split_by_2(np.array([12], dtype=np.uint64))
        )


class TestCodec:
    def test_fit_covers_points(self, pts3d):
        codec = MortonCodec.fit(pts3d)
        g = codec.quantize(pts3d)
        assert g.max() < 2**codec.bits

    def test_quantize_clips_outside_box(self):
        codec = MortonCodec(np.zeros(2), np.ones(2), 2, 8)
        g = codec.quantize(np.array([[-5.0, 7.0]]))
        assert g[0, 0] == 0
        assert g[0, 1] == 2**8 - 1

    def test_encode_monotone_along_axis(self):
        codec = MortonCodec(np.zeros(1), np.ones(1), 1, 16)
        pts = np.linspace(0, 1, 50).reshape(-1, 1)
        keys = codec.encode(pts)
        assert np.all(np.diff(keys.astype(np.int64)) >= 0)

    def test_degenerate_extent(self):
        # All points identical in one dimension must not divide by zero.
        pts = np.array([[0.5, 0.2], [0.5, 0.9]])
        codec = MortonCodec.fit(pts)
        keys = codec.encode(pts)
        assert len(keys) == 2

    def test_invalid_box_raises(self):
        with pytest.raises(ValueError):
            MortonCodec(np.ones(2), np.zeros(2), 2, 8)

    def test_invalid_bits_raises(self):
        with pytest.raises(ValueError):
            MortonCodec(np.zeros(3), np.ones(3), 3, 25)

    def test_cell_center_within_box(self, pts3d):
        codec = MortonCodec.fit(pts3d)
        centers = codec.cell_center(codec.encode(pts3d[:100]))
        assert np.all(centers >= codec.lo) and np.all(centers <= codec.hi)
        # Cell centres are within one cell diagonal of the original point.
        cell = (codec.hi - codec.lo) / (2**codec.bits - 1)
        assert np.all(np.abs(centers - pts3d[:100]) <= cell + 1e-12)


class TestPrefixBox:
    def test_root_prefix_is_whole_box(self, pts3d):
        codec = MortonCodec.fit(pts3d)
        lo, hi = codec.prefix_box(0, 0)
        assert np.all(lo <= codec.lo + 1e-12)
        assert np.all(hi >= codec.hi - 1e-12)

    def test_depth_one_halves_first_dimension(self):
        codec = MortonCodec(np.zeros(2), np.ones(2), 2, 8)
        lo0, hi0 = codec.prefix_box(0, 1)
        lo1, hi1 = codec.prefix_box(1, 1)
        assert hi0[0] == pytest.approx(0.5, abs=0.01)
        assert lo1[0] == pytest.approx(0.5, abs=0.01)
        # Second dimension still spans the full box at depth 1.
        assert hi0[1] == pytest.approx(1.0, abs=0.01)

    def test_point_key_prefix_contains_point(self, rng):
        codec = MortonCodec(np.zeros(3), np.ones(3), 3, 21)
        pts = rng.random((50, 3))
        keys = codec.encode(pts)
        kb = codec.key_bits
        for p, k in zip(pts, keys.tolist()):
            for depth in (0, 1, 5, 17, 30):
                prefix = int(k) >> (kb - depth) if depth else 0
                lo, hi = codec.prefix_box(prefix, depth)
                assert np.all(p >= lo - 1e-9) and np.all(p <= hi + 1e-9)

    def test_children_partition_parent(self):
        codec = MortonCodec(np.zeros(2), np.ones(2), 2, 8)
        for depth in range(0, 6):
            for prefix in range(2**depth):
                plo, phi = codec.prefix_box(prefix, depth)
                llo, lhi = codec.prefix_box(prefix << 1, depth + 1)
                rlo, rhi = codec.prefix_box((prefix << 1) | 1, depth + 1)
                assert np.all(llo >= plo - 1e-12) and np.all(lhi <= phi + 1e-12)
                assert np.all(rlo >= plo - 1e-12) and np.all(rhi <= phi + 1e-12)
                vol_p = np.prod(phi - plo)
                vol_children = np.prod(lhi - llo) + np.prod(rhi - rlo)
                assert vol_children == pytest.approx(vol_p, rel=1e-9)

    def test_bad_depth_raises(self):
        codec = MortonCodec(np.zeros(2), np.ones(2), 2, 8)
        with pytest.raises(ValueError):
            codec.prefix_box(0, 99)
