"""repro.tune: knob space, search determinism, Pareto soundness, controller.

Four claims under test, matching the subsystem's contract:

1. **One ingestion path** — ``ConfigSpace.from_args`` resolves defaults,
   profile and flags with loud :class:`KnobConflict` errors for
   contradicting sources and for refinement flags whose gate mechanism
   is off (the historical silently-ignored ``--rebalance-ratio`` bug).
2. **Seed determinism** — the offline search visits the same nodes in
   the same order and emits a byte-identical profile JSON for the same
   seed, independent of worker-pool size.
3. **Pareto-pruning soundness** — every pruned (non-error) node is
   dominated by a node on the front, and front members are mutually
   non-dominated; checked both on hypothesis-generated objective sets
   and on real search output.
4. **Controller inertness / accountability** — an empty whitelist makes
   a serve run byte-identical to one with no controller at all, while an
   adapting run still reconciles its PIMStats bit-exactly with the
   ``repro.obs`` timeline and carries its audit block in the stats.
"""

from __future__ import annotations

import argparse
import json
import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.eval.experiments import _dataset
from repro.eval.harness import make_adapter
from repro.obs import TraceCollector, latency_json
from repro.serve import AdmissionQueue, ServeLoop, make_requests
from repro.tune import (
    KnobConflict,
    OnlineController,
    TuneNode,
    apply_serving_config,
    default_space,
    dominates,
    evaluate_config,
    load_profile,
    pareto_front,
    profile_doc,
    profile_json,
    search,
)
from repro.workloads import poisson_arrivals

SETTINGS = settings(max_examples=40, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])

SPACE = default_space()

# Tiny but real search parameters: every knob path exercised in seconds.
SEARCH_KW = dict(seed=3, n=800, n_modules=4, requests=60,
                 generations=1, beam=2)


@pytest.fixture(scope="module")
def base_search():
    """One shared small search result (searches are pure, so sharing is
    safe; the determinism test runs its own fresh copies)."""
    return search("uniform", **SEARCH_KW)


def ns(**kw) -> argparse.Namespace:
    """A Namespace with every knob-backed flag at its unset default."""
    base = dict(policy=None, overhead_target=None, fixed_batch=None,
                rebalance=False, rebalance_ratio=None, rebalance_gini=None,
                rebalance_budget_words=None, rebalance_budget=None,
                pull_factor=None, replicate=None, write_policy=None,
                route_filter=False, route_fpr=None, checkpoint_budget=None)
    base.update(kw)
    return argparse.Namespace(**base)


# ======================================================================
# ConfigSpace: knobs, validation, neighbors
# ======================================================================
def test_default_config_roundtrips():
    cfg = SPACE.default_config()
    assert SPACE.validate(cfg) == cfg
    assert SPACE.validate({}) == cfg  # missing knobs fall back to defaults


def test_canonical_key_ignores_dict_order():
    cfg = SPACE.default_config()
    shuffled = dict(reversed(list(cfg.items())))
    assert SPACE.canonical_key(cfg) == SPACE.canonical_key(shuffled)


def test_validate_rejects_unknown_and_out_of_bounds():
    with pytest.raises(ValueError, match="unknown knob"):
        SPACE.validate({"no.such.knob": 1})
    with pytest.raises(ValueError, match="outside"):
        SPACE.validate({"route.fpr": 0.9})
    with pytest.raises(ValueError, match="not in"):
        SPACE.validate({"batch.policy": "psychic"})


@given(st.data())
@SETTINGS
def test_refinements_stay_in_bounds_and_move(data):
    knob = data.draw(st.sampled_from(
        [k for k in SPACE.knobs if k.kind in ("int", "float")]))
    value = knob.coerce(knob.default)
    for _ in range(data.draw(st.integers(0, 6))):
        refs = knob.refinements(value)
        assert refs, f"{knob.name} wedged at {value}"
        for r in refs:
            assert knob.lo <= r <= knob.hi
            assert r != value
        value = data.draw(st.sampled_from(refs))


def test_neighbors_skip_gated_and_inert_knobs():
    cfg = SPACE.default_config()  # rebalance off, route off, k=1
    names = {name for name, _, _ in SPACE.neighbors(cfg)}
    assert "rebalance.ratio" not in names
    assert "route.fpr" not in names
    assert "replicate.write_policy" not in names  # inert with k=1
    assert "batch.fixed" not in names             # policy is adaptive
    on = dict(cfg, **{"rebalance.enabled": True, "route.enabled": True,
                      "replicate.k": 2})
    names_on = {name for name, _, _ in SPACE.neighbors(on)}
    assert {"rebalance.ratio", "route.fpr",
            "replicate.write_policy"} <= names_on


# ======================================================================
# from_args: the one ingestion path (satellite bugfix regression)
# ======================================================================
def test_from_args_defaults_when_nothing_passed():
    res = SPACE.from_args(ns())
    assert res.config == SPACE.default_config()
    assert res.non_default() == {}


def test_ungated_refinement_flag_is_a_conflict():
    # The historical bug: serve silently ignored --rebalance-ratio
    # without --rebalance; sweep rejected it with a different message.
    with pytest.raises(KnobConflict, match="rebalance.enabled"):
        SPACE.from_args(ns(rebalance_ratio=2.0))
    # With the gate on, the same flag resolves.
    res = SPACE.from_args(ns(rebalance=True, rebalance_ratio=2.0))
    assert res.config["rebalance.ratio"] == 2.0
    assert res.sources["rebalance.ratio"] == "flag"


def test_flag_vs_profile_conflict_raises_equal_restating_ok():
    profile = {"batch.policy": "fixed", "batch.fixed": 128}
    with pytest.raises(KnobConflict, match="drop one source"):
        SPACE.from_args(ns(policy="adaptive"), profile=profile)
    res = SPACE.from_args(ns(policy="fixed"), profile=profile)
    assert res.config["batch.fixed"] == 128
    assert res.sources["batch.fixed"] == "profile"
    assert res.sources["batch.policy"] == "flag"


def test_write_policy_requires_replicas():
    with pytest.raises(KnobConflict, match="replicate.k"):
        SPACE.from_args(ns(write_policy="primary-async"))
    res = SPACE.from_args(ns(replicate=2, write_policy="primary-async"))
    assert res.config["replicate.write_policy"] == "primary-async"


def test_fixed_batch_requires_fixed_policy():
    with pytest.raises(KnobConflict, match="batch.policy"):
        SPACE.from_args(ns(fixed_batch=32))
    res = SPACE.from_args(ns(policy="fixed", fixed_batch=32))
    assert res.config["batch.fixed"] == 32


# ======================================================================
# Pareto machinery (hypothesis)
# ======================================================================
objective = st.fixed_dictionaries({
    "goodput": st.floats(0.0, 1e5, allow_nan=False),
    "p99_s": st.floats(1e-6, 1.0, allow_nan=False),
    "comm_words": st.floats(0.0, 1e7, allow_nan=False),
})


@given(st.lists(objective, min_size=1, max_size=24))
@SETTINGS
def test_pareto_front_is_sound_and_complete(objs):
    nodes = [TuneNode(key=str(i), config={}, generation=0, objectives=o)
             for i, o in enumerate(objs)]
    front = pareto_front(nodes)
    assert front  # a finite non-empty set always has a non-dominated point
    for f in front:
        assert not any(dominates(m.objectives, f.objectives)
                       for m in nodes if m is not f)
    for n in nodes:
        if n not in front:
            assert any(dominates(f.objectives, n.objectives) for f in front)


@given(objective, objective)
@SETTINGS
def test_dominates_is_a_strict_partial_order(a, b):
    assert not dominates(a, a)
    assert not (dominates(a, b) and dominates(b, a))


# ======================================================================
# offline search: determinism + pruning soundness on real output
# ======================================================================
def test_search_seed_determinism_and_procs_independence(base_search):
    r1 = base_search
    r2 = search("uniform", **SEARCH_KW)
    assert r1.visit_order == r2.visit_order
    assert profile_json(r1) == profile_json(r2)
    r4 = search("uniform", **dict(SEARCH_KW, procs=2))
    assert profile_json(r1) == profile_json(r4)
    # The profile itself is deterministic data only.
    doc = profile_doc(r1)
    assert "wall" not in json.dumps(doc)
    assert doc["visit_order"] == r1.visit_order


def test_search_profile_loads_back_through_the_space(base_search):
    result = base_search
    doc = json.loads(profile_json(result))
    cfg = load_profile(doc, space=default_space())
    assert cfg == result.best_node.config
    with pytest.raises(ValueError, match="not a tuned profile"):
        load_profile({"format": "bogus", "config": {}})


def test_search_pruning_soundness_on_real_nodes(base_search):
    result = base_search
    front = [result.nodes[k] for k in result.front]
    for node in result.nodes.values():
        if node.objectives is None:
            assert node.pruned and node.error
            continue
        if node.pruned:
            assert any(dominates(f.objectives, node.objectives)
                       for f in front if f.key != node.key)
        # The winner is never dominated.
    best = result.best_node
    assert not any(dominates(n.objectives, best.objectives)
                   for n in result.nodes.values()
                   if n.objectives is not None and n is not best)
    assert best.key in result.front


def test_evaluate_config_is_deterministic():
    spec = {"workload": "uniform", "config": SPACE.default_config(),
            "seed": 5, "n": 600, "n_modules": 4, "requests": 40,
            "rate": 8000.0, "k": 10, "deadline_s": math.inf,
            "queue_depth": 256}
    assert evaluate_config(dict(spec)) == evaluate_config(dict(spec))


# ======================================================================
# online controller
# ======================================================================
def _serve_stats(*, controller=None, config=None, tracer=None, seed=11):
    """One small serve run; returns (stats, adapter, loop)."""
    cfg = config if config is not None else SPACE.default_config()
    data = _dataset("varden", 1200, seed)
    arrivals = poisson_arrivals(9000.0, 150, seed=seed + 1)
    requests = make_requests(
        data, arrivals, mix={"knn": 0.7, "bc": 0.2, "insert": 0.1},
        k=10, deadline_s=math.inf, seed=seed + 2)
    adapter = make_adapter("pim", data, n_modules=4, seed=seed,
                           tracer=tracer)
    parts = apply_serving_config(adapter, cfg, filter_seed=seed)
    loop = ServeLoop(adapter, AdmissionQueue(256), parts["policy"],
                     rebalancer=parts["rebalancer"], controller=controller)
    return loop.run(requests).stats, adapter, loop


def test_empty_whitelist_is_byte_inert():
    inert = OnlineController(whitelist=())
    assert not inert.active
    assert not inert.due(10 ** 9)
    s0, a0, _ = _serve_stats(controller=None)
    s1, a1, _ = _serve_stats(controller=inert)
    blob0 = json.dumps(latency_json(s0), sort_keys=True)
    blob1 = json.dumps(latency_json(s1), sort_keys=True)
    assert blob0 == blob1
    assert s1.config is None  # no audit block for an inert controller
    assert a0.system.stats.to_dict() == a1.system.stats.to_dict()


def test_controller_rejects_bad_configuration():
    with pytest.raises(ValueError, match="non-adaptable"):
        OnlineController(whitelist=("replicate.k",))
    with pytest.raises(ValueError, match="window"):
        OnlineController(window=0)
    with pytest.raises(ValueError, match="lo < hi"):
        OnlineController(queue_lo=0.9, queue_hi=0.1)


def test_adapting_run_reconciles_and_carries_audit():
    # Force budget-fraction moves: any imbalance >= 1.01 trips the band,
    # and max/mean ratio is >= 1 by definition once heat exists.
    cfg = dict(SPACE.default_config(), **{"rebalance.enabled": True})
    ctl = OnlineController(whitelist=("rebalance.budget_fraction",),
                           window=8, cooldown=0,
                           imbalance_hi=1.01, imbalance_lo=0.5)
    tracer = TraceCollector()
    stats, adapter, loop = _serve_stats(controller=ctl, config=cfg,
                                        tracer=tracer)
    assert ctl.phases >= 1
    assert ctl.history, "expected at least one budget move"
    for h in ctl.history:
        assert h["knob"] == "rebalance.budget_fraction"
        k = SPACE.by_name["rebalance.budget_fraction"]
        assert k.lo <= h["new"] <= k.hi
    # The moved value is live on the rebalancer.
    assert loop.rebalancer.config.budget_fraction == ctl.history[-1]["new"]
    # Accounting stays exact: the obs timeline reconciles bit-exactly.
    assert tracer.timeline.reconcile(adapter.system.stats) == []
    # And the run is auditable from its stats document alone.
    assert stats.config is not None
    audit = stats.config["controller"]
    assert audit["changes"] == len(ctl.history)
    assert audit["whitelist"] == ["rebalance.budget_fraction"]
    assert stats.config["policy"]["name"] == "adaptive"
    blob = json.dumps(latency_json(stats), sort_keys=True)
    assert "controller" in blob


def test_cooldown_enforces_holding():
    ctl = OnlineController(whitelist=("rebalance.budget_fraction",),
                           cooldown=3)
    ctl.phases = 1
    ctl._record("rebalance.budget_fraction", 0.05, 0.1, 2.0, "test")
    for phase in (2, 3, 4):
        ctl.phases = phase
        assert not ctl._may_move("rebalance.budget_fraction")
    ctl.phases = 5
    assert ctl._may_move("rebalance.budget_fraction")


def test_adaptive_policy_snapshot_exposes_fit():
    """Satellite: the adaptive policy's fitted (a, b) and current target
    are visible in its snapshot once a group has enough observations."""
    from repro.serve import AdaptiveBatchPolicy

    stats, _, loop = _serve_stats()
    assert isinstance(loop.policy, AdaptiveBatchPolicy)
    snap = loop.policy.snapshot()
    assert snap["name"] == "adaptive"
    assert snap["overhead_target"] == 0.1
    assert snap["groups"], "expected at least one fitted group"
    fitted = [g for g in snap["groups"].values() if g.get("a") is not None]
    assert fitted, "expected a least-squares fit after a full run"
    for g in fitted:
        assert g["n_obs"] >= 2
        assert g["target"] >= 1
