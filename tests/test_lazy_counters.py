"""Tests for the lazy counter protocol (§3.4, Table 1, Lemma 3.1)."""

import numpy as np
import pytest

from repro.core import PIMZdTree, skew_resistant, throughput_optimized
from repro.core.node import Layer
from repro.pim import PIMSystem


def make_tree(points, variant="skew", n_modules=8, seed=1, **cfg_over):
    system = PIMSystem(n_modules, seed=seed)
    if variant == "throughput":
        cfg = throughput_optimized(len(points), n_modules, **cfg_over)
    else:
        cfg = skew_resistant(n_modules, **cfg_over)
    return PIMZdTree(points, config=cfg, system=system)


def walk(tree):
    stack = [tree.root]
    while stack:
        n = stack.pop()
        yield n
        if not n.is_leaf:
            stack.extend((n.left, n.right))


class TestLemma31:
    """SC must stay within [T/2, 2T] at all times (Lemma 3.1)."""

    @pytest.mark.parametrize("variant", ["throughput", "skew"])
    def test_after_insert_storm(self, rng, variant):
        pts = rng.random((3000, 3))
        tree = make_tree(pts[:1000], variant)
        for i in range(1000, 3000, 250):
            tree.insert(pts[i : i + 250])
            for n in walk(tree):
                if n.count > 0:
                    assert n.count / 2 <= n.sc <= 2 * n.count, (
                        f"{n}: sc={n.sc} count={n.count}"
                    )

    def test_after_deletions(self, rng):
        pts = rng.random((3000, 3))
        tree = make_tree(pts, "skew")
        for i in range(0, 2000, 400):
            tree.delete(pts[i : i + 400])
            for n in walk(tree):
                if n.count > 0:
                    assert n.count / 2 <= n.sc <= 2 * n.count

    def test_skewed_hotspot_inserts(self, rng):
        """Inserts hammering one corner must not break the bound."""
        pts = rng.random((2000, 3))
        tree = make_tree(pts, "skew")
        hot = rng.random((1500, 3)) * 0.02
        for i in range(0, 1500, 300):
            tree.insert(hot[i : i + 300])
            for n in walk(tree):
                if n.count > 0:
                    assert n.count / 2 <= n.sc <= 2 * n.count


class TestSyncBehaviour:
    def test_l2_nodes_always_exact(self, rng):
        pts = rng.random((2000, 3))
        tree = make_tree(pts, "skew")
        tree.insert(rng.random((500, 3)))
        for n in walk(tree):
            if n.layer == Layer.L2:
                assert n.sc == n.count
                assert n.delta == 0

    def test_l0_nodes_lag_within_delta(self, rng):
        pts = rng.random((4000, 3))
        tree = make_tree(pts, "skew")
        tree.insert(rng.random((300, 3)))
        dmin, dmax = tree.config.lazy_delta_bounds(0)
        for n in walk(tree):
            if n.layer == Layer.L0:
                assert dmin < n.delta < dmax

    def test_eager_mode_keeps_exact_everywhere(self, rng):
        pts = rng.random((2000, 3))
        tree = make_tree(pts, "skew", lazy_counters=False)
        tree.insert(rng.random((400, 3)))
        tree.delete(pts[:200])
        for n in walk(tree):
            assert n.sc == n.count

    def test_eager_mode_costs_more_sync_traffic(self, rng):
        """Table 3: removing lazy counters slows INSERT (more replica
        sync traffic)."""
        pts = rng.random((4000, 3))
        batch = rng.random((1000, 3))

        def insert_comm(lazy: bool) -> float:
            tree = make_tree(pts, "skew", lazy_counters=lazy)
            snap = tree.system.snapshot()
            tree.insert(batch)
            return tree.system.stats.diff(snap).total.comm_words

        assert insert_comm(False) > insert_comm(True)

    def test_record_count_change_sync_thresholds(self, rng):
        pts = rng.random((3000, 3))
        tree = make_tree(pts, "skew")
        # Pick an L0 node and apply changes below/above the threshold.
        node = tree.root
        assert node.layer == Layer.L0
        dmin, dmax = tree.config.lazy_delta_bounds(0)
        sc_before = node.sc
        synced = tree.record_count_change(node, int(dmax) - 1)
        assert not synced and node.sc == sc_before
        synced = tree.record_count_change(node, 1)  # reaches dmax
        assert synced and node.sc == node.count and node.delta == 0
        # Undo the artificial change to keep the structure consistent.
        tree.record_count_change(node, -int(dmax))
        tree.sync_counter(node)

    def test_zero_delta_no_sync(self, rng):
        pts = rng.random((1000, 3))
        tree = make_tree(pts, "skew")
        node = tree.root
        assert not tree.record_count_change(node, 0)
