"""Tests for the structural introspection module."""

import numpy as np
import pytest

from repro.core import PIMZdTree, TreeStats, skew_resistant, throughput_optimized, tree_stats
from repro.pim import PIMSystem


@pytest.fixture
def tree(rng):
    return PIMZdTree(
        rng.random((4000, 3)),
        config=skew_resistant(8),
        system=PIMSystem(8, seed=1),
    )


class TestTreeStats:
    def test_counts_consistent(self, tree):
        s = tree.stats()
        assert isinstance(s, TreeStats)
        assert s.n_points == tree.size
        assert s.n_nodes == tree.num_nodes()
        assert s.height == tree.height()
        assert s.n_leaves == (s.n_nodes + 1) // 2  # compressed binary tree

    def test_layer_partition(self, tree):
        s = tree.stats()
        assert sum(s.nodes_per_layer.values()) == s.n_nodes
        assert sum(s.points_per_layer.values()) == s.n_points

    def test_meta_partition(self, tree):
        s = tree.stats()
        assert s.n_metas == len(tree.metas)
        assert s.dense_metas + s.sparse_metas == s.n_metas
        assert sum(s.metas_per_layer.values()) == s.n_metas
        assert s.meta_nodes_max >= s.meta_nodes_mean

    def test_space_matches_tree(self, tree):
        s = tree.stats()
        space = tree.space_words()
        assert s.master_words == space["master"]
        assert s.cache_words == space["cache"]

    def test_summary_renders(self, tree):
        text = tree.stats().summary()
        assert "points=4,000" in text
        assert "meta-nodes" in text

    def test_updates_reflected(self, tree, rng):
        before = tree.stats()
        tree.insert(rng.random((1000, 3)))
        after = tree.stats()
        assert after.n_points == before.n_points + 1000
        assert after.master_words > before.master_words

    def test_throughput_config_one_meta_per_region(self, rng):
        pts = rng.random((4000, 3))
        t = PIMZdTree(
            pts,
            config=throughput_optimized(4000, 8),
            system=PIMSystem(8, seed=1),
        )
        s = t.stats()
        # One chunk per L0-border subtree: meta count ≈ region count ≪ nodes.
        assert s.n_metas < s.n_nodes / 10
        assert s.metas_per_layer.get("L2", 0) == 0

    def test_standalone_function(self, tree):
        assert tree_stats(tree).n_points == tree.stats().n_points
