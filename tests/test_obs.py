"""Tests for the repro.obs trace/metrics subsystem.

Covers the design contract: attaching a collector never perturbs the
simulator's counters (byte-identity), the ring buffer drops oldest-first
while aggregates keep running, and the timeline reconciles *exactly*
with ``PIMStats`` — both on synthetic workloads and on a real
PIM-zd-tree run.
"""

import json

import pytest

from repro.eval.harness import PIMZdTreeAdapter
from repro.obs import (
    EventKind,
    TraceCollector,
    timeline_csv,
    timeline_json,
    write_trace,
)
from repro.pim import PIMSystem

COUNTERS = (
    "cpu_ops",
    "cpu_span",
    "pim_cycles",
    "comm_words",
    "comm_max_words",
    "rounds",
    "module_rounds",
    "dram_words",
)


def _stats_fingerprint(stats) -> dict:
    """Every counter, per phase and total, as plain floats."""
    out = {"mux": stats.mux_switches}
    for f in COUNTERS:
        out[f"total.{f}"] = float(getattr(stats.total, f))
    for label, c in stats.phases.items():
        for f in COUNTERS:
            out[f"{label}.{f}"] = float(getattr(c, f))
    return out


def _synthetic_workload(sys: PIMSystem) -> None:
    with sys.phase("build"):
        sys.charge_cpu(123, span=17)
        sys.dram_stream(64)
        with sys.round():
            sys.charge_pim(0, 40)
            sys.charge_pim(1, 55)
            sys.send(1, 9)
            with sys.phase("insert"):
                sys.charge_pim(1, 5)
                sys.recv(0, 3)
    with sys.phase("knn"):
        sys.charge_comm_flat(30)
        sys.touch_cpu_block("blk")
        with sys.round():
            pass  # empty round: must charge nothing, emit nothing
        with sys.round():
            sys.send(2, 11)


class TestByteIdentity:
    def test_tracing_does_not_perturb_counters(self):
        plain = PIMSystem(4, seed=1)
        traced = PIMSystem(4, seed=1, tracer=TraceCollector())
        _synthetic_workload(plain)
        _synthetic_workload(traced)
        assert _stats_fingerprint(plain.stats) == _stats_fingerprint(traced.stats)

    def test_tracing_does_not_perturb_tree_workload(self, rng):
        pts = rng.random((1500, 2))
        extra = rng.random((200, 2))
        queries = rng.random((20, 2))
        fingerprints = []
        for tracer in (None, TraceCollector()):
            a = PIMZdTreeAdapter(
                pts.copy(), n_modules=8, seed=3, tracer=tracer
            )
            a.insert(extra.copy())
            a.knn(queries.copy(), 5)
            fingerprints.append(_stats_fingerprint(a.system.stats))
        assert fingerprints[0] == fingerprints[1]


class TestReconciliation:
    def test_synthetic_workload_reconciles_exactly(self):
        tracer = TraceCollector()
        sys = PIMSystem(4, tracer=tracer)
        _synthetic_workload(sys)
        assert tracer.timeline.reconcile(sys.stats) == []

    def test_real_tree_workload_reconciles_exactly(self, rng):
        tracer = TraceCollector()
        a = PIMZdTreeAdapter(
            rng.random((3000, 3)), n_modules=8, seed=5, tracer=tracer
        )
        a.insert(rng.random((300, 3)))
        a.delete(rng.random((50, 3)))
        a.knn(rng.random((25, 3)), 10)
        from repro.eval.harness import make_boxes

        a.box_count(make_boxes(rng.random((10, 3)), 0.1, 10))
        problems = tracer.timeline.reconcile(a.system.stats)
        assert problems == [], "\n".join(problems)

    def test_reconcile_reports_mismatch(self):
        tracer = TraceCollector()
        sys = PIMSystem(2, tracer=tracer)
        with sys.phase("build"):
            sys.charge_cpu(10)
        tracer.timeline.total.cpu_ops += 1  # corrupt the trace
        problems = tracer.timeline.reconcile(sys.stats)
        assert any("total.cpu_ops" in p for p in problems)


class TestRing:
    def test_capacity_and_dropped(self):
        tracer = TraceCollector(capacity=4)
        sys = PIMSystem(2, tracer=tracer)
        with sys.phase("build"):
            for _ in range(10):
                sys.charge_cpu(1)
        assert tracer.seq == 10
        assert len(tracer.events()) == 4
        assert tracer.dropped == 6
        # Oldest dropped first: retained events are the last four.
        assert [e.seq for e in tracer.events()] == [6, 7, 8, 9]
        # Aggregates keep the full running sum despite the wraparound.
        assert tracer.timeline.total.cpu_ops == 10

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            TraceCollector(capacity=0)


class TestRoundRecords:
    def test_record_contents(self):
        tracer = TraceCollector()
        sys = PIMSystem(4, tracer=tracer)
        with sys.phase("build"):
            with sys.round():
                sys.charge_pim(0, 10)
                sys.charge_pim(2, 90)
                sys.send(2, 8)
                with sys.phase("insert"):
                    sys.send(0, 3)
        (rec,) = tracer.rounds()
        assert rec.index == 0
        assert rec.entry_phase == "build"
        assert rec.straggler_mid == 2
        assert rec.max_cycles == 90
        assert rec.total_words == 11
        assert rec.max_words == 8 and rec.max_words_mid == 2
        assert rec.module_rounds == 2 and rec.touched == 2
        assert rec.cycles_by_module == {0: 10, 2: 90}
        assert rec.words_by_module == {0: 3, 2: 8}
        assert rec.pim_cycles_by_phase == {"build": 90}
        assert rec.comm_words_by_phase == {"build": 8, "insert": 3}
        assert rec.comm_max_words_by_phase == {"build": 8}

    def test_empty_round_emits_no_record(self):
        tracer = TraceCollector()
        sys = PIMSystem(2, tracer=tracer)
        with sys.round():
            pass
        assert tracer.rounds() == []
        assert tracer.rounds_seen == 0
        assert all(e.kind != EventKind.ROUND for e in tracer.events())

    def test_per_module_raw_aggregates(self):
        tracer = TraceCollector()
        sys = PIMSystem(4, tracer=tracer)
        with sys.round():
            sys.charge_pim(1, 30)
            sys.send(1, 5)
            sys.recv(1, 2)
        m = tracer.timeline.module(1)
        assert m.cycles == 30
        assert m.recv_words == 5  # CPU → module (send())
        assert m.send_words == 2  # module → CPU (recv())
        assert m.active_rounds == 1
        assert m.straggler_rounds == 1


class TestExport:
    def test_json_document_serialises(self, tmp_path):
        tracer = TraceCollector()
        sys = PIMSystem(4, tracer=tracer)
        _synthetic_workload(sys)
        doc = write_trace(
            tracer,
            tmp_path / "t.json",
            tmp_path / "t.csv",
            stats=sys.stats,
        )
        loaded = json.loads((tmp_path / "t.json").read_text())
        assert loaded == json.loads(json.dumps(doc))
        assert loaded["format"] == "repro.obs/1"
        assert loaded["reconciliation"]["exact"] is True
        assert loaded["ring"]["emitted"] == tracer.seq
        assert len(loaded["rounds"]) == 2

    def test_json_without_events(self):
        tracer = TraceCollector()
        sys = PIMSystem(4, tracer=tracer)
        _synthetic_workload(sys)
        doc = timeline_json(tracer, include_events=False)
        assert "events" not in doc
        json.dumps(doc)  # still serialisable

    def test_csv_shape_and_totals(self):
        tracer = TraceCollector()
        sys = PIMSystem(4, tracer=tracer)
        _synthetic_workload(sys)
        lines = timeline_csv(tracer).strip().splitlines()
        header = lines[0].split(",")
        assert header[0] == "phase" and "pim_cycles" in header
        rows = {ln.split(",")[0]: ln.split(",")[1:] for ln in lines[1:]}
        assert "total" in rows
        col = header.index("cpu_ops") - 1
        phase_sum = sum(
            float(cells[col]) for ph, cells in rows.items() if ph != "total"
        )
        assert phase_sum == float(rows["total"][col])

    def test_timeline_matches_phase_sums(self):
        tracer = TraceCollector()
        sys = PIMSystem(4, tracer=tracer)
        _synthetic_workload(sys)
        sums = tracer.timeline.phase_sums()
        for f in COUNTERS:
            assert getattr(sums, f) == getattr(tracer.timeline.total, f)


class TestCLI:
    def test_trace_subcommand_end_to_end(self, tmp_path, capsys):
        from repro.cli import main

        rc = main([
            "trace",
            "--n", "800",
            "--batch", "64",
            "--n-modules", "4",
            "--ops", "insert,bc-10",
            "--out", str(tmp_path / "trace.json"),
            "--csv", str(tmp_path / "trace.csv"),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "reconciles exactly" in out
        doc = json.loads((tmp_path / "trace.json").read_text())
        assert doc["reconciliation"]["exact"] is True
        assert (tmp_path / "trace.csv").read_text().startswith("phase,")
