"""Unit tests for the shared-memory zd-tree baseline."""

import numpy as np
import pytest

from repro.baselines import CPUCostMeter, ZdTree
from repro.core.geometry import L1, L2, Box

from conftest import (
    assert_same_points,
    brute_box_count,
    brute_box_points,
    brute_knn,
)


@pytest.fixture
def tree(pts3d):
    return ZdTree(pts3d)


class TestConstruction:
    def test_invariants_after_build(self, tree):
        tree.check_invariants()

    def test_size(self, tree, pts3d):
        assert tree.size == len(pts3d)

    def test_all_points_multiset(self, tree, pts3d):
        assert_same_points(tree.all_points(), pts3d)

    def test_compressed_node_count(self, tree):
        """A compressed binary radix tree has (#leaves) - 1 internal nodes."""

        def count(node):
            if node.leaf:
                return 1, 0
            ll, li = count(node.left)
            rl, ri = count(node.right)
            return ll + rl, li + ri + 1

        leaves, internals = count(tree.root)
        assert internals == leaves - 1

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ZdTree(np.empty((0, 3)))

    def test_explicit_bounds(self, pts3d):
        t = ZdTree(pts3d, bounds=(np.zeros(3), np.ones(3)))
        t.check_invariants()
        assert t.size == len(pts3d)

    def test_single_point(self):
        t = ZdTree(np.array([[0.5, 0.5]]))
        assert t.size == 1
        t.check_invariants()

    def test_duplicate_points_share_leaf(self):
        pts = np.tile(np.array([[0.3, 0.7]]), (100, 1))
        t = ZdTree(pts, leaf_size=8)
        t.check_invariants()  # oversized leaf allowed when keys equal
        assert t.size == 100


class TestInsert:
    def test_insert_grows_and_stays_valid(self, rng):
        pts = rng.random((3000, 3))
        t = ZdTree(pts[:1000])
        t.insert(pts[1000:2000])
        t.check_invariants()
        t.insert(pts[2000:])
        t.check_invariants()
        assert t.size == 3000
        assert_same_points(t.all_points(), pts)

    def test_insert_empty_batch_noop(self, tree):
        before = tree.size
        tree.insert(np.empty((0, 3)))
        assert tree.size == before

    def test_insert_duplicates(self, rng):
        pts = rng.random((200, 3))
        t = ZdTree(pts)
        t.insert(pts[:50])  # exact duplicates
        t.check_invariants()
        assert t.size == 250

    def test_insert_outside_initial_extent_is_clipped(self, rng):
        pts = rng.random((300, 3)) * 0.5 + 0.25
        t = ZdTree(pts, bounds=(np.zeros(3), np.ones(3)))
        outlier = np.array([[2.0, 2.0, 2.0]])
        t.insert(outlier)  # clipped to box surface in key space
        t.check_invariants()
        assert t.size == 301

    def test_edge_split_chain(self):
        """Keys diverging at several depths of one compressed edge."""
        base = np.array([[0.9, 0.9]] * 20)
        t = ZdTree(base, bounds=(np.zeros(2), np.ones(2)), leaf_size=4)
        t.insert(np.array([[0.1, 0.1], [0.4, 0.4], [0.6, 0.1], [0.05, 0.9]]))
        t.check_invariants()
        assert t.size == 24

    def test_dimension_mismatch(self, tree):
        with pytest.raises(ValueError):
            tree.insert(np.zeros((2, 5)))


class TestDelete:
    def test_delete_removes_exact_points(self, rng):
        pts = rng.random((1000, 3))
        t = ZdTree(pts)
        removed = t.delete(pts[:400])
        assert removed == 400
        t.check_invariants()
        assert_same_points(t.all_points(), pts[400:])

    def test_delete_nonexistent_is_noop(self, tree):
        before = tree.size
        assert tree.delete(np.array([[2.0, 2.0, 2.0]])) == 0
        assert tree.size == before

    def test_delete_duplicates_removes_all_copies(self):
        pts = np.vstack([np.full((5, 2), 0.5), np.random.default_rng(1).random((50, 2))])
        t = ZdTree(pts)
        removed = t.delete(np.array([[0.5, 0.5]]))
        assert removed == 5

    def test_delete_cannot_empty_tree(self, rng):
        pts = rng.random((10, 3))
        t = ZdTree(pts)
        with pytest.raises(ValueError):
            t.delete(pts)

    def test_interleaved_insert_delete(self, rng):
        pts = rng.random((2000, 3))
        t = ZdTree(pts[:1000])
        live = list(range(1000))
        t.insert(pts[1000:1500])
        live += list(range(1000, 1500))
        t.delete(pts[200:700])
        live = [i for i in live if not 200 <= i < 700]
        t.insert(pts[1500:])
        live += list(range(1500, 2000))
        t.check_invariants()
        assert_same_points(t.all_points(), pts[live])


class TestKnn:
    @pytest.mark.parametrize("k", [1, 5, 17])
    def test_exact_vs_brute(self, tree, pts3d, k, rng):
        for q in pts3d[rng.integers(0, len(pts3d), 10)]:
            d, nn = tree.knn(q, k)
            np.testing.assert_allclose(d, brute_knn(pts3d, q, k))

    def test_l1_metric(self, tree, pts3d):
        q = pts3d[3]
        d, _ = tree.knn(q, 7, metric=L1)
        np.testing.assert_allclose(d, brute_knn(pts3d, q, 7, metric=L1))

    def test_k_exceeds_size(self):
        pts = np.random.default_rng(2).random((5, 3))
        t = ZdTree(pts)
        d, nn = t.knn(pts[0], 20)
        assert len(d) == 5

    def test_query_far_outside(self, tree, pts3d):
        q = np.array([10.0, 10.0, 10.0])
        d, _ = tree.knn(q, 3)
        np.testing.assert_allclose(d, brute_knn(pts3d, q, 3))

    def test_invalid_k(self, tree):
        with pytest.raises(ValueError):
            tree.knn(np.zeros(3), 0)

    def test_batch_api(self, tree, pts3d):
        out = tree.knn_batch(pts3d[:4], 3)
        assert len(out) == 4
        for (d, nn), q in zip(out, pts3d[:4]):
            np.testing.assert_allclose(d, brute_knn(pts3d, q, 3))


class TestBoxQueries:
    @pytest.mark.parametrize("prune", [False, True])
    def test_count_matches_brute(self, tree, pts3d, rng, prune):
        for _ in range(10):
            c = rng.random(3)
            w = rng.random(3) * 0.3
            box = Box(np.maximum(c - w, 0), np.minimum(c + w, 1))
            assert tree.box_count(box, box_prune=prune) == brute_box_count(pts3d, box)

    @pytest.mark.parametrize("prune", [False, True])
    def test_fetch_matches_brute(self, tree, pts3d, rng, prune):
        c = rng.random(3)
        box = Box(np.maximum(c - 0.2, 0), np.minimum(c + 0.2, 1))
        got = tree.box_fetch(box, box_prune=prune)
        assert_same_points(got, brute_box_points(pts3d, box))

    def test_empty_box(self, tree):
        box = Box(np.full(3, 2.0), np.full(3, 3.0))
        assert tree.box_count(box) == 0
        assert len(tree.box_fetch(box)) == 0

    def test_whole_domain_box(self, tree, pts3d):
        box = Box(np.full(3, -1.0), np.full(3, 2.0))
        assert tree.box_count(box) == len(pts3d)
        assert len(tree.box_fetch(box)) == len(pts3d)

    def test_interval_scan_costs_more_than_pruned(self, pts3d):
        """The z-interval scan visits far more than geometric pruning."""
        m1 = CPUCostMeter()
        t1 = ZdTree(pts3d, meter=m1)
        m2 = CPUCostMeter()
        t2 = ZdTree(pts3d, meter=m2)
        box = Box(np.full(3, 0.45), np.full(3, 0.55))
        s1 = m1.snapshot()
        t1.box_count(box)
        naive = m1.measure_since(s1).work
        s2 = m2.snapshot()
        t2.box_count(box, box_prune=True)
        pruned = m2.measure_since(s2).work
        assert naive > 2 * pruned


class TestMeterIntegration:
    def test_operations_charge_work_and_traffic(self, pts3d):
        meter = CPUCostMeter()
        t = ZdTree(pts3d, meter=meter)
        assert meter.counters.work > 0
        snap = meter.snapshot()
        t.knn(pts3d[0], 5)
        d = meter.measure_since(snap)
        assert d.work > 0
        assert meter.time_s(d) > 0

    def test_naive_zorder_charges_more_than_fast(self, pts3d):
        m_naive = CPUCostMeter()
        ZdTree(pts3d, meter=m_naive, naive_zorder=True)
        m_fast = CPUCostMeter()
        ZdTree(pts3d, meter=m_fast, naive_zorder=False)
        assert m_naive.counters.work > m_fast.counters.work


class TestHeightAndStats:
    def test_height_logarithmic_for_uniform(self, rng):
        pts = rng.random((4096, 3))
        t = ZdTree(pts, leaf_size=16)
        # Uniform data: height close to log2(n/leaf); generous upper bound.
        assert t.height() <= 4 * int(np.log2(len(pts)))

    def test_num_nodes_bound(self, tree, pts3d):
        # Compressed tree: at most 2*ceil(n/1) nodes, far fewer with leaves.
        assert tree.num_nodes() <= 2 * len(pts3d)
