"""Placement must not depend on the caller's scalar dtype or NumPy version.

``PIMSystem.place`` hashes ``repr(key)``.  NumPy 2.0 changed scalar reprs
(``repr(np.int64(5))`` is now ``"np.int64(5)"``, previously ``"5"``), so
before canonicalisation a NumPy scalar leaking into a placement key moved
data to a different module than the equal Python scalar — making layout,
load balance, comm counters and golden stats depend on the installed
NumPy version and on which caller's dtype reached the key.

These tests pin the fix: for every key shape used in the tree
(``("meta", nid)`` at ``core/update.py`` / ``core/chunking.py`` and
``("l0q", salt, qid)`` at ``core/search.py`` / ``core/vexec.py``),
Python and NumPy scalars of equal value must place identically, on both
NumPy 1.x and 2.x.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.pim import PIMSystem


@pytest.fixture
def sys64():
    return PIMSystem(64, seed=9)


# ----------------------------------------------------------------------
# scalar equivalence
# ----------------------------------------------------------------------
class TestScalarEquivalence:
    @pytest.mark.parametrize("np_type", [
        np.int8, np.int16, np.int32, np.int64,
        np.uint8, np.uint16, np.uint32, np.uint64, np.intp,
    ])
    def test_integer_scalars(self, sys64, np_type):
        for v in (0, 1, 5, 100):
            assert sys64.place(np_type(v)) == sys64.place(v)

    @pytest.mark.parametrize("np_type", [np.float32, np.float64])
    def test_float_scalars(self, sys64, np_type):
        # Values exactly representable in float32 so the cast is lossless.
        for v in (0.0, 0.5, 2.25, -8.0):
            assert sys64.place(np_type(v)) == sys64.place(v)

    def test_bool_scalars(self, sys64):
        assert sys64.place(np.bool_(True)) == sys64.place(True)
        assert sys64.place(np.bool_(False)) == sys64.place(False)

    def test_str_and_bytes_scalars(self, sys64):
        assert sys64.place(np.str_("meta")) == sys64.place("meta")
        assert sys64.place(np.bytes_(b"meta")) == sys64.place(b"meta")

    def test_0d_array_ints_match(self, sys64):
        # Items pulled out of arrays are NumPy scalars — the exact leak path.
        arr = np.arange(10, dtype=np.int64)
        for i in range(10):
            assert sys64.place(arr[i]) == sys64.place(i)


# ----------------------------------------------------------------------
# the tree's key shapes (update.py:_assign_mixed, search.py:_descend_l0)
# ----------------------------------------------------------------------
class TestTreeKeyShapes:
    def test_meta_keys(self, sys64):
        """("meta", nid) — the MetaNode placement key of core/update.py."""
        for nid in (0, 7, 123, 99_991):
            want = sys64.place(("meta", nid))
            assert sys64.place(("meta", np.int64(nid))) == want
            assert sys64.place(("meta", np.int32(nid))) == want
            assert sys64.place(("meta", np.uint64(nid))) == want

    def test_l0_route_keys(self, sys64):
        """("l0q", salt, qid) — the L0 query-routing key of core/search.py."""
        for salt, qid in ((0, 0), (3, 17), (12345, 512)):
            want = sys64.place(("l0q", salt, qid))
            assert sys64.place(("l0q", np.int64(salt), np.int64(qid))) == want
            assert sys64.place(("l0q", salt, np.uint32(qid))) == want

    def test_nested_containers(self, sys64):
        key = ("a", (1, 2.5), 3)
        npkey = ("a", (np.int16(1), np.float64(2.5)), np.int64(3))
        assert sys64.place(npkey) == sys64.place(key)
        # Lists canonicalise to tuples, matching either spelling.
        assert sys64.place(["a", [1, 2.5], 3]) == sys64.place(key)


# ----------------------------------------------------------------------
# canonicalisation must not merge genuinely distinct keys
# ----------------------------------------------------------------------
class TestNoCollapse:
    def test_distinct_keys_stay_spread(self, sys64):
        mids = {sys64.place(("meta", nid)) for nid in range(512)}
        assert len(mids) == sys64.n_modules  # 512 keys cover all 64 modules

    def test_type_distinctions_that_matter_survive(self, sys64):
        # str vs bytes vs int vs tuple keys are different keys; their
        # canonical reprs — hence hash inputs — must stay distinct.
        from repro.pim.model import _canonical_key

        keys = ("5", b"5", 5, (5,))
        assert len({repr(_canonical_key(k)) for k in keys}) == 4

    def test_determinism_and_seed_salting(self):
        a, b = PIMSystem(64, seed=9), PIMSystem(64, seed=9)
        keys = [("meta", i) for i in range(100)]
        assert [a.place(k) for k in keys] == [b.place(k) for k in keys]
        other = PIMSystem(64, seed=10)
        assert [a.place(k) for k in keys] != [other.place(k) for k in keys]
